//! The `safetsa` command-line driver.
//!
//! ```text
//! safetsa compile <in.java>... -o <out.tsa> [--no-opt]   produce a module
//! safetsa run <file.tsa|file.java> --entry Class.method  decode/verify/run
//!     [--fuel N] [--max-heap BYTES] [--max-depth N]   resource budgets;
//!     a resource report (steps, bytes, peak depth) goes to stderr
//! safetsa dump <file.java> [--function Class.method] [--view V]
//!     show an IR view (V: safetsa|plain|lr|planes; default safetsa)
//! safetsa stats <file.java>                               size/check stats
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("compile") => cmd_compile(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("dump") => cmd_dump(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        _ => {
            eprintln!("usage: safetsa <compile|run|dump|stats> ...");
            eprintln!("  compile <in.java>... -o <out.tsa> [--no-opt]");
            eprintln!("  run <file.tsa|file.java> --entry Class.method");
            eprintln!("      [--fuel N] [--max-heap BYTES] [--max-depth N]");
            eprintln!("  dump <file.java> [--function Class.method]");
            eprintln!("  stats <file.java>");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("safetsa: {e}");
            ExitCode::FAILURE
        }
    }
}

type AnyError = Box<dyn std::error::Error>;

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn positional(args: &[String]) -> Vec<&String> {
    let mut out = Vec::new();
    let mut skip = false;
    for (i, a) in args.iter().enumerate() {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") || a == "-o" {
            // flags with values
            if matches!(
                a.as_str(),
                "-o" | "--entry" | "--function" | "--fuel" | "--view" | "--max-heap" | "--max-depth"
            ) {
                skip = true;
            }
            let _ = i;
            continue;
        }
        out.push(a);
    }
    out
}

fn build_module(sources: &[&String], optimize: bool) -> Result<safetsa_core::Module, AnyError> {
    let texts: Vec<String> = sources
        .iter()
        .map(|p| std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}")))
        .collect::<Result<_, _>>()?;
    let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
    let prog = safetsa_frontend::compile_many(&refs)?;
    let lowered = safetsa_ssa::lower_program(&prog)?;
    let mut module = lowered.module;
    if optimize {
        safetsa_opt::optimize_module(&mut module);
    }
    safetsa_core::verify::verify_module(&module)?;
    Ok(module)
}

fn cmd_compile(args: &[String]) -> Result<(), AnyError> {
    let out = flag_value(args, "-o").ok_or("missing -o <out.tsa>")?;
    let optimize = !args.iter().any(|a| a == "--no-opt");
    let sources = positional(args);
    if sources.is_empty() {
        return Err("no input files".into());
    }
    let module = build_module(&sources, optimize)?;
    let bytes = safetsa_codec::encode_module(&module)?;
    std::fs::write(out, &bytes)?;
    println!(
        "wrote {out}: {} bytes, {} functions, {} instructions, {} phis",
        bytes.len(),
        module.functions.len(),
        module.instr_count(),
        module.phi_count()
    );
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), AnyError> {
    let entry = flag_value(args, "--entry").ok_or("missing --entry Class.method")?;
    let fuel: u64 = flag_value(args, "--fuel")
        .map(str::parse)
        .transpose()?
        .unwrap_or(1_000_000_000);
    let max_heap: Option<u64> = flag_value(args, "--max-heap").map(str::parse).transpose()?;
    let max_depth: Option<u32> = flag_value(args, "--max-depth").map(str::parse).transpose()?;
    let files = positional(args);
    let file = files.first().ok_or("no input file")?;
    let module = if file.ends_with(".tsa") {
        let bytes = std::fs::read(file.as_str())?;
        let host = safetsa_codec::HostEnv::standard();
        safetsa_codec::decode_and_verify(&bytes, &host)?
    } else {
        build_module(&files, true)?
    };
    let mut vm = safetsa_vm::Vm::load(&module)?;
    vm.set_limits(safetsa_vm::ResourceLimits {
        fuel: Some(fuel),
        max_heap_bytes: max_heap,
        max_call_depth: max_depth,
    });
    let result = vm.run_entry(entry);
    print!("{}", vm.output.text());
    // The report goes to stderr so scripted consumers of stdout see
    // only program output.
    eprintln!(
        "resource report: steps={} bytes_allocated={} peak_depth={}",
        vm.steps,
        vm.heap.bytes_allocated(),
        vm.peak_depth()
    );
    if let Some(v) = result? {
        println!("=> {v:?}");
    }
    Ok(())
}

fn cmd_dump(args: &[String]) -> Result<(), AnyError> {
    let files = positional(args);
    let file = files.first().ok_or("no input file")?;
    let module = build_module(&[file], false)?;
    let wanted = flag_value(args, "--function");
    let view = flag_value(args, "--view").unwrap_or("safetsa");
    for f in &module.functions {
        if let Some(w) = wanted {
            if f.name != w {
                continue;
            }
        }
        println!("================ {} ================", f.name);
        let text = match view {
            "plain" => safetsa_core::pretty::plain_ssa(&module.types, f),
            "lr" => safetsa_core::pretty::reference_safe(&module.types, f),
            "planes" => safetsa_core::pretty::machine_model(&module.types, f),
            "safetsa" => safetsa_core::pretty::safetsa(&module.types, f),
            other => return Err(format!("unknown view `{other}`").into()),
        };
        print!("{text}");
        println!();
    }
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), AnyError> {
    let files = positional(args);
    if files.is_empty() {
        return Err("no input files".into());
    }
    let texts: Vec<String> = files
        .iter()
        .map(|p| std::fs::read_to_string(p.as_str()).map_err(|e| format!("{p}: {e}")))
        .collect::<Result<_, _>>()?;
    let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
    let prog = safetsa_frontend::compile_many(&refs)?;
    let lowered = safetsa_ssa::lower_program(&prog)?;
    let cons = lowered.totals();
    let mut module = lowered.module;
    let unopt_bytes = safetsa_codec::encode_module(&module)?.len();
    let unopt_instrs = module.instr_count() + module.phi_count();
    let stats = safetsa_opt::optimize_module(&mut module);
    let opt_bytes = safetsa_codec::encode_module(&module)?.len();
    let mut bcode = safetsa_baseline::compile::compile_program(&prog);
    safetsa_baseline::verify::verify_program(&prog, &mut bcode)?;
    let class_bytes = safetsa_baseline::classfile::total_size(&prog, &bcode);
    println!(
        "Java bytecode : {:>7} instructions, {:>8} bytes",
        bcode.instr_count(),
        class_bytes
    );
    println!(
        "SafeTSA       : {:>7} instructions, {:>8} bytes",
        unopt_instrs, unopt_bytes
    );
    println!(
        "SafeTSA (opt) : {:>7} instructions, {:>8} bytes",
        module.instr_count() + module.phi_count(),
        opt_bytes
    );
    println!(
        "checks        : null {} -> {}, bounds {} -> {}",
        stats.null_checks_before,
        stats.null_checks_after,
        stats.index_checks_before,
        stats.index_checks_after
    );
    println!(
        "construction  : {} phis placed ({} naive candidates avoided)",
        cons.phis_inserted,
        cons.phis_candidate - cons.phis_inserted
    );
    Ok(())
}
