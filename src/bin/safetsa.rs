//! The `safetsa` command-line driver.
//!
//! ```text
//! safetsa compile <in.java>... -o <out.tsa> [--no-opt]   produce a module
//!     [--metrics-json PATH]   write a machine-readable metrics report
//!     [--trace-json PATH]   write a Chrome trace_event timeline
//!     (schema `safetsa-trace/1`) of every stage, cache probe, task
//!     and worker
//!     [--jobs N] [--cache-dir PATH]   batch mode: compile each input as
//!     its own module on N workers (0 = one per CPU) behind a
//!     content-addressed cache; with several inputs, -o names a
//!     directory that receives one <stem>.tsa per input
//!     [--cache-dir PATH --explain-cache]   method-granular incremental
//!     mode: all inputs form one program cached per method; prints each
//!     unit's hit/miss and why (hit, new, body-changed, dep-changed,
//!     evicted)
//! safetsa run <file.tsa|file.java> --entry Class.method  decode/verify/run
//!     [--fuel N] [--max-heap BYTES] [--max-depth N]   resource budgets;
//!     a resource report (steps, fuel remaining, bytes, peak depth)
//!     goes to stderr
//!     [--engine switch|threaded]   execution engine (default threaded:
//!     pre-decoded direct-threaded core with superinstructions and
//!     xdispatch inline caches; switch is the original interpreter,
//!     kept as the differential oracle)
//!     [--metrics-json PATH]   write a metrics report (adds the VM's
//!     opcode histogram and dynamic check counters)
//!     [--trace-json PATH]   write the run's span timeline
//! safetsa dump <file.java> [--function Class.method] [--view V]
//!     show an IR view (V: safetsa|plain|lr|planes; default safetsa)
//! safetsa stats <file.java> [--engine E]   per-phase size/time/check
//!     stats, plus (when the program has a `.main`) the chosen engine,
//!     icache hit rate, and fused-pair coverage of the executed ops
//! safetsa analyze <in.java>... [--json]   lint the (unoptimized) IR;
//!     exit 1 iff any error-severity diagnostic was reported
//! safetsa verify <file.tsa>             decode + verify a module; print
//!     the VerifyStats on success, the structured error on failure
//! safetsa serve [--tcp ADDR | --socket PATH]   long-running daemon
//!     accepting newline-delimited JSON requests (schema
//!     `safetsa-serve/1`); see README for the protocol
//!     [--workers N] [--queue N]   worker pool size (0 = one per CPU)
//!     and admission-queue capacity
//!     [--fuel N] [--max-heap BYTES] [--max-depth N]
//!     [--max-deadline-ms MS] [--max-source-bytes N]   the default
//!     tenant's budgets (0 = unlimited where applicable)
//!     [--tenant NAME:k=v,...]   add a named tenant profile
//!     (keys: fuel, heap, depth, deadline_ms, source_bytes); repeatable
//!     [--engine switch|threaded]   VM engine for run requests
//!     [--cache-dir PATH] [--chaos] [--no-remote-shutdown]
//!     [--metrics-json PATH]   write the final stats snapshot on exit
//!     [--trace-json PATH]   write the flight recorder's retained
//!     request timelines (Chrome trace_event) on exit
//! ```
//!
//! Exit codes: 0 success; 1 request-level failure (verify/decode/VM
//! trap, resource exhaustion, isolated panic); 2 usage errors,
//! unbuildable input, or I/O failures. Diagnostics are one line on
//! stderr: `safetsa: error[<kind>]: <message>`.

use safetsa::batch::{run_batch, BatchInput, BatchOptions};
use safetsa::driver::passes_fingerprint;
use safetsa::server::{BindAddr, Server, ServerConfig, TenantProfile};
use safetsa::{Error, Pipeline};
use safetsa_telemetry::{Json, Telemetry};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("compile") => cmd_compile(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("dump") => cmd_dump(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("analyze") => return cmd_analyze(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        _ => {
            eprintln!("usage: safetsa <compile|run|dump|stats|analyze|verify|serve> ...");
            eprintln!("  compile <in.java>... -o <out.tsa> [--no-opt] [--metrics-json PATH]");
            eprintln!("      [--trace-json PATH] [--jobs N] [--cache-dir PATH] [--explain-cache]");
            eprintln!("  run <file.tsa|file.java> --entry Class.method");
            eprintln!("      [--fuel N] [--max-heap BYTES] [--max-depth N] [--metrics-json PATH]");
            eprintln!("      [--trace-json PATH] [--engine switch|threaded]");
            eprintln!("  dump <file.java> [--function Class.method]");
            eprintln!("  stats <file.java> [--engine switch|threaded]");
            eprintln!("  analyze <in.java>... [--json]");
            eprintln!("  verify <file.tsa>");
            eprintln!("  serve [--tcp ADDR|--socket PATH] [--workers N] [--queue N]");
            eprintln!("      [--tenant NAME:k=v,...] [--cache-dir PATH] [--chaos]");
            eprintln!("      [--metrics-json PATH] [--trace-json PATH]");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        // Exit-code policy: request-level failures (the input was
        // attempted; a different program or bigger budget would have
        // worked) exit 1; usage errors, unbuildable input, and I/O
        // failures exit 2. One structured line per failure so scripts
        // can match on `error[kind]` instead of prose.
        Err(e) => {
            eprintln!("safetsa: error[{}]: {e}", e.kind());
            if e.is_request_level() {
                ExitCode::FAILURE
            } else {
                ExitCode::from(2)
            }
        }
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Result<Option<T>, Error>
where
    T::Err: std::fmt::Display,
{
    flag_value(args, flag)
        .map(|v| v.parse().map_err(|e| format!("{flag}: {e}").into()))
        .transpose()
}

fn positional(args: &[String]) -> Vec<&String> {
    let mut out = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") || a == "-o" {
            // flags with values
            if matches!(
                a.as_str(),
                "-o" | "--entry"
                    | "--engine"
                    | "--function"
                    | "--fuel"
                    | "--view"
                    | "--max-heap"
                    | "--max-depth"
                    | "--metrics-json"
                    | "--trace-json"
                    | "--jobs"
                    | "--cache-dir"
                    | "--tcp"
                    | "--socket"
                    | "--workers"
                    | "--queue"
                    | "--max-deadline-ms"
                    | "--max-source-bytes"
                    | "--tenant"
            ) {
                skip = true;
            }
            continue;
        }
        out.push(a);
    }
    out
}

/// The producer pipeline's in-memory artifacts (kept together so the
/// metrics report can relate the SafeTSA module to its baseline).
struct Built {
    prog: safetsa_frontend::hir::Program,
    module: safetsa_core::Module,
}

fn read_source(path: &str) -> Result<String, Error> {
    std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}").into())
}

fn build_module(sources: &[&String], pipeline: &Pipeline) -> Result<Built, Error> {
    let texts: Vec<String> = sources
        .iter()
        .map(|p| read_source(p))
        .collect::<Result<_, _>>()?;
    let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
    // Stages run individually (the baseline plane needs `prog`), but
    // under the same `compile` umbrella span `compile_sources` emits,
    // so traces from every surface share one tree shape.
    pipeline.metrics().span("compile", || {
        let prog = pipeline.frontend(&refs)?;
        let mut module = pipeline.lower(&prog)?.module;
        pipeline.optimize(&mut module);
        pipeline.verify(&module)?;
        Ok(Built { prog, module })
    })
}

/// Records the Java-bytecode baseline plane and the paper's headline
/// size ratio (SafeTSA bytes : class-file bytes, in permille so the
/// counter stays an integer and the report stays deterministic).
fn record_baseline(
    prog: &safetsa_frontend::hir::Program,
    tsa_bytes: u64,
    tm: &Telemetry,
) -> Result<(), Error> {
    let mut bcode = tm.time("baseline.compile_ns", || {
        safetsa_baseline::compile::compile_program(prog)
    });
    tm.time("baseline.verify_ns", || {
        safetsa_baseline::verify::verify_program(prog, &mut bcode)
    })
    .map_err(|e| format!("baseline verify: {e}"))?;
    let class_bytes = safetsa_baseline::classfile::total_size(prog, &bcode) as u64;
    tm.set("baseline.class_file_bytes", class_bytes);
    tm.set("baseline.instrs", bcode.instr_count() as u64);
    if let Some(ratio) = tsa_bytes.saturating_mul(1000).checked_div(class_bytes) {
        tm.set("codec.size_ratio_permille", ratio);
    }
    Ok(())
}

fn write_metrics(path: &str, doc: &Json) -> Result<(), Error> {
    std::fs::write(path, doc.render_pretty()).map_err(|e| format!("{path}: {e}").into())
}

/// Picks the registry for a command from its `--metrics-json` /
/// `--trace-json` flags: tracing implies metrics (spans ride on an
/// enabled registry), metrics alone skips the span buffer, neither
/// costs nothing.
fn configure_telemetry(metrics: bool, trace: bool) -> Telemetry {
    if trace {
        Telemetry::with_trace()
    } else if metrics {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    }
}

fn write_trace(path: &str, tm: &Telemetry) -> Result<(), Error> {
    std::fs::write(path, tm.to_chrome_trace().render_pretty())
        .map_err(|e| format!("{path}: {e}").into())
}

fn cmd_compile(args: &[String]) -> Result<(), Error> {
    let out = flag_value(args, "-o").ok_or("missing -o <out.tsa>")?;
    let optimize = !args.iter().any(|a| a == "--no-opt");
    let metrics_path = flag_value(args, "--metrics-json");
    let trace_path = flag_value(args, "--trace-json");
    let jobs: Option<usize> = parse_flag(args, "--jobs")?;
    let cache_dir = flag_value(args, "--cache-dir");
    let explain_cache = args.iter().any(|a| a == "--explain-cache");
    let sources = positional(args);
    if sources.is_empty() {
        return Err("no input files".into());
    }
    if explain_cache {
        // Per-unit incremental mode: all inputs form one program,
        // cached method-by-method (vs. batch's whole-module records).
        if jobs.is_some() {
            return Err("--explain-cache uses the in-process incremental store (drop --jobs)".into());
        }
        if cache_dir.is_none() {
            return Err("--explain-cache requires --cache-dir PATH".into());
        }
    }
    if jobs.is_some() || (cache_dir.is_some() && !explain_cache) {
        return compile_batch(
            &sources,
            out,
            optimize,
            metrics_path,
            trace_path,
            jobs,
            cache_dir,
        );
    }
    let tm = configure_telemetry(metrics_path.is_some(), trace_path.is_some());
    let mut pipeline = configure_pipeline(optimize, tm);
    if let Some(dir) = cache_dir {
        pipeline = pipeline.cache(dir)?;
    }
    let built = build_module(&sources, &pipeline)?;
    let bytes = pipeline.encode(&built.module)?;
    std::fs::write(out, &bytes).map_err(|e| format!("{out}: {e}"))?;
    if let Some(path) = metrics_path {
        record_baseline(&built.prog, bytes.len() as u64, pipeline.metrics())?;
        let subject: Vec<&str> = sources.iter().map(|s| s.as_str()).collect();
        write_metrics(path, &pipeline.metrics().report("compile", &subject.join(" ")))?;
    }
    if let Some(path) = trace_path {
        write_trace(path, pipeline.metrics())?;
    }
    println!(
        "wrote {out}: {} bytes, {} functions, {} instructions, {} phis",
        bytes.len(),
        built.module.functions.len(),
        built.module.instr_count(),
        built.module.phi_count()
    );
    if explain_cache {
        let units = pipeline.cache_report();
        if units.is_empty() {
            println!("cache: no units (the store engages only when optimization is on)");
        } else {
            let reused = units.iter().filter(|u| u.reused).count();
            println!(
                "cache: {} unit(s), {} reused, {} recompiled",
                units.len(),
                reused,
                units.len() - reused
            );
            for u in &units {
                println!(
                    "  {} {:<12} {}",
                    if u.reused { "reuse  " } else { "compile" },
                    u.why,
                    u.name
                );
            }
        }
    }
    Ok(())
}

/// A [`Pipeline`] matching the CLI's `--no-opt` convention.
fn configure_pipeline(optimize: bool, tm: Telemetry) -> Pipeline {
    let p = Pipeline::new().telemetry(tm);
    if optimize {
        p
    } else {
        p.no_optimize()
    }
}

/// The configuration half of the CLI's cache key. Everything that
/// changes the produced artifact or its metrics is folded in: the pass
/// configuration and whether metrics (including the baseline plane)
/// were recorded.
fn compile_fingerprint(optimize: bool, telemetry: bool) -> String {
    let passes = if optimize {
        passes_fingerprint(&safetsa::opt::Passes::ALL)
    } else {
        "noopt".to_string()
    };
    format!("cli-compile/{passes}/m{}", u8::from(telemetry))
}

/// Batch mode: each input file becomes its own module, compiled on a
/// worker pool behind the content-addressed cache.
fn compile_batch(
    sources: &[&String],
    out: &str,
    optimize: bool,
    metrics_path: Option<&str>,
    trace_path: Option<&str>,
    jobs: Option<usize>,
    cache_dir: Option<&str>,
) -> Result<(), Error> {
    // Tracing rides on enabled metrics, so either flag turns per-task
    // collection on — and the cache key must reflect that the stored
    // metrics payload differs.
    let telemetry = metrics_path.is_some() || trace_path.is_some();
    let inputs: Vec<BatchInput> = sources
        .iter()
        .map(|p| {
            Ok(BatchInput {
                name: (*p).clone(),
                source: read_source(p)?,
            })
        })
        .collect::<Result<_, Error>>()?;
    let mut opts = BatchOptions::new(compile_fingerprint(optimize, telemetry));
    opts.jobs = jobs.unwrap_or(0);
    opts.cache_dir = cache_dir.map(PathBuf::from);
    opts.telemetry = telemetry;
    opts.trace = trace_path.is_some();
    let report = run_batch(&inputs, &opts, |_idx, input, tm| {
        let pipeline = configure_pipeline(optimize, tm);
        let (prog, module) = pipeline.metrics().span("compile", || {
            let prog = pipeline.frontend(&[input.source.as_str()])?;
            let mut module = pipeline.lower(&prog)?.module;
            pipeline.optimize(&mut module);
            pipeline.verify(&module)?;
            Ok::<_, Error>((prog, module))
        })?;
        let bytes = pipeline.encode(&module)?;
        if telemetry {
            record_baseline(&prog, bytes.len() as u64, pipeline.metrics())?;
        }
        Ok((bytes, pipeline.into_metrics()))
    })?;
    // One input: -o names the output file. Several: -o names a
    // directory receiving one <stem>.tsa per input.
    let single = report.items.len() == 1;
    if !single {
        std::fs::create_dir_all(out).map_err(|e| format!("{out}: {e}"))?;
    }
    for item in &report.items {
        let path = if single {
            PathBuf::from(out)
        } else {
            let stem = Path::new(&item.name)
                .file_stem()
                .map_or_else(|| item.name.clone().into(), |s| s.to_os_string());
            Path::new(out).join(stem).with_extension("tsa")
        };
        std::fs::write(&path, &item.bytes).map_err(|e| format!("{}: {e}", path.display()))?;
        println!(
            "wrote {}: {} bytes{}",
            path.display(),
            item.bytes.len(),
            if item.cache_hit { " (cache hit)" } else { "" }
        );
    }
    println!(
        "batch: {} module(s) on {} worker(s), cache {} hit(s) / {} miss(es), {} ms",
        report.items.len(),
        report.jobs,
        report.cache_hits,
        report.cache_misses,
        report.wall_ns / 1_000_000
    );
    if let Some(path) = metrics_path {
        let subject: Vec<&str> = sources.iter().map(|s| s.as_str()).collect();
        write_metrics(path, &report.merged.report("compile", &subject.join(" ")))?;
    }
    if let Some(path) = trace_path {
        write_trace(path, &report.merged)?;
    }
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), Error> {
    let entry = flag_value(args, "--entry").ok_or("missing --entry Class.method")?;
    let fuel: u64 = parse_flag(args, "--fuel")?.unwrap_or(1_000_000_000);
    let max_heap: Option<u64> = parse_flag(args, "--max-heap")?;
    let max_depth: Option<u32> = parse_flag(args, "--max-depth")?;
    let engine: safetsa_vm::Engine = parse_flag(args, "--engine")?.unwrap_or_default();
    let metrics_path = flag_value(args, "--metrics-json");
    let trace_path = flag_value(args, "--trace-json");
    // The registry also backs the stderr resource report, so `run`
    // always records (tracing is opt-in via --trace-json).
    let pipeline = Pipeline::new()
        .telemetry(if trace_path.is_some() {
            Telemetry::with_trace()
        } else {
            Telemetry::enabled()
        })
        .engine(engine)
        .limits(safetsa_vm::ResourceLimits {
            fuel: Some(fuel),
            max_heap_bytes: max_heap,
            max_call_depth: max_depth,
        });
    let files = positional(args);
    let file = files.first().ok_or("no input file")?;
    let module = if file.ends_with(".tsa") {
        let bytes = std::fs::read(file.as_str()).map_err(|e| format!("{file}: {e}"))?;
        pipeline.decode(&bytes)?
    } else {
        let built = build_module(&files, &pipeline)?;
        if metrics_path.is_some() {
            // Encoding is not needed to interpret, but the metrics
            // report covers the codec plane for source inputs too.
            let bytes = pipeline.encode(&built.module)?;
            record_baseline(&built.prog, bytes.len() as u64, pipeline.metrics())?;
        }
        built.module
    };
    let outcome = pipeline.run(&module, entry)?;
    print!("{}", outcome.output);
    // The report goes to stderr so scripted consumers of stdout see
    // only program output.
    eprintln!(
        "resource report: {}",
        pipeline.metrics().summary_line(&[
            "vm.steps",
            "vm.fuel_remaining",
            "vm.heap.bytes_allocated",
            "vm.peak_depth",
        ])
    );
    if let Some(path) = metrics_path {
        write_metrics(path, &pipeline.metrics().report("run", file))?;
    }
    if let Some(path) = trace_path {
        write_trace(path, pipeline.metrics())?;
    }
    if let Some(v) = outcome.result? {
        println!("=> {v:?}");
    }
    Ok(())
}

fn cmd_dump(args: &[String]) -> Result<(), Error> {
    let files = positional(args);
    let file = files.first().ok_or("no input file")?;
    let built = build_module(&[file], &Pipeline::new().no_optimize())?;
    let module = built.module;
    let wanted = flag_value(args, "--function");
    let view = flag_value(args, "--view").unwrap_or("safetsa");
    for f in &module.functions {
        if let Some(w) = wanted {
            if f.name != w {
                continue;
            }
        }
        println!("================ {} ================", f.name);
        let text = match view {
            "plain" => safetsa_core::pretty::plain_ssa(&module.types, f),
            "lr" => safetsa_core::pretty::reference_safe(&module.types, f),
            "planes" => safetsa_core::pretty::machine_model(&module.types, f),
            "safetsa" => safetsa_core::pretty::safetsa(&module.types, f),
            other => return Err(format!("unknown view `{other}`").into()),
        };
        print!("{text}");
        println!();
    }
    Ok(())
}

fn cmd_analyze(args: &[String]) -> ExitCode {
    match run_analyze(args) {
        Ok(false) => ExitCode::SUCCESS,
        // Error-severity diagnostics: nonzero, but distinct from the
        // exit 2 an unbuildable input produces.
        Ok(true) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("safetsa: {e}");
            ExitCode::from(2)
        }
    }
}

/// Lints the unoptimized IR of the given sources. Returns whether any
/// error-severity diagnostic was reported.
fn run_analyze(args: &[String]) -> Result<bool, Error> {
    let json = args.iter().any(|a| a == "--json");
    let sources = positional(args);
    if sources.is_empty() {
        return Err("no input files".into());
    }
    // The linter reads the freshly lowered module: diagnostics point at
    // what the programmer wrote, not at what the optimizer left behind.
    let built = build_module(&sources, &Pipeline::new().no_optimize())?;
    let diags = safetsa_analysis::lint_module(&built.module);
    let count = |s: safetsa_analysis::Severity| diags.iter().filter(|d| d.severity == s).count();
    let errors = count(safetsa_analysis::Severity::Error);
    let warnings = count(safetsa_analysis::Severity::Warning);
    let notes = count(safetsa_analysis::Severity::Note);
    if json {
        let mut doc = Json::obj();
        doc.set("schema", Json::Str("safetsa-analyze/1".into()));
        let subject: Vec<&str> = sources.iter().map(|s| s.as_str()).collect();
        doc.set("subject", Json::Str(subject.join(" ")));
        doc.set("errors", Json::U64(errors as u64));
        doc.set("warnings", Json::U64(warnings as u64));
        doc.set("notes", Json::U64(notes as u64));
        let items = diags
            .iter()
            .map(|d| {
                let mut o = Json::obj();
                o.set("severity", Json::Str(d.severity.name().into()));
                o.set("kind", Json::Str(d.kind.into()));
                o.set("function", Json::Str(d.function.clone()));
                o.set("block", Json::U64(u64::from(d.block.0)));
                o.set(
                    "instr",
                    d.instr.map_or(Json::Null, |i| Json::U64(i as u64)),
                );
                o.set("message", Json::Str(d.message.clone()));
                o
            })
            .collect();
        doc.set("diagnostics", Json::Arr(items));
        print!("{}", doc.render_pretty());
    } else {
        for d in &diags {
            let site = match d.instr {
                Some(i) => format!("{} instr {i}", d.block),
                None => format!("{}", d.block),
            };
            println!(
                "{}: {} {}: [{}] {}",
                d.severity.name(),
                d.function,
                site,
                d.kind,
                d.message
            );
        }
        println!(
            "{} error{}, {} warning{}, {} note{}",
            errors,
            if errors == 1 { "" } else { "s" },
            warnings,
            if warnings == 1 { "" } else { "s" },
            notes,
            if notes == 1 { "" } else { "s" },
        );
    }
    Ok(errors > 0)
}

fn cmd_verify(args: &[String]) -> Result<(), Error> {
    let files = positional(args);
    let file = files.first().ok_or("no input file")?;
    if !file.ends_with(".tsa") {
        return Err(format!("{file}: expected a .tsa module").into());
    }
    let bytes = std::fs::read(file.as_str()).map_err(|e| format!("{file}: {e}"))?;
    let host = safetsa_codec::HostEnv::standard();
    // Decode *without* the bundled verification so a verifier rejection
    // surfaces as the structured `VerifyError`, not a decode error.
    let module = safetsa_codec::decode_module(&bytes, &host)?;
    let stats = safetsa_core::verify::verify_module(&module)?;
    println!(
        "{file}: OK ({} bytes, {} functions; verified {} instructions, {} phis, {} operand references)",
        bytes.len(),
        module.functions.len(),
        stats.instrs,
        stats.phis,
        stats.operands
    );
    Ok(())
}

/// SIGINT/SIGTERM handling without a libc dependency: a raw binding to
/// the C `signal(2)` entry point installs a handler that flips one
/// static flag — the only async-signal-safe thing a handler may do.
/// The daemon's accept loop polls the flag and drains.
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static SHUTDOWN: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::Relaxed);
    }

    pub fn install() {
        let handler = on_signal as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

/// Collects every value of a repeatable flag (`--tenant A:... --tenant
/// B:...`).
fn flag_values<'a>(args: &'a [String], flag: &str) -> Vec<&'a str> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| *a == flag)
        .filter_map(|(i, _)| args.get(i + 1))
        .map(String::as_str)
        .collect()
}

/// Parses a `NAME:key=value,...` tenant specification. Keys: `fuel`,
/// `heap`, `depth`, `deadline_ms`, `source_bytes`; `0` means unlimited
/// for the resource keys. Unspecified keys inherit the default tenant.
fn parse_tenant(spec: &str, base: TenantProfile) -> Result<(String, TenantProfile), Error> {
    let (name, rest) = spec
        .split_once(':')
        .ok_or_else(|| format!("--tenant {spec}: expected NAME:key=value,..."))?;
    if name.is_empty() {
        return Err(format!("--tenant {spec}: empty tenant name").into());
    }
    let mut profile = base;
    for pair in rest.split(',').filter(|p| !p.is_empty()) {
        let (key, value) = pair
            .split_once('=')
            .ok_or_else(|| format!("--tenant {spec}: `{pair}` is not key=value"))?;
        let n: u64 = value
            .parse()
            .map_err(|e| format!("--tenant {spec}: {key}: {e}"))?;
        let opt = |n: u64| if n == 0 { None } else { Some(n) };
        match key {
            "fuel" => profile.fuel = opt(n),
            "heap" => profile.max_heap_bytes = opt(n),
            "depth" => {
                profile.max_call_depth = match opt(n) {
                    None => None,
                    Some(n) => Some(
                        u32::try_from(n)
                            .map_err(|_| format!("--tenant {spec}: depth too large"))?,
                    ),
                }
            }
            "deadline_ms" => profile.max_deadline_ms = n,
            "source_bytes" => {
                profile.max_source_bytes =
                    usize::try_from(n).map_err(|_| format!("--tenant {spec}: source_bytes too large"))?
            }
            other => return Err(format!("--tenant {spec}: unknown key `{other}`").into()),
        }
    }
    Ok((name.to_string(), profile))
}

fn cmd_serve(args: &[String]) -> Result<(), Error> {
    let tcp = flag_value(args, "--tcp");
    let socket = flag_value(args, "--socket");
    let bind = match (tcp, socket) {
        (Some(_), Some(_)) => {
            return Err("--tcp and --socket are mutually exclusive".into());
        }
        #[cfg(unix)]
        (None, Some(path)) => BindAddr::Unix(PathBuf::from(path)),
        #[cfg(not(unix))]
        (None, Some(_)) => {
            return Err("--socket requires a Unix platform".into());
        }
        (tcp, None) => BindAddr::Tcp(tcp.unwrap_or("127.0.0.1:7433").to_string()),
    };
    let mut default_tenant = TenantProfile::default();
    let opt = |n: u64| if n == 0 { None } else { Some(n) };
    if let Some(fuel) = parse_flag(args, "--fuel")? {
        default_tenant.fuel = opt(fuel);
    }
    if let Some(heap) = parse_flag(args, "--max-heap")? {
        default_tenant.max_heap_bytes = opt(heap);
    }
    if let Some(depth) = parse_flag::<u32>(args, "--max-depth")? {
        default_tenant.max_call_depth = if depth == 0 { None } else { Some(depth) };
    }
    if let Some(ms) = parse_flag(args, "--max-deadline-ms")? {
        default_tenant.max_deadline_ms = ms;
    }
    if let Some(bytes) = parse_flag(args, "--max-source-bytes")? {
        default_tenant.max_source_bytes = bytes;
    }
    let tenants = flag_values(args, "--tenant")
        .into_iter()
        .map(|spec| parse_tenant(spec, default_tenant))
        .collect::<Result<Vec<_>, _>>()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let cfg = ServerConfig {
        bind,
        workers: parse_flag(args, "--workers")?.unwrap_or(0),
        queue_capacity: parse_flag(args, "--queue")?.unwrap_or(64),
        default_tenant,
        tenants,
        cache_dir: flag_value(args, "--cache-dir").map(PathBuf::from),
        chaos: args.iter().any(|a| a == "--chaos"),
        allow_remote_shutdown: !args.iter().any(|a| a == "--no-remote-shutdown"),
        shutdown: Arc::clone(&shutdown),
        engine: parse_flag(args, "--engine")?.unwrap_or_default(),
    };
    let metrics_path = flag_value(args, "--metrics-json");
    let trace_path = flag_value(args, "--trace-json");
    let server = Server::bind(cfg)?;
    println!("serve: listening on {}", server.local_addr());

    #[cfg(unix)]
    {
        sig::install();
        // Bridge the handler's static flag into the server's shutdown
        // flag; the thread dies with the process after the drain.
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || loop {
            if sig::SHUTDOWN.load(Ordering::Relaxed) {
                shutdown.store(true, Ordering::Relaxed);
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        });
    }

    let summary = server.run();
    let stats = &summary.stats;
    let count = |key: &str| stats.get(key).and_then(Json::as_u64).unwrap_or(0);
    eprintln!(
        "serve: drained; {} completed ({} ok, {} errors), {} shed, {} panics isolated",
        count("completed"),
        count("ok"),
        count("errors"),
        count("shed"),
        count("panics_isolated"),
    );
    if let Some(path) = metrics_path {
        let mut doc = Json::obj();
        doc.set("schema", Json::Str("safetsa-serve-metrics/1".into()));
        doc.set("stats", summary.stats);
        write_metrics(path, &doc)?;
    }
    if let Some(path) = trace_path {
        std::fs::write(path, summary.trace.render_pretty())
            .map_err(|e| Error::from(format!("{path}: {e}")))?;
    }
    Ok(())
}

fn ns(tm: &Telemetry, key: &str) -> u64 {
    tm.counter(key).unwrap_or(0)
}

fn cmd_stats(args: &[String]) -> Result<(), Error> {
    let files = positional(args);
    if files.is_empty() {
        return Err("no input files".into());
    }
    let pipeline = Pipeline::new().telemetry(Telemetry::enabled());
    let texts: Vec<String> = files
        .iter()
        .map(|p| read_source(p))
        .collect::<Result<_, _>>()?;
    let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
    let prog = pipeline.frontend(&refs)?;
    let lowered = pipeline.lower(&prog)?;
    let cons = lowered.totals();
    let mut module = lowered.module;
    let unopt_bytes = safetsa_codec::encode_module(&module)?.len();
    let unopt_instrs = module.instr_count() + module.phi_count();
    let stats = pipeline.optimize(&mut module);
    let (opt_bytes, sections) = safetsa_codec::encode_sections(&module)?;
    safetsa_codec::record_sections(&sections, pipeline.metrics());
    let opt_bytes = opt_bytes.len();
    let mut bcode = safetsa_baseline::compile::compile_program(&prog);
    safetsa_baseline::verify::verify_program(&prog, &mut bcode)
        .map_err(|e| format!("baseline verify: {e}"))?;
    let class_bytes = safetsa_baseline::classfile::total_size(&prog, &bcode);
    println!(
        "Java bytecode : {:>7} instructions, {:>8} bytes",
        bcode.instr_count(),
        class_bytes
    );
    println!(
        "SafeTSA       : {:>7} instructions, {:>8} bytes",
        unopt_instrs, unopt_bytes
    );
    println!(
        "SafeTSA (opt) : {:>7} instructions, {:>8} bytes",
        module.instr_count() + module.phi_count(),
        opt_bytes
    );
    println!(
        "checks        : null {} -> {}, bounds {} -> {}",
        stats.null_checks_before,
        stats.null_checks_after,
        stats.index_checks_before,
        stats.index_checks_after
    );
    println!(
        "construction  : {} phis placed ({} naive candidates avoided)",
        cons.phis_inserted,
        cons.phis_candidate - cons.phis_inserted
    );
    let tm = pipeline.metrics();
    println!(
        "phases        : lex {}us, parse {}us, sema {}us, lower {}us, opt {}us",
        ns(tm, "frontend.lex_ns") / 1000,
        ns(tm, "frontend.parse_ns") / 1000,
        ns(tm, "frontend.sema_ns") / 1000,
        ns(tm, "ssa.lower_ns") / 1000,
        ns(tm, "opt.optimize_ns") / 1000,
    );
    println!(
        "passes        : constprop -{}, cse -{}, loadfwd -{}, dse -{}, dce -{}",
        stats.removed_by_constprop,
        stats.removed_by_cse,
        stats.removed_by_loadfwd,
        stats.removed_by_dse,
        stats.removed_by_dce
    );
    let total = sections.total_bits().max(1);
    println!(
        "encoded (opt) : type table {}b, consts {}b, cst {}b, instrs {}b, operand refs {}b, cst refs {}b, phi refs {}b",
        sections.type_table_bits,
        sections.const_pool_bits,
        sections.cst_bits,
        sections.instr_bits,
        sections.operand_ref_bits,
        sections.cst_ref_bits,
        sections.phi_ref_bits,
    );
    println!(
        "              : references {}% of stream, size ratio vs class file {}%",
        (sections.operand_ref_bits + sections.cst_ref_bits + sections.phi_ref_bits) * 100 / total,
        (opt_bytes * 100).checked_div(class_bytes).unwrap_or(0)
    );
    // Consumer-side dynamics: execute the program's main (when it has
    // one) under the selected engine and report what the threaded core
    // did with it — inline-cache effectiveness and how much of the
    // executed instruction stream the fused superinstructions covered.
    let engine: safetsa_vm::Engine = parse_flag(args, "--engine")?.unwrap_or_default();
    match module.functions.iter().find(|f| f.name.ends_with(".main")) {
        Some(f) => {
            let entry = f.name.clone();
            let mut vm = safetsa_vm::Vm::load(&module).map_err(Error::Vm)?;
            vm.set_engine(engine);
            vm.set_fuel(1_000_000_000);
            vm.enable_stats();
            // A trap or exhaustion still leaves the dynamic counters
            // valid, so the report prints either way.
            let _ = vm.run_entry(&entry);
            let lookups = vm.icache_hits() + vm.icache_misses();
            let hit_pct = if lookups == 0 {
                100.0
            } else {
                vm.icache_hits() as f64 * 100.0 / lookups as f64
            };
            let fused_execs: u64 = vm.stats().fused.values().sum();
            // Each fused execution stands for two original instructions.
            let original_ops = vm.steps + fused_execs;
            let coverage = if original_ops == 0 {
                0.0
            } else {
                2.0 * fused_execs as f64 * 100.0 / original_ops as f64
            };
            println!(
                "engine        : {engine} ({entry}: {} steps, icache {}/{} hits = {:.1}%)",
                vm.steps,
                vm.icache_hits(),
                lookups,
                hit_pct
            );
            let mut pairs: Vec<(&str, u64)> =
                vm.stats().fused.iter().map(|(k, v)| (*k, *v)).collect();
            pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
            let top: Vec<String> = pairs
                .iter()
                .take(4)
                .map(|(k, v)| format!("{k} x{v}"))
                .collect();
            println!(
                "fused pairs   : {fused_execs} executions covering {coverage:.1}% of ops ({})",
                if top.is_empty() {
                    "none".to_string()
                } else {
                    top.join(", ")
                }
            );
        }
        None => println!("engine        : {engine} (no .main entry; dynamic stats unavailable)"),
    }
    Ok(())
}
