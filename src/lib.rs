//! # safetsa
//!
//! Umbrella crate for the SafeTSA reproduction (PLDI 2001): re-exports
//! every stage of the pipeline and hosts the `safetsa` CLI, the
//! examples, and the cross-crate integration tests.
//!
//! Start with [`Pipeline`]: configure it once (passes, telemetry,
//! resource limits) and drive source → module → wire bytes → executed
//! result through one object, with every failure reported as the
//! unified [`Error`]. For many-file workloads, [`batch`] compiles
//! modules in parallel on a worker pool behind a content-addressed
//! cache. The per-stage crates remain available underneath for
//! fine-grained control. See the README for the full tour.
//!
//! ```
//! use safetsa::Pipeline;
//!
//! let pipeline = Pipeline::new();
//! let module = pipeline.compile_source(
//!     "class M { static int main() { return 6 * 7; } }",
//! )?;
//! let bytes = pipeline.encode(&module)?;
//! let outcome = pipeline.run(&pipeline.decode(&bytes)?, "M.main")?;
//! assert_eq!(outcome.result?, Some(safetsa::rt::Value::I(42)));
//! # Ok::<(), safetsa::Error>(())
//! ```

#![warn(missing_docs)]

pub use safetsa_baseline as baseline;
pub use safetsa_codec as codec;
pub use safetsa_core as core;
pub use safetsa_driver as driver;
pub use safetsa_frontend as frontend;
pub use safetsa_opt as opt;
pub use safetsa_rt as rt;
pub use safetsa_server as server;
pub use safetsa_ssa as ssa;
pub use safetsa_vm as vm;

pub use safetsa_driver::{batch, Error, Pipeline, RunOutcome};
