//! # safetsa
//!
//! Umbrella crate for the SafeTSA reproduction (PLDI 2001): re-exports
//! every stage of the pipeline and hosts the `safetsa` CLI, the
//! examples, and the cross-crate integration tests.
//!
//! Start with [`frontend::compile`] → [`ssa::lower_program`] →
//! [`opt::optimize_module`] → [`codec::encode_module`] →
//! [`codec::decode_and_verify`] → [`vm::Vm`]. See the README for the
//! full tour.

#![warn(missing_docs)]

pub use safetsa_baseline as baseline;
pub use safetsa_codec as codec;
pub use safetsa_core as core;
pub use safetsa_frontend as frontend;
pub use safetsa_opt as opt;
pub use safetsa_rt as rt;
pub use safetsa_ssa as ssa;
pub use safetsa_vm as vm;
