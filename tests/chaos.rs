//! Chaos-injection harness for the `safetsa serve` daemon.
//!
//! Every test spins up a real in-process daemon on a loopback port and
//! attacks it the way a hostile (or merely unlucky) client would:
//! worker panics, tampered and truncated frames, corrupted cache
//! entries, exhausted tenant budgets, queue saturation, shutdown with
//! requests in flight. The invariant under test is always the same —
//! the daemon stays live and every frame it reads gets exactly one
//! well-formed response.

use safetsa::server::client::{request_obj, Client};
use safetsa::server::{BindAddr, Server, ServerConfig, ServerHandle, TenantProfile, SCHEMA};
use safetsa_bench::serve::{run_loadgen, LoadgenOptions};
use safetsa_telemetry::Json;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::Path;
use std::time::{Duration, Instant};

/// An unlimited-execution tenant: chaos tests that probe deadlines or
/// panics must not trip the default fuel meter first.
fn unmetered() -> TenantProfile {
    TenantProfile {
        fuel: None,
        max_heap_bytes: None,
        max_call_depth: None,
        ..TenantProfile::default()
    }
}

/// Spawns a chaos-enabled daemon, returning its address, control
/// handle, and the thread to join after shutdown.
fn spawn(mut cfg: ServerConfig) -> (String, ServerHandle, std::thread::JoinHandle<()>) {
    cfg.bind = BindAddr::Tcp("127.0.0.1:0".into());
    cfg.chaos = true;
    let server = Server::bind(cfg).expect("bind loopback daemon");
    let addr = server.local_addr();
    let handle = server.handle();
    let join = std::thread::spawn(move || {
        server.run();
    });
    (addr, handle, join)
}

fn drain(handle: &ServerHandle, join: std::thread::JoinHandle<()>) {
    handle.request_shutdown();
    join.join().expect("daemon thread must not panic during drain");
}

fn status(resp: &Json) -> &str {
    match resp.get("status") {
        Some(Json::Str(s)) => s,
        other => panic!("response without status: {other:?}"),
    }
}

fn kind(resp: &Json) -> &str {
    match resp.get("kind") {
        Some(Json::Str(s)) => s,
        other => panic!("response without kind: {other:?}"),
    }
}

fn payload(resp: &Json) -> &Json {
    resp.get("payload")
        .unwrap_or_else(|| panic!("ok response without payload: {}", resp.render()))
}

fn stat(handle: &ServerHandle, key: &str) -> u64 {
    handle.stats().get(key).and_then(Json::as_u64).unwrap_or_else(|| {
        panic!("stats payload missing `{key}`");
    })
}

fn run_req(id: &str, source: &str, entry: &str, deadline_ms: u64) -> Json {
    let mut doc = request_obj("run", id);
    doc.set("source", Json::Str(source.into()));
    doc.set("entry", Json::Str(entry.into()));
    doc.set("deadline_ms", Json::U64(deadline_ms));
    doc
}

// No statement after the loop: the frontend's reachability check
// rejects code it can prove `while (true)` never reaches, and the SSA
// lowering honors the same rule by emitting the loop guard-free.
const SPIN: &str = "class Spin {
    static int main() {
        int i = 0;
        while (true) { i = i + 1; }
    }
}";

/// The full loadgen pass: corpus replay on concurrent connections with
/// interleaved panics, garbage frames, unknown ops, a saturation
/// burst, and a graceful drain. The report's `violations` list is the
/// harness verdict.
#[test]
fn loadgen_chaos_run_holds_every_invariant() {
    let report = run_loadgen(&LoadgenOptions {
        connections: 3,
        queue_capacity: 4,
        ..LoadgenOptions::default()
    });
    assert!(
        report.violations.is_empty(),
        "protocol violations: {:#?}",
        report.violations
    );
    assert_eq!(report.requests, report.responses);
    assert!(report.panic_isolated > 0, "chaos panics never fired");
    assert!(report.ok > 0, "no request succeeded at all");
}

/// Worker panics are isolated per-request: the panicking request gets
/// a `kind:"panic"` error, and the very same connection keeps working.
#[test]
fn injected_panic_is_isolated_and_counted() {
    let (addr, handle, join) = spawn(ServerConfig::default());
    let mut client = Client::connect_tcp(&addr).expect("connect");

    let mut doc = request_obj("compile", "boom");
    doc.set("source", Json::Str("//!chaos:panic\nclass B {}".into()));
    let resp = client.request(&doc).expect("panic response");
    assert_eq!(status(&resp), "error");
    assert_eq!(kind(&resp), "panic");

    // Same connection, same worker pool: still alive.
    let resp = client
        .request(&run_req("after", "class A { static int main() { return 6 * 7; } }", "A.main", 5_000))
        .expect("post-panic response");
    assert_eq!(status(&resp), "ok");
    assert_eq!(payload(&resp).get("result"), Some(&Json::Str("I(42)".into())));

    assert_eq!(stat(&handle, "panics_isolated"), 1);
    drain(&handle, join);
}

/// Tampered frames — binary garbage, invalid UTF-8, and a frame
/// truncated by connection loss — never crash the daemon and never
/// produce more (or fewer) than one response per *complete* frame.
#[test]
fn tampered_and_truncated_frames_leave_daemon_live() {
    let (addr, handle, join) = spawn(ServerConfig::default());

    // Raw socket: two complete garbage frames (one of them invalid
    // UTF-8), then a frame truncated by the connection closing, then
    // EOF. The reader flushes the trailing partial line as one last
    // (malformed) frame, so three responses come back.
    let mut raw = TcpStream::connect(&addr).expect("raw connect");
    raw.write_all(b"{\"op\": \"run\", \"id\": tampered!!\n").unwrap();
    raw.write_all(b"\xff\xfe{binary\x00garbage}\xc3\x28\n").unwrap();
    raw.write_all(b"{\"op\":\"ping\",\"id\":\"cut-mid-fra").unwrap();
    raw.shutdown(std::net::Shutdown::Write).unwrap();

    let mut text = String::new();
    raw.read_to_string(&mut text).expect("responses readable");
    let frames: Vec<&str> = text.lines().collect();
    assert_eq!(frames.len(), 3, "one response per frame: {text:?}");
    for frame in frames {
        let resp = safetsa::server::json::parse(frame).expect("well-formed response");
        assert_eq!(resp.get("schema"), Some(&Json::Str(SCHEMA.into())));
        assert_eq!(resp.get("id"), Some(&Json::Null));
        assert_eq!(status(&resp), "error");
        assert_eq!(kind(&resp), "malformed");
    }

    // Fresh connection: the daemon took no damage.
    let mut client = Client::connect_tcp(&addr).expect("reconnect");
    let resp = client.request(&request_obj("ping", "still-alive")).expect("ping");
    assert_eq!(status(&resp), "ok");

    assert_eq!(stat(&handle, "malformed"), 3);
    drain(&handle, join);
}

fn corrupt_cache_entries(dir: &Path) -> usize {
    let mut hit = 0;
    for entry in std::fs::read_dir(dir).expect("cache dir readable") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "tsac") {
            std::fs::write(&path, b"\x00\xde\xad not a cache entry").unwrap();
            hit += 1;
        }
    }
    hit
}

/// Cache corruption degrades, never fails: a tampered entry is a miss,
/// and a cache directory replaced by a plain file flips the daemon to
/// cache-off with the `cache_degraded` counter recording it.
#[test]
fn corrupted_cache_degrades_to_cache_off() {
    let dir = std::env::temp_dir().join(format!("safetsa-chaos-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (addr, handle, join) = spawn(ServerConfig {
        cache_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    let mut client = Client::connect_tcp(&addr).expect("connect");
    let mut compile = |id: &str, source: &str| {
        let mut doc = request_obj("compile", id);
        doc.set("source", Json::Str(source.into()));
        client.request(&doc).expect("compile response")
    };
    let src = "class C { static int main() { return 30; } }";

    let cold = compile("c1", src);
    assert_eq!(status(&cold), "ok");
    assert_eq!(payload(&cold).get("cached"), Some(&Json::Bool(false)));
    let warm = compile("c2", src);
    assert_eq!(payload(&warm).get("cached"), Some(&Json::Bool(true)));
    assert_eq!(stat(&handle, "cache_hits"), 1);

    // Tampered entry bytes: the load treats corruption as a miss and
    // the request still succeeds.
    assert!(corrupt_cache_entries(&dir) > 0, "no cache entry was written");
    let resp = compile("c3", src);
    assert_eq!(status(&resp), "ok");
    assert_eq!(payload(&resp).get("cached"), Some(&Json::Bool(false)));

    // Cache directory replaced by a plain file: stores cannot even
    // recreate the directory, so the daemon degrades to cache-off.
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::write(&dir, b"a file squatting on the cache path").unwrap();
    let resp = compile("c4", "class D { static int main() { return 4; } }");
    assert_eq!(status(&resp), "ok");
    assert!(stat(&handle, "cache_degraded") >= 1);

    drain(&handle, join);
    let _ = std::fs::remove_file(&dir);
}

/// Tenant budgets bound every request: a tiny fuel budget turns an
/// expensive loop into `fuel_exhausted`, an oversized payload is
/// rejected at admission, and neither disturbs the default tenant.
#[test]
fn tenant_limits_shed_expensive_and_oversized_requests() {
    let (addr, handle, join) = spawn(ServerConfig {
        tenants: vec![
            (
                "tiny".into(),
                TenantProfile {
                    fuel: Some(500),
                    ..TenantProfile::default()
                },
            ),
            (
                "narrow".into(),
                TenantProfile {
                    max_source_bytes: 16,
                    ..TenantProfile::default()
                },
            ),
        ],
        ..ServerConfig::default()
    });
    let mut client = Client::connect_tcp(&addr).expect("connect");

    let hog = "class Hog {
        static int main() {
            int acc = 0;
            for (int i = 0; i < 1000000; i = i + 1) { acc = acc + i; }
            return acc;
        }
    }";
    let mut doc = run_req("hog", hog, "Hog.main", 5_000);
    doc.set("tenant", Json::Str("tiny".into()));
    let resp = client.request(&doc).expect("fuel response");
    assert_eq!(status(&resp), "error");
    assert_eq!(kind(&resp), "fuel_exhausted");
    assert_eq!(stat(&handle, "fuel_exhausted"), 1);

    let mut doc = request_obj("compile", "fat");
    doc.set("source", Json::Str("class WayTooBig {}".into()));
    doc.set("tenant", Json::Str("narrow".into()));
    let resp = client.request(&doc).expect("too_large response");
    assert_eq!(status(&resp), "error");
    assert_eq!(kind(&resp), "too_large");

    // The default tenant is untouched by the strict profiles.
    let resp = client
        .request(&run_req("fine", hog, "Hog.main", 5_000))
        .expect("default-tenant response");
    assert_eq!(status(&resp), "ok");

    drain(&handle, join);
}

/// The deadline satellite: an infinite loop under a 50ms deadline
/// comes back as `deadline_exceeded` within bounded wall time — the
/// fuel-slice clock checks bound the overshoot, not the fuel budget
/// (the tenant here is unmetered).
#[test]
fn infinite_loop_hits_deadline_within_bounded_time() {
    let (addr, handle, join) = spawn(ServerConfig {
        default_tenant: unmetered(),
        ..ServerConfig::default()
    });
    let mut client = Client::connect_tcp(&addr).expect("connect");

    let started = Instant::now();
    let resp = client
        .request(&run_req("spin", SPIN, "Spin.main", 50))
        .expect("deadline response");
    let elapsed = started.elapsed();
    assert_eq!(status(&resp), "error");
    assert_eq!(kind(&resp), "deadline_exceeded");
    assert!(
        elapsed < Duration::from_secs(2),
        "deadline enforcement took {elapsed:?}, expected well under 2s"
    );
    assert_eq!(stat(&handle, "deadline_exceeded"), 1);

    drain(&handle, join);
}

/// With one worker and a two-slot queue, a pipelined burst must shed
/// with `overloaded` fast-rejects — and once the burst drains, the
/// same daemon admits fresh work again. Shedding is a pressure valve,
/// not a latch.
#[test]
fn saturation_sheds_then_recovers() {
    let (addr, handle, join) = spawn(ServerConfig {
        workers: 1,
        queue_capacity: 2,
        ..ServerConfig::default()
    });
    let mut client = Client::connect_tcp(&addr).expect("connect");

    let n = 12;
    let src = "//!chaos:sleep=50\nclass S { static int main() { return 1; } }";
    for i in 0..n {
        let doc = run_req(&format!("burst-{i}"), src, "S.main", 30_000);
        client.send_line(&doc.render()).expect("burst send");
    }
    let (mut ok, mut shed) = (0, 0);
    for _ in 0..n {
        let resp = client.recv().expect("burst recv").expect("burst frame");
        assert_eq!(resp.get("schema"), Some(&Json::Str(SCHEMA.into())));
        match status(&resp) {
            "ok" => ok += 1,
            "overloaded" => {
                assert_eq!(kind(&resp), "queue_full");
                shed += 1;
            }
            other => panic!("unexpected burst status {other}"),
        }
    }
    assert_eq!(ok + shed, n);
    assert!(shed > 0, "a 12-deep burst into 1 worker + 2 slots must shed");
    assert!(ok > 0, "admitted burst requests must still complete");

    // Saturation over: the next request is admitted normally.
    let resp = client
        .request(&run_req("after", "class A { static int main() { return 7; } }", "A.main", 5_000))
        .expect("post-burst response");
    assert_eq!(status(&resp), "ok");
    assert_eq!(stat(&handle, "shed") as usize, shed);

    drain(&handle, join);
}

/// Graceful shutdown drains in-flight work: a request sleeping in a
/// worker when shutdown is requested still gets its response, and the
/// daemon thread exits cleanly.
#[test]
fn shutdown_drains_in_flight_requests() {
    let (addr, handle, join) = spawn(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    let mut client = Client::connect_tcp(&addr).expect("connect");

    let src = "//!chaos:sleep=300\nclass S { static int main() { return 9; } }";
    let doc = run_req("inflight", src, "S.main", 30_000);
    client.send_line(&doc.render()).expect("send in-flight");
    // Let the worker pick it up, then pull the plug.
    std::thread::sleep(Duration::from_millis(50));
    handle.request_shutdown();

    let resp = client.recv().expect("drain recv").expect("drained response");
    assert_eq!(status(&resp), "ok");
    assert_eq!(payload(&resp).get("result"), Some(&Json::Str("I(9)".into())));

    join.join().expect("clean daemon exit");
    let stats = handle.stats();
    assert_eq!(stats.get("completed").and_then(Json::as_u64), Some(1));
    assert_eq!(stats.get("draining"), Some(&Json::Bool(true)));
}

/// Unix-domain sockets get the same protocol and the same cleanup: the
/// socket file exists while serving and is removed by the drain.
#[cfg(unix)]
#[test]
fn unix_socket_serves_and_cleans_up() {
    let path = std::env::temp_dir().join(format!("safetsa-chaos-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let cfg = ServerConfig {
        bind: BindAddr::Unix(path.clone()),
        chaos: true,
        ..ServerConfig::default()
    };
    let server = Server::bind(cfg).expect("bind unix socket");
    let handle = server.handle();
    let join = std::thread::spawn(move || {
        server.run();
    });

    let mut client = Client::connect_unix(&path).expect("unix connect");
    let resp = client
        .request(&run_req("u1", "class A { static int main() { return 6 * 7; } }", "A.main", 5_000))
        .expect("unix response");
    assert_eq!(status(&resp), "ok");
    assert_eq!(payload(&resp).get("result"), Some(&Json::Str("I(42)".into())));

    drain(&handle, join);
    assert!(!path.exists(), "drain must remove the socket file");
}

/// The deadline plumbing below the daemon: `Pipeline::deadline` makes
/// the VM abort an unmetered infinite loop, and the telemetry registry
/// records both the steps executed and the slice checks that caught
/// the overrun.
#[test]
fn pipeline_deadline_records_fuel_slice_telemetry() {
    use safetsa_driver::{Error, Pipeline};
    use safetsa_telemetry::Telemetry;
    use safetsa_vm::VmError;

    let pipeline = Pipeline::new()
        .telemetry(Telemetry::enabled())
        .deadline(Instant::now() + Duration::from_millis(50));
    let module = pipeline.compile_source(SPIN).expect("spin compiles");
    let started = Instant::now();
    let outcome = pipeline.run(&module, "Spin.main").expect("module loads");
    let elapsed = started.elapsed();

    assert!(
        matches!(outcome.result, Err(Error::Vm(VmError::DeadlineExceeded))),
        "expected deadline_exceeded, got {:?}",
        outcome.result
    );
    assert!(
        elapsed < Duration::from_secs(2),
        "deadline enforcement took {elapsed:?}, expected well under 2s"
    );
    let steps = pipeline.metrics().counter("vm.steps").expect("vm.steps recorded");
    assert!(steps > 0, "the loop must have executed instructions");
    let checks = pipeline
        .metrics()
        .counter("vm.deadline.slice_checks")
        .expect("slice checks recorded");
    assert!(checks >= 1, "at least one slice boundary must check the clock");
}

/// The flight recorder's reason to exist: a panicked request's span
/// tree survives the unwind and is queryable over the wire via the
/// `trace` op — request id, outcome, and the `request` span marked
/// `unfinished` at the moment the worker died.
#[test]
fn flight_recorder_retains_panicked_request_timeline() {
    let (addr, handle, join) = spawn(ServerConfig::default());
    let mut client = Client::connect_tcp(&addr).expect("connect");

    let mut doc = request_obj("compile", "kaboom");
    doc.set("source", Json::Str("//!chaos:panic\nclass B {}".into()));
    let resp = client.request(&doc).expect("panic response");
    assert_eq!(status(&resp), "error");
    assert_eq!(kind(&resp), "panic");

    let mut q = request_obj("trace", "t1");
    q.set("query", Json::Str("kaboom".into()));
    let resp = client.request(&q).expect("trace response");
    assert_eq!(status(&resp), "ok");
    let p = payload(&resp);
    assert_eq!(p.get("matched").and_then(Json::as_u64), Some(1));
    let Some(Json::Arr(records)) = p.get("records") else {
        panic!("trace payload without records: {}", p.render());
    };
    let rec = &records[0];
    assert_eq!(rec.get("id"), Some(&Json::Str("kaboom".into())));
    assert_eq!(rec.get("status"), Some(&Json::Str("error".into())));
    assert_eq!(rec.get("kind"), Some(&Json::Str("panic".into())));
    assert!(rec.get("total_ns").and_then(Json::as_u64).is_some());

    let trace = rec.get("trace").expect("record carries its trace");
    assert_eq!(
        trace.get("schema"),
        Some(&Json::Str("safetsa-trace/1".into()))
    );
    let Some(Json::Arr(spans)) = trace.get("spans") else {
        panic!("trace without spans: {}", trace.render());
    };
    let request_span = spans
        .iter()
        .find(|s| s.get("name") == Some(&Json::Str("request".into())))
        .expect("request span retained");
    let attrs = request_span.get("attrs").expect("request span attrs");
    assert_eq!(attrs.get("id"), Some(&Json::Str("kaboom".into())));
    assert_eq!(attrs.get("op"), Some(&Json::Str("compile".into())));
    // The panic left the span open; the snapshot marks it unfinished.
    assert_eq!(attrs.get("unfinished"), Some(&Json::Bool(true)));
    // The synthetic queue-wait span shares the timeline.
    assert!(spans
        .iter()
        .any(|s| s.get("name") == Some(&Json::Str("queued".into()))));

    drain(&handle, join);
}

/// A deadline-killed spin loop leaves a full forensic record: the
/// `request` span tagged with the error kind, the `vm.run` span, and —
/// because the profiler samples *before* the slice's deadline check —
/// a hot-function profile naming the loop that was running at kill
/// time, merged into the tenant's accumulated profile.
#[test]
fn flight_recorder_catches_deadline_kill_with_profile() {
    let (addr, handle, join) = spawn(ServerConfig {
        default_tenant: unmetered(),
        ..ServerConfig::default()
    });
    let mut client = Client::connect_tcp(&addr).expect("connect");
    let resp = client
        .request(&run_req("spin-flight", SPIN, "Spin.main", 50))
        .expect("deadline response");
    assert_eq!(status(&resp), "error");
    assert_eq!(kind(&resp), "deadline_exceeded");

    let trace = handle.trace();
    let Some(Json::Arr(records)) = trace.get("records") else {
        panic!("trace payload without records: {}", trace.render());
    };
    let rec = records
        .iter()
        .find(|r| r.get("id") == Some(&Json::Str("spin-flight".into())))
        .expect("deadline-killed request retained");
    assert_eq!(rec.get("kind"), Some(&Json::Str("deadline_exceeded".into())));

    let Some(Json::Arr(spans)) = rec.get("trace").and_then(|t| t.get("spans")) else {
        panic!("record without spans: {}", rec.render());
    };
    let request_span = spans
        .iter()
        .find(|s| s.get("name") == Some(&Json::Str("request".into())))
        .expect("request span retained");
    let attrs = request_span.get("attrs").expect("request span attrs");
    assert_eq!(
        attrs.get("error"),
        Some(&Json::Str("deadline_exceeded".into()))
    );
    assert!(spans
        .iter()
        .any(|s| s.get("name") == Some(&Json::Str("vm.run".into()))));

    // The at-kill-time sample profile rode along with the record...
    let profile = rec.get("profile").expect("record carries a profile");
    let samples = profile.get("samples").and_then(Json::as_u64).unwrap_or(0);
    assert!(samples > 0, "deadline kill must still carry samples");
    let hot = profile.get("hot").expect("hot-function table");
    assert!(
        hot.get("Spin.main").and_then(Json::as_u64).unwrap_or(0) > 0,
        "the spinning function must dominate the profile: {}",
        hot.render()
    );

    // ...and was merged into the tenant's accumulated profile.
    let merged = trace
        .get("profiles")
        .and_then(|p| p.get("default"))
        .expect("per-tenant merged profile");
    assert_eq!(merged.get("samples").and_then(Json::as_u64), Some(samples));

    drain(&handle, join);
}

/// The enriched `stats` payload: uptime, per-kind error counters, and
/// per-tenant breakdowns all reflect the traffic that produced them,
/// and latency quantiles come from exact retained samples.
#[test]
fn stats_break_down_by_kind_and_tenant() {
    let (addr, handle, join) = spawn(ServerConfig::default());
    let mut client = Client::connect_tcp(&addr).expect("connect");

    let mut doc = request_obj("compile", "boom");
    doc.set("source", Json::Str("//!chaos:panic\nclass B {}".into()));
    doc.set("tenant", Json::Str("gold".into()));
    let resp = client.request(&doc).expect("panic response");
    assert_eq!(kind(&resp), "panic");
    let resp = client
        .request(&run_req("fine", "class A { static int main() { return 7; } }", "A.main", 5_000))
        .expect("ok response");
    assert_eq!(status(&resp), "ok");

    let stats = handle.stats();
    assert!(stats.get("uptime_ms").and_then(Json::as_u64).is_some());
    let kinds = stats.get("kinds").expect("per-kind counters");
    assert_eq!(kinds.get("panic").and_then(Json::as_u64), Some(1));
    let tenants = stats.get("tenants").expect("per-tenant breakdowns");
    let gold = tenants.get("gold").expect("gold tenant row");
    assert_eq!(gold.get("requests").and_then(Json::as_u64), Some(1));
    assert_eq!(gold.get("panics").and_then(Json::as_u64), Some(1));
    let default = tenants.get("default").expect("default tenant row");
    assert_eq!(default.get("ok").and_then(Json::as_u64), Some(1));
    let latency = stats.get("latency").expect("latency block");
    assert!(latency.get("p50_ns").and_then(Json::as_u64).is_some());
    assert!(latency.get("p99_ns").and_then(Json::as_u64).is_some());

    drain(&handle, join);
}
