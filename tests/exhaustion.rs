//! Resource-exhaustion fault injection over the benchmark corpus.
//!
//! For every corpus program we first measure its *natural* consumption
//! (instructions, heap bytes, peak call depth) under unlimited budgets,
//! then sweep each budget axis below and at the natural value. Every
//! squeezed run must either complete identically to the unlimited run
//! (possible when the shortfall lands on a budget-exempt allocation,
//! e.g. trap-exception objects) or fail with the structured error for
//! that axis — never a panic. After every trap the same `Vm` must stay
//! usable: re-running is required to yield another structured outcome,
//! and lifting the budget must let the original run complete.

use safetsa_bench::{build_pipeline, corpus};
use safetsa_rt::{Trap, Value};
use safetsa_vm::{ResourceLimits, Vm, VmError};

/// What a squeezed run is allowed to do on each budget axis.
#[derive(Clone, Copy, Debug)]
enum Axis {
    Fuel,
    Heap,
    Depth,
}

fn limits_for(axis: Axis, budget: u64) -> ResourceLimits {
    // The squeezed axis gets `budget`; the others stay effectively
    // unlimited so failures are attributable to one cause.
    match axis {
        Axis::Fuel => ResourceLimits {
            fuel: Some(budget),
            max_heap_bytes: None,
            max_call_depth: None,
        },
        Axis::Heap => ResourceLimits {
            fuel: Some(u64::MAX),
            max_heap_bytes: Some(budget),
            max_call_depth: None,
        },
        Axis::Depth => ResourceLimits {
            fuel: Some(u64::MAX),
            max_heap_bytes: None,
            max_call_depth: Some(budget as u32),
        },
    }
}

/// `true` when `err` is an acceptable structured failure for `axis`.
/// Resource traps are catchable, so an uncaught one may surface either
/// as the raw trap or as the corresponding `Error` instance rethrown by
/// a non-matching guest handler (`Trap::User`).
fn expected_error(axis: Axis, err: &VmError) -> bool {
    matches!(
        (axis, err),
        (Axis::Fuel, VmError::FuelExhausted)
            | (Axis::Heap, VmError::Uncaught(Trap::OutOfMemory | Trap::User(_)))
            | (Axis::Depth, VmError::Uncaught(Trap::StackOverflow | Trap::User(_)))
    )
}

fn results_agree(a: &Option<Value>, b: &Option<Value>) -> bool {
    match (a, b) {
        (Some(x), Some(y)) => x.bits_eq(*y),
        (None, None) => true,
        _ => false,
    }
}

/// Budget points strictly below `natural`, spread across the range.
fn squeeze_points(natural: u64) -> Vec<u64> {
    let mut pts = vec![];
    for candidate in [natural.saturating_sub(1), natural / 2, natural / 8, 1] {
        if candidate < natural && !pts.contains(&candidate) {
            pts.push(candidate);
        }
    }
    pts
}

#[test]
fn corpus_survives_budget_sweeps() {
    for entry in corpus() {
        let pl = build_pipeline(&entry);

        // Natural consumption and reference behaviour, unlimited.
        let mut vm = Vm::load(&pl.module).expect("loads");
        vm.set_limits(ResourceLimits::unlimited());
        let ref_result = vm
            .run_entry(entry.entry)
            .unwrap_or_else(|e| panic!("{}: unlimited run failed: {e}", entry.name));
        let ref_output = vm.output.text().to_string();
        let natural_steps = vm.steps;
        let natural_bytes = vm.heap.bytes_allocated();
        let natural_depth = u64::from(vm.peak_depth());
        assert!(natural_steps > 0, "{}: no instructions executed", entry.name);
        assert!(natural_depth > 0, "{}: no calls executed", entry.name);

        for (axis, natural) in [
            (Axis::Fuel, natural_steps),
            (Axis::Heap, natural_bytes),
            (Axis::Depth, natural_depth),
        ] {
            // At exactly the natural value the program must complete
            // and behave identically.
            let mut vm = Vm::load(&pl.module).expect("loads");
            vm.set_limits(limits_for(axis, natural));
            let r = vm.run_entry(entry.entry).unwrap_or_else(|e| {
                panic!("{}: {axis:?} budget {natural} (== natural) trapped: {e}", entry.name)
            });
            assert!(
                results_agree(&r, &ref_result),
                "{}: {axis:?} at-natural result {r:?} != {ref_result:?}",
                entry.name
            );
            assert_eq!(
                vm.output.text(),
                ref_output,
                "{}: {axis:?} at-natural output diverged",
                entry.name
            );

            // Below the natural value: identical completion or the
            // axis's structured error.
            for budget in squeeze_points(natural) {
                let limits = limits_for(axis, budget);
                let mut vm = Vm::load(&pl.module).expect("loads");
                vm.set_limits(limits);
                match vm.run_entry(entry.entry) {
                    Ok(r) => {
                        assert!(
                            results_agree(&r, &ref_result),
                            "{}: {axis:?} budget {budget} completed with {r:?} != {ref_result:?}",
                            entry.name
                        );
                        assert_eq!(
                            vm.output.text(),
                            ref_output,
                            "{}: {axis:?} budget {budget} output diverged",
                            entry.name
                        );
                    }
                    Err(e) => {
                        assert!(
                            expected_error(axis, &e),
                            "{}: {axis:?} budget {budget} failed with unexpected error: {e}",
                            entry.name
                        );
                        // Not poisoned: the same VM under the same
                        // budget yields another structured outcome.
                        match vm.run_entry(entry.entry) {
                            Ok(_) => {}
                            Err(e2) => assert!(
                                expected_error(axis, &e2),
                                "{}: {axis:?} budget {budget} rerun error: {e2}",
                                entry.name
                            ),
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn vm_recovers_when_budget_is_lifted() {
    // A trapped VM is not just non-poisoned — lifting the budget on the
    // very same instance must let the original workload complete with
    // the reference behaviour (output is appended to the same buffer,
    // so the recovered run's text arrives as a suffix).
    for entry in corpus() {
        let pl = build_pipeline(&entry);
        let mut probe = Vm::load(&pl.module).expect("loads");
        probe.set_limits(ResourceLimits::unlimited());
        let ref_result = probe.run_entry(entry.entry).expect("unlimited run");
        let ref_output = probe.output.text().to_string();
        let natural_steps = probe.steps;

        let mut vm = Vm::load(&pl.module).expect("loads");
        vm.set_limits(limits_for(Axis::Fuel, natural_steps / 2));
        let err = vm
            .run_entry(entry.entry)
            .expect_err("half fuel must exhaust");
        assert!(matches!(err, VmError::FuelExhausted), "{}: {err}", entry.name);

        vm.set_limits(ResourceLimits::unlimited());
        let recovered = vm
            .run_entry(entry.entry)
            .unwrap_or_else(|e| panic!("{}: recovery run failed: {e}", entry.name));
        assert!(
            results_agree(&recovered, &ref_result),
            "{}: recovered result {recovered:?} != {ref_result:?}",
            entry.name
        );
        assert!(
            vm.output.text().ends_with(&ref_output),
            "{}: recovered output is not a clean replay",
            entry.name
        );
    }
}
