//! Golden-structure checks for the paper-figure renderings: the views
//! must exhibit the properties the figures illustrate (not a brittle
//! byte-for-byte snapshot — the properties themselves are asserted).

use safetsa_core::pretty;

fn fig1_function() -> (safetsa_core::TypeTable, safetsa_core::Function) {
    let prog = safetsa_frontend::compile(
        "class F { static int f(int i, int j) {
             if (i < j) { i = i + 1; } else { j = 2 * j; }
             return i * j;
         } }",
    )
    .unwrap();
    let lowered = safetsa_ssa::lower_program(&prog).unwrap();
    let m = lowered.module;
    let f = m.function(m.find_function("F.f").unwrap()).clone();
    (m.types, f)
}

#[test]
fn plain_ssa_uses_consecutive_global_numbers() {
    let (types, f) = fig1_function();
    let s = pretty::plain_ssa(&types, &f);
    // Figure 1 property: values are numbered consecutively and operands
    // cite those numbers.
    assert!(s.contains("0 <- param 0"), "{s}");
    assert!(s.contains("1 <- param 1"), "{s}");
    assert!(s.contains("int.lt (0) (1)"), "{s}");
    assert!(s.contains("phi"), "{s}");
}

#[test]
fn reference_safe_uses_lr_pairs_only() {
    let (types, f) = fig1_function();
    let s = pretty::reference_safe(&types, &f);
    // Figure 2 property: every operand is an (l-r) pair.
    assert!(s.contains("int.lt (0-0) (0-1)"), "{s}");
    // Branch blocks reference the entry one dominator level up.
    assert!(s.contains("(1-"), "{s}");
}

#[test]
fn safetsa_view_restarts_numbering_per_plane() {
    let (types, f) = fig1_function();
    let s = pretty::safetsa(&types, &f);
    // Figure 4 property: the boolean comparison lands in register 0 of
    // the *boolean* plane even though int registers already exist.
    assert!(s.contains("boolean[0] <- int.lt"), "{s}");
    // Phi results land on the int plane starting at 0 in their block.
    assert!(s.contains("int[0] <- phi"), "{s}");
}

#[test]
fn machine_model_lists_per_type_planes() {
    let (types, f) = fig1_function();
    let s = pretty::machine_model(&types, &f);
    // Figure 3 property: separate register planes per type.
    assert!(s.contains("plane int"), "{s}");
    assert!(s.contains("plane boolean"), "{s}");
    assert!(s.contains("r0=param 0"), "{s}");
}

#[test]
fn appendix_loop_shows_safe_index_plane() {
    let prog = safetsa_frontend::compile(
        "class F { static int sum(int[] a, int n) {
             int s = 0;
             for (int i = 0; i < n; i++) s += a[i];
             return s;
         } }",
    )
    .unwrap();
    let lowered = safetsa_ssa::lower_program(&prog).unwrap();
    let m = lowered.module;
    let f = m.function(m.find_function("F.sum").unwrap());
    let s = pretty::safetsa(&m.types, f);
    // Figures 7-9 property: safe-ref and safe-index planes appear.
    assert!(s.contains("safe-int[]"), "{s}");
    assert!(
        s.contains("safe-index-int[]") || s.contains("indexcheck int[]"),
        "{s}"
    );
    assert!(s.contains("nullcheck int[]"), "{s}");
    assert!(s.contains("getelt"), "{s}");
}
