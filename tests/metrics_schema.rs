//! Golden test for `--metrics-json` schema stability.
//!
//! Compiles and runs one corpus program through the CLI twice and
//! asserts (a) the two documents expose the *identical* key-path set in
//! the identical order, (b) every value outside the wall-clock plane
//! (keys ending in `_ns`) is bit-for-bit deterministic, and (c) the
//! key-path lists match the checked-in golden files under
//! `tests/golden/`. Regenerate the goldens with
//! `UPDATE_GOLDEN=1 cargo test --test metrics_schema` after an
//! intentional schema change.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_safetsa"))
}

/// Extracts `(dotted.key.path, raw value text)` for every leaf line of
/// a `render_pretty` document (one member per line, 2-space indent).
fn leaves(text: &str) -> Vec<(String, String)> {
    let mut stack: Vec<String> = Vec::new();
    let mut out = Vec::new();
    for line in text.lines() {
        let trimmed = line.trim_start();
        let depth = (line.len() - trimmed.len()) / 2;
        let trimmed = trimmed.trim_end_matches(',');
        let Some(rest) = trimmed.strip_prefix('"') else {
            continue;
        };
        let Some((key, val)) = rest.split_once("\": ") else {
            continue;
        };
        stack.truncate(depth.saturating_sub(1));
        if val == "{" || val == "[" {
            stack.push(key.to_string());
        } else {
            let mut path = stack.join(".");
            if !path.is_empty() {
                path.push('.');
            }
            path.push_str(key);
            out.push((path, val.to_string()));
        }
    }
    out
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, keys: &[String]) {
    let path = golden_path(name);
    let actual = keys.join("\n") + "\n";
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run UPDATE_GOLDEN=1 cargo test --test metrics_schema",
            path.display()
        )
    });
    assert_eq!(
        expected,
        actual,
        "metrics key paths drifted from {}; if intentional, regenerate with UPDATE_GOLDEN=1",
        path.display()
    );
}

/// Runs `safetsa <cmd> ... --metrics-json` and returns the document.
fn metrics_doc(dir: &std::path::Path, args: &[&str], out_name: &str) -> String {
    let json = dir.join(out_name);
    let mut full: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    full.push("--metrics-json".into());
    full.push(json.to_str().unwrap().into());
    let st = cli().args(&full).output().unwrap();
    assert!(
        st.status.success(),
        "safetsa {args:?}: {}",
        String::from_utf8_lossy(&st.stderr)
    );
    std::fs::read_to_string(&json).unwrap()
}

#[test]
fn metrics_json_schema_is_stable_and_deterministic() {
    let entry = safetsa_bench::corpus()
        .into_iter()
        .find(|e| e.name == "QuickSort")
        .expect("QuickSort in corpus");
    let dir = std::env::temp_dir().join("safetsa-metrics-schema");
    std::fs::create_dir_all(&dir).unwrap();
    let src = dir.join("QuickSort.java");
    std::fs::write(&src, entry.source).unwrap();
    let tsa = dir.join("QuickSort.tsa");
    let src_s = src.to_str().unwrap();
    let tsa_s = tsa.to_str().unwrap();

    let compile_args = ["compile", src_s, "-o", tsa_s];
    let run_args = ["run", src_s, "--entry", entry.entry];

    let compile_a = metrics_doc(&dir, &compile_args, "compile_a.json");
    let compile_b = metrics_doc(&dir, &compile_args, "compile_b.json");
    let run_a = metrics_doc(&dir, &run_args, "run_a.json");
    let run_b = metrics_doc(&dir, &run_args, "run_b.json");

    for (label, a, b) in [
        ("compile", &compile_a, &compile_b),
        ("run", &run_a, &run_b),
    ] {
        let la = leaves(a);
        let lb = leaves(b);
        let keys_a: Vec<String> = la.iter().map(|(k, _)| k.clone()).collect();
        let keys_b: Vec<String> = lb.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(keys_a, keys_b, "{label}: key paths differ between runs");
        for ((k, va), (_, vb)) in la.iter().zip(lb.iter()) {
            if k.ends_with("_ns") {
                continue;
            }
            assert_eq!(va, vb, "{label}: value of {k} not deterministic");
        }
        assert!(
            keys_a.iter().any(|k| k == "schema"),
            "{label}: missing schema key"
        );
    }

    let compile_keys: Vec<String> = leaves(&compile_a).into_iter().map(|(k, _)| k).collect();
    let run_keys: Vec<String> = leaves(&run_a).into_iter().map(|(k, _)| k).collect();
    check_golden("metrics_compile_keys.txt", &compile_keys);
    check_golden("metrics_run_keys.txt", &run_keys);
}

/// Enabling the alias-driven memory passes may only *add* metric keys,
/// and only in their own four planes: `opt.loadfwd.*`, `opt.dse.*`,
/// `analysis.alias.*`, and `analysis.escape.*`. With the passes off,
/// none of those keys may appear — `record_stats` gates each plane on
/// the pass that owns it.
#[test]
fn memory_pass_metrics_live_only_in_their_own_planes() {
    use safetsa_opt::Passes;
    use safetsa_telemetry::Telemetry;

    let entry = safetsa_bench::corpus()
        .into_iter()
        .find(|e| e.name == "Filter")
        .expect("Filter in corpus");
    let prog = safetsa_frontend::compile(entry.source).unwrap();
    let base = safetsa_ssa::lower_program(&prog).unwrap().module;

    let keys_for = |passes: Passes| -> std::collections::BTreeSet<String> {
        let tm = Telemetry::enabled();
        let mut m = base.clone();
        safetsa_opt::optimize(&mut m, passes, &tm);
        tm.export_flat()
            .lines()
            .filter_map(|l| l.split(' ').nth(1).map(str::to_string))
            .collect()
    };

    let without = keys_for(Passes {
        loadfwd: false,
        dse: false,
        ..Passes::ALL
    });
    let with = keys_for(Passes::ALL);

    const PLANES: [&str; 4] = [
        "opt.loadfwd.",
        "opt.dse.",
        "analysis.alias.",
        "analysis.escape.",
    ];
    for k in &without {
        assert!(
            !PLANES.iter().any(|p| k.starts_with(p)),
            "passes off, but plane key {k} was emitted"
        );
        assert!(with.contains(k), "enabling the passes dropped key {k}");
    }
    let added: Vec<&String> = with.difference(&without).collect();
    assert!(!added.is_empty(), "enabling the passes added no keys");
    for k in added {
        assert!(
            PLANES.iter().any(|p| k.starts_with(p)),
            "pass toggle added key {k} outside its own planes"
        );
    }
}

/// `--jobs`/`--cache-dir` may only *add* key paths, and only in the
/// `driver.*`/`cache.*` planes: the per-stage compilation metrics of a
/// batch run must be indistinguishable from a serial run's.
#[test]
fn batch_compile_adds_only_driver_and_cache_keys() {
    let entry = safetsa_bench::corpus()
        .into_iter()
        .find(|e| e.name == "QuickSort")
        .expect("QuickSort in corpus");
    let dir = std::env::temp_dir().join("safetsa-metrics-schema-jobs");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let src = dir.join("QuickSort.java");
    std::fs::write(&src, entry.source).unwrap();
    let src_s = src.to_str().unwrap();
    let serial_tsa = dir.join("serial.tsa");
    let batch_tsa = dir.join("batch.tsa");
    let cache = dir.join("cache");

    let serial = metrics_doc(
        &dir,
        &["compile", src_s, "-o", serial_tsa.to_str().unwrap()],
        "serial.json",
    );
    let batch = metrics_doc(
        &dir,
        &[
            "compile",
            src_s,
            "-o",
            batch_tsa.to_str().unwrap(),
            "--jobs",
            "2",
            "--cache-dir",
            cache.to_str().unwrap(),
        ],
        "batch.json",
    );

    // The artifact itself is byte-identical whichever driver produced it.
    assert_eq!(
        std::fs::read(&serial_tsa).unwrap(),
        std::fs::read(&batch_tsa).unwrap(),
        "batch-compiled .tsa differs from serial"
    );

    let serial_leaves: std::collections::BTreeMap<String, String> =
        leaves(&serial).into_iter().collect();
    let batch_leaves: std::collections::BTreeMap<String, String> =
        leaves(&batch).into_iter().collect();
    for k in serial_leaves.keys() {
        assert!(
            batch_leaves.contains_key(k),
            "batch document dropped serial key {k}"
        );
    }
    for (k, v) in &batch_leaves {
        match serial_leaves.get(k) {
            Some(sv) => {
                if !k.ends_with("_ns") {
                    assert_eq!(sv, v, "batch changed the value of serial key {k}");
                }
            }
            None => assert!(
                k.starts_with("metrics.driver.") || k.starts_with("metrics.cache."),
                "batch added key {k} outside the driver/cache planes"
            ),
        }
    }

    let batch_keys: Vec<String> = leaves(&batch).into_iter().map(|(k, _)| k).collect();
    check_golden("metrics_compile_jobs_keys.txt", &batch_keys);
}
