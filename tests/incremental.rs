//! Method-granular incremental compilation.
//!
//! The incremental store's soundness rests on two properties these
//! tests pin corpus-wide:
//!
//! 1. **Section stability**: a function encoded standalone
//!    (`encode_function_section`), decoded, spliced into a freshly
//!    lowered module, and re-encoded as part of the whole module
//!    produces *byte-identical* output to a cold build — the
//!    per-function encoding is structural, so it survives the decode →
//!    re-encode round trip bit-for-bit.
//! 2. **Invalidation precision**: editing one method of a multi-method
//!    file recompiles exactly that unit; edits to a class layout or the
//!    class count invalidate the units that depend on them.

use safetsa::driver::store::{unit_plan, Store, StoreOptions};
use safetsa::opt::Passes;
use safetsa::Pipeline;
use safetsa_codec::{decode_function_section, encode_function_section, encode_module};
use safetsa_telemetry::Telemetry;

/// Splice-reassembly is byte-identical to a cold encode, corpus-wide:
/// for every program, encode every optimized function standalone,
/// decode each section against a *fresh* lowering's type table, splice
/// the decoded bodies in, and whole-module encode — the bytes must
/// equal the cold build's.
#[test]
fn section_splice_reassembly_is_byte_identical_corpus_wide() {
    for entry in safetsa_bench::corpus() {
        let p = Pipeline::new();
        let prog = p.frontend(&[entry.source]).unwrap();
        let lowered = p.lower(&prog).unwrap();
        let fresh = lowered.module.clone();
        let mut cold = lowered.module;
        safetsa::opt::optimize(&mut cold, Passes::ALL, &Telemetry::disabled());
        let cold_bytes = encode_module(&cold).unwrap();

        let mut warm = fresh;
        // (class, method) -> function index, as a full decode derives it.
        let sites: Vec<_> = warm
            .types
            .classes()
            .flat_map(|(cid, c)| {
                c.methods
                    .iter()
                    .enumerate()
                    .filter_map(move |(mi, m)| m.body.map(|fid| (cid, mi, fid as usize)))
            })
            .collect();
        for (cid, mi, fid) in sites {
            let (bytes, sec) = encode_function_section(&cold.types, &cold.functions[fid]).unwrap();
            assert_eq!(sec.functions, 1);
            let f = decode_function_section(&bytes, &mut warm.types, cid, mi)
                .unwrap_or_else(|e| panic!("{}: section decode failed: {e}", entry.name));
            warm.functions[fid] = f;
        }
        safetsa_core::verify::verify_module(&warm)
            .unwrap_or_else(|e| panic!("{}: spliced module fails verify: {e}", entry.name));
        let warm_bytes = encode_module(&warm).unwrap();
        assert_eq!(
            cold_bytes, warm_bytes,
            "{}: spliced re-encode differs from cold build",
            entry.name
        );
    }
}

/// A two-method file: editing one method's body leaves the other
/// unit's body and dependency hashes unchanged.
const TWO_METHODS_V1: &str = "class P {
    static int stable(int x) { return x * 3 + 1; }
    static int edited(int x) { return x + 1; }
}";
const TWO_METHODS_V2: &str = "class P {
    static int stable(int x) { return x * 3 + 1; }
    static int edited(int x) { return x + 2; }
}";

fn plan_for(src: &str) -> Vec<safetsa::driver::store::UnitPlan> {
    let p = Pipeline::new();
    let prog = p.frontend(&[src]).unwrap();
    let lowered = p.lower(&prog).unwrap();
    unit_plan(&lowered.module).unwrap()
}

#[test]
fn body_edit_invalidates_exactly_one_unit() {
    let a = plan_for(TWO_METHODS_V1);
    let b = plan_for(TWO_METHODS_V2);
    assert_eq!(a.len(), b.len());
    let find = |plan: &[safetsa::driver::store::UnitPlan], name: &str| {
        plan.iter()
            .find(|u| u.name == name)
            .cloned()
            .unwrap_or_else(|| panic!("no unit {name}"))
    };
    let (sa, sb) = (find(&a, "P.stable"), find(&b, "P.stable"));
    let (ea, eb) = (find(&a, "P.edited"), find(&b, "P.edited"));
    assert_eq!(sa.body_hash, sb.body_hash, "untouched body hash moved");
    assert_eq!(sa.deps_hash, sb.deps_hash, "untouched deps hash moved");
    assert_ne!(ea.body_hash, eb.body_hash, "edited body hash must move");
}

#[test]
fn layout_and_class_count_changes_invalidate_dependents() {
    // Adding a field to a referenced class changes the layout digest of
    // every unit that touches it.
    let base = plan_for(
        "class Box { int v; }
         class U { static int get(Box b) { return b.v; } }",
    );
    let grown = plan_for(
        "class Box { int v; int w; }
         class U { static int get(Box b) { return b.v; } }",
    );
    let get_base = base.iter().find(|u| u.name == "U.get").unwrap();
    let get_grown = grown.iter().find(|u| u.name == "U.get").unwrap();
    assert_ne!(
        get_base.deps_hash, get_grown.deps_hash,
        "field added to a referenced class must change the dep hash"
    );
    // Adding a class changes the symbol cardinality every type encoding
    // uses, so it must invalidate *all* units.
    let more_classes = plan_for(
        "class Box { int v; }
         class Extra { }
         class U { static int get(Box b) { return b.v; } }",
    );
    let get_more = more_classes.iter().find(|u| u.name == "U.get").unwrap();
    assert_ne!(
        get_base.deps_hash, get_more.deps_hash,
        "class count is part of every unit's dep hash"
    );
}

/// End-to-end: a warm `Pipeline` with a cache reuses every unit on an
/// identical rebuild, recompiles exactly one on a single-method edit,
/// and both warm outputs are byte-identical to cold builds.
#[test]
fn pipeline_cache_recompiles_only_the_edited_unit() {
    let dir = std::env::temp_dir().join(format!(
        "safetsa-incr-it-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let cold_bytes = |src: &str| {
        let p = Pipeline::new();
        let m = p.compile_source(src).unwrap();
        p.encode(&m).unwrap()
    };

    // Cold populate.
    let p1 = Pipeline::new()
        .telemetry(Telemetry::enabled())
        .cache(&dir)
        .unwrap();
    // Three units: the two source methods plus the synthesized
    // `P.<init>` constructor body.
    let m1 = p1.compile_source(TWO_METHODS_V1).unwrap();
    let b1 = p1.encode(&m1).unwrap();
    assert_eq!(b1, cold_bytes(TWO_METHODS_V1));
    assert_eq!(p1.metrics().counter("cache.unit.hits"), Some(0));
    assert_eq!(p1.metrics().counter("cache.unit.misses"), Some(3));

    // Identical rebuild: every unit reused.
    let p2 = Pipeline::new()
        .telemetry(Telemetry::enabled())
        .cache(&dir)
        .unwrap();
    let m2 = p2.compile_source(TWO_METHODS_V1).unwrap();
    assert_eq!(p2.encode(&m2).unwrap(), b1);
    assert_eq!(p2.metrics().counter("cache.unit.hits"), Some(3));
    assert_eq!(p2.metrics().counter("cache.unit.misses"), Some(0));

    // One-method edit: exactly one unit recompiles, output still
    // byte-identical to a cold build of the edited source.
    let p3 = Pipeline::new()
        .telemetry(Telemetry::enabled())
        .cache(&dir)
        .unwrap();
    let m3 = p3.compile_source(TWO_METHODS_V2).unwrap();
    assert_eq!(p3.encode(&m3).unwrap(), cold_bytes(TWO_METHODS_V2));
    assert_eq!(p3.metrics().counter("cache.unit.hits"), Some(2));
    assert_eq!(p3.metrics().counter("cache.unit.misses"), Some(1));

    let _ = std::fs::remove_dir_all(&dir);
}

/// Store corruption and version skew all read as misses, never errors:
/// truncated unit records, foreign files, and `safetsa-cache/1`
/// leftovers.
#[test]
fn corrupt_and_stale_entries_read_as_misses() {
    let dir = std::env::temp_dir().join(format!(
        "safetsa-incr-corrupt-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    // Open once just to create the directory the foreign files go in.
    let _store = Store::open(&dir, StoreOptions::default()).unwrap();

    // Foreign and v1-format files are ignored.
    std::fs::write(dir.join("0123456789abcdef.tsac"), b"safetsa-cache/1\nkey 0123456789abcdef\nbytes 3\nabcmetrics 0\n").unwrap();
    std::fs::write(dir.join("README.txt"), b"not a cache entry").unwrap();

    let p = Pipeline::new().telemetry(Telemetry::enabled());
    let warm = Pipeline::new()
        .telemetry(Telemetry::enabled())
        .cache(&dir)
        .unwrap();
    let m = warm.compile_source(TWO_METHODS_V1).unwrap();
    assert_eq!(
        warm.encode(&m).unwrap(),
        p.encode(&p.compile_source(TWO_METHODS_V1).unwrap()).unwrap()
    );
    assert_eq!(warm.metrics().counter("cache.unit.misses"), Some(3));

    // Truncate every stored record: the next run misses everything and
    // still produces correct output.
    for f in std::fs::read_dir(&dir).unwrap() {
        let path = f.unwrap().path();
        let data = std::fs::read(&path).unwrap();
        if data.len() > 4 {
            std::fs::write(&path, &data[..data.len() / 2]).unwrap();
        }
    }
    let again = Pipeline::new()
        .telemetry(Telemetry::enabled())
        .cache(&dir)
        .unwrap();
    let m2 = again.compile_source(TWO_METHODS_V1).unwrap();
    assert_eq!(
        again.encode(&m2).unwrap(),
        p.encode(&p.compile_source(TWO_METHODS_V1).unwrap()).unwrap()
    );
    assert_eq!(again.metrics().counter("cache.unit.hits"), Some(0));
    let _ = std::fs::remove_dir_all(&dir);
}
