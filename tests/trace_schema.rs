//! Golden test for `--trace-json` (`safetsa-trace/1`) schema stability.
//!
//! Mirrors `tests/metrics_schema.rs` for the tracing plane: drives the
//! CLI's batch-compile and run paths with `--trace-json`, asserts the
//! output is a well-formed Chrome `trace_event` document (every event
//! carries `name`/`cat`/`ph`/`ts`/`pid`/`tid`/`args`, complete events
//! carry `dur`), that the expected spans are all present — every
//! pipeline stage, every cache probe, every batch worker — and that the
//! set of *event shapes* (phase + name + argument keys) matches the
//! checked-in golden files. Timestamps and durations are the only
//! run-dependent members, and they never appear in a shape. Regenerate
//! with `UPDATE_GOLDEN=1 cargo test --test trace_schema` after an
//! intentional schema change.

use safetsa::server::json;
use safetsa_telemetry::Json;
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_safetsa"))
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, lines: &[String]) {
    let path = golden_path(name);
    let actual = lines.join("\n") + "\n";
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run UPDATE_GOLDEN=1 cargo test --test trace_schema",
            path.display()
        )
    });
    assert_eq!(
        expected,
        actual,
        "trace event shapes drifted from {}; if intentional, regenerate with UPDATE_GOLDEN=1",
        path.display()
    );
}

/// Runs `safetsa <args> --trace-json` and parses the document.
fn trace_doc(dir: &std::path::Path, args: &[&str], out_name: &str) -> Json {
    let out = dir.join(out_name);
    let mut full: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    full.push("--trace-json".into());
    full.push(out.to_str().unwrap().into());
    let st = cli().args(&full).output().unwrap();
    assert!(
        st.status.success(),
        "safetsa {args:?}: {}",
        String::from_utf8_lossy(&st.stderr)
    );
    let text = std::fs::read_to_string(&out).unwrap();
    json::parse(&text).expect("trace document parses as JSON")
}

fn events(doc: &Json) -> &[Json] {
    match doc.get("traceEvents") {
        Some(Json::Arr(events)) => events,
        other => panic!("trace document without traceEvents: {other:?}"),
    }
}

fn str_of<'a>(v: Option<&'a Json>, what: &str) -> &'a str {
    match v {
        Some(Json::Str(s)) => s,
        other => panic!("{what} is not a string: {other:?}"),
    }
}

/// Chrome `trace_event` validity: the members `chrome://tracing` and
/// Perfetto require, on every single event.
fn assert_valid_chrome(doc: &Json) {
    assert_eq!(
        doc.get("schema"),
        Some(&Json::Str("safetsa-trace/1".into()))
    );
    assert!(doc.get("displayTimeUnit").is_some());
    for e in events(doc) {
        let name = str_of(e.get("name"), "event name");
        let ph = str_of(e.get("ph"), "event ph");
        assert!(
            ph == "X" || ph == "i",
            "event `{name}` has unexpected phase {ph}"
        );
        assert_eq!(e.get("cat"), Some(&Json::Str("safetsa".into())));
        for member in ["ts", "pid", "tid", "args"] {
            assert!(e.get(member).is_some(), "event `{name}` lacks `{member}`");
        }
        if ph == "X" {
            assert!(e.get("dur").is_some(), "span `{name}` lacks `dur`");
        }
    }
}

/// The deterministic silhouette of one event: phase, name, and sorted
/// argument keys — everything except the wall-clock plane.
fn event_shapes(doc: &Json) -> Vec<String> {
    let mut shapes = BTreeSet::new();
    for e in events(doc) {
        let name = str_of(e.get("name"), "event name");
        let ph = str_of(e.get("ph"), "event ph");
        let mut keys: Vec<&str> = match e.get("args") {
            Some(Json::Obj(members)) => members.iter().map(|(k, _)| k.as_str()).collect(),
            other => panic!("event `{name}` args not an object: {other:?}"),
        };
        keys.sort_unstable();
        shapes.insert(format!("{ph} {name} args[{}]", keys.join(",")));
    }
    shapes.into_iter().collect()
}

fn names(doc: &Json) -> Vec<String> {
    events(doc)
        .iter()
        .map(|e| str_of(e.get("name"), "event name").to_string())
        .collect()
}

#[test]
fn batch_compile_trace_covers_stages_probes_and_workers() {
    let programs = safetsa_bench::corpus();
    let dir = std::env::temp_dir().join("safetsa-trace-schema");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("out")).unwrap();
    let mut srcs = Vec::new();
    for entry in programs.iter().take(3) {
        let p = dir.join(format!("{}.java", entry.name));
        std::fs::write(&p, entry.source).unwrap();
        srcs.push(p);
    }
    let cache = dir.join("cache");
    let mut args: Vec<&str> = vec!["compile"];
    let src_strs: Vec<String> = srcs.iter().map(|p| p.to_str().unwrap().into()).collect();
    args.extend(src_strs.iter().map(String::as_str));
    let out_dir = dir.join("out");
    args.extend(["-o", out_dir.to_str().unwrap(), "--jobs", "2"]);
    args.extend(["--cache-dir", cache.to_str().unwrap()]);

    let cold = trace_doc(&dir, &args, "cold.json");
    assert_valid_chrome(&cold);
    let names = names(&cold);
    // One batch root, one span per worker, one task + cache probe per
    // input, and every compile stage for every (cold) input.
    assert_eq!(names.iter().filter(|n| *n == "batch").count(), 1);
    assert_eq!(names.iter().filter(|n| *n == "worker").count(), 2);
    assert_eq!(names.iter().filter(|n| *n == "task").count(), 3);
    assert_eq!(names.iter().filter(|n| *n == "cache.probe").count(), 3);
    assert_eq!(names.iter().filter(|n| *n == "cache.probe.done").count(), 3);
    for stage in ["compile", "frontend", "lower", "optimize", "verify", "encode"] {
        assert_eq!(
            names.iter().filter(|n| *n == stage).count(),
            3,
            "stage `{stage}` missing from some task"
        );
    }

    // Warm rerun: tasks and probes still traced, stages skipped.
    let warm = trace_doc(&dir, &args, "warm.json");
    assert_valid_chrome(&warm);
    let hits = events(&warm)
        .iter()
        .filter(|e| {
            e.get("name") == Some(&Json::Str("cache.probe.done".into()))
                && e.get("args").and_then(|a| a.get("hit")) == Some(&Json::Bool(true))
        })
        .count();
    assert_eq!(hits, 3, "warm probes must report hit=true");

    check_golden("trace_compile_jobs_events.txt", &event_shapes(&cold));
}

#[test]
fn run_trace_shape_is_stable() {
    let entry = safetsa_bench::corpus()
        .into_iter()
        .find(|e| e.name == "QuickSort")
        .expect("QuickSort in corpus");
    let dir = std::env::temp_dir().join("safetsa-trace-schema-run");
    std::fs::create_dir_all(&dir).unwrap();
    let src = dir.join("QuickSort.java");
    std::fs::write(&src, entry.source).unwrap();

    let doc = trace_doc(
        &dir,
        &["run", src.to_str().unwrap(), "--entry", entry.entry],
        "run.json",
    );
    assert_valid_chrome(&doc);
    let names = names(&doc);
    for span in ["compile", "frontend", "vm.load", "vm.run"] {
        assert!(names.iter().any(|n| n == span), "missing `{span}` span");
    }
    check_golden("trace_run_events.txt", &event_shapes(&doc));
}
