//! Dual-engine differential suite: every corpus program (and a set of
//! targeted trap/exhaustion/deadline programs) runs under both the
//! switch interpreter and the direct-threaded engine, and the two must
//! agree — byte-identical output, bit-identical result, the same
//! structured error on every failure path. This is the oracle that
//! keeps the threaded engine honest: the 1400-line match interpreter
//! is the executable specification, the pre-decoded engine is the
//! implementation under test.
//!
//! Step accounting is compared too: superinstruction fusion means the
//! threaded engine executes *at most* as many charged steps as the
//! switch engine, never more, and fuel exhaustion must fire under both
//! engines at any budget below the threaded engine's own total (block-
//! granularity charging can only make the threaded engine trap
//! earlier, within one basic block of the switch engine's point).

use safetsa_bench::{build_pipeline, corpus};
use safetsa_core::verify::verify_module;
use safetsa_core::Module;
use safetsa_frontend::compile;
use safetsa_opt::Passes;
use safetsa_rt::Value;
use safetsa_ssa::lower_program;
use safetsa_telemetry::Telemetry;
use safetsa_vm::{Engine, Vm, VmError};
use std::time::Instant;

fn results_agree(a: &Option<Value>, b: &Option<Value>) -> bool {
    match (a, b) {
        (Some(x), Some(y)) => x.bits_eq(*y),
        (None, None) => true,
        _ => false,
    }
}

/// Compiles and fully optimizes one inline source.
fn module_for(src: &str) -> Module {
    let prog = compile(src).expect("front-end accepts");
    let lowered = lower_program(&prog).expect("ssa lowering");
    let mut m = lowered.module;
    safetsa_opt::optimize(&mut m, Passes::ALL, &Telemetry::disabled());
    verify_module(&m).expect("optimized module verifies");
    m
}

/// One run under `engine`: outcome, captured output, charged steps.
fn run_engine(
    m: &Module,
    entry: &str,
    engine: Engine,
) -> (Result<Option<Value>, VmError>, String, u64) {
    let mut vm = Vm::load(m).expect("loads");
    vm.set_engine(engine);
    vm.set_fuel(500_000_000);
    let r = vm.run_entry(entry);
    (r, vm.output.text().to_string(), vm.steps)
}

/// Asserts both engines agree on `m`'s entry and returns the
/// per-engine charged step counts `(threaded, switch)`.
fn assert_engines_agree(m: &Module, entry: &str, label: &str) -> (u64, u64) {
    let (tr, to, ts) = run_engine(m, entry, Engine::Threaded);
    let (sr, so, ss) = run_engine(m, entry, Engine::Switch);
    assert_eq!(to, so, "{label}: engine outputs diverge");
    match (&tr, &sr) {
        (Ok(a), Ok(b)) => assert!(
            results_agree(a, b),
            "{label}: threaded {a:?} vs switch {b:?}"
        ),
        (Err(a), Err(b)) => assert_eq!(
            a.to_string(),
            b.to_string(),
            "{label}: engine errors diverge"
        ),
        (a, b) => panic!("{label}: outcome kind diverges: {a:?} vs {b:?}"),
    }
    (ts, ss)
}

#[test]
fn corpus_agrees_across_engines() {
    // Both the unoptimized and the optimized module of every corpus
    // program — the threaded decoder must handle the raw producer
    // output as well as the post-pass form it is tuned for.
    for entry in corpus() {
        let pl = build_pipeline(&entry);
        assert_engines_agree(&pl.module, entry.entry, entry.name);
        let (ts, ss) = assert_engines_agree(&pl.optimized, entry.entry, entry.name);
        assert!(
            ts <= ss,
            "{}: threaded charged {ts} steps, more than switch's {ss}",
            entry.name
        );
    }
}

#[test]
fn trap_paths_agree_across_engines() {
    // Uncaught traps: both engines must surface the same structured
    // error with the same partial output.
    let cases: &[(&str, &str, &str)] = &[
        (
            "div_by_zero",
            "class T { static int main() { int d = 0; Sys.println(1); return 7 / d; } }",
            "T.main",
        ),
        (
            "index_oob",
            "class T { static int main() { int[] a = new int[3]; Sys.println(2); return a[5]; } }",
            "T.main",
        ),
        (
            "null_deref",
            "class P { int x; }
             class T {
                 static P get() { return null; }
                 static int main() { Sys.println(3); return get().x; }
             }",
            "T.main",
        ),
    ];
    for (label, src, entry) in cases {
        let m = module_for(src);
        let (tr, _, _) = run_engine(&m, entry, Engine::Threaded);
        assert!(tr.is_err(), "{label}: expected an uncaught trap");
        assert_engines_agree(&m, entry, label);
    }
}

#[test]
fn fuel_exhaustion_agrees_across_engines() {
    // Block-granularity charging may only move the exhaustion point
    // *earlier* (the whole block is charged at entry), never later: at
    // any budget below the threaded engine's own total both engines
    // must exhaust, and at the threaded total the threaded engine must
    // complete exactly (the block costs sum to the charged steps).
    for entry in corpus().into_iter().take(6) {
        let pl = build_pipeline(&entry);
        let (r, _, threaded_steps) = run_engine(&pl.optimized, entry.entry, Engine::Threaded);
        r.unwrap_or_else(|e| panic!("{}: reference run: {e}", entry.name));

        let mut vm = Vm::load(&pl.optimized).expect("loads");
        vm.set_fuel(threaded_steps);
        vm.run_entry(entry.entry)
            .unwrap_or_else(|e| panic!("{}: exact threaded budget trapped: {e}", entry.name));

        for budget in [threaded_steps / 2, threaded_steps.saturating_sub(1)] {
            for engine in [Engine::Threaded, Engine::Switch] {
                let mut vm = Vm::load(&pl.optimized).expect("loads");
                vm.set_engine(engine);
                vm.set_fuel(budget);
                let err = vm.run_entry(entry.entry).expect_err("must exhaust");
                assert!(
                    matches!(err, VmError::FuelExhausted),
                    "{}: {engine} at fuel {budget}: {err}",
                    entry.name
                );
            }
        }
    }
}

#[test]
fn expired_deadline_kills_both_engines() {
    let entry = corpus()
        .into_iter()
        .find(|e| e.name == "BitSieve")
        .expect("BitSieve in corpus");
    let pl = build_pipeline(&entry);
    for engine in [Engine::Threaded, Engine::Switch] {
        let mut vm = Vm::load(&pl.optimized).expect("loads");
        vm.set_engine(engine);
        vm.set_fuel(500_000_000);
        vm.set_deadline(Instant::now());
        let err = vm.run_entry(entry.entry).expect_err("expired deadline");
        assert!(
            matches!(err, VmError::DeadlineExceeded),
            "{engine}: {err}"
        );
    }
}

#[test]
fn inline_cache_stays_monomorphic_on_single_receiver() {
    // One receiver class through a base-typed reference: the first
    // dispatch at the site misses (cold cache), every later one hits.
    let m = module_for(
        "class Base { int f() { return 1; } }
         class D1 extends Base { int f() { return 2; } }
         class T {
             static int main() {
                 Base b = new D1();
                 int s = 0;
                 for (int i = 0; i < 1000; i++) s += b.f();
                 return s;
             }
         }",
    );
    let mut vm = Vm::load(&m).expect("loads");
    vm.set_fuel(10_000_000);
    let r = vm.run_entry("T.main").expect("runs");
    assert!(results_agree(&r, &Some(Value::I(2000))), "{r:?}");
    let (hits, misses) = (vm.icache_hits(), vm.icache_misses());
    assert!(
        hits + misses >= 1000,
        "dispatch not exercised: {hits} hits + {misses} misses"
    );
    assert!(misses <= 2, "monomorphic site missed {misses} times");
}

#[test]
fn inline_cache_thrashes_on_alternating_receivers() {
    // Two receiver classes alternating at one site: the monomorphic
    // always-replace cache must keep falling back to the vtable walk
    // (and keep producing correct answers while doing so).
    let m = module_for(
        "class Base { int f() { return 1; } }
         class D1 extends Base { int f() { return 2; } }
         class D2 extends Base { int f() { return 3; } }
         class T {
             static int main() {
                 Base[] arr = new Base[2];
                 arr[0] = new D1();
                 arr[1] = new D2();
                 int s = 0;
                 for (int i = 0; i < 1000; i++) s += arr[i % 2].f();
                 return s;
             }
         }",
    );
    let mut vm = Vm::load(&m).expect("loads");
    vm.set_fuel(10_000_000);
    let r = vm.run_entry("T.main").expect("runs");
    assert!(results_agree(&r, &Some(Value::I(2500))), "{r:?}");
    let misses = vm.icache_misses();
    assert!(misses >= 900, "megamorphic site should thrash, saw {misses} misses");
    // The switch engine agrees on the answer, cache or no cache.
    assert_engines_agree(&m, "T.main", "megamorphic");
}
