//! Property-based tamper resistance: arbitrary byte streams and
//! arbitrary mutations of valid streams must never panic the decoder
//! and must never yield a module that fails the full verifier (i.e.
//! `decode_and_verify` is total and its successes are always safe).

use proptest::prelude::*;
use safetsa_codec::{decode_and_verify, encode_module, HostEnv};

fn wire_for(src: &str) -> Vec<u8> {
    let prog = safetsa_frontend::compile(src).unwrap();
    let lowered = safetsa_ssa::lower_program(&prog).unwrap();
    encode_module(&lowered.module).expect("encodes")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        let host = HostEnv::standard();
        // Either error or a verified module — never a panic, never an
        // accepted-but-unsafe module (verification runs inside).
        let _ = decode_and_verify(&bytes, &host);
    }

    #[test]
    fn mutations_of_valid_streams_never_panic(
        flips in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..6)
    ) {
        let base = wire_for(
            "class Acc { int t; void add(int x) { t += x; } }
             class M { static int main() {
                 Acc a = new Acc();
                 int[] v = new int[5];
                 for (int i = 0; i < v.length; i++) { v[i] = i * i; a.add(v[i]); }
                 return a.t;
             } }",
        );
        let host = HostEnv::standard();
        let mut evil = base.clone();
        for (pos, val) in flips {
            let i = pos as usize % evil.len();
            evil[i] ^= val;
        }
        if let Ok(module) = decode_and_verify(&evil, &host) {
            // Accepted mutants are verified type-safe programs; loading
            // AND running them must never panic. Execution happens
            // under tight resource budgets so a mutant that decodes to
            // a hungry-but-valid program (e.g. a huge allocation or a
            // deep recursion) is confined rather than taking down the
            // test process.
            if let Ok(mut vm) = safetsa_vm::Vm::load(&module) {
                vm.set_limits(safetsa_vm::ResourceLimits {
                    fuel: Some(200_000),
                    max_heap_bytes: Some(1 << 20),
                    max_call_depth: Some(64),
                });
                let _ = vm.run_entry("M.main");
                // Whatever happened, the VM must stay reusable.
                let _ = vm.run_entry("M.main");
            }
        }
    }

    #[test]
    fn truncations_never_panic(cut in 0usize..1000) {
        let base = wire_for("class M { static int main() { return 41 + 1; } }");
        let host = HostEnv::standard();
        let cut = cut % (base.len() + 1);
        let _ = decode_and_verify(&base[..cut], &host);
    }
}
