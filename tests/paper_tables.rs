//! Paper-shaped invariants over the optimization counter plane.
//!
//! The SafeTSA paper's evaluation tables hinge on two properties of the
//! producer-side optimizer: CSE-based check elimination only ever
//! *removes* safety checks, and the reported elimination counts are the
//! honest static difference between the pre- and post-optimization SSA
//! — not an independently maintained (and driftable) tally. These tests
//! pin both across the whole corpus.

use safetsa_bench::corpus;
use safetsa_core::instr::Instr;
use safetsa_core::Module;
use safetsa_opt::{MemModel, Passes};
use safetsa_telemetry::Telemetry;

fn static_checks(m: &Module) -> (u64, u64) {
    let nulls = m
        .functions
        .iter()
        .map(|f| f.count_instrs(|i| matches!(i, Instr::NullCheck { .. })))
        .sum::<usize>() as u64;
    let indexes = m
        .functions
        .iter()
        .map(|f| f.count_instrs(|i| matches!(i, Instr::IndexCheck { .. })))
        .sum::<usize>() as u64;
    (nulls, indexes)
}

fn build(source: &str, tm: &Telemetry) -> Module {
    let prog = safetsa_frontend::compile_sources(&[source], tm).unwrap();
    safetsa_ssa::construct(&prog, tm).unwrap().module
}

/// The `ssa.*_checks_inserted` counters are the static truth: they must
/// equal the number of check instructions actually present in the
/// freshly lowered (unoptimized) module.
#[test]
fn ssa_inserted_check_counters_match_static_count() {
    for entry in corpus() {
        let tm = Telemetry::enabled();
        let module = build(entry.source, &tm);
        let (nulls, indexes) = static_checks(&module);
        assert_eq!(
            tm.counter("ssa.null_checks_inserted"),
            Some(nulls),
            "{}: ssa.null_checks_inserted vs static nullcheck count",
            entry.name
        );
        assert_eq!(
            tm.counter("ssa.index_checks_inserted"),
            Some(indexes),
            "{}: ssa.index_checks_inserted vs static indexcheck count",
            entry.name
        );
    }
}

/// CSE (with or without the other passes) never *increases* the number
/// of safety checks — check elimination is monotone.
#[test]
fn cse_never_increases_check_count() {
    let cse_only = Passes {
        constprop: false,
        cse: true,
        checkelim: false,
        ..Passes::ALL
    };
    let checkelim_only = Passes {
        constprop: false,
        cse: false,
        checkelim: true,
        ..Passes::ALL
    };
    for entry in corpus() {
        let tm = Telemetry::disabled();
        let base = build(entry.source, &tm);
        let (nulls_before, indexes_before) = static_checks(&base);
        for (label, passes) in [
            ("cse+dce", cse_only),
            ("checkelim+dce", checkelim_only),
            ("all", Passes::ALL),
        ] {
            let mut m = base.clone();
            safetsa_opt::optimize(&mut m, passes, &Telemetry::disabled());
            let (nulls_after, indexes_after) = static_checks(&m);
            assert!(
                nulls_after <= nulls_before,
                "{} [{label}]: nullchecks grew {nulls_before} -> {nulls_after}",
                entry.name
            );
            assert!(
                indexes_after <= indexes_before,
                "{} [{label}]: indexchecks grew {indexes_before} -> {indexes_after}",
                entry.name
            );
        }
    }
}

/// The dataflow-driven `checkelim` pass reaches strictly beyond CSE:
/// with it enabled, every corpus program eliminates at least as many
/// checks as CSE alone, and corpus-wide strictly more.
#[test]
fn checkelim_eliminates_more_than_cse_alone() {
    let without = Passes {
        checkelim: false,
        ..Passes::ALL
    };
    let mut total_cse_only = 0u64;
    let mut total_with = 0u64;
    for entry in corpus() {
        let tm = Telemetry::disabled();
        let base = build(entry.source, &tm);
        let (nb, ib) = static_checks(&base);
        let mut m_cse = base.clone();
        safetsa_opt::optimize(&mut m_cse, without, &Telemetry::disabled());
        let (n1, i1) = static_checks(&m_cse);
        let mut m_all = base.clone();
        safetsa_opt::optimize(&mut m_all, Passes::ALL, &Telemetry::disabled());
        let (n2, i2) = static_checks(&m_all);
        let elim_cse = (nb - n1) + (ib - i1);
        let elim_all = (nb - n2) + (ib - i2);
        assert!(
            elim_all >= elim_cse,
            "{}: checkelim regressed eliminations ({elim_cse} -> {elim_all})",
            entry.name
        );
        total_cse_only += elim_cse;
        total_with += elim_all;
    }
    assert!(
        total_with > total_cse_only,
        "checkelim added nothing corpus-wide ({total_cse_only} vs {total_with})"
    );
}

/// Counts the heap loads left in a module: field, static, and element
/// reads.
fn static_loads(m: &Module) -> u64 {
    m.functions
        .iter()
        .map(|f| {
            f.count_instrs(|i| {
                matches!(
                    i,
                    Instr::GetField { .. } | Instr::GetStatic { .. } | Instr::GetElt { .. }
                )
            })
        })
        .sum::<usize>() as u64
}

/// Alias-aware load forwarding reaches strictly beyond field-partitioned
/// CSE: with `loadfwd` stacked on top of the strongest CSE
/// configuration, every corpus program keeps at most as many heap loads
/// — and corpus-wide strictly fewer. (Dead-store elimination stays off
/// on both sides so only the load pipeline differs.)
#[test]
fn loadfwd_eliminates_more_loads_than_field_partitioned_cse() {
    let without = Passes {
        loadfwd: false,
        dse: false,
        mem: MemModel::FieldPartitioned,
        ..Passes::ALL
    };
    let with = Passes {
        loadfwd: true,
        ..without
    };
    let mut total_without = 0u64;
    let mut total_with = 0u64;
    for entry in corpus() {
        let tm = Telemetry::disabled();
        let base = build(entry.source, &tm);
        let mut m_cse = base.clone();
        safetsa_opt::optimize(&mut m_cse, without, &Telemetry::disabled());
        let mut m_fwd = base.clone();
        safetsa_opt::optimize(&mut m_fwd, with, &Telemetry::disabled());
        let (l_cse, l_fwd) = (static_loads(&m_cse), static_loads(&m_fwd));
        assert!(
            l_fwd <= l_cse,
            "{}: loadfwd left more loads than CSE alone ({l_cse} -> {l_fwd})",
            entry.name
        );
        total_without += l_cse;
        total_with += l_fwd;
    }
    assert!(
        total_with < total_without,
        "loadfwd added nothing corpus-wide over field-partitioned CSE ({total_without} vs {total_with})"
    );
}

/// The `opt.*_checks.eliminated` counters must equal the static diff of
/// check instructions between the pre- and post-optimization modules —
/// the reported table numbers are derived from the SSA itself.
#[test]
fn eliminated_check_counters_match_static_diff() {
    let mut total_eliminated = 0u64;
    for entry in corpus() {
        let tm = Telemetry::enabled();
        let mut module = build(entry.source, &tm);
        let before = static_checks(&module);
        safetsa_opt::optimize(&mut module, Passes::ALL, &tm);
        let after = static_checks(&module);
        assert_eq!(
            tm.counter("opt.null_checks.before"),
            Some(before.0),
            "{}: opt.null_checks.before",
            entry.name
        );
        assert_eq!(
            tm.counter("opt.null_checks.after"),
            Some(after.0),
            "{}: opt.null_checks.after",
            entry.name
        );
        assert_eq!(
            tm.counter("opt.null_checks.eliminated"),
            Some(before.0 - after.0),
            "{}: opt.null_checks.eliminated vs static diff",
            entry.name
        );
        assert_eq!(
            tm.counter("opt.index_checks.before"),
            Some(before.1),
            "{}: opt.index_checks.before",
            entry.name
        );
        assert_eq!(
            tm.counter("opt.index_checks.after"),
            Some(after.1),
            "{}: opt.index_checks.after",
            entry.name
        );
        assert_eq!(
            tm.counter("opt.index_checks.eliminated"),
            Some(before.1 - after.1),
            "{}: opt.index_checks.eliminated vs static diff",
            entry.name
        );
        total_eliminated += (before.0 - after.0) + (before.1 - after.1);
    }
    // The paper's headline: optimization eliminates a nonzero number of
    // checks somewhere in the corpus.
    assert!(total_eliminated > 0, "no checks eliminated across corpus");
}
