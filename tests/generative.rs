//! Generative differential testing: random (but well-formed) programs
//! in the Java subset are compiled through both the SafeTSA pipeline
//! (with and without optimization, through the codec) and the bytecode
//! baseline; all four executions must agree.

use proptest::prelude::*;
use safetsa_codec::{decode_and_verify, encode_module, HostEnv};
use safetsa_rt::Value;

/// A tiny expression/statement generator over locals a,b,c (ints) and
/// f (boolean); always produces a compilable program.
#[derive(Debug, Clone)]
enum E {
    A,
    B,
    C,
    Lit(i32),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Div(Box<E>, Box<E>),
    Rem(Box<E>, Box<E>),
    Shl(Box<E>, Box<E>),
    Xor(Box<E>, Box<E>),
    Neg(Box<E>),
}

impl E {
    fn render(&self) -> String {
        match self {
            E::A => "a".into(),
            E::B => "b".into(),
            E::C => "c".into(),
            E::Lit(v) => format!("({v})"),
            E::Add(l, r) => format!("({} + {})", l.render(), r.render()),
            E::Sub(l, r) => format!("({} - {})", l.render(), r.render()),
            E::Mul(l, r) => format!("({} * {})", l.render(), r.render()),
            E::Div(l, r) => format!("({} / {})", l.render(), r.render()),
            E::Rem(l, r) => format!("({} % {})", l.render(), r.render()),
            E::Shl(l, r) => format!("({} << ({} & 31))", l.render(), r.render()),
            E::Xor(l, r) => format!("({} ^ {})", l.render(), r.render()),
            E::Neg(e) => format!("(-{})", e.render()),
        }
    }
}

fn expr_strategy() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        Just(E::A),
        Just(E::B),
        Just(E::C),
        (-100i32..100).prop_map(E::Lit),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| E::Add(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| E::Sub(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| E::Mul(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| E::Div(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| E::Rem(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| E::Shl(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| E::Xor(Box::new(l), Box::new(r))),
            inner.clone().prop_map(|e| E::Neg(Box::new(e))),
        ]
    })
}

#[derive(Debug, Clone)]
enum S {
    AssignA(E),
    AssignB(E),
    AssignC(E),
    If(E, E, Vec<S>, Vec<S>),
    Loop(u8, Vec<S>),
    ArrayRoundTrip(E, E),
}

impl S {
    fn render(&self, out: &mut String, depth: usize) {
        let pad = "    ".repeat(depth + 2);
        match self {
            S::AssignA(e) => out.push_str(&format!("{pad}a = {};\n", e.render())),
            S::AssignB(e) => out.push_str(&format!("{pad}b = {};\n", e.render())),
            S::AssignC(e) => out.push_str(&format!("{pad}c = {};\n", e.render())),
            S::If(l, r, t, f) => {
                out.push_str(&format!("{pad}if ({} < {}) {{\n", l.render(), r.render()));
                for s in t {
                    s.render(out, depth + 1);
                }
                out.push_str(&format!("{pad}}} else {{\n"));
                for s in f {
                    s.render(out, depth + 1);
                }
                out.push_str(&format!("{pad}}}\n"));
            }
            S::Loop(n, body) => {
                out.push_str(&format!(
                    "{pad}for (int i{depth} = 0; i{depth} < {n}; i{depth}++) {{\n"
                ));
                for s in body {
                    s.render(out, depth + 1);
                }
                out.push_str(&format!("{pad}}}\n"));
            }
            S::ArrayRoundTrip(idx, val) => {
                out.push_str(&format!(
                    "{pad}buf[Math.abs({}) % buf.length] = {};\n",
                    idx.render(),
                    val.render()
                ));
                out.push_str(&format!(
                    "{pad}c = c ^ buf[Math.abs({}) % buf.length];\n",
                    idx.render()
                ));
            }
        }
    }
}

fn stmt_strategy() -> impl Strategy<Value = S> {
    let leaf = prop_oneof![
        expr_strategy().prop_map(S::AssignA),
        expr_strategy().prop_map(S::AssignB),
        expr_strategy().prop_map(S::AssignC),
        (expr_strategy(), expr_strategy()).prop_map(|(i, v)| S::ArrayRoundTrip(i, v)),
    ];
    leaf.prop_recursive(2, 16, 4, |inner| {
        prop_oneof![
            (
                expr_strategy(),
                expr_strategy(),
                proptest::collection::vec(inner.clone(), 0..3),
                proptest::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(l, r, t, f)| S::If(l, r, t, f)),
            (1u8..4, proptest::collection::vec(inner.clone(), 1..3))
                .prop_map(|(n, b)| S::Loop(n, b)),
        ]
    })
}

fn program_for(stmts: &[S]) -> String {
    let mut body = String::new();
    for s in stmts {
        s.render(&mut body, 0);
    }
    format!(
        "class Gen {{\n    static int run(int a, int b) {{\n        int c = 1;\n        int[] buf = new int[7];\n        try {{\n{body}        }} catch (RuntimeException e) {{\n            c = c * 31 + 1;\n        }}\n        return a ^ (b * 7) ^ c;\n    }}\n    static int main() {{\n        int acc = 0;\n        for (int a = -2; a <= 2; a++)\n            for (int b = -2; b <= 2; b++)\n                acc = acc * 33 + run(a * 17, b * 29);\n        return acc;\n    }}\n}}\n"
    )
}

fn norm(v: Option<Value>) -> Option<Value> {
    v.map(|v| match v {
        Value::Z(b) => Value::I(i32::from(b)),
        Value::C(c) => Value::I(c as i32),
        other => other,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_programs_agree_across_engines(stmts in proptest::collection::vec(stmt_strategy(), 1..5)) {
        let src = program_for(&stmts);
        let prog = safetsa_frontend::compile(&src)
            .unwrap_or_else(|e| panic!("generator produced invalid source: {e}\n{src}"));
        // SafeTSA, unoptimized, through the codec.
        let lowered = safetsa_ssa::lower_program(&prog).expect("lowers");
        if let Err(e) = safetsa_core::verify::verify_module(&lowered.module) {
            // Keep the reproducer on disk for postmortems.
            let path = std::env::temp_dir().join("safetsa_gen_fail.java");
            std::fs::write(path, &src).ok();
            panic!("verifies: {e}\n{src}");
        }
        let host = HostEnv::standard();
        let decoded = decode_and_verify(&encode_module(&lowered.module).expect("encodes"), &host).expect("decodes");
        let run_vm = |m: &safetsa_core::Module| -> (Option<Value>, String) {
            let mut vm = safetsa_vm::Vm::load(m).expect("loads");
            vm.set_fuel(80_000_000);
            let r = vm.run_entry("Gen.main").expect("runs");
            (norm(r), vm.output.text().to_string())
        };
        let (r1, o1) = run_vm(&decoded);
        // SafeTSA optimized.
        let mut optimized = lowered.module.clone();
        safetsa_opt::optimize_module(&mut optimized);
        safetsa_core::verify::verify_module(&optimized).expect("optimized verifies");
        let (r2, o2) = run_vm(&optimized);
        // Baseline.
        let mut code = safetsa_baseline::compile::compile_program(&prog);
        safetsa_baseline::verify::verify_program(&prog, &mut code).expect("bytecode verifies");
        let mut bvm = safetsa_baseline::interp::Bvm::load(&prog, &code);
        bvm.set_fuel(80_000_000);
        let r3 = norm(bvm.run_entry("Gen.main").expect("baseline runs"));
        prop_assert_eq!(o1, o2);
        prop_assert_eq!(&r1, &r2, "optimized diverged\n{}", src);
        prop_assert_eq!(&r1, &r3, "baseline diverged\n{}", src);
    }
}
