//! End-to-end tests for the `safetsa` CLI binary.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_safetsa"))
}

#[test]
fn compile_and_run_round_trip() {
    let dir = std::env::temp_dir().join("safetsa-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let src = dir.join("Prog.java");
    let out = dir.join("prog.tsa");
    std::fs::write(
        &src,
        r#"class Prog {
               static int main() {
                   int s = 0;
                   for (int i = 1; i <= 4; i++) s += i * i;
                   Sys.println("s=" + s);
                   return s;
               }
           }"#,
    )
    .unwrap();
    let st = cli()
        .args([
            "compile",
            src.to_str().unwrap(),
            "-o",
            out.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        st.status.success(),
        "{}",
        String::from_utf8_lossy(&st.stderr)
    );
    assert!(out.exists());

    let run = cli()
        .args(["run", out.to_str().unwrap(), "--entry", "Prog.main"])
        .output()
        .unwrap();
    assert!(
        run.status.success(),
        "{}",
        String::from_utf8_lossy(&run.stderr)
    );
    let stdout = String::from_utf8_lossy(&run.stdout);
    assert!(stdout.contains("s=30"), "{stdout}");
    assert!(stdout.contains("=> I(30)"), "{stdout}");
}

#[test]
fn run_directly_from_source() {
    let dir = std::env::temp_dir().join("safetsa-cli-test2");
    std::fs::create_dir_all(&dir).unwrap();
    let src = dir.join("Direct.java");
    std::fs::write(&src, "class Direct { static int go() { return 6 * 7; } }").unwrap();
    let run = cli()
        .args(["run", src.to_str().unwrap(), "--entry", "Direct.go"])
        .output()
        .unwrap();
    assert!(
        run.status.success(),
        "{}",
        String::from_utf8_lossy(&run.stderr)
    );
    assert!(String::from_utf8_lossy(&run.stdout).contains("=> I(42)"));
}

#[test]
fn stats_and_dump() {
    let dir = std::env::temp_dir().join("safetsa-cli-test3");
    std::fs::create_dir_all(&dir).unwrap();
    let src = dir.join("S.java");
    std::fs::write(
        &src,
        "class S { int v; static int f(S s) { return s.v + s.v; } }",
    )
    .unwrap();
    let stats = cli()
        .args(["stats", src.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(stats.status.success());
    let text = String::from_utf8_lossy(&stats.stdout);
    assert!(text.contains("SafeTSA"), "{text}");
    assert!(text.contains("checks"), "{text}");

    let dump = cli()
        .args(["dump", src.to_str().unwrap(), "--function", "S.f"])
        .output()
        .unwrap();
    assert!(dump.status.success());
    let text = String::from_utf8_lossy(&dump.stdout);
    assert!(text.contains("nullcheck"), "{text}");
    assert!(text.contains("getfield"), "{text}");
}

#[test]
fn compile_error_reported_cleanly() {
    let dir = std::env::temp_dir().join("safetsa-cli-test4");
    std::fs::create_dir_all(&dir).unwrap();
    let src = dir.join("Bad.java");
    std::fs::write(&src, "class Bad { int f() { return x; } }").unwrap();
    let out = dir.join("bad.tsa");
    let st = cli()
        .args([
            "compile",
            src.to_str().unwrap(),
            "-o",
            out.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!st.status.success());
    let err = String::from_utf8_lossy(&st.stderr);
    assert!(err.contains("unknown name"), "{err}");
}

#[test]
fn usage_on_no_args() {
    let st = cli().output().unwrap();
    assert!(!st.status.success());
    assert!(String::from_utf8_lossy(&st.stderr).contains("usage"));
}
