//! End-to-end tests for the `safetsa` CLI binary.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_safetsa"))
}

#[test]
fn compile_and_run_round_trip() {
    let dir = std::env::temp_dir().join("safetsa-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let src = dir.join("Prog.java");
    let out = dir.join("prog.tsa");
    std::fs::write(
        &src,
        r#"class Prog {
               static int main() {
                   int s = 0;
                   for (int i = 1; i <= 4; i++) s += i * i;
                   Sys.println("s=" + s);
                   return s;
               }
           }"#,
    )
    .unwrap();
    let st = cli()
        .args([
            "compile",
            src.to_str().unwrap(),
            "-o",
            out.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        st.status.success(),
        "{}",
        String::from_utf8_lossy(&st.stderr)
    );
    assert!(out.exists());

    let run = cli()
        .args(["run", out.to_str().unwrap(), "--entry", "Prog.main"])
        .output()
        .unwrap();
    assert!(
        run.status.success(),
        "{}",
        String::from_utf8_lossy(&run.stderr)
    );
    let stdout = String::from_utf8_lossy(&run.stdout);
    assert!(stdout.contains("s=30"), "{stdout}");
    assert!(stdout.contains("=> I(30)"), "{stdout}");
}

#[test]
fn run_directly_from_source() {
    let dir = std::env::temp_dir().join("safetsa-cli-test2");
    std::fs::create_dir_all(&dir).unwrap();
    let src = dir.join("Direct.java");
    std::fs::write(&src, "class Direct { static int go() { return 6 * 7; } }").unwrap();
    let run = cli()
        .args(["run", src.to_str().unwrap(), "--entry", "Direct.go"])
        .output()
        .unwrap();
    assert!(
        run.status.success(),
        "{}",
        String::from_utf8_lossy(&run.stderr)
    );
    assert!(String::from_utf8_lossy(&run.stdout).contains("=> I(42)"));
}

#[test]
fn stats_and_dump() {
    let dir = std::env::temp_dir().join("safetsa-cli-test3");
    std::fs::create_dir_all(&dir).unwrap();
    let src = dir.join("S.java");
    std::fs::write(
        &src,
        "class S { int v; static int f(S s) { return s.v + s.v; } }",
    )
    .unwrap();
    let stats = cli()
        .args(["stats", src.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(stats.status.success());
    let text = String::from_utf8_lossy(&stats.stdout);
    assert!(text.contains("SafeTSA"), "{text}");
    assert!(text.contains("checks"), "{text}");

    let dump = cli()
        .args(["dump", src.to_str().unwrap(), "--function", "S.f"])
        .output()
        .unwrap();
    assert!(dump.status.success());
    let text = String::from_utf8_lossy(&dump.stdout);
    assert!(text.contains("nullcheck"), "{text}");
    assert!(text.contains("getfield"), "{text}");
}

#[test]
fn compile_error_reported_cleanly() {
    let dir = std::env::temp_dir().join("safetsa-cli-test4");
    std::fs::create_dir_all(&dir).unwrap();
    let src = dir.join("Bad.java");
    std::fs::write(&src, "class Bad { int f() { return x; } }").unwrap();
    let out = dir.join("bad.tsa");
    let st = cli()
        .args([
            "compile",
            src.to_str().unwrap(),
            "-o",
            out.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!st.status.success());
    let err = String::from_utf8_lossy(&st.stderr);
    assert!(err.contains("unknown name"), "{err}");
}

#[test]
fn usage_on_no_args() {
    let st = cli().output().unwrap();
    assert!(!st.status.success());
    assert!(String::from_utf8_lossy(&st.stderr).contains("usage"));
}

#[test]
fn analyze_clean_program_exits_zero() {
    let dir = std::env::temp_dir().join("safetsa-cli-test5");
    std::fs::create_dir_all(&dir).unwrap();
    let src = dir.join("Clean.java");
    std::fs::write(
        &src,
        "class Clean { static int main() {
             int[] a = new int[4];
             int s = 0;
             for (int i = 0; i < a.length; i++) { a[i] = i; s += a[i]; }
             return s;
         } }",
    )
    .unwrap();
    let st = cli()
        .args(["analyze", src.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        st.status.success(),
        "{}",
        String::from_utf8_lossy(&st.stderr)
    );
    let text = String::from_utf8_lossy(&st.stdout);
    assert!(text.contains("0 errors"), "{text}");
}

#[test]
fn analyze_reports_always_null_deref_as_error() {
    let dir = std::env::temp_dir().join("safetsa-cli-test6");
    std::fs::create_dir_all(&dir).unwrap();
    let src = dir.join("Npe.java");
    // The dereference is outside any try, so it is an error and the
    // exit code is 1 (distinct from exit 2 for unbuildable input).
    std::fs::write(
        &src,
        "class Npe { static int main() { int[] x = null; return x[0]; } }",
    )
    .unwrap();
    let st = cli()
        .args(["analyze", src.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(st.status.code(), Some(1));
    let text = String::from_utf8_lossy(&st.stdout);
    assert!(text.contains("always-null-deref"), "{text}");
    assert!(text.contains("Npe.main"), "{text}");

    // JSON mode carries the same verdict, machine-readably.
    let js = cli()
        .args(["analyze", src.to_str().unwrap(), "--json"])
        .output()
        .unwrap();
    assert_eq!(js.status.code(), Some(1));
    let text = String::from_utf8_lossy(&js.stdout);
    assert!(text.contains("\"schema\": \"safetsa-analyze/1\""), "{text}");
    assert!(text.contains("\"kind\": \"always-null-deref\""), "{text}");
    assert!(text.contains("\"severity\": \"error\""), "{text}");
}

#[test]
fn analyze_reports_heap_lints_without_failing() {
    let dir = std::env::temp_dir().join("safetsa-cli-test-heap");
    std::fs::create_dir_all(&dir).unwrap();
    let src = dir.join("Heap.java");
    // A never-read store to a non-escaping array, a load of a
    // never-written one, and a loop mutating one parameter while
    // reading another (may alias). All warnings/notes: exit 0.
    std::fs::write(
        &src,
        "class Cell { int v; }
         class Heap {
             static int churn(Cell a, Cell b, int n) {
                 int s = 0;
                 for (int i = 0; i < n; i++) { a.v = i; s = s + b.v; }
                 return s;
             }
             static int main() {
                 int[] dead = new int[4];
                 dead[0] = 7;
                 int[] zero = new int[4];
                 return zero[0];
             }
         }",
    )
    .unwrap();
    let st = cli()
        .args(["analyze", src.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        st.status.success(),
        "{}",
        String::from_utf8_lossy(&st.stderr)
    );
    let text = String::from_utf8_lossy(&st.stdout);
    assert!(text.contains("never-read-store"), "{text}");
    assert!(text.contains("never-written-load"), "{text}");
    assert!(text.contains("aliased-mutation-in-loop"), "{text}");
    assert!(text.contains("0 errors"), "{text}");

    let js = cli()
        .args(["analyze", src.to_str().unwrap(), "--json"])
        .output()
        .unwrap();
    assert!(js.status.success());
    let text = String::from_utf8_lossy(&js.stdout);
    assert!(text.contains("\"severity\": \"note\""), "{text}");
    assert!(text.contains("\"notes\": "), "{text}");
}

#[test]
fn verify_accepts_good_module_and_rejects_garbage() {
    let dir = std::env::temp_dir().join("safetsa-cli-test7");
    std::fs::create_dir_all(&dir).unwrap();
    let src = dir.join("V.java");
    let out = dir.join("v.tsa");
    std::fs::write(
        &src,
        "class V { static int main() { return 6 * 7; } }",
    )
    .unwrap();
    let st = cli()
        .args([
            "compile",
            src.to_str().unwrap(),
            "-o",
            out.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(st.status.success());

    let ok = cli()
        .args(["verify", out.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        ok.status.success(),
        "{}",
        String::from_utf8_lossy(&ok.stderr)
    );
    let text = String::from_utf8_lossy(&ok.stdout);
    assert!(text.contains("OK"), "{text}");
    assert!(text.contains("verified"), "{text}");

    let bad_path = dir.join("bad.tsa");
    std::fs::write(&bad_path, b"not a module").unwrap();
    let bad = cli()
        .args(["verify", bad_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("safetsa:"));
}
