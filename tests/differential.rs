//! Differential execution: every program is compiled once, then run
//! through the SafeTSA pipeline (lower → verify → interpret), through
//! the *optimized* SafeTSA pipeline (all producer passes, checkelim
//! included), and through the Java-bytecode baseline (compile →
//! dataflow-verify → interpret). Results and captured output must agree
//! exactly across all three.
//!
//! This pins the reproduction's central soundness claim: SafeTSA
//! preserves the program's semantics while changing its representation
//! — and the producer-side optimizer preserves them again.

use safetsa_baseline::{compile as bcompile, interp::Bvm, verify as bverify};
use safetsa_core::verify::verify_module;
use safetsa_frontend::compile;
use safetsa_opt::Passes;
use safetsa_rt::Value;
use safetsa_ssa::lower_program;
use safetsa_telemetry::Telemetry;
use safetsa_vm::Vm;

/// Runs `entry` under all three engines and asserts identical outcomes.
fn differential(src: &str, entry: &str) -> (Option<Value>, String) {
    let prog = compile(src).expect("front-end accepts");
    // SafeTSA side.
    let lowered = lower_program(&prog).expect("ssa lowering");
    verify_module(&lowered.module).expect("SafeTSA verifies");
    let mut vm = Vm::load(&lowered.module).expect("vm loads");
    vm.set_fuel(100_000_000);
    let tsa_result = vm.run_entry(entry).expect("SafeTSA run");
    let tsa_out = vm.output.text().to_string();
    // Optimized SafeTSA side: every producer pass, checkelim included.
    let mut optimized = lowered.module.clone();
    safetsa_opt::optimize(&mut optimized, Passes::ALL, &Telemetry::disabled());
    verify_module(&optimized).expect("optimized SafeTSA verifies");
    let mut ovm = Vm::load(&optimized).expect("optimized vm loads");
    ovm.set_fuel(100_000_000);
    let opt_result = ovm.run_entry(entry).expect("optimized SafeTSA run");
    let opt_out = ovm.output.text().to_string();
    // Baseline side.
    let mut code = bcompile::compile_program(&prog);
    bverify::verify_program(&prog, &mut code).expect("bytecode verifies");
    let mut bvm = Bvm::load(&prog, &code);
    bvm.set_fuel(100_000_000);
    let b_result = bvm.run_entry(entry).expect("baseline run");
    let b_out = bvm.output.text().to_string();
    // Optimization must be invisible: bit-identical result and output.
    match (&tsa_result, &opt_result) {
        (Some(x), Some(y)) => assert!(
            x.bits_eq(*y),
            "optimizer changed result: {x:?} vs {y:?}\n{src}"
        ),
        (None, None) => {}
        (x, y) => panic!("optimizer changed result arity: {x:?} vs {y:?}"),
    }
    assert_eq!(tsa_out, opt_out, "optimizer changed output for {src}");
    // Compare against the baseline. It returns bool/char as ints;
    // normalize.
    let norm = |v: Option<Value>| -> Option<Value> {
        v.map(|v| match v {
            Value::Z(b) => Value::I(i32::from(b)),
            Value::C(c) => Value::I(c as i32),
            other => other,
        })
    };
    let (a, b) = (norm(tsa_result), norm(b_result));
    match (a, b) {
        (Some(x), Some(y)) => assert!(
            x.bits_eq(y),
            "result mismatch: SafeTSA {x:?} vs baseline {y:?}\n{src}"
        ),
        (None, None) => {}
        (x, y) => panic!("result arity mismatch: {x:?} vs {y:?}"),
    }
    assert_eq!(tsa_out, b_out, "output mismatch for {src}");
    (norm(Some(Value::I(0))).and(None), tsa_out)
}

/// Corpus-wide: every corpus program still verifies after the full pass
/// pipeline (checkelim included) and runs bit-identically — output,
/// result, and exception behaviour — to its unoptimized module.
#[test]
fn corpus_optimized_matches_unoptimized() {
    for entry in safetsa_bench::corpus() {
        let prog = compile(entry.source).unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        let lowered = lower_program(&prog).unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        let mut optimized = lowered.module.clone();
        safetsa_opt::optimize(&mut optimized, Passes::ALL, &Telemetry::disabled());
        verify_module(&optimized)
            .unwrap_or_else(|e| panic!("{}: optimized module rejected: {e}", entry.name));
        let run = |m: &safetsa_core::Module| {
            let mut vm = Vm::load(m).expect("loads");
            vm.set_fuel(500_000_000);
            // Keep VM errors (uncaught exceptions, exhaustion) in the
            // comparison: the optimizer must not change them either.
            let r = vm.run_entry(entry.entry).map_err(|e| e.to_string());
            (r, vm.output.text().to_string())
        };
        let (r1, o1) = run(&lowered.module);
        let (r2, o2) = run(&optimized);
        assert_eq!(o1, o2, "{}: output diverged", entry.name);
        match (r1, r2) {
            (Ok(Some(x)), Ok(Some(y))) => {
                assert!(x.bits_eq(y), "{}: {x:?} vs {y:?}", entry.name);
            }
            (Ok(None), Ok(None)) => {}
            (Err(a), Err(b)) => assert_eq!(a, b, "{}: error diverged", entry.name),
            (a, b) => panic!("{}: outcome diverged: {a:?} vs {b:?}", entry.name),
        }
    }
}

/// Corpus-wide: the memory passes toggled individually — load
/// forwarding alone, dead-store elimination alone, and the full
/// pipeline with each disabled — must keep every program bit-identical
/// to its unoptimized module, trap paths (Exceptions) included.
#[test]
fn corpus_memory_pass_toggles_preserve_semantics() {
    let configs = [
        (
            "loadfwd-only",
            Passes {
                loadfwd: true,
                ..Passes::NONE
            },
        ),
        (
            "dse-only",
            Passes {
                dse: true,
                ..Passes::NONE
            },
        ),
        (
            "all-minus-loadfwd",
            Passes {
                loadfwd: false,
                ..Passes::ALL
            },
        ),
        (
            "all-minus-dse",
            Passes {
                dse: false,
                ..Passes::ALL
            },
        ),
    ];
    for entry in safetsa_bench::corpus() {
        let prog = compile(entry.source).unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        let lowered = lower_program(&prog).unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        let run = |m: &safetsa_core::Module| {
            let mut vm = Vm::load(m).expect("loads");
            vm.set_fuel(500_000_000);
            let r = vm.run_entry(entry.entry).map_err(|e| e.to_string());
            (r, vm.output.text().to_string())
        };
        let (r1, o1) = run(&lowered.module);
        for (cfg_name, passes) in configs {
            let mut m = lowered.module.clone();
            safetsa_opt::optimize(&mut m, passes, &Telemetry::disabled());
            verify_module(&m).unwrap_or_else(|e| {
                panic!("{} [{cfg_name}]: optimized module rejected: {e}", entry.name)
            });
            let (r2, o2) = run(&m);
            assert_eq!(o1, o2, "{} [{cfg_name}]: output diverged", entry.name);
            match (&r1, &r2) {
                (Ok(Some(x)), Ok(Some(y))) => {
                    assert!(x.bits_eq(*y), "{} [{cfg_name}]: {x:?} vs {y:?}", entry.name);
                }
                (Ok(None), Ok(None)) => {}
                (Err(a), Err(b)) => {
                    assert_eq!(a, b, "{} [{cfg_name}]: error diverged", entry.name);
                }
                (a, b) => panic!("{} [{cfg_name}]: outcome diverged: {a:?} vs {b:?}", entry.name),
            }
        }
    }
}

#[test]
fn arithmetic_expressions() {
    differential(
        r#"class A { static int main() {
            int a = 17; int b = -5;
            Sys.println(a + b); Sys.println(a - b); Sys.println(a * b);
            Sys.println(a / b); Sys.println(a % b);
            Sys.println(a & b); Sys.println(a | b); Sys.println(a ^ b);
            Sys.println(a << 2); Sys.println(b >> 1); Sys.println(b >>> 1);
            Sys.println(~a); Sys.println(-b);
            return a * b + 3;
        } }"#,
        "A.main",
    );
}

#[test]
fn long_arithmetic() {
    differential(
        r#"class A { static long main() {
            long a = 123456789012345L; long b = -987654321L;
            Sys.println(a + b); Sys.println(a * b); Sys.println(a / b);
            Sys.println(a % b); Sys.println(a << 7); Sys.println(a >>> 3);
            Sys.println(a & b); Sys.println((int) a);
            return a ^ b;
        } }"#,
        "A.main",
    );
}

#[test]
fn double_arithmetic_and_nan() {
    differential(
        r#"class A { static double main() {
            double x = 1.5; double y = -0.25;
            Sys.println(x + y); Sys.println(x / y); Sys.println(x % y);
            double nan = 0.0 / 0.0;
            Sys.println(nan == nan);
            Sys.println(nan != nan);
            Sys.println(nan < 1.0);
            Sys.println(nan >= 1.0);
            Sys.println(1.0 / 0.0);
            Sys.println(-1.0 / 0.0);
            Sys.println(Math.sqrt(-1.0) != Math.sqrt(-1.0));
            return x * y;
        } }"#,
        "A.main",
    );
}

#[test]
fn conversions() {
    differential(
        r#"class A { static int main() {
            double d = 1e10;
            Sys.println((int) d);          // saturates
            Sys.println((long) d);
            Sys.println((int) -1e10);
            Sys.println((char) 65601);     // wraps mod 2^16
            Sys.println((int) 'Z');
            long big = 0x1234567890L;
            Sys.println((int) big);
            float f = 3.75f;
            Sys.println((int) f);
            Sys.println((double) f);
            return 0;
        } }"#,
        "A.main",
    );
}

#[test]
fn control_flow_matrix() {
    differential(
        r#"class A { static int main() {
            int total = 0;
            for (int i = 0; i < 20; i++) {
                if (i % 3 == 0) continue;
                int j = i;
                while (j > 0) { total += j & 1; j >>= 1; }
                if (total > 40) break;
            }
            do { total++; } while (total < 10);
            return total;
        } }"#,
        "A.main",
    );
}

#[test]
fn objects_inheritance_dispatch() {
    differential(
        r#"class Animal { int legs() { return 4; } int id() { return 0; } }
           class Bird extends Animal { int legs() { return 2; } }
           class Snake extends Animal { int legs() { return 0; } int id() { return 9; } }
           class Main { static int main() {
               Animal[] zoo = new Animal[3];
               zoo[0] = new Animal(); zoo[1] = new Bird(); zoo[2] = new Snake();
               int s = 0;
               for (int i = 0; i < zoo.length; i++) { s += zoo[i].legs() * 10 + zoo[i].id(); }
               Sys.println(s);
               return s;
           } }"#,
        "Main.main",
    );
}

#[test]
fn exceptions_all_kinds() {
    differential(
        r#"class MyE extends Exception { int tag; MyE(int t) { super("mine"); tag = t; } }
           class A {
               static int probe(int kind) {
                   int[] arr = new int[2];
                   Object o = "str";
                   try {
                       if (kind == 0) return 10 / 0;
                       if (kind == 1) return arr[7];
                       if (kind == 2) { A a = null; return a.hash(); }
                       if (kind == 3) { MyE m = (MyE) o; return m.tag; }
                       if (kind == 4) throw new MyE(77);
                       if (kind == 5) return new int[-3].length;
                       return 42;
                   }
                   catch (ArithmeticException e) { return -1; }
                   catch (IndexOutOfBoundsException e) { return -2; }
                   catch (NullPointerException e) { return -3; }
                   catch (ClassCastException e) { return -4; }
                   catch (MyE e) { Sys.println(e.getMessage()); return -e.tag; }
                   catch (NegativeArraySizeException e) { return -6; }
               }
               int hash() { return 1; }
               static int main() {
                   int s = 0;
                   for (int k = 0; k <= 6; k++) { int r = probe(k); Sys.println(r); s += r; }
                   return s;
               }
           }"#,
        "A.main",
    );
}

#[test]
fn string_workout() {
    differential(
        r#"class A { static int main() {
            String s = "The quick brown fox";
            Sys.println(s.length());
            Sys.println(s.charAt(4));
            Sys.println(s.indexOf('q'));
            Sys.println(s.substring(4, 9));
            Sys.println(s.equals("The quick brown fox"));
            Sys.println(s.equals("nope"));
            Sys.println(s.compareTo("The quick brown fox"));
            Sys.println(s.compareTo("Aardvark"));
            String t = s + " jumps " + 3 + ' ' + 2.5 + " " + true + " times";
            Sys.println(t);
            return t.length();
        } }"#,
        "A.main",
    );
}

#[test]
fn sieve_of_eratosthenes() {
    differential(
        r#"class Sieve { static int main() {
            int n = 2000;
            boolean[] composite = new boolean[n + 1];
            int count = 0;
            for (int i = 2; i <= n; i++) {
                if (!composite[i]) {
                    count++;
                    for (int j = i + i; j <= n; j += i) composite[j] = true;
                }
            }
            Sys.println(count);
            return count;
        } }"#,
        "Sieve.main",
    );
}

#[test]
fn quicksort() {
    differential(
        r#"class QSort {
            static void sort(int[] a, int lo, int hi) {
                if (lo >= hi) return;
                int p = a[(lo + hi) >>> 1];
                int i = lo; int j = hi;
                while (i <= j) {
                    while (a[i] < p) i++;
                    while (a[j] > p) j--;
                    if (i <= j) { int t = a[i]; a[i] = a[j]; a[j] = t; i++; j--; }
                }
                sort(a, lo, j);
                sort(a, i, hi);
            }
            static int main() {
                int seed = 12345;
                int[] a = new int[200];
                for (int i = 0; i < a.length; i++) {
                    seed = seed * 1103515245 + 12345;
                    a[i] = (seed >>> 8) % 1000;
                }
                sort(a, 0, a.length - 1);
                int checksum = 0;
                for (int i = 1; i < a.length; i++) {
                    if (a[i - 1] > a[i]) return -1;
                    checksum = checksum * 31 + a[i];
                }
                Sys.println(checksum);
                return checksum;
            }
        }"#,
        "QSort.main",
    );
}

#[test]
fn linked_structures() {
    differential(
        r#"class Node { int v; Node next; Node(int v) { this.v = v; } }
           class List {
               Node head; int size;
               void push(int v) { Node n = new Node(v); n.next = head; head = n; size++; }
               int sum() { int s = 0; Node c = head; while (c != null) { s += c.v; c = c.next; } return s; }
           }
           class Main { static int main() {
               List l = new List();
               for (int i = 1; i <= 50; i++) l.push(i * i);
               Sys.println(l.size);
               Sys.println(l.sum());
               return l.sum();
           } }"#,
        "Main.main",
    );
}

#[test]
fn statics_shared_state() {
    differential(
        r#"class Counter {
               static int count = 100;
               static int[] hist = new int[5];
               static void bump(int k) { count++; hist[k % 5]++; }
           }
           class Main { static int main() {
               for (int i = 0; i < 13; i++) Counter.bump(i);
               Sys.println(Counter.count);
               int s = 0;
               for (int i = 0; i < 5; i++) { Sys.print(Counter.hist[i]); Sys.print(' '); s += (i + 1) * Counter.hist[i]; }
               Sys.println();
               return s;
           } }"#,
        "Main.main",
    );
}

#[test]
fn shadowing_and_scopes() {
    differential(
        r#"class A {
               static int x = 5;
               static int main() {
                   int s = x;
                   { int x2 = 10; s += x2; }
                   for (int i = 0; i < 3; i++) { int x2 = i; s += x2; }
                   return s + x;
               }
           }"#,
        "A.main",
    );
}

#[test]
fn ternary_chains_and_short_circuit() {
    differential(
        r#"class A {
               static int calls = 0;
               static boolean side(boolean b) { calls++; return b; }
               static int main() {
                   int a = 3; int b = 7;
                   int m = a > b ? a : a == b ? 0 : -b;
                   boolean x = side(false) && side(true);
                   boolean y = side(true) || side(false);
                   boolean z = !x & y | (a < b ^ x);
                   Sys.println(m); Sys.println(calls);
                   Sys.println(x); Sys.println(y); Sys.println(z);
                   return m + calls;
               }
           }"#,
        "A.main",
    );
}

#[test]
fn char_tokenizer() {
    differential(
        r#"class Tok {
               static boolean isDigit(char c) { return c >= '0' && c <= '9'; }
               static boolean isAlpha(char c) { return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'; }
               static int main() {
                   String src = "x1 = alpha42 + 7 * beta9;";
                   int idents = 0; int numbers = 0; int others = 0;
                   int i = 0;
                   while (i < src.length()) {
                       char c = src.charAt(i);
                       if (isAlpha(c)) {
                           idents++;
                           while (i < src.length() && (isAlpha(src.charAt(i)) || isDigit(src.charAt(i)))) i++;
                       } else if (isDigit(c)) {
                           numbers++;
                           while (i < src.length() && isDigit(src.charAt(i))) i++;
                       } else { others++; i++; }
                   }
                   Sys.println(idents); Sys.println(numbers); Sys.println(others);
                   return idents * 100 + numbers * 10 + others;
               }
           }"#,
        "Tok.main",
    );
}

#[test]
fn deep_recursion_and_wide_values() {
    // Both engines recurse natively per Java frame; give the test a
    // generous stack (debug-build frames are large).
    std::thread::Builder::new()
        .stack_size(256 * 1024 * 1024)
        .spawn(run_deep)
        .unwrap()
        .join()
        .unwrap();
}

fn run_deep() {
    differential(
        r#"class A {
               static long ack_ish(int depth, long acc) {
                   if (depth == 0) return acc;
                   return ack_ish(depth - 1, acc * 3 + depth);
               }
               static int main() {
                   long r = ack_ish(400, 1L);
                   Sys.println(r);
                   return (int) (r & 0xFFFF);
               }
           }"#,
        "A.main",
    );
}

#[test]
fn matrix_multiply_doubles() {
    differential(
        r#"class Mat { static int main() {
            int n = 12;
            double[][] a = new double[n][]; double[][] b = new double[n][]; double[][] c = new double[n][];
            for (int i = 0; i < n; i++) {
                a[i] = new double[n]; b[i] = new double[n]; c[i] = new double[n];
                for (int j = 0; j < n; j++) { a[i][j] = i * 0.5 + j; b[i][j] = i - j * 0.25; }
            }
            for (int i = 0; i < n; i++)
                for (int k = 0; k < n; k++) {
                    double aik = a[i][k];
                    for (int j = 0; j < n; j++) c[i][j] += aik * b[k][j];
                }
            double trace = 0.0;
            for (int i = 0; i < n; i++) trace += c[i][i];
            Sys.println(trace);
            return (int) trace;
        } }"#,
        "Mat.main",
    );
}

#[test]
fn try_in_loop_with_state() {
    differential(
        r#"class A { static int main() {
            int caught = 0; int sum = 0;
            for (int i = -3; i <= 3; i++) {
                try { sum += 100 / i; }
                catch (ArithmeticException e) { caught++; }
                finally { sum++; }
            }
            Sys.println(sum); Sys.println(caught);
            return sum * 10 + caught;
        } }"#,
        "A.main",
    );
}

#[test]
fn instanceof_ladder() {
    differential(
        r#"class X { }
           class Y extends X { }
           class Z extends Y { }
           class Main {
               static int classify(Object o) {
                   if (o instanceof Z) return 3;
                   if (o instanceof Y) return 2;
                   if (o instanceof X) return 1;
                   if (o instanceof String) return 4;
                   return 0;
               }
               static int main() {
                   int s = classify(new Z()) * 1000
                         + classify(new Y()) * 100
                         + classify(new X()) * 10
                         + classify("s");
                   Sys.println(s);
                   return s;
               }
           }"#,
        "Main.main",
    );
}

#[test]
fn compound_assignment_on_everything() {
    differential(
        r#"class Box { int v; static int sv; }
           class A { static int main() {
               Box b = new Box();
               int[] a = new int[4];
               int x = 10;
               x += 5; x -= 2; x *= 3; x /= 4; x %= 7; x <<= 2; x >>= 1; x |= 8; x &= 12; x ^= 5;
               b.v += 3; b.v *= 7;
               Box.sv += 11;
               a[1] += 4; a[1] <<= 2;
               int i = 0;
               a[i++] = i; // a[0] = 1
               Sys.println(x); Sys.println(b.v); Sys.println(Box.sv);
               Sys.println(a[0]); Sys.println(a[1]); Sys.println(i);
               return x + b.v + Box.sv + a[0] + a[1];
           } }"#,
        "A.main",
    );
}

#[test]
fn bank_simulation_composite() {
    differential(
        r#"class Account {
               int id; long balance;
               Account(int id, long opening) { this.id = id; balance = opening; }
               boolean withdraw(long amt) {
                   if (amt > balance) return false;
                   balance -= amt;
                   return true;
               }
               void deposit(long amt) { balance += amt; }
           }
           class Bank {
               Account[] accounts; int n;
               Bank(int cap) { accounts = new Account[cap]; }
               Account open(long amount) { Account a = new Account(n, amount); accounts[n] = a; n++; return a; }
               long total() { long t = 0; for (int i = 0; i < n; i++) t += accounts[i].balance; return t; }
           }
           class Main { static int main() {
               Bank bank = new Bank(16);
               for (int i = 0; i < 10; i++) bank.open(1000 * (i + 1));
               int denied = 0;
               for (int i = 0; i < 10; i++) {
                   Account a = bank.accounts[i];
                   if (!a.withdraw(2500)) { denied++; a.deposit(17); }
               }
               Sys.println(bank.total());
               Sys.println(denied);
               return (int) (bank.total() % 100000) + denied;
           } }"#,
        "Main.main",
    );
}

#[test]
fn labeled_break_and_continue() {
    differential(
        r#"class A { static int main() {
            int s = 0;
            outer:
            for (int i = 0; i < 6; i++) {
                for (int j = 0; j < 6; j++) {
                    if (i * j > 12) break outer;
                    if ((i + j) % 3 == 0) continue outer;
                    s += i * 10 + j;
                }
                s += 1000;   // only when the inner loop completes
            }
            Sys.println(s);
            return s;
        } }"#,
        "A.main",
    );
}

#[test]
fn labeled_break_three_deep() {
    differential(
        r#"class A { static int main() {
            int hits = 0;
            search:
            for (int i = 0; i < 4; i++) {
                middle:
                for (int j = 0; j < 4; j++) {
                    for (int k = 0; k < 4; k++) {
                        if (k == 3) continue middle;
                        if (i + j + k == 7) break search;
                        hits++;
                    }
                    hits += 100; // unreachable: inner always continues middle
                }
                hits += 1000;
            }
            Sys.println(hits);
            return hits;
        } }"#,
        "A.main",
    );
}

#[test]
fn labeled_while_loops() {
    differential(
        r#"class A { static int main() {
            int n = 0; int guard = 0;
            spin:
            while (true) {
                guard++;
                if (guard > 50) break;
                int inner = 0;
                while (inner < 10) {
                    inner++;
                    n++;
                    if (n % 17 == 0) continue spin;
                    if (n > 120) break spin;
                }
            }
            Sys.println(n);
            Sys.println(guard);
            return n * 100 + guard;
        } }"#,
        "A.main",
    );
}
