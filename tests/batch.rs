//! Determinism of the parallel batch driver.
//!
//! The batch driver's contract is that scheduling never shows: the
//! encoded `.tsa` bytes and every non-timer metric must be identical
//! whether the corpus is compiled on one worker or eight, and a
//! warm-cache run must replay the *exact* artifacts and registries the
//! cold run produced.

use safetsa::batch::{run_batch, BatchInput, BatchOptions};
use safetsa::driver::passes_fingerprint;
use safetsa::opt::Passes;
use safetsa::{Error, Pipeline};
use safetsa_telemetry::Telemetry;

fn corpus_inputs() -> Vec<BatchInput> {
    safetsa_bench::corpus()
        .iter()
        .map(|e| BatchInput {
            name: e.name.to_string(),
            source: e.source.to_string(),
        })
        .collect()
}

fn options(jobs: usize) -> BatchOptions {
    let mut opts = BatchOptions::new(format!("test/{}", passes_fingerprint(&Passes::ALL)));
    opts.jobs = jobs;
    opts.telemetry = true;
    opts
}

/// One batch task: the full producer pipeline on the driver-provided
/// per-task registry.
fn compile_task(_idx: usize, input: &BatchInput, tm: Telemetry) -> Result<(Vec<u8>, Telemetry), Error> {
    let pipeline = Pipeline::new().telemetry(tm);
    let module = pipeline.compile_source(&input.source)?;
    let bytes = pipeline.encode(&module)?;
    Ok((bytes, pipeline.into_metrics()))
}

/// A registry's flat serialization with the wall-clock timers and the
/// worker count dropped — everything that must be
/// scheduling-independent.
fn deterministic_flat(tm: &Telemetry) -> String {
    tm.export_flat()
        .lines()
        .filter(|l| !l.starts_with("t ") && !l.starts_with("c driver.jobs "))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn corpus_bytes_identical_serial_vs_parallel() {
    let inputs = corpus_inputs();
    let serial = run_batch(&inputs, &options(1), compile_task).unwrap();
    let parallel = run_batch(&inputs, &options(8), compile_task).unwrap();
    assert_eq!(serial.jobs, 1);
    assert_eq!(parallel.jobs, 8);
    assert_eq!(serial.items.len(), inputs.len());
    for (a, b) in serial.items.iter().zip(&parallel.items) {
        assert_eq!(a.name, b.name, "batch reordered outputs");
        assert_eq!(a.bytes, b.bytes, "{}: .tsa bytes differ across jobs", a.name);
        assert_eq!(
            deterministic_flat(&a.metrics),
            deterministic_flat(&b.metrics),
            "{}: per-task metrics differ across jobs",
            a.name
        );
    }
    assert_eq!(
        deterministic_flat(&serial.merged),
        deterministic_flat(&parallel.merged),
        "merged metrics depend on scheduling"
    );
}

#[test]
fn warm_cache_replays_identical_artifacts_and_metrics() {
    let dir = std::env::temp_dir().join(format!("safetsa-batch-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let inputs = corpus_inputs();
    let mut opts = options(4);
    opts.cache_dir = Some(dir.clone());
    let cold = run_batch(&inputs, &opts, compile_task).unwrap();
    assert_eq!(cold.cache_hits, 0);
    assert_eq!(cold.cache_misses, inputs.len() as u64);
    let warm = run_batch(&inputs, &opts, compile_task).unwrap();
    assert_eq!(warm.cache_hits, inputs.len() as u64);
    assert_eq!(warm.cache_misses, 0);
    for (a, b) in cold.items.iter().zip(&warm.items) {
        assert!(b.cache_hit, "{}: expected a cache hit", b.name);
        assert_eq!(a.bytes, b.bytes, "{}: cached bytes differ", a.name);
        // The replayed registry is the original, timers included.
        assert_eq!(
            a.metrics.export_flat(),
            b.metrics.export_flat(),
            "{}: cached metrics differ",
            a.name
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Masks the values of `_ns` keys in a rendered metrics document.
fn mask_ns(doc: &str) -> String {
    doc.lines()
        .map(|line| match line.split_once("_ns\": ") {
            Some((prefix, _)) => format!("{prefix}_ns\": X"),
            None => line.to_string(),
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn bench_per_program_sections_identical_across_jobs() {
    let (serial, serial_batch) = safetsa_bench::corpus_report(1, None);
    let (parallel, parallel_batch) = safetsa_bench::corpus_report(4, None);
    assert_eq!(serial_batch.jobs, 1);
    assert_eq!(parallel_batch.jobs, 4);
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.opt_size, b.opt_size, "{}: opt_size differs", a.name);
        assert_eq!(a.class_size, b.class_size, "{}: class_size differs", a.name);
        assert_eq!(a.steps, b.steps, "{}: vm steps differ", a.name);
        assert_eq!(
            a.checks_eliminated, b.checks_eliminated,
            "{}: eliminated-check count differs",
            a.name
        );
        assert_eq!(
            mask_ns(&a.json.render_pretty()),
            mask_ns(&b.json.render_pretty()),
            "{}: per-program metrics document differs across jobs",
            a.name
        );
    }
}
