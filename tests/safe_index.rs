//! Appendix A: `safe-index` values are bound to array *values*, their
//! types scoped by dominance, and they may flow through phis only when
//! every operand is bound to the same (dominating) array. These tests
//! hand-construct such programs, check the verifier's accept/reject
//! behaviour, and round-trip the accepted ones through the codec.

use safetsa_codec::{decode_and_verify, encode_module, HostEnv};
use safetsa_core::cst::Cst;
use safetsa_core::function::{Function, ENTRY};
use safetsa_core::instr::Instr;
use safetsa_core::module::{Module, WellKnown};
use safetsa_core::types::{ClassInfo, MethodInfo, MethodKind, PrimKind, TypeTable};
use safetsa_core::typing::TypeError;
use safetsa_core::verify::{verify_function, verify_module, VerifyError};

/// Builds `f(a: safe int[], i: int, c: bool)` with two index checks of
/// the same array merged by a safe-index phi, then a `getelt`.
fn build(types: &mut TypeTable) -> Function {
    let int = types.prim(PrimKind::Int);
    let boolean = types.bool_ty();
    let arr = types.array_of(int);
    let safe_arr = types.safe_ref_of(arr);
    let _si = types.safe_index_of(arr);
    let mut f = Function::new("sidx", None, vec![safe_arr, int, boolean], Some(int));
    let a = f.param_value(0);
    let i = f.param_value(1);
    let c = f.param_value(2);
    // entry: six0 = indexcheck(a, i)
    let six0 = f
        .add_instr(
            types,
            ENTRY,
            Instr::IndexCheck {
                arr_ty: arr,
                array: a,
                index: i,
            },
        )
        .unwrap()
        .unwrap();
    // then: six1 = indexcheck(a, i) (same array, fresh check)
    let then_b = f.add_block();
    let six1 = f
        .add_instr(
            types,
            then_b,
            Instr::IndexCheck {
                arr_ty: arr,
                array: a,
                index: i,
            },
        )
        .unwrap()
        .unwrap();
    // join: phi over the safe-index plane, bound to `a`
    let join = f.add_block();
    let si_plane = types.find_safe_index(arr).unwrap();
    let phi = f.add_phi(join, si_plane);
    f.set_phi_args(join, 0, vec![(then_b, six1), (ENTRY, six0)]);
    f.set_provenance(phi, Some(a));
    // x = getelt(a, phi); return x
    let x = f
        .add_instr(
            types,
            join,
            Instr::GetElt {
                arr_ty: arr,
                array: a,
                index: phi,
            },
        )
        .unwrap()
        .unwrap();
    f.body = Cst::Seq(vec![
        Cst::Basic(ENTRY),
        Cst::If {
            cond: c,
            then_br: Box::new(Cst::Basic(then_b)),
            else_br: Box::new(Cst::empty()),
            join,
        },
        Cst::Return(Some(x)),
    ]);
    f
}

fn base_types() -> (TypeTable, safetsa_core::types::ClassId, WellKnown) {
    let mut t = TypeTable::new();
    let (object, _) = t.declare_class(ClassInfo {
        name: "Object".into(),
        superclass: None,
        fields: vec![],
        methods: vec![],
        imported: true,
    });
    let (throwable, _) = t.declare_class(ClassInfo {
        name: "Throwable".into(),
        superclass: Some(object),
        fields: vec![],
        methods: vec![],
        imported: true,
    });
    let (string, _) = t.declare_class(ClassInfo {
        name: "String".into(),
        superclass: Some(object),
        fields: vec![],
        methods: vec![],
        imported: true,
    });
    // The standard exception classes so the module loads in the VM.
    let wk = WellKnown {
        object,
        throwable,
        string,
    };
    (t, throwable, wk)
}

#[test]
fn safe_index_phi_verifies() {
    let (mut types, throwable, _) = base_types();
    let f = build(&mut types);
    verify_function(&types, throwable, &f).expect("safe-index phi accepted");
}

#[test]
fn safe_index_phi_with_mixed_arrays_rejected() {
    let (mut types, throwable, _) = base_types();
    let int = types.prim(PrimKind::Int);
    let boolean = types.bool_ty();
    let arr = types.array_of(int);
    let safe_arr = types.safe_ref_of(arr);
    let _ = types.safe_index_of(arr);
    // Two DIFFERENT arrays feed the phi.
    let mut f = Function::new(
        "bad",
        None,
        vec![safe_arr, safe_arr, int, boolean],
        Some(int),
    );
    let a = f.param_value(0);
    let b = f.param_value(1);
    let i = f.param_value(2);
    let c = f.param_value(3);
    let six_a = f
        .add_instr(
            &mut types,
            ENTRY,
            Instr::IndexCheck {
                arr_ty: arr,
                array: a,
                index: i,
            },
        )
        .unwrap()
        .unwrap();
    let then_b = f.add_block();
    let six_b = f
        .add_instr(
            &mut types,
            then_b,
            Instr::IndexCheck {
                arr_ty: arr,
                array: b,
                index: i,
            },
        )
        .unwrap()
        .unwrap();
    let join = f.add_block();
    let si_plane = types.find_safe_index(arr).unwrap();
    let phi = f.add_phi(join, si_plane);
    f.set_phi_args(join, 0, vec![(then_b, six_b), (ENTRY, six_a)]);
    f.set_provenance(phi, Some(a));
    let x = f.add_instr(
        &mut types,
        join,
        Instr::GetElt {
            arr_ty: arr,
            array: a,
            index: phi,
        },
    );
    // Either the phi or the getelt must be rejected; adding getelt can
    // only succeed if provenance checking is deferred to verify.
    f.body = Cst::Seq(vec![
        Cst::Basic(ENTRY),
        Cst::If {
            cond: c,
            then_br: Box::new(Cst::Basic(then_b)),
            else_br: Box::new(Cst::empty()),
            join,
        },
        match x {
            Ok(Some(v)) => Cst::Return(Some(v)),
            _ => Cst::Return(Some(i)),
        },
    ]);
    let err = verify_function(&types, throwable, &f).unwrap_err();
    assert!(
        matches!(err, VerifyError::PhiArgs { .. }),
        "mixed-array safe-index phi rejected: {err}"
    );
}

#[test]
fn using_index_with_wrong_array_rejected_by_typing() {
    let (mut types, _throwable, _) = base_types();
    let int = types.prim(PrimKind::Int);
    let arr = types.array_of(int);
    let safe_arr = types.safe_ref_of(arr);
    let _ = types.safe_index_of(arr);
    let mut f = Function::new("bad2", None, vec![safe_arr, safe_arr, int], Some(int));
    let a = f.param_value(0);
    let b = f.param_value(1);
    let i = f.param_value(2);
    let six_a = f
        .add_instr(
            &mut types,
            ENTRY,
            Instr::IndexCheck {
                arr_ty: arr,
                array: a,
                index: i,
            },
        )
        .unwrap()
        .unwrap();
    // getelt(b, six_a): index checked against `a`, used with `b`.
    let err = f
        .add_instr(
            &mut types,
            ENTRY,
            Instr::GetElt {
                arr_ty: arr,
                array: b,
                index: six_a,
            },
        )
        .unwrap_err();
    assert!(matches!(err, TypeError::ProvenanceMismatch { .. }));
}

#[test]
fn safe_index_phi_round_trips_through_codec() {
    // Build a module whose single method carries the safe-index phi;
    // the decoder must reconstruct the provenance and re-verify.
    let host = HostEnv::standard();
    let mut types = host.types.clone();
    let f = build(&mut types);
    let int = types.prim(PrimKind::Int);
    let boolean = types.bool_ty();
    let arr = types.array_of(int);
    let safe_arr = types.safe_ref_of(arr);
    let (holder, _) = types.declare_class(ClassInfo {
        name: "Holder".into(),
        superclass: Some(host.well_known.object),
        fields: vec![],
        methods: vec![MethodInfo {
            name: "sidx".into(),
            params: vec![safe_arr, int, boolean],
            ret: Some(int),
            kind: MethodKind::Static,
            vtable_slot: None,
            body: Some(0),
        }],
        imported: false,
    });
    let _ = holder;
    let module = Module {
        name: "safeindex".into(),
        types,
        well_known: host.well_known,
        functions: vec![f],
    };
    verify_module(&module).expect("module verifies");
    let bytes = encode_module(&module).expect("encodes");
    let decoded = decode_and_verify(&bytes, &host).expect("round trip");
    // The decoded phi carries the reconstructed provenance (block ids
    // are renumbered by the decoder; find the phi by scanning).
    let df = &decoded.functions[0];
    let (join, _) = (0..df.block_count())
        .map(|i| safetsa_core::value::BlockId(i as u32))
        .find_map(|b| (!df.block(b).phis.is_empty()).then_some((b, ())))
        .expect("decoded function has the phi");
    let phi_result = df.phi_result(join, 0);
    assert_eq!(
        df.value(phi_result).provenance,
        Some(df.param_value(0)),
        "provenance reconstructed from operands"
    );
}
