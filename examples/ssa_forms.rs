//! Regenerates the paper's illustrative figures: the same program
//! fragment shown as plain SSA (Figure 1), referentially secure SSA
//! with `(l-r)` pairs (Figure 2), the implied machine model's register
//! planes (Figure 3), and fully type-separated SafeTSA (Figure 4) —
//! plus the appendix's loop fragment (Figures 7–9).
//!
//! ```sh
//! cargo run --example ssa_forms
//! ```

use safetsa_core::pretty;

/// The if/else fragment in the spirit of Figure 1 (two variables merged
/// by phis after a conditional).
const FIGURE1: &str = r#"
class Fig1 {
    static int fragment(int i, int j) {
        if (i < j) {
            i = i + 1;
        } else {
            j = 2 * j;
        }
        return i * j;
    }
}
"#;

/// The appendix's loop fragment (Figures 7–9): a while loop with a
/// loop-carried variable and an array access, showing safe-index types
/// flowing through phis.
const FIGURE7: &str = r#"
class Fig7 {
    static int fragment(int[] a, int n) {
        int s = 0;
        int i = 0;
        while (i < n) {
            s = s + a[i];
            i = i + 1;
        }
        return s;
    }
}
"#;

fn show(title: &str, source: &str, func: &str) {
    let prog = safetsa_frontend::compile(source).expect("example compiles");
    let lowered = safetsa_ssa::lower_program(&prog).expect("example lowers");
    let module = &lowered.module;
    let f = module.function(module.find_function(func).expect("function exists"));
    println!("==================================================================");
    println!("{title}");
    println!("==================================================================");
    println!("{}", source.trim());
    println!();
    println!("--- plain SSA (Figure 1/7 style: global value numbers) ---");
    print!("{}", pretty::plain_ssa(&module.types, f));
    println!();
    println!("--- referentially secure SSA (Figure 2/8 style: (l-r) pairs) ---");
    print!("{}", pretty::reference_safe(&module.types, f));
    println!();
    println!("--- implied machine model (Figure 3: per-type register planes) ---");
    print!("{}", pretty::machine_model(&module.types, f));
    println!();
    println!("--- SafeTSA (Figure 4/9: type-separated + reference-safe) ---");
    print!("{}", pretty::safetsa(&module.types, f));
    println!();
}

fn main() {
    show(
        "The Figure 1 fragment: conditional with phi merges",
        FIGURE1,
        "Fig1.fragment",
    );
    show(
        "The appendix fragment (Figures 7-9): loop with safe-index flow",
        FIGURE7,
        "Fig7.fragment",
    );
    println!("Note how, in the SafeTSA view, each result names only its");
    println!("plane-relative register: integer results count up on the int");
    println!("plane independently of booleans or references, and operand");
    println!("references (l-r) can only reach dominating definitions — the");
    println!("cross-branch attack of the paper's Figure 1 is unrepresentable.");
}
