//! Quickstart: the full SafeTSA producer → wire → consumer pipeline on
//! a small Java program.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use safetsa_codec::{decode_and_verify, encode_module, HostEnv};
use safetsa_core::verify::verify_module;
use safetsa_vm::Vm;

const SOURCE: &str = r#"
class Greeter {
    String name;
    Greeter(String name) { this.name = name; }
    String greet(int times) {
        String s = "";
        for (int i = 0; i < times; i++) s = s + "hello, " + name + "! ";
        return s;
    }
}
class Main {
    static int main() {
        Greeter g = new Greeter("world");
        Sys.println(g.greet(2));
        int sum = 0;
        for (int i = 1; i <= 10; i++) sum += i * i;
        Sys.println("sum of squares: " + sum);
        return sum;
    }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- producer side ----
    println!("1. compile Java source to the typed HIR");
    let prog = safetsa_frontend::compile(SOURCE)?;

    println!("2. construct SafeTSA (single-pass SSA with type separation)");
    let lowered = safetsa_ssa::lower_program(&prog)?;
    let mut module = lowered.module;
    println!(
        "   {} functions, {} instructions, {} phis, {} null checks",
        module.functions.len(),
        module.instr_count(),
        module.phi_count(),
        lowered.stats.iter().map(|s| s.null_checks).sum::<usize>(),
    );

    println!("3. optimize at the producer (constprop + CSE/Mem + DCE)");
    let stats = safetsa_opt::optimize_module(&mut module);
    println!(
        "   instructions {} -> {}, null checks {} -> {}",
        stats.instrs_before, stats.instrs_after, stats.null_checks_before, stats.null_checks_after
    );

    println!("4. verify (linear, no dataflow analysis) and encode");
    verify_module(&module)?;
    let bytes = encode_module(&module)?;
    println!("   wire size: {} bytes", bytes.len());

    // ---- consumer side ----
    println!("5. the consumer decodes (checking referential integrity");
    println!("   symbol-by-symbol) and re-verifies");
    let host = HostEnv::standard();
    let decoded = decode_and_verify(&bytes, &host)?;

    println!("6. execute");
    let mut vm = Vm::load(&decoded)?;
    let result = vm.run_entry("Main.main")?;
    println!("--- program output ---");
    print!("{}", vm.output.text());
    println!("--- result: {result:?} ---");
    Ok(())
}
