//! Quickstart: the full SafeTSA producer → wire → consumer pipeline on
//! a small Java program, driven through the unified [`Pipeline`]
//! facade.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use safetsa::{Error, Pipeline};
use safetsa_telemetry::Telemetry;

const SOURCE: &str = r#"
class Greeter {
    String name;
    Greeter(String name) { this.name = name; }
    String greet(int times) {
        String s = "";
        for (int i = 0; i < times; i++) s = s + "hello, " + name + "! ";
        return s;
    }
}
class Main {
    static int main() {
        Greeter g = new Greeter("world");
        Sys.println(g.greet(2));
        int sum = 0;
        for (int i = 1; i <= 10; i++) sum += i * i;
        Sys.println("sum of squares: " + sum);
        return sum;
    }
}
"#;

fn main() -> Result<(), Error> {
    // One Pipeline, configured once: all producer passes, with a
    // telemetry registry so every stage's counters land in one place.
    let pipeline = Pipeline::new().telemetry(Telemetry::enabled());

    // ---- producer side ----
    println!("1. compile: frontend -> SSA construction -> optimize -> verify");
    let module = pipeline.compile_source(SOURCE)?;
    println!(
        "   {} functions, {} instructions, {} phis",
        module.functions.len(),
        module.instr_count(),
        module.phi_count(),
    );

    println!("2. encode to the wire format");
    let bytes = pipeline.encode(&module)?;
    println!("   wire size: {} bytes", bytes.len());

    // ---- consumer side ----
    println!("3. the consumer decodes (checking referential integrity");
    println!("   symbol-by-symbol) and re-verifies");
    let decoded = pipeline.decode(&bytes)?;

    println!("4. execute");
    let outcome = pipeline.run(&decoded, "Main.main")?;
    println!("--- program output ---");
    print!("{}", outcome.output);
    println!("--- result: {:?} ---", outcome.result?);

    // Every stage recorded into the pipeline's registry.
    println!(
        "stage counters: {}",
        pipeline.metrics().summary_line(&[
            "frontend.tokens",
            "ssa.instrs",
            "opt.instrs.after",
            "codec.total_bytes",
            "vm.steps",
        ])
    );
    Ok(())
}
