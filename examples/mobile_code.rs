//! Mobile-code scenario: a producer ships optimized SafeTSA over an
//! untrusted channel; the consumer decodes, verifies, and runs it —
//! and a man-in-the-middle's bit flips are either rejected outright or
//! produce a *different but still type-safe* program (never an unsafe
//! one). Compares the transport size against Java class files.
//!
//! ```sh
//! cargo run --example mobile_code
//! ```

use safetsa_codec::{decode_and_verify, encode_module, HostEnv};
use safetsa_vm::Vm;

const SOURCE: &str = r#"
class Message {
    int[] payload;
    int checksum;
    Message(int n) {
        payload = new int[n];
        for (int i = 0; i < n; i++) payload[i] = i * 31 + 7;
        checksum = fold();
    }
    int fold() {
        int acc = 0;
        for (int i = 0; i < payload.length; i++) acc = acc * 33 + payload[i];
        return acc;
    }
}
class Main {
    static int main() {
        Message m = new Message(64);
        boolean intact = m.checksum == m.fold();
        Sys.println(intact);
        Sys.println(m.checksum);
        return m.checksum;
    }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Producer.
    let prog = safetsa_frontend::compile(SOURCE)?;
    let lowered = safetsa_ssa::lower_program(&prog)?;
    let mut module = lowered.module;
    safetsa_opt::optimize_module(&mut module);
    safetsa_core::verify::verify_module(&module)?;
    let wire = encode_module(&module)?;

    // Baseline transport size (Java class files for the same program).
    let mut bcode = safetsa_baseline::compile::compile_program(&prog);
    safetsa_baseline::verify::verify_program(&prog, &mut bcode)?;
    let classfile_bytes = safetsa_baseline::classfile::total_size(&prog, &bcode);
    println!("transport size:");
    println!("  Java class files: {classfile_bytes} bytes");
    println!("  SafeTSA (optimized): {} bytes", wire.len());
    println!();

    // Honest consumer.
    let host = HostEnv::standard();
    let module = decode_and_verify(&wire, &host)?;
    let mut vm = Vm::load(&module)?;
    let r = vm.run_entry("Main.main")?;
    println!("honest transport executed fine: result {r:?}");
    print!("{}", vm.output.text());
    println!();

    // Adversary: flip every 13th bit, one at a time.
    let mut rejected = 0;
    let mut still_safe = 0;
    for bit in (0..wire.len() * 8).step_by(13) {
        let mut evil = wire.clone();
        evil[bit / 8] ^= 1 << (7 - bit % 8);
        match decode_and_verify(&evil, &host) {
            Err(_) => rejected += 1,
            Ok(_) => still_safe += 1, // decoded AND passed the verifier:
                                      // a different, but type-safe, program
        }
    }
    println!("adversarial single-bit flips: {rejected} rejected,");
    println!("{still_safe} decoded to a (different but) type-safe program.");
    println!("No mutation can produce an accepted unsafe program: type");
    println!("separation and (l-r) references make such programs");
    println!("unrepresentable, and the residual checks reject the rest.");
    Ok(())
}
