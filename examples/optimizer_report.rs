//! Producer-side optimization close-up: shows a function before and
//! after constprop + CSE(Mem) + DCE, with the eliminated null checks
//! the format then transports tamper-proof (§8's headline capability).
//!
//! ```sh
//! cargo run --example optimizer_report
//! ```

use safetsa_core::pretty;
use safetsa_opt::{optimize_function, Passes};

const SOURCE: &str = r#"
class Point {
    int x; int y;
}
class Geometry {
    static int manhattan(Point p, Point q) {
        // p and q are each dereferenced multiple times: the naive
        // SafeTSA form null-checks every access; CSE keeps one check
        // per object and reuses the safe-ref value.
        int dx = p.x - q.x;
        int dy = p.y - q.y;
        int c = 2 + 3;
        return (dx < 0 ? -dx : dx) + (dy < 0 ? -dy : dy) + c - 5;
    }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let prog = safetsa_frontend::compile(SOURCE)?;
    let lowered = safetsa_ssa::lower_program(&prog)?;
    let module = lowered.module;
    let fid = module
        .find_function("Geometry.manhattan")
        .expect("function exists");
    let f = module.function(fid);

    println!("=== before optimization ===");
    print!("{}", pretty::safetsa(&module.types, f));
    println!();

    let (g, stats) = optimize_function(&module.types, f, Passes::ALL);
    println!("=== after constprop + CSE(Mem) + DCE ===");
    print!("{}", pretty::safetsa(&module.types, &g));
    println!();

    println!("=== statistics ===");
    println!(
        "instructions: {} -> {}",
        stats.instrs_before, stats.instrs_after
    );
    println!(
        "null checks:  {} -> {}   (transported tamper-proof!)",
        stats.null_checks_before, stats.null_checks_after
    );
    println!(
        "removed by:   constprop {}, cse {}, dce {}",
        stats.removed_by_constprop, stats.removed_by_cse, stats.removed_by_dce
    );
    Ok(())
}
