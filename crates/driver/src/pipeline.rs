//! The unified pipeline facade.
//!
//! Historically every stage grew `_with`/`_traced` variants and each
//! driver wired them together by hand. [`Pipeline`] is the one front
//! door: configure it once (passes, telemetry, resource limits), then
//! call [`Pipeline::compile_source`], [`Pipeline::encode`],
//! [`Pipeline::decode`], [`Pipeline::run`]. Every method records into
//! the pipeline's [`Telemetry`] registry (free when disabled) and
//! reports failures through the unified [`Error`].

use crate::store::{
    self, passes_fingerprint, CacheKey, RecordKind, Store, StoreOptions, UnitIdentity, UnitRecord,
};
use crate::Error;
use safetsa_analysis::FactSummary;
use safetsa_codec::{decode_function_section, encode_function_section, HostEnv};
use safetsa_core::verify::{verify_module, VerifyStats};
use safetsa_core::Module;
use safetsa_frontend::hir::Program;
use safetsa_opt::{record_stats, OptStats, Passes};
use safetsa_rt::Value;
use safetsa_ssa::Lowered;
use safetsa_telemetry::Telemetry;
use safetsa_vm::{Engine, ResourceLimits, Vm, VmError, VmProfile};
use std::path::Path;
use std::sync::Mutex;

/// A configured SafeTSA pipeline: one object that can take source text
/// all the way to wire bytes and back to an executed result.
///
/// # Examples
///
/// ```
/// use safetsa_driver::Pipeline;
///
/// let pipeline = Pipeline::new();
/// let module = pipeline.compile_source(
///     "class M { static int main() { return 6 * 7; } }",
/// )?;
/// let bytes = pipeline.encode(&module)?;
/// let decoded = pipeline.decode(&bytes)?;
/// let outcome = pipeline.run(&decoded, "M.main")?;
/// assert_eq!(outcome.result?, Some(safetsa_rt::Value::I(42)));
/// # Ok::<(), safetsa_driver::Error>(())
/// ```
#[derive(Debug, Default)]
pub struct Pipeline {
    passes: PassConfig,
    tm: Telemetry,
    limits: ResourceLimits,
    deadline: Option<std::time::Instant>,
    profile_every: Option<u32>,
    engine: Engine,
    store: Option<Store>,
    unit_outcomes: Mutex<Vec<UnitOutcome>>,
}

/// One unit's fate in the last cached compile — what
/// `safetsa compile --explain-cache` reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitOutcome {
    /// The unit's stable identity (`Class.method`).
    pub name: String,
    /// Whether the unit was reused from the store.
    pub reused: bool,
    /// Why: `hit`, `new` (never seen), `body-changed`, `dep-changed`
    /// (same body, a referenced layout moved), or `evicted` (signature
    /// unchanged but the record was gone or unreadable).
    pub why: &'static str,
}

/// Producer-side optimization setting.
#[derive(Debug, Clone, Copy)]
enum PassConfig {
    /// Run the optimizer with these passes.
    Optimize(Passes),
    /// Skip the optimizer stage entirely (no `opt.*` metrics recorded).
    Skip,
}

impl Default for PassConfig {
    fn default() -> Self {
        PassConfig::Optimize(Passes::ALL)
    }
}

/// What [`Pipeline::run`] produced: the program's printed output plus
/// either its result value or the execution failure. Output and the
/// recorded `vm.*` metrics are available even when execution trapped,
/// so drivers can still print what the program managed to say.
#[derive(Debug)]
pub struct RunOutcome {
    /// The entry point's return value, or the trap/exhaustion error.
    pub result: Result<Option<Value>, Error>,
    /// Everything the program printed.
    pub output: String,
    /// The VM's sampling profile, when [`Pipeline::profile_every`] was
    /// configured — present even when execution trapped or ran past its
    /// deadline (the at-kill-time sample is the point).
    pub profile: Option<VmProfile>,
}

impl Pipeline {
    /// A pipeline with the paper's defaults: all optimization passes,
    /// disabled telemetry, unlimited resource budgets.
    pub fn new() -> Pipeline {
        Pipeline::default()
    }

    /// Selects the producer-side optimization passes.
    #[must_use]
    pub fn passes(mut self, passes: Passes) -> Pipeline {
        self.passes = PassConfig::Optimize(passes);
        self
    }

    /// Disables the optimizer stage entirely: [`Pipeline::compile_source`]
    /// returns the freshly constructed SSA and records no `opt.*`
    /// metrics (what the CLI's `--no-opt` and `dump`/`analyze` want).
    #[must_use]
    pub fn no_optimize(mut self) -> Pipeline {
        self.passes = PassConfig::Skip;
        self
    }

    /// Installs a telemetry registry; pass [`Telemetry::enabled`] to
    /// collect per-stage metrics, which [`Pipeline::metrics`] exposes.
    #[must_use]
    pub fn telemetry(mut self, tm: Telemetry) -> Pipeline {
        self.tm = tm;
        self
    }

    /// Sets the consumer-side resource budgets applied by
    /// [`Pipeline::run`].
    #[must_use]
    pub fn limits(mut self, limits: ResourceLimits) -> Pipeline {
        self.limits = limits;
        self
    }

    /// Sets a wall-clock deadline for [`Pipeline::run`]: the VM checks
    /// the clock every fuel slice (see [`safetsa_vm::DEADLINE_SLICE`])
    /// and aborts with a `deadline_exceeded` failure once it passes.
    /// The serve daemon stamps each request with its admission deadline
    /// this way, so no request can hold a worker forever.
    #[must_use]
    pub fn deadline(mut self, deadline: std::time::Instant) -> Pipeline {
        self.deadline = Some(deadline);
        self
    }

    /// Selects the VM execution engine used by [`Pipeline::run`]. The
    /// default is [`Engine::Threaded`] (the pre-decoded direct-threaded
    /// core); [`Engine::Switch`] keeps the original match-on-enum
    /// interpreter available as a differential oracle.
    #[must_use]
    pub fn engine(mut self, engine: Engine) -> Pipeline {
        self.engine = engine;
        self
    }

    /// Turns on the VM sampling profiler for [`Pipeline::run`]: every
    /// `every_slices` fuel slices the VM records the current function
    /// and opcode window (see [`safetsa_vm::VmProfile`]), and the
    /// resulting profile is returned in [`RunOutcome::profile`].
    #[must_use]
    pub fn profile_every(mut self, every_slices: u32) -> Pipeline {
        self.profile_every = Some(every_slices);
        self
    }

    /// Attaches the method-granular incremental store rooted at `dir`
    /// (created if missing): [`Pipeline::compile_source`] /
    /// [`Pipeline::compile_sources`] then reuse per-method optimized
    /// sections whose body and dependency-signature hashes match a
    /// stored unit, recompiling only what an edit invalidated — with
    /// output byte-identical to a cold build. Per-unit outcomes land in
    /// [`Pipeline::cache_report`] and the `cache.unit.*` telemetry
    /// counters.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] when the store directory cannot be opened.
    pub fn cache(mut self, dir: impl AsRef<Path>) -> Result<Pipeline, Error> {
        self.store = Some(Store::open(dir.as_ref(), StoreOptions::default())?);
        Ok(self)
    }

    /// The failure the compile-side stages report when the configured
    /// deadline has already passed — callers that run multi-stage work
    /// (the serve daemon's workers) call this between stages so compile
    /// requests respect deadlines too, not just VM execution.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Vm`] with
    /// [`VmError::DeadlineExceeded`] iff the deadline has passed.
    pub fn check_deadline(&self) -> Result<(), Error> {
        match self.deadline {
            Some(d) if std::time::Instant::now() >= d => {
                Err(Error::Vm(VmError::DeadlineExceeded))
            }
            _ => Ok(()),
        }
    }

    /// The registry every stage records into.
    pub fn metrics(&self) -> &Telemetry {
        &self.tm
    }

    /// Consumes the pipeline, handing back its registry — the shape
    /// [`crate::batch::run_batch`] work closures return per task.
    pub fn into_metrics(self) -> Telemetry {
        self.tm
    }

    /// Front end only: source files to one resolved program (shared
    /// class space).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Compile`].
    pub fn frontend(&self, srcs: &[&str]) -> Result<Program, Error> {
        Ok(self
            .tm
            .span("frontend", || safetsa_frontend::compile_sources(srcs, &self.tm))?)
    }

    /// SSA construction only (no optimization, no verification).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Lower`].
    pub fn lower(&self, prog: &Program) -> Result<Lowered, Error> {
        Ok(self
            .tm
            .span("lower", || safetsa_ssa::construct(prog, &self.tm))?)
    }

    /// Compiles one source file to a verified (and, per the pipeline's
    /// configuration, optimized) SafeTSA module.
    ///
    /// # Errors
    ///
    /// Returns the first stage failure.
    pub fn compile_source(&self, src: &str) -> Result<Module, Error> {
        self.compile_sources(&[src])
    }

    /// Compiles several source files as one program: front end → SSA
    /// construction → producer optimization → verification.
    ///
    /// # Errors
    ///
    /// Returns the first stage failure.
    pub fn compile_sources(&self, srcs: &[&str]) -> Result<Module, Error> {
        self.tm.span("compile", || {
            // Deadline checks sit at stage boundaries: each stage is
            // bounded by the input size, so this is enough to keep compile
            // requests from holding a serve worker past their deadline.
            self.check_deadline()?;
            let prog = self.frontend(srcs)?;
            self.check_deadline()?;
            let mut module = self.lower(&prog)?.module;
            self.check_deadline()?;
            self.optimize(&mut module);
            self.check_deadline()?;
            self.verify(&module)?;
            Ok(module)
        })
    }

    /// Per-unit outcomes of the last cached compile (empty without a
    /// [`Pipeline::cache`] store): which methods were reused, which
    /// recompiled, and why.
    pub fn cache_report(&self) -> Vec<UnitOutcome> {
        self.unit_outcomes.lock().map(|v| v.clone()).unwrap_or_default()
    }

    /// The incremental optimize stage: consult the store per unit,
    /// splice reused sections, recompile the rest, and store what was
    /// fresh. Metric totals (the `opt.*` plane) match a cold build
    /// exactly because reused units replay the per-unit [`OptStats`]
    /// the original compilation recorded.
    fn optimize_incremental(&self, store: &Store, m: &mut Module, passes: Passes) -> OptStats {
        self.tm.span("optimize", || {
            let Ok(plan) = store::unit_plan(m) else {
                // Planning failure (an unencodable body — never the
                // case for lowered modules) degrades to the plain path.
                return safetsa_opt::optimize(m, passes, &self.tm);
            };
            let fingerprint = passes_fingerprint(&passes);
            let mut outcomes = Vec::with_capacity(plan.len());
            let (mut hits, mut misses, mut invalidated) = (0u64, 0u64, 0u64);
            let (total, facts) = self.tm.time("opt.optimize_ns", || {
                let mut total = OptStats::default();
                let mut facts = FactSummary::default();
                for u in &plan {
                    let mut content = [0u8; 16];
                    content[..8].copy_from_slice(&u.body_hash.to_le_bytes());
                    content[8..].copy_from_slice(&u.deps_hash.to_le_bytes());
                    let key =
                        CacheKey::new(RecordKind::Unit, self.engine, &fingerprint, &content);
                    let ident_key = CacheKey::new(
                        RecordKind::UnitIdentity,
                        self.engine,
                        &fingerprint,
                        u.name.as_bytes(),
                    );
                    // A stored section that fails to decode against the
                    // fresh type table is corruption: treat as a miss.
                    let cached = store.get_unit(&key).and_then(|rec| {
                        decode_function_section(&rec.section, &mut m.types, u.class, u.method_idx)
                            .ok()
                            .map(|f| (f, rec))
                    });
                    match cached {
                        Some((f, rec)) => {
                            m.functions[u.func] = f;
                            total.add(&rec.stats);
                            facts.add(&rec.facts);
                            hits += 1;
                            outcomes.push(UnitOutcome {
                                name: u.name.clone(),
                                reused: true,
                                why: "hit",
                            });
                        }
                        None => {
                            misses += 1;
                            let why = match store.get_identity(&ident_key) {
                                None => "new",
                                Some(prev) if prev.body_hash != u.body_hash => "body-changed",
                                Some(prev) if prev.deps_hash != u.deps_hash => {
                                    invalidated += 1;
                                    "dep-changed"
                                }
                                Some(_) => "evicted",
                            };
                            let (g, stats) = safetsa_opt::optimize_function(
                                &m.types,
                                &m.functions[u.func],
                                passes,
                            );
                            let fsum = safetsa_analysis::summarize(&m.types, &g);
                            if let Ok((section, _)) = encode_function_section(&m.types, &g) {
                                store.put_unit_degrading(
                                    &key,
                                    &UnitRecord {
                                        section,
                                        stats,
                                        facts: fsum,
                                    },
                                );
                            }
                            m.functions[u.func] = g;
                            total.add(&stats);
                            facts.add(&fsum);
                            outcomes.push(UnitOutcome {
                                name: u.name.clone(),
                                reused: false,
                                why,
                            });
                        }
                    }
                    store.put_identity_degrading(
                        &ident_key,
                        &UnitIdentity {
                            body_hash: u.body_hash,
                            deps_hash: u.deps_hash,
                        },
                    );
                }
                (total, facts)
            });
            record_stats(&total, &passes, &self.tm);
            record_facts(&facts, &self.tm);
            self.tm.add("cache.unit.hits", hits);
            self.tm.add("cache.unit.misses", misses);
            self.tm.add("cache.unit.invalidated_by_dep", invalidated);
            if let Ok(mut slot) = self.unit_outcomes.lock() {
                *slot = outcomes;
            }
            total
        })
    }

    /// Runs the configured optimization passes in place (a no-op under
    /// [`Pipeline::no_optimize`]). With a [`Pipeline::cache`] store
    /// attached this is the incremental path: units whose body and
    /// dependency signatures match a stored record are spliced in
    /// instead of re-optimized.
    pub fn optimize(&self, m: &mut Module) -> OptStats {
        match (&self.store, self.passes) {
            (Some(store), PassConfig::Optimize(passes)) => {
                self.optimize_incremental(store, m, passes)
            }
            (None, PassConfig::Optimize(passes)) => self
                .tm
                .span("optimize", || safetsa_opt::optimize(m, passes, &self.tm)),
            (_, PassConfig::Skip) => OptStats::default(),
        }
    }

    /// Verifies a module, timing the pass under `verify.module_ns`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Verify`].
    pub fn verify(&self, m: &Module) -> Result<VerifyStats, Error> {
        Ok(self.tm.span("verify", || {
            self.tm.time("verify.module_ns", || verify_module(m))
        })?)
    }

    /// Encodes a module to its wire form, recording the codec plane.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Encode`].
    pub fn encode(&self, m: &Module) -> Result<Vec<u8>, Error> {
        Ok(self.tm.span("encode", || safetsa_codec::encode(m, &self.tm))?)
    }

    /// Decodes and verifies wire bytes against the standard host
    /// environment, timing the pass under `codec.decode_ns`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Decode`].
    pub fn decode(&self, bytes: &[u8]) -> Result<Module, Error> {
        self.tm.set("codec.total_bytes", bytes.len() as u64);
        let host = HostEnv::standard();
        Ok(self.tm.span("decode", || {
            self.tm.time("codec.decode_ns", || {
                safetsa_codec::decode_and_verify(bytes, &host)
            })
        })?)
    }

    /// Executes `entry` (`"Class.method"`) under the configured
    /// resource limits. Dynamic statistics collection is enabled iff
    /// the pipeline's telemetry is, and the VM plane (`vm.*`) is
    /// exported into the registry whether or not execution succeeded.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Vm`] when the module cannot be *loaded*;
    /// execution failures land in [`RunOutcome::result`] so the
    /// program's output survives them.
    pub fn run(&self, m: &Module, entry: &str) -> Result<RunOutcome, Error> {
        let mut vm = self.tm.span("vm.load", || Vm::load(m).map_err(Error::Vm))?;
        if self.tm.is_enabled() {
            vm.enable_stats();
        }
        vm.set_engine(self.engine);
        vm.set_limits(self.limits);
        if let Some(d) = self.deadline {
            vm.set_deadline(d);
        }
        if let Some(every) = self.profile_every {
            vm.enable_profiler(every);
        }
        let result: Result<Option<Value>, VmError> =
            self.tm.span("vm.run", || vm.run_entry(entry));
        vm.export_metrics(&self.tm);
        let profile = self.profile_every.map(|_| vm.take_profile());
        Ok(RunOutcome {
            result: result.map_err(Error::Vm),
            output: vm.output.text().to_string(),
            profile,
        })
    }
}

/// Records one [`FactSummary`] into the `facts.*` counter plane — the
/// shared-analysis payoff made visible: on a warm run these counters
/// replay from the store without re-running any fixpoint.
fn record_facts(s: &FactSummary, tm: &Telemetry) {
    if !tm.is_enabled() {
        return;
    }
    tm.add("facts.nullness.facts", s.nullness_facts);
    tm.add("facts.nullness.iterations", s.nullness_iterations);
    tm.add("facts.range.facts", s.range_facts);
    tm.add("facts.range.iterations", s.range_iterations);
    tm.add("facts.liveness.live", s.live_values);
    tm.add("facts.liveness.iterations", s.liveness_iterations);
    tm.add("facts.alias.sites", s.alias_sites);
    tm.add("facts.alias.facts", s.alias_facts);
    tm.add("facts.alias.iterations", s.alias_iterations);
    tm.add("facts.escape.no", s.escape_no);
    tm.add("facts.escape.arg", s.escape_arg);
    tm.add("facts.escape.global", s.escape_global);
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "class A {
        static int main() {
            int[] v = new int[4];
            for (int i = 0; i < 4; i++) v[i] = i * i;
            return v[3];
        }
    }";

    #[test]
    fn facade_round_trips_source_to_result() {
        let p = Pipeline::new().telemetry(Telemetry::enabled());
        let module = p.compile_source(SRC).unwrap();
        let bytes = p.encode(&module).unwrap();
        let decoded = p.decode(&bytes).unwrap();
        let outcome = p.run(&decoded, "A.main").unwrap();
        assert_eq!(outcome.result.unwrap(), Some(Value::I(9)));
        // Every stage recorded into the one registry.
        for key in [
            "frontend.tokens",
            "ssa.instrs",
            "opt.instrs.after",
            "verify.module_ns",
            "codec.total_bytes",
            "vm.steps",
        ] {
            assert!(p.metrics().counter(key).is_some(), "missing {key}");
        }
    }

    #[test]
    fn no_optimize_skips_the_opt_plane() {
        let p = Pipeline::new().no_optimize().telemetry(Telemetry::enabled());
        p.compile_source(SRC).unwrap();
        assert_eq!(p.metrics().counter("opt.instrs.after"), None);
        assert!(p.metrics().counter("ssa.instrs").is_some());
    }

    #[test]
    fn stages_emit_a_nested_span_tree() {
        let p = Pipeline::new()
            .telemetry(Telemetry::with_trace())
            .profile_every(1);
        let module = p.compile_source(SRC).unwrap();
        let bytes = p.encode(&module).unwrap();
        let decoded = p.decode(&bytes).unwrap();
        let outcome = p.run(&decoded, "A.main").unwrap();
        assert_eq!(outcome.result.unwrap(), Some(Value::I(9)));
        assert!(outcome.profile.is_some());
        let spans = p.metrics().trace_spans();
        let find = |name: &str| {
            spans
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("no span {name}"))
        };
        let compile = find("compile");
        assert_eq!(compile.parent, None);
        for stage in ["frontend", "lower", "optimize", "verify"] {
            assert_eq!(find(stage).parent, Some(compile.id), "{stage}");
        }
        for stage in ["encode", "decode", "vm.load", "vm.run"] {
            assert_eq!(find(stage).parent, None, "{stage}");
        }
        // The metrics document is unchanged by tracing: no span leaks
        // into the counter plane.
        assert!(p.metrics().counter("vm.steps").is_some());
    }

    #[test]
    fn run_reports_limits_through_outcome_not_load() {
        let p = Pipeline::new().limits(ResourceLimits {
            fuel: Some(3),
            max_heap_bytes: None,
            max_call_depth: None,
        });
        let module = p.compile_source(SRC).unwrap();
        let outcome = p.run(&module, "A.main").unwrap();
        assert!(matches!(
            outcome.result,
            Err(Error::Vm(VmError::FuelExhausted))
        ));
    }
}
