//! Content-addressed module cache.
//!
//! SafeTSA compilation is a *pure function* of (source text, pass
//! configuration, wire-format version): the front end, the SSA
//! construction, and every producer pass are deterministic, consult no
//! ambient state, and the encoder's output is a function of the module
//! alone. That makes the encoded `.tsa` bytes (plus the metrics the
//! compilation recorded) safely reusable whenever all three inputs are
//! unchanged — so the cache key is an FNV-1a hash over exactly those
//! three, and a hit is sound by construction. See DESIGN.md ("Batch
//! driver & cache") for the full argument.
//!
//! Entries are single files under the cache directory, named by the
//! 64-bit key in hex, holding a version-stamped header, the wire bytes,
//! and the flat-serialized telemetry registry. Any corruption — a
//! truncated write, a foreign file, a stale entry version — reads as a
//! *miss*, never an error: the cache is an accelerator, not a source of
//! truth.

use safetsa_opt::{MemModel, Passes};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Entry-format version stamped into every cache file; bump on any
/// layout change so stale entries read as misses.
const ENTRY_MAGIC: &str = "safetsa-cache/1";

/// The FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// The FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice, continuing from `state`. Start from
/// [`FNV_OFFSET`] via [`fnv1a`].
fn fnv1a_continue(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// FNV-1a 64-bit hash of a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_continue(FNV_OFFSET, bytes)
}

/// Renders a [`Passes`] configuration as a stable fingerprint string.
/// Every knob that changes the produced module must appear here — a
/// missed knob would alias two distinct compilations onto one key.
pub fn passes_fingerprint(passes: &Passes) -> String {
    format!(
        "cp{}-cse{}-ce{}-lf{}-dse{}-dce{}-mem{}",
        u8::from(passes.constprop),
        u8::from(passes.cse),
        u8::from(passes.checkelim),
        u8::from(passes.loadfwd),
        u8::from(passes.dse),
        u8::from(passes.dce),
        match passes.mem {
            MemModel::Monolithic => "mono",
            MemModel::FieldPartitioned => "field",
        },
    )
}

/// A content-addressed cache rooted at one directory.
#[derive(Debug, Clone)]
pub struct Cache {
    dir: PathBuf,
}

impl Cache {
    /// Opens (creating if needed) a cache directory.
    ///
    /// # Errors
    ///
    /// Returns the `create_dir_all` failure.
    pub fn open(dir: &Path) -> std::io::Result<Cache> {
        std::fs::create_dir_all(dir)?;
        Ok(Cache {
            dir: dir.to_path_buf(),
        })
    }

    /// Computes the content-addressed key: FNV-1a over the entry-format
    /// magic, the wire-format version, the caller's configuration
    /// fingerprint (pass knobs plus any driver-level salt), and the
    /// source bytes, with NUL separators so field boundaries cannot
    /// alias.
    pub fn key(fingerprint: &str, source: &[u8]) -> u64 {
        let mut state = fnv1a(ENTRY_MAGIC.as_bytes());
        state = fnv1a_continue(state, &[safetsa_codec::layout::VERSION, 0]);
        state = fnv1a_continue(state, fingerprint.as_bytes());
        state = fnv1a_continue(state, &[0]);
        fnv1a_continue(state, source)
    }

    fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.tsac"))
    }

    /// Looks up a key, returning the cached wire bytes and the
    /// flat-serialized metrics text. Any read failure or corruption is
    /// a miss (`None`).
    pub fn load(&self, key: u64) -> Option<(Vec<u8>, String)> {
        let data = std::fs::read(self.entry_path(key)).ok()?;
        // Header: "safetsa-cache/1\nkey <hex>\nbytes <len>\n".
        let mut rest = data.as_slice();
        let line = |rest: &mut &[u8]| -> Option<String> {
            let nl = rest.iter().position(|&b| b == b'\n')?;
            let text = std::str::from_utf8(&rest[..nl]).ok()?.to_string();
            *rest = &rest[nl + 1..];
            Some(text)
        };
        if line(&mut rest)? != ENTRY_MAGIC {
            return None;
        }
        let key_line = line(&mut rest)?;
        if key_line.strip_prefix("key ")? != format!("{key:016x}") {
            return None;
        }
        let nbytes: usize = line(&mut rest)?.strip_prefix("bytes ")?.parse().ok()?;
        if rest.len() < nbytes {
            return None;
        }
        let bytes = rest[..nbytes].to_vec();
        rest = &rest[nbytes..];
        let nmetrics: usize = line(&mut rest)?.strip_prefix("metrics ")?.parse().ok()?;
        if rest.len() != nmetrics {
            return None;
        }
        let metrics = std::str::from_utf8(rest).ok()?.to_string();
        Some((bytes, metrics))
    }

    /// Stores an entry. The write goes to a temporary sibling first and
    /// is renamed into place, so a concurrent worker (or a crash) never
    /// observes a torn entry.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O failure.
    pub fn store(&self, key: u64, bytes: &[u8], metrics: &str) -> std::io::Result<()> {
        let path = self.entry_path(key);
        let tmp = path.with_extension(format!("tmp{}", std::process::id()));
        {
            let mut f = std::fs::File::create(&tmp)?;
            writeln!(f, "{ENTRY_MAGIC}")?;
            writeln!(f, "key {key:016x}")?;
            writeln!(f, "bytes {}", bytes.len())?;
            f.write_all(bytes)?;
            writeln!(f, "metrics {}", metrics.len())?;
            f.write_all(metrics.as_bytes())?;
        }
        std::fs::rename(&tmp, &path)
    }

    /// Stores an entry, degrading instead of failing: a vanished cache
    /// directory is recreated and the write retried once; any remaining
    /// I/O failure (directory gone again, filesystem readonly or full)
    /// is swallowed. Returns whether the entry was actually written, so
    /// callers can count degradations — the cache is an accelerator,
    /// and a concurrent `rm -rf` of it must cost a counter increment,
    /// never a failed compilation.
    pub fn store_degrading(&self, key: u64, bytes: &[u8], metrics: &str) -> bool {
        if self.store(key, bytes, metrics).is_ok() {
            return true;
        }
        // The common mid-run fault: the directory was removed under us.
        if std::fs::create_dir_all(&self.dir).is_err() {
            return false;
        }
        self.store(key, bytes, metrics).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn key_depends_on_all_three_inputs() {
        let base = Cache::key("cfg", b"class A {}");
        assert_ne!(base, Cache::key("cfg2", b"class A {}"));
        assert_ne!(base, Cache::key("cfg", b"class B {}"));
        // Field boundaries cannot alias: moving a byte across the
        // separator changes the key.
        assert_ne!(Cache::key("ab", b"c"), Cache::key("a", b"bc"));
    }

    #[test]
    fn round_trip_store_load_and_corruption_is_a_miss() {
        let dir = std::env::temp_dir().join(format!("safetsa-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = Cache::open(&dir).unwrap();
        let key = Cache::key("cfg", b"src");
        assert!(cache.load(key).is_none());
        cache.store(key, &[1, 2, 3], "c a.b 4\n").unwrap();
        assert_eq!(cache.load(key), Some((vec![1, 2, 3], "c a.b 4\n".into())));
        // Truncate the entry: reads as a miss, not an error.
        let path = dir.join(format!("{key:016x}.tsac"));
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 2]).unwrap();
        assert!(cache.load(key).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn vanished_directory_degrades_instead_of_failing() {
        let dir = std::env::temp_dir().join(format!(
            "safetsa-cache-degrade-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = Cache::open(&dir).unwrap();
        let key = Cache::key("cfg", b"src");
        // Directory removed mid-run: load degrades to a miss, and
        // store_degrading recreates the directory and succeeds.
        std::fs::remove_dir_all(&dir).unwrap();
        assert!(cache.load(key).is_none());
        assert!(cache.store_degrading(key, &[9, 9], "c a.b 1\n"));
        assert_eq!(cache.load(key), Some((vec![9, 9], "c a.b 1\n".into())));
        // Directory replaced by a plain file (stands in for a readonly
        // or otherwise unusable mount — root ignores permission bits,
        // so a chmod-based test would be vacuous here): store degrades
        // to "not written" rather than erroring, load is a miss.
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::write(&dir, b"not a directory").unwrap();
        assert!(!cache.store_degrading(key, &[9, 9], "c a.b 1\n"));
        assert!(cache.load(key).is_none());
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn fingerprint_distinguishes_pass_configs() {
        let all = passes_fingerprint(&Passes::ALL);
        let none = passes_fingerprint(&Passes::NONE);
        let field = passes_fingerprint(&Passes::ALL_FIELD_MEM);
        assert_ne!(all, none);
        assert_ne!(all, field);
    }
}
