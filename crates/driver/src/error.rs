//! The unified error type for the whole pipeline.
//!
//! Every stage keeps its own precise error enum (a decode failure and a
//! VM trap are different beasts), but a *driver* — the CLI, the batch
//! compiler, a test harness — wants to propagate "some stage failed"
//! through one type instead of five ad-hoc conversions. [`Error`] wraps
//! each stage error losslessly: `Display` prefixes the stage,
//! [`std::error::Error::source`] exposes the wrapped error for callers
//! that want to downcast.

use safetsa_codec::{DecodeError, EncodeError};
use safetsa_core::verify::VerifyError;
use safetsa_frontend::span::CompileError;
use safetsa_ssa::LowerError;
use safetsa_vm::VmError;
use std::fmt;

/// Any failure the SafeTSA pipeline can produce, from source text to
/// executed result, plus the I/O and usage failures a driver adds on
/// top.
#[derive(Debug)]
pub enum Error {
    /// The front end rejected the source (lexer/parser/sema).
    Compile(CompileError),
    /// SSA construction hit a broken HIR invariant.
    Lower(LowerError),
    /// The module failed verification.
    Verify(VerifyError),
    /// The encoder refused an unverified-shape module.
    Encode(EncodeError),
    /// The decoder rejected the wire stream.
    Decode(DecodeError),
    /// Loading or executing the module failed.
    Vm(VmError),
    /// Reading sources or writing artifacts failed.
    Io(std::io::Error),
    /// The driver was invoked incorrectly (bad flags, missing inputs).
    Usage(String),
    /// A pipeline stage panicked and the panic was isolated at a task
    /// or request boundary (the batch driver and the serve daemon catch
    /// unwinds so one fault cannot take down sibling work). The payload
    /// is the panic message.
    Panic(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Compile(e) => write!(f, "compile error: {e}"),
            // LowerError's own Display already carries its stage prefix.
            Error::Lower(e) => write!(f, "{e}"),
            Error::Verify(e) => write!(f, "verify error: {e}"),
            Error::Encode(e) => write!(f, "encode error: {e}"),
            Error::Decode(e) => write!(f, "decode error: {e}"),
            Error::Vm(e) => write!(f, "{e}"),
            Error::Io(e) => write!(f, "{e}"),
            Error::Usage(msg) => write!(f, "{msg}"),
            Error::Panic(msg) => write!(f, "panicked: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Compile(e) => Some(e),
            Error::Lower(e) => Some(e),
            Error::Verify(e) => Some(e),
            Error::Encode(e) => Some(e),
            Error::Decode(e) => Some(e),
            Error::Vm(e) => Some(e),
            Error::Io(e) => Some(e),
            Error::Usage(_) => None,
            Error::Panic(_) => None,
        }
    }
}

impl Error {
    /// A stable machine-readable kind for this failure — the `kind`
    /// field of the serve protocol's error responses and the CLI's
    /// one-line `error[kind]` diagnostics. Resource-exhaustion traps
    /// get their own kinds so operators can tell a hostile program from
    /// a broken one without parsing prose.
    pub fn kind(&self) -> &'static str {
        match self {
            Error::Compile(_) => "compile",
            Error::Lower(_) => "lower",
            Error::Verify(_) => "verify",
            Error::Encode(_) => "encode",
            Error::Decode(_) => "decode",
            Error::Vm(VmError::Load(_)) => "vm_load",
            Error::Vm(VmError::FuelExhausted) => "fuel_exhausted",
            Error::Vm(VmError::DeadlineExceeded) => "deadline_exceeded",
            Error::Vm(VmError::Uncaught(_)) => "vm_trap",
            Error::Vm(VmError::Internal(_)) => "vm_internal",
            Error::Io(_) => "io",
            Error::Usage(_) => "usage",
            Error::Panic(_) => "panic",
        }
    }

    /// Whether this failure is *request-level*: the input was
    /// well-formed enough to be attempted, and a different input (or a
    /// bigger budget) would have succeeded. The CLI maps request-level
    /// failures to exit 1 and everything else (usage / unbuildable
    /// input / I/O) to exit 2.
    pub fn is_request_level(&self) -> bool {
        matches!(
            self,
            Error::Verify(_) | Error::Encode(_) | Error::Decode(_) | Error::Vm(_) | Error::Panic(_)
        )
    }
}

impl From<CompileError> for Error {
    fn from(e: CompileError) -> Self {
        Error::Compile(e)
    }
}

impl From<LowerError> for Error {
    fn from(e: LowerError) -> Self {
        Error::Lower(e)
    }
}

impl From<VerifyError> for Error {
    fn from(e: VerifyError) -> Self {
        Error::Verify(e)
    }
}

impl From<EncodeError> for Error {
    fn from(e: EncodeError) -> Self {
        Error::Encode(e)
    }
}

impl From<DecodeError> for Error {
    fn from(e: DecodeError) -> Self {
        Error::Decode(e)
    }
}

impl From<VmError> for Error {
    fn from(e: VmError) -> Self {
        Error::Vm(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<String> for Error {
    fn from(msg: String) -> Self {
        Error::Usage(msg)
    }
}

impl From<&str> for Error {
    fn from(msg: &str) -> Self {
        Error::Usage(msg.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_prefixes_stage_and_source_exposes_inner() {
        let e: Error = LowerError("boom".into()).into();
        assert_eq!(e.to_string(), "ssa lowering: boom");
        assert_eq!(e.source().unwrap().to_string(), "ssa lowering: boom");
        let e: Error = DecodeError::UnexpectedEof.into();
        assert!(e.to_string().contains("unexpected end of stream"));
        assert!(e.source().is_some());
        let e: Error = "no input files".into();
        assert_eq!(e.to_string(), "no input files");
        assert!(e.source().is_none());
    }
}
