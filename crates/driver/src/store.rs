//! The method-granular incremental store.
//!
//! This module replaces the old whole-file `Cache` with a typed,
//! versioned analysis-sharing store (entry format `safetsa-cache/2`;
//! `safetsa-cache/1` leftovers read as misses). Three record kinds live
//! under one content-addressed namespace:
//!
//! * **Module records** — whole-file wire bytes plus the flat-serialized
//!   telemetry of the compilation that produced them; what
//!   [`crate::batch::run_batch`] and the serve daemon replay.
//! * **Unit records** — one per *method*: the standalone encoded
//!   function section (see `safetsa_codec::encode_function_section`),
//!   the per-unit [`OptStats`], and the [`FactSummary`] of the dataflow
//!   analyses. Keyed by the unit's body hash and dependency-signature
//!   hash, so reuse is validated structurally, not by file identity.
//! * **Unit-identity records** — the last seen `(body_hash, deps_hash)`
//!   per unit *name*, which is what lets `--explain-cache` say *why* a
//!   unit missed (new / body changed / dependency changed).
//!
//! Soundness of unit reuse (DESIGN.md "Incremental compilation"): a
//! method's compilation is a pure function of its own SSA body and of
//! the layouts of the classes it references. [`unit_plan`] hashes the
//! former as the standalone section encoding of the unoptimized body —
//! which by construction folds in every encoding-relevant property of
//! the type table (symbol cardinalities, member counts) — and the
//! latter as a structural digest of the referenced-class closure
//! (fields, method signatures, vtable shape, superclass chains, the
//! well-known host classes) plus the class count. The pass fingerprint,
//! engine, and wire-format version are folded into every key by
//! [`CacheKey::new`], so no caller can forget a component and alias two
//! distinct compilations.
//!
//! Every read treats corruption — truncated records, foreign files,
//! stale formats — as a *miss*, never an error; every write goes to a
//! temporary sibling first and is renamed into place. The store is an
//! accelerator, not a source of truth.

use crate::Error;
use safetsa_analysis::FactSummary;
use safetsa_codec::encode_function_section;
use safetsa_core::instr::Instr;
use safetsa_core::types::{ClassId, MethodKind, TypeId, TypeKind, TypeTable};
use safetsa_core::{Function, Module};
use safetsa_opt::{MemModel, OptStats, Passes};
use safetsa_vm::Engine;
use std::collections::BTreeSet;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Entry-format version stamped into every store file; bump on any
/// layout change so stale entries read as misses.
pub const STORE_MAGIC: &str = "safetsa-cache/2";

/// The FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// The FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice, continuing from `state`. Start from the
/// offset basis via [`fnv1a`].
fn fnv1a_continue(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// FNV-1a 64-bit hash of a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_continue(FNV_OFFSET, bytes)
}

/// Renders a [`Passes`] configuration as a stable fingerprint string.
/// Every knob that changes the produced module must appear here — a
/// missed knob would alias two distinct compilations onto one key.
pub fn passes_fingerprint(passes: &Passes) -> String {
    format!(
        "cp{}-cse{}-ce{}-lf{}-dse{}-dce{}-mem{}",
        u8::from(passes.constprop),
        u8::from(passes.cse),
        u8::from(passes.checkelim),
        u8::from(passes.loadfwd),
        u8::from(passes.dse),
        u8::from(passes.dce),
        match passes.mem {
            MemModel::Monolithic => "mono",
            MemModel::FieldPartitioned => "field",
        },
    )
}

/// What a store record holds. The kind token is part of the key, so the
/// three kinds cannot collide even for identical content.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// Whole-file wire bytes + compilation metrics.
    Module,
    /// One method's encoded section + opt stats + analysis facts.
    Unit,
    /// A unit's last-seen `(body_hash, deps_hash)` pair, keyed by name.
    UnitIdentity,
}

impl RecordKind {
    fn token(self) -> &'static str {
        match self {
            RecordKind::Module => "module",
            RecordKind::Unit => "unit",
            RecordKind::UnitIdentity => "ident",
        }
    }
}

/// A fully composed store key. The constructor folds in every
/// configuration axis — record kind, entry-format magic, wire-format
/// version, VM engine, pass fingerprint — ahead of the caller's
/// content, with NUL separators so field boundaries cannot alias.
/// Callers compose keys *only* through [`CacheKey::new`]; there is no
/// way to build one from a raw hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheKey {
    kind: RecordKind,
    hash: u64,
}

impl CacheKey {
    /// Composes a key from the configuration axes and the
    /// content-identifying bytes (source text for module records, the
    /// body/deps hashes for unit records, the unit name for identity
    /// records).
    pub fn new(kind: RecordKind, engine: Engine, fingerprint: &str, content: &[u8]) -> CacheKey {
        let mut state = fnv1a(STORE_MAGIC.as_bytes());
        state = fnv1a_continue(state, &[safetsa_codec::layout::VERSION, 0]);
        state = fnv1a_continue(state, kind.token().as_bytes());
        state = fnv1a_continue(state, &[0]);
        state = fnv1a_continue(state, engine.to_string().as_bytes());
        state = fnv1a_continue(state, &[0]);
        state = fnv1a_continue(state, fingerprint.as_bytes());
        state = fnv1a_continue(state, &[0]);
        let hash = fnv1a_continue(state, content);
        CacheKey { kind, hash }
    }

    /// The 64-bit content hash (names the entry file).
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// The record kind this key addresses.
    pub fn kind(&self) -> RecordKind {
        self.kind
    }
}

/// Store configuration.
#[derive(Debug, Clone, Copy)]
pub struct StoreOptions {
    /// Whether [`Store::open`] creates the directory when missing.
    pub create: bool,
}

impl Default for StoreOptions {
    fn default() -> StoreOptions {
        StoreOptions { create: true }
    }
}

/// A whole-file record: the encoded wire bytes plus the flat-serialized
/// telemetry of the compilation that produced them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleRecord {
    /// Encoded `.tsa` bytes.
    pub bytes: Vec<u8>,
    /// Flat telemetry export (`Telemetry::export_flat`).
    pub metrics: String,
}

/// A per-method record: everything needed to splice the method into a
/// fresh lowering without re-optimizing or re-analyzing it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitRecord {
    /// The optimized body, encoded standalone with
    /// `safetsa_codec::encode_function_section`.
    pub section: Vec<u8>,
    /// The optimizer statistics the original compilation recorded for
    /// this unit (replayed into the telemetry totals on reuse).
    pub stats: OptStats,
    /// The dataflow-analysis fact summary of the optimized body.
    pub facts: FactSummary,
}

/// A unit's last-seen signature, stored under its *name* so the next
/// compilation can explain why the unit hit or missed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnitIdentity {
    /// Hash of the standalone encoding of the unoptimized body.
    pub body_hash: u64,
    /// Structural digest of the referenced-class closure.
    pub deps_hash: u64,
}

/// The typed, versioned incremental store, rooted at one directory.
#[derive(Debug, Clone)]
pub struct Store {
    dir: PathBuf,
}

impl Store {
    /// Opens a store directory, creating it when
    /// [`StoreOptions::create`] is set (the default).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O failure (`create_dir_all`, or a
    /// missing directory with `create` off).
    pub fn open(dir: &Path, opts: StoreOptions) -> std::io::Result<Store> {
        if opts.create {
            std::fs::create_dir_all(dir)?;
        } else if !dir.is_dir() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("store directory {} does not exist", dir.display()),
            ));
        }
        Ok(Store {
            dir: dir.to_path_buf(),
        })
    }

    fn entry_path(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(format!("{:016x}.tsac", key.hash))
    }

    /// Reads and validates one record, returning its named sections in
    /// file order. Any corruption or version skew is `None`.
    fn read_record(&self, key: &CacheKey) -> Option<Vec<(String, Vec<u8>)>> {
        let data = std::fs::read(self.entry_path(key)).ok()?;
        let mut rest = data.as_slice();
        let line = |rest: &mut &[u8]| -> Option<String> {
            let nl = rest.iter().position(|&b| b == b'\n')?;
            let text = std::str::from_utf8(&rest[..nl]).ok()?.to_string();
            *rest = &rest[nl + 1..];
            Some(text)
        };
        if line(&mut rest)? != STORE_MAGIC {
            return None;
        }
        if line(&mut rest)?.strip_prefix("kind ")? != key.kind.token() {
            return None;
        }
        if line(&mut rest)?.strip_prefix("key ")? != format!("{:016x}", key.hash) {
            return None;
        }
        let count: usize = line(&mut rest)?.strip_prefix("sections ")?.parse().ok()?;
        // An absurd count is corruption, not an allocation request.
        if count > 64 {
            return None;
        }
        let mut sections = Vec::with_capacity(count);
        for _ in 0..count {
            let header = line(&mut rest)?;
            let (name, len) = header.rsplit_once(' ')?;
            let len: usize = len.parse().ok()?;
            if rest.len() < len + 1 {
                return None;
            }
            let body = rest[..len].to_vec();
            if rest[len] != b'\n' {
                return None;
            }
            rest = &rest[len + 1..];
            sections.push((name.to_string(), body));
        }
        rest.is_empty().then_some(sections)
    }

    /// Writes one record atomically: a temporary sibling first, renamed
    /// into place, so a concurrent worker (or a crash) never observes a
    /// torn entry.
    fn write_record(&self, key: &CacheKey, sections: &[(&str, &[u8])]) -> std::io::Result<()> {
        let path = self.entry_path(key);
        let tmp = path.with_extension(format!("tmp{}", std::process::id()));
        {
            let mut f = std::fs::File::create(&tmp)?;
            writeln!(f, "{STORE_MAGIC}")?;
            writeln!(f, "kind {}", key.kind.token())?;
            writeln!(f, "key {:016x}", key.hash)?;
            writeln!(f, "sections {}", sections.len())?;
            for (name, body) in sections {
                writeln!(f, "{name} {}", body.len())?;
                f.write_all(body)?;
                writeln!(f)?;
            }
        }
        std::fs::rename(&tmp, &path)
    }

    /// Writes a record, degrading instead of failing: a vanished store
    /// directory is recreated and the write retried once; any remaining
    /// I/O failure is swallowed. Returns whether the record was
    /// actually written, so callers can count degradations — a
    /// concurrent `rm -rf` of the store must cost a counter increment,
    /// never a failed compilation.
    fn write_record_degrading(&self, key: &CacheKey, sections: &[(&str, &[u8])]) -> bool {
        if self.write_record(key, sections).is_ok() {
            return true;
        }
        // The common mid-run fault: the directory was removed under us.
        if std::fs::create_dir_all(&self.dir).is_err() {
            return false;
        }
        self.write_record(key, sections).is_ok()
    }

    /// Looks up a module record. Any corruption is a miss.
    pub fn get_module(&self, key: &CacheKey) -> Option<ModuleRecord> {
        let sections = self.read_record(key)?;
        let [(b_name, bytes), (m_name, metrics)] = sections.try_into().ok()?;
        if b_name != "bytes" || m_name != "metrics" {
            return None;
        }
        Some(ModuleRecord {
            bytes,
            metrics: String::from_utf8(metrics).ok()?,
        })
    }

    /// Stores a module record; degrading, never failing.
    pub fn put_module_degrading(&self, key: &CacheKey, rec: &ModuleRecord) -> bool {
        self.write_record_degrading(
            key,
            &[("bytes", &rec.bytes), ("metrics", rec.metrics.as_bytes())],
        )
    }

    /// Looks up a unit record. Any corruption is a miss.
    pub fn get_unit(&self, key: &CacheKey) -> Option<UnitRecord> {
        let sections = self.read_record(key)?;
        let [(s_name, section), (st_name, stats), (f_name, facts)] = sections.try_into().ok()?;
        if s_name != "section" || st_name != "stats" || f_name != "facts" {
            return None;
        }
        Some(UnitRecord {
            section,
            stats: stats_from_flat(std::str::from_utf8(&stats).ok()?)?,
            facts: FactSummary::from_flat(std::str::from_utf8(&facts).ok()?)?,
        })
    }

    /// Stores a unit record; degrading, never failing.
    pub fn put_unit_degrading(&self, key: &CacheKey, rec: &UnitRecord) -> bool {
        self.write_record_degrading(
            key,
            &[
                ("section", &rec.section),
                ("stats", stats_to_flat(&rec.stats).as_bytes()),
                ("facts", rec.facts.to_flat().as_bytes()),
            ],
        )
    }

    /// Looks up a unit-identity record. Any corruption is a miss.
    pub fn get_identity(&self, key: &CacheKey) -> Option<UnitIdentity> {
        let sections = self.read_record(key)?;
        let [(name, body)] = sections.try_into().ok()?;
        if name != "identity" {
            return None;
        }
        let text = std::str::from_utf8(&body).ok()?;
        let mut lines = text.lines();
        let body_hash = u64::from_str_radix(lines.next()?.strip_prefix("body ")?, 16).ok()?;
        let deps_hash = u64::from_str_radix(lines.next()?.strip_prefix("deps ")?, 16).ok()?;
        lines.next().is_none().then_some(UnitIdentity {
            body_hash,
            deps_hash,
        })
    }

    /// Stores a unit-identity record; degrading, never failing.
    pub fn put_identity_degrading(&self, key: &CacheKey, id: &UnitIdentity) -> bool {
        let body = format!("body {:016x}\ndeps {:016x}\n", id.body_hash, id.deps_hash);
        self.write_record_degrading(key, &[("identity", body.as_bytes())])
    }
}

/// [`OptStats`] field order for the flat serialization (scalar fields
/// followed by the nested per-pass statistics, each flattened with its
/// pass prefix). Writer and reader both walk this list.
const STAT_FIELDS: [&str; 33] = [
    "instrs_before",
    "instrs_after",
    "phis_before",
    "phis_after",
    "null_checks_before",
    "null_checks_after",
    "index_checks_before",
    "index_checks_after",
    "removed_by_constprop",
    "removed_by_cse",
    "removed_by_checkelim",
    "removed_by_loadfwd",
    "removed_by_dse",
    "removed_by_dce",
    "checkelim.null_converted",
    "checkelim.index_deleted",
    "checkelim.null_proven",
    "checkelim.index_proven",
    "checkelim.nullness_facts",
    "checkelim.range_facts",
    "checkelim.nullness_iterations",
    "checkelim.range_iterations",
    "loadfwd.store_forwarded",
    "loadfwd.load_reused",
    "loadfwd.kept_across_calls",
    "loadfwd.alias_sites",
    "loadfwd.alias_facts",
    "loadfwd.alias_iterations",
    "loadfwd.escape_no",
    "loadfwd.escape_arg",
    "loadfwd.escape_global",
    "dse.overwritten",
    "dse.never_read",
];

fn stat_get(s: &OptStats, name: &str) -> u64 {
    match name {
        "instrs_before" => s.instrs_before as u64,
        "instrs_after" => s.instrs_after as u64,
        "phis_before" => s.phis_before as u64,
        "phis_after" => s.phis_after as u64,
        "null_checks_before" => s.null_checks_before as u64,
        "null_checks_after" => s.null_checks_after as u64,
        "index_checks_before" => s.index_checks_before as u64,
        "index_checks_after" => s.index_checks_after as u64,
        "removed_by_constprop" => s.removed_by_constprop as u64,
        "removed_by_cse" => s.removed_by_cse as u64,
        "removed_by_checkelim" => s.removed_by_checkelim as u64,
        "removed_by_loadfwd" => s.removed_by_loadfwd as u64,
        "removed_by_dse" => s.removed_by_dse as u64,
        "removed_by_dce" => s.removed_by_dce as u64,
        "checkelim.null_converted" => s.checkelim.null_converted as u64,
        "checkelim.index_deleted" => s.checkelim.index_deleted as u64,
        "checkelim.null_proven" => s.checkelim.null_proven as u64,
        "checkelim.index_proven" => s.checkelim.index_proven as u64,
        "checkelim.nullness_facts" => s.checkelim.nullness_facts,
        "checkelim.range_facts" => s.checkelim.range_facts,
        "checkelim.nullness_iterations" => s.checkelim.nullness_iterations,
        "checkelim.range_iterations" => s.checkelim.range_iterations,
        "loadfwd.store_forwarded" => s.loadfwd.store_forwarded as u64,
        "loadfwd.load_reused" => s.loadfwd.load_reused as u64,
        "loadfwd.kept_across_calls" => s.loadfwd.kept_across_calls as u64,
        "loadfwd.alias_sites" => s.loadfwd.alias_sites,
        "loadfwd.alias_facts" => s.loadfwd.alias_facts,
        "loadfwd.alias_iterations" => s.loadfwd.alias_iterations,
        "loadfwd.escape_no" => s.loadfwd.escape_no,
        "loadfwd.escape_arg" => s.loadfwd.escape_arg,
        "loadfwd.escape_global" => s.loadfwd.escape_global,
        "dse.overwritten" => s.dse.overwritten as u64,
        "dse.never_read" => s.dse.never_read as u64,
        _ => unreachable!("unknown OptStats field {name}"),
    }
}

fn stat_set(s: &mut OptStats, name: &str, v: u64) {
    let vu = v as usize;
    match name {
        "instrs_before" => s.instrs_before = vu,
        "instrs_after" => s.instrs_after = vu,
        "phis_before" => s.phis_before = vu,
        "phis_after" => s.phis_after = vu,
        "null_checks_before" => s.null_checks_before = vu,
        "null_checks_after" => s.null_checks_after = vu,
        "index_checks_before" => s.index_checks_before = vu,
        "index_checks_after" => s.index_checks_after = vu,
        "removed_by_constprop" => s.removed_by_constprop = vu,
        "removed_by_cse" => s.removed_by_cse = vu,
        "removed_by_checkelim" => s.removed_by_checkelim = vu,
        "removed_by_loadfwd" => s.removed_by_loadfwd = vu,
        "removed_by_dse" => s.removed_by_dse = vu,
        "removed_by_dce" => s.removed_by_dce = vu,
        "checkelim.null_converted" => s.checkelim.null_converted = vu,
        "checkelim.index_deleted" => s.checkelim.index_deleted = vu,
        "checkelim.null_proven" => s.checkelim.null_proven = vu,
        "checkelim.index_proven" => s.checkelim.index_proven = vu,
        "checkelim.nullness_facts" => s.checkelim.nullness_facts = v,
        "checkelim.range_facts" => s.checkelim.range_facts = v,
        "checkelim.nullness_iterations" => s.checkelim.nullness_iterations = v,
        "checkelim.range_iterations" => s.checkelim.range_iterations = v,
        "loadfwd.store_forwarded" => s.loadfwd.store_forwarded = vu,
        "loadfwd.load_reused" => s.loadfwd.load_reused = vu,
        "loadfwd.kept_across_calls" => s.loadfwd.kept_across_calls = vu,
        "loadfwd.alias_sites" => s.loadfwd.alias_sites = v,
        "loadfwd.alias_facts" => s.loadfwd.alias_facts = v,
        "loadfwd.alias_iterations" => s.loadfwd.alias_iterations = v,
        "loadfwd.escape_no" => s.loadfwd.escape_no = v,
        "loadfwd.escape_arg" => s.loadfwd.escape_arg = v,
        "loadfwd.escape_global" => s.loadfwd.escape_global = v,
        "dse.overwritten" => s.dse.overwritten = vu,
        "dse.never_read" => s.dse.never_read = vu,
        _ => unreachable!("unknown OptStats field {name}"),
    }
}

/// Renders [`OptStats`] as flat `name value` lines.
pub fn stats_to_flat(s: &OptStats) -> String {
    let mut out = String::new();
    for name in STAT_FIELDS {
        out.push_str(name);
        out.push(' ');
        out.push_str(&stat_get(s, name).to_string());
        out.push('\n');
    }
    out
}

/// Parses a [`stats_to_flat`] rendering; `None` on any malformed or
/// missing line (store readers treat that as a miss).
pub fn stats_from_flat(text: &str) -> Option<OptStats> {
    let mut s = OptStats::default();
    let mut lines = text.lines();
    for name in STAT_FIELDS {
        let line = lines.next()?;
        let value = line.strip_prefix(name)?.strip_prefix(' ')?;
        stat_set(&mut s, name, value.parse().ok()?);
    }
    lines.next().is_none().then_some(s)
}

/// One per-method work item: the unit's stable identity (class, method
/// index, function index, diagnostic name) plus the two hashes that
/// validate reuse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitPlan {
    /// Diagnostic name (`Class.method`), the stable unit identity.
    pub name: String,
    /// Declaring class.
    pub class: ClassId,
    /// Index into the class's method list.
    pub method_idx: usize,
    /// Index of the body in `Module::functions`.
    pub func: usize,
    /// FNV-1a over the standalone section encoding of the *unoptimized*
    /// body — this folds in every encoding-relevant type-table property
    /// (symbol cardinalities, member counts) along with the code itself.
    pub body_hash: u64,
    /// Structural digest of the referenced-class closure (layouts,
    /// vtable shapes, callee signatures, superclass chains) and the
    /// class count.
    pub deps_hash: u64,
}

/// Computes the per-unit work items of a freshly lowered module, in the
/// canonical (class, method) order a whole-module decode derives.
///
/// # Errors
///
/// Returns [`Error::Encode`] when a body cannot be section-encoded
/// (never the case for lowered, verifiable modules).
pub fn unit_plan(m: &Module) -> Result<Vec<UnitPlan>, Error> {
    let mut plans = Vec::new();
    for (cid, c) in m.types.classes() {
        for (mi, meth) in c.methods.iter().enumerate() {
            let Some(fid) = meth.body else { continue };
            let f = &m.functions[fid as usize];
            let (bytes, _) = encode_function_section(&m.types, f)?;
            plans.push(UnitPlan {
                name: f.name.clone(),
                class: cid,
                method_idx: mi,
                func: fid as usize,
                body_hash: fnv1a(&bytes),
                deps_hash: deps_hash(m, cid, f),
            });
        }
    }
    Ok(plans)
}

/// A structural digest of one type: interning-order independent, naming
/// classes by identity (id + name) rather than by table position of
/// derived planes.
fn type_digest(types: &TypeTable, ty: TypeId) -> u64 {
    match types.kind(ty) {
        TypeKind::Prim(p) => fnv1a_continue(fnv1a(b"prim"), p.name().as_bytes()),
        TypeKind::Class(c) => {
            let state = fnv1a_continue(fnv1a(b"class"), &c.0.to_le_bytes());
            fnv1a_continue(state, types.class(c).name.as_bytes())
        }
        TypeKind::Array(e) => {
            fnv1a_continue(fnv1a(b"array"), &type_digest(types, e).to_le_bytes())
        }
        TypeKind::SafeRef(of) => {
            fnv1a_continue(fnv1a(b"saferef"), &type_digest(types, of).to_le_bytes())
        }
        TypeKind::SafeIndex(a) => {
            fnv1a_continue(fnv1a(b"safeindex"), &type_digest(types, a).to_le_bytes())
        }
    }
}

/// Digest of one class's externally visible layout: everything another
/// unit's compilation can depend on — field list, method signatures and
/// dispatch kinds (the vtable shape), superclass link, import status —
/// but *not* any method body.
fn class_digest(types: &TypeTable, cid: ClassId) -> u64 {
    let c = types.class(cid);
    let mut h = fnv1a(c.name.as_bytes());
    h = fnv1a_continue(h, &[0, u8::from(c.imported)]);
    h = fnv1a_continue(
        h,
        &match c.superclass {
            Some(s) => s.0.wrapping_add(1).to_le_bytes(),
            None => 0u32.to_le_bytes(),
        },
    );
    for fld in &c.fields {
        h = fnv1a_continue(h, fld.name.as_bytes());
        h = fnv1a_continue(h, &[0, u8::from(fld.is_static)]);
        h = fnv1a_continue(h, &type_digest(types, fld.ty).to_le_bytes());
    }
    for m in &c.methods {
        h = fnv1a_continue(h, m.name.as_bytes());
        let kind = match m.kind {
            MethodKind::Static => 1u8,
            MethodKind::Virtual => 2,
            MethodKind::Special => 3,
        };
        h = fnv1a_continue(h, &[0, kind, u8::from(m.body.is_some())]);
        h = fnv1a_continue(h, &m.vtable_slot.map_or(0, |s| s + 1).to_le_bytes());
        for &p in &m.params {
            h = fnv1a_continue(h, &type_digest(types, p).to_le_bytes());
        }
        h = fnv1a_continue(h, &[0]);
        h = fnv1a_continue(
            h,
            &m.ret.map_or(0, |r| type_digest(types, r)).to_le_bytes(),
        );
    }
    h
}

/// Collects the class ids a type mentions, through arrays and the
/// safe-ref/safe-index derived planes.
fn collect_classes(types: &TypeTable, ty: TypeId, out: &mut BTreeSet<ClassId>) {
    match types.kind(ty) {
        TypeKind::Prim(_) => {}
        TypeKind::Class(c) => {
            out.insert(c);
        }
        TypeKind::Array(e) => collect_classes(types, e, out),
        TypeKind::SafeRef(of) => collect_classes(types, of, out),
        TypeKind::SafeIndex(a) => collect_classes(types, a, out),
    }
}

/// The type parameters and symbolic member references an instruction
/// carries (operand/result planes are covered by the value table; the
/// member references can name superclasses that appear nowhere else).
fn instr_deps(types: &TypeTable, i: &Instr, out: &mut BTreeSet<ClassId>) {
    let mut ty = |t: TypeId| collect_classes(types, t, out);
    match i {
        Instr::Primitive { ty: t, .. } | Instr::XPrimitive { ty: t, .. } => ty(*t),
        Instr::NullCheck { ty: t, .. } | Instr::RefEq { ty: t, .. } | Instr::Catch { ty: t } => {
            ty(*t)
        }
        Instr::IndexCheck { arr_ty, .. }
        | Instr::GetElt { arr_ty, .. }
        | Instr::SetElt { arr_ty, .. }
        | Instr::ArrayLength { arr_ty, .. }
        | Instr::NewArray { arr_ty, .. } => ty(*arr_ty),
        Instr::Upcast { from, to, .. } | Instr::Downcast { from, to, .. } => {
            ty(*from);
            collect_classes(types, *to, out);
        }
        Instr::InstanceOf { from, target, .. } => {
            ty(*from);
            collect_classes(types, *target, out);
        }
        Instr::New { class_ty } => ty(*class_ty),
        Instr::GetField { ty: t, field, .. } | Instr::SetField { ty: t, field, .. } => {
            ty(*t);
            out.insert(field.class);
        }
        Instr::GetStatic { field } | Instr::SetStatic { field, .. } => {
            out.insert(field.class);
        }
        Instr::XCall {
            base_ty, method, ..
        }
        | Instr::XDispatch {
            base_ty, method, ..
        } => {
            ty(*base_ty);
            out.insert(method.class);
        }
    }
}

/// The dependency-signature hash of one unit: the class count (every
/// symbol encoding depends on it) folded with the layout digests of the
/// unit's referenced-class closure — its own class, every class its
/// types and member references mention, the well-known host classes,
/// and all their transitive superclasses.
fn deps_hash(m: &Module, own: ClassId, f: &Function) -> u64 {
    let types = &m.types;
    let mut set = BTreeSet::new();
    set.insert(own);
    for wk in [m.well_known.object, m.well_known.throwable, m.well_known.string] {
        set.insert(wk);
    }
    for &p in &f.params {
        collect_classes(types, p, &mut set);
    }
    if let Some(r) = f.ret {
        collect_classes(types, r, &mut set);
    }
    for v in &f.values {
        collect_classes(types, v.ty, &mut set);
    }
    for c in &f.consts {
        collect_classes(types, c.ty, &mut set);
    }
    for b in &f.blocks {
        for phi in &b.phis {
            collect_classes(types, phi.ty, &mut set);
        }
        for i in &b.instrs {
            instr_deps(types, i, &mut set);
        }
    }
    // Close over superclass chains: dispatch and field lookup walk them.
    let mut frontier: Vec<ClassId> = set.iter().copied().collect();
    while let Some(c) = frontier.pop() {
        if let Some(s) = types.class(c).superclass {
            if set.insert(s) {
                frontier.push(s);
            }
        }
    }
    let mut h = fnv1a(&[safetsa_codec::layout::VERSION]);
    h = fnv1a_continue(h, &(types.class_count() as u64).to_le_bytes());
    for cid in set {
        h = fnv1a_continue(h, &cid.0.to_le_bytes());
        h = fnv1a_continue(h, &class_digest(types, cid).to_le_bytes());
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn key_folds_every_axis() {
        let base = CacheKey::new(RecordKind::Module, Engine::Threaded, "cfg", b"src");
        let other_kind = CacheKey::new(RecordKind::Unit, Engine::Threaded, "cfg", b"src");
        let other_engine = CacheKey::new(RecordKind::Module, Engine::Switch, "cfg", b"src");
        let other_cfg = CacheKey::new(RecordKind::Module, Engine::Threaded, "cfg2", b"src");
        let other_src = CacheKey::new(RecordKind::Module, Engine::Threaded, "cfg", b"src2");
        for other in [other_kind, other_engine, other_cfg, other_src] {
            assert_ne!(base.hash(), other.hash());
        }
        // Field boundaries cannot alias: moving a byte across the
        // separator changes the key.
        assert_ne!(
            CacheKey::new(RecordKind::Module, Engine::Threaded, "ab", b"c").hash(),
            CacheKey::new(RecordKind::Module, Engine::Threaded, "a", b"bc").hash()
        );
    }

    #[test]
    fn fingerprint_distinguishes_pass_configs() {
        let all = passes_fingerprint(&Passes::ALL);
        let none = passes_fingerprint(&Passes::NONE);
        let field = passes_fingerprint(&Passes::ALL_FIELD_MEM);
        assert_ne!(all, none);
        assert_ne!(all, field);
    }

    fn test_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "safetsa-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn module_record_round_trip_and_corruption_is_a_miss() {
        let dir = test_dir("module");
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        let key = CacheKey::new(RecordKind::Module, Engine::Threaded, "cfg", b"src");
        assert!(store.get_module(&key).is_none());
        let rec = ModuleRecord {
            bytes: vec![1, 2, 3],
            metrics: "c a.b 4\n".into(),
        };
        assert!(store.put_module_degrading(&key, &rec));
        assert_eq!(store.get_module(&key), Some(rec));
        // Truncate the entry: reads as a miss, not an error.
        let path = dir.join(format!("{:016x}.tsac", key.hash()));
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 2]).unwrap();
        assert!(store.get_module(&key).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unit_and_identity_records_round_trip() {
        let dir = test_dir("unit");
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        let key = CacheKey::new(RecordKind::Unit, Engine::Threaded, "cfg", b"u1");
        let mut stats = OptStats {
            instrs_before: 42,
            removed_by_cse: 7,
            ..OptStats::default()
        };
        stats.loadfwd.alias_sites = 3;
        let facts = FactSummary {
            range_facts: 11,
            ..FactSummary::default()
        };
        let rec = UnitRecord {
            section: vec![0xde, 0xad, 0xbe, 0xef],
            stats,
            facts,
        };
        assert!(store.put_unit_degrading(&key, &rec));
        assert_eq!(store.get_unit(&key), Some(rec));
        // Wrong-kind lookups miss even on a hash collision of content:
        // the kind token is in both the key and the record header.
        let ident_key = CacheKey::new(RecordKind::UnitIdentity, Engine::Threaded, "cfg", b"P.m");
        assert!(store.get_identity(&key).is_none());
        let id = UnitIdentity {
            body_hash: 0xabc,
            deps_hash: 0xdef,
        };
        assert!(store.put_identity_degrading(&ident_key, &id));
        assert_eq!(store.get_identity(&ident_key), Some(id));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn v1_entries_and_foreign_files_read_as_misses() {
        let dir = test_dir("skew");
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        let key = CacheKey::new(RecordKind::Module, Engine::Threaded, "cfg", b"src");
        // Plant a v1-format entry at exactly this key's path.
        let path = dir.join(format!("{:016x}.tsac", key.hash()));
        std::fs::write(
            &path,
            format!("safetsa-cache/1\nkey {:016x}\nbytes 3\nabcmetrics 0\n", key.hash()),
        )
        .unwrap();
        assert!(store.get_module(&key).is_none());
        std::fs::write(&path, b"not a cache entry at all").unwrap();
        assert!(store.get_module(&key).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn vanished_directory_degrades_instead_of_failing() {
        let dir = test_dir("degrade");
        let store = Store::open(&dir, StoreOptions::default()).unwrap();
        let key = CacheKey::new(RecordKind::Module, Engine::Threaded, "cfg", b"src");
        let rec = ModuleRecord {
            bytes: vec![9, 9],
            metrics: "c a.b 1\n".into(),
        };
        // Directory removed mid-run: load degrades to a miss, and the
        // degrading store recreates the directory and succeeds.
        std::fs::remove_dir_all(&dir).unwrap();
        assert!(store.get_module(&key).is_none());
        assert!(store.put_module_degrading(&key, &rec));
        assert_eq!(store.get_module(&key), Some(rec.clone()));
        // Directory replaced by a plain file (stands in for a readonly
        // or otherwise unusable mount): store degrades to "not
        // written" rather than erroring, load is a miss.
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::write(&dir, b"not a directory").unwrap();
        assert!(!store.put_module_degrading(&key, &rec));
        assert!(store.get_module(&key).is_none());
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn open_without_create_requires_the_directory() {
        let dir = test_dir("nocreate");
        assert!(Store::open(&dir, StoreOptions { create: false }).is_err());
        assert!(Store::open(&dir, StoreOptions::default()).is_ok());
        assert!(Store::open(&dir, StoreOptions { create: false }).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn opt_stats_flat_round_trip() {
        let mut s = OptStats {
            instrs_before: 100,
            instrs_after: 60,
            removed_by_dce: 40,
            ..OptStats::default()
        };
        s.checkelim.range_facts = 12;
        s.dse.overwritten = 2;
        let flat = stats_to_flat(&s);
        assert_eq!(stats_from_flat(&flat), Some(s));
        assert!(stats_from_flat(&flat[..flat.len() / 3]).is_none());
        assert!(stats_from_flat(&format!("{flat}tail 0\n")).is_none());
    }
}
