//! # safetsa-driver
//!
//! The driver layer of the SafeTSA reproduction: everything a program
//! that *uses* the pipeline needs, under one roof.
//!
//! * [`Pipeline`] — the unified facade over frontend → SSA → opt →
//!   codec → VM, configured once (passes, telemetry, resource limits)
//!   and reused; replaces the old per-stage `_with`/`_traced` function
//!   zoo.
//! * [`Error`] — one error enum wrapping every stage's failure type,
//!   with `Display` and `source()`.
//! * [`batch`] — the parallel batch-compilation driver: a
//!   `std::thread::scope` worker pool with per-worker telemetry,
//!   deterministic merging, and content-addressed module records in
//!   the [`store`].
//! * [`store`] — the typed, method-granular incremental store
//!   (`safetsa-cache/2`): per-unit encoded sections, optimizer stats,
//!   and analysis-fact summaries, validated by structural dependency
//!   signatures instead of file identity.
//!
//! SSA's referential transparency is what makes the batch driver
//! trivially correct: each module's compilation is a pure function of
//! its own source, so modules parallelize without synchronization; the
//! per-method store sharpens that to "each *method* is a pure function
//! of its body and the layouts it references" (see DESIGN.md,
//! "Incremental compilation").

#![warn(missing_docs)]

pub mod batch;
mod error;
mod pipeline;
pub mod store;

pub use batch::{run_batch, BatchInput, BatchItem, BatchOptions, BatchReport};
pub use error::Error;
pub use pipeline::{Pipeline, RunOutcome, UnitOutcome};
pub use store::{passes_fingerprint, CacheKey, RecordKind, Store, StoreOptions};
