//! # safetsa-driver
//!
//! The driver layer of the SafeTSA reproduction: everything a program
//! that *uses* the pipeline needs, under one roof.
//!
//! * [`Pipeline`] — the unified facade over frontend → SSA → opt →
//!   codec → VM, configured once (passes, telemetry, resource limits)
//!   and reused; replaces the old per-stage `_with`/`_traced` function
//!   zoo.
//! * [`Error`] — one error enum wrapping every stage's failure type,
//!   with `Display` and `source()`.
//! * [`batch`] — the parallel batch-compilation driver: a
//!   `std::thread::scope` worker pool with per-worker telemetry,
//!   deterministic merging, and a content-addressed module [`cache`]
//!   keyed on (source bytes, pass configuration, wire-format version).
//!
//! SSA's referential transparency is what makes the batch driver
//! trivially correct: each module's compilation is a pure function of
//! its own source, so modules parallelize without synchronization and
//! cache without invalidation logic.

#![warn(missing_docs)]

pub mod batch;
pub mod cache;
mod error;
mod pipeline;

pub use batch::{run_batch, BatchInput, BatchItem, BatchOptions, BatchReport};
pub use cache::{passes_fingerprint, Cache};
pub use error::Error;
pub use pipeline::{Pipeline, RunOutcome};
