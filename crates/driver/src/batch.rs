//! Parallel batch compilation.
//!
//! SSA's referential transparency makes per-module compilation
//! embarrassingly parallel: one source file's pipeline (frontend → SSA
//! construction → producer optimization → encoding) reads nothing but
//! its own input, so N files can run on N workers with no
//! synchronization beyond handing out indices. [`run_batch`] is that
//! driver: a `std::thread::scope` worker pool pulling task indices from
//! an atomic counter, a fresh per-task [`Telemetry`] registry, and a
//! deterministic merge — outputs are ordered by input index and the
//! merged metrics are a commutative sum, so neither depends on how the
//! scheduler interleaved the workers.
//!
//! In front of the pool sits the content-addressed [`Store`]: a task
//! whose (source, configuration, format version, engine) key has a
//! stored module record skips compilation entirely and replays the
//! cached wire bytes and metrics.

use crate::store::{CacheKey, ModuleRecord, RecordKind, Store, StoreOptions};
use crate::Error;
use safetsa_telemetry::{AttrValue, Telemetry};
use safetsa_vm::Engine;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Renders a caught panic payload as a message (the two shapes `panic!`
/// actually produces, with a fallback for exotic payloads).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One unit of batch work: a named source text.
#[derive(Debug, Clone)]
pub struct BatchInput {
    /// Display/report name (a file path or corpus entry name).
    pub name: String,
    /// The source text; also the content half of the cache key.
    pub source: String,
}

/// Batch driver configuration.
#[derive(Debug, Clone)]
pub struct BatchOptions {
    /// Worker count; `0` means one per available CPU.
    pub jobs: usize,
    /// Cache directory; `None` disables the cache.
    pub cache_dir: Option<PathBuf>,
    /// Configuration half of the cache key: pass knobs plus any
    /// driver-level salt (see [`crate::store::passes_fingerprint`]).
    /// Anything that changes what the work closure produces — bytes
    /// *or* metrics — must be folded in. (The wire-format version and
    /// the [`Engine`] are folded in by [`CacheKey::new`] itself.)
    pub fingerprint: String,
    /// The VM engine the work closure executes with, part of the cache
    /// key: a closure that runs the compiled program records
    /// engine-dependent `vm.*` metrics, which must not replay across
    /// engines.
    pub engine: Engine,
    /// Whether per-task metrics are collected (and cached).
    pub telemetry: bool,
    /// Whether per-task spans are collected: each task records on its
    /// own trace lane (`index + 1`) against the batch's epoch, the
    /// driver adds worker/batch spans on lane 0, and the merged
    /// registry exports one causal tree (implies metrics collection —
    /// the per-task registries are trace-enabled, which includes a
    /// metrics map).
    pub trace: bool,
}

impl BatchOptions {
    /// Serial, uncached, uninstrumented defaults.
    pub fn new(fingerprint: impl Into<String>) -> BatchOptions {
        BatchOptions {
            jobs: 1,
            cache_dir: None,
            fingerprint: fingerprint.into(),
            engine: Engine::default(),
            telemetry: false,
            trace: false,
        }
    }

    /// Resolves `jobs == 0` to the machine's parallelism.
    fn effective_jobs(&self, tasks: usize) -> usize {
        let requested = if self.jobs == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            self.jobs
        };
        requested.clamp(1, tasks.max(1))
    }
}

/// One task's outcome, in input order.
#[derive(Debug)]
pub struct BatchItem {
    /// The input's name.
    pub name: String,
    /// The produced artifact (encoded `.tsa` bytes).
    pub bytes: Vec<u8>,
    /// The task's own metrics registry (disabled when collection was
    /// off). For a cache hit this is the registry *replayed* from the
    /// entry — identical to what the original compilation recorded.
    pub metrics: Telemetry,
    /// Whether the artifact came from the cache.
    pub cache_hit: bool,
    /// Wall time this run actually spent on the task (hits are cheap).
    pub task_wall_ns: u64,
}

/// The merged result of a batch run.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-task outcomes, ordered by input index — independent of
    /// scheduling.
    pub items: Vec<BatchItem>,
    /// All per-task registries merged (in input order, though the sum
    /// is order-independent), plus the driver plane: `driver.jobs`,
    /// `driver.tasks`, `driver.wall_ns`, `driver.tasks_wall_ns`,
    /// `cache.hits`, `cache.misses`.
    pub merged: Telemetry,
    /// Worker count actually used.
    pub jobs: usize,
    /// Tasks served from the cache.
    pub cache_hits: u64,
    /// Tasks compiled (and, when caching, stored).
    pub cache_misses: u64,
    /// Wall time of the whole batch.
    pub wall_ns: u64,
    /// Sum of per-task wall times — the serial-equivalent cost, so
    /// `tasks_wall_ns / wall_ns` is the measured speedup.
    pub tasks_wall_ns: u64,
}

impl BatchReport {
    /// Measured speedup over a serial run of the same tasks, in
    /// permille (sum of task times vs batch wall time).
    pub fn speedup_permille(&self) -> u64 {
        self.tasks_wall_ns
            .saturating_mul(1000)
            .checked_div(self.wall_ns)
            .unwrap_or(0)
    }
}

struct TaskOut {
    bytes: Vec<u8>,
    metrics: Telemetry,
    cache_hit: bool,
    task_wall_ns: u64,
}

/// Runs `work` over every input on a scoped worker pool, with
/// content-addressed caching in front.
///
/// `work(index, input, tm)` compiles one input to its artifact bytes
/// and returns them together with `tm`, the per-task registry the
/// driver constructed for it — recording enabled iff
/// [`BatchOptions::telemetry`], spans iff [`BatchOptions::trace`] (a
/// [`crate::Pipeline`] built with `.telemetry(tm)` and handed back via
/// [`crate::Pipeline::into_metrics`] is the natural shape). The driver
/// opens the task's root span and records the cache probe before `work`
/// ever runs, so cache hits appear in the trace even though the closure
/// is skipped. The closure must be a pure function of the input and
/// the options fingerprint — that purity is what makes the cache sound
/// (see DESIGN.md).
///
/// # Errors
///
/// Returns the failure of the lowest-indexed failing task (every task
/// still runs; picking the lowest index keeps the reported error
/// independent of scheduling), or the I/O error of a cache write.
pub fn run_batch<F>(inputs: &[BatchInput], opts: &BatchOptions, work: F) -> Result<BatchReport, Error>
where
    F: Fn(usize, &BatchInput, Telemetry) -> Result<(Vec<u8>, Telemetry), Error> + Sync,
{
    let started = Instant::now();
    let cache = match &opts.cache_dir {
        Some(dir) => Some(Store::open(dir, StoreOptions::default())?),
        None => None,
    };
    let jobs = opts.effective_jobs(inputs.len());
    let next = AtomicUsize::new(0);
    let degraded = AtomicU64::new(0);
    let work = &work;
    let cache = &cache;
    let degraded = &degraded;

    // Per-task registries: when tracing, each task gets its own lane
    // (index + 1; lane 0 is the driver's) against the shared batch
    // epoch — a scheduling-independent assignment, so the exported
    // span tree is identical for `--jobs 1` and `--jobs 8`.
    let task_tm = |idx: usize| {
        if opts.trace {
            Telemetry::with_trace_at(started, idx as u32 + 1)
        } else if opts.telemetry {
            Telemetry::enabled()
        } else {
            Telemetry::disabled()
        }
    };

    let run_task = |idx: usize, input: &BatchInput| -> Result<TaskOut, Error> {
        let task_started = Instant::now();
        let mut tm = task_tm(idx);
        let root = tm.span_open("task");
        tm.span_attr("name", AttrValue::Str(input.name.clone()));
        let key = CacheKey::new(
            RecordKind::Module,
            opts.engine,
            &opts.fingerprint,
            input.source.as_bytes(),
        );
        if let Some(cache) = cache {
            let probe = tm.span_open("cache.probe");
            let loaded = cache.get_module(&key);
            tm.span_close(probe);
            // A corrupt metrics payload degrades to a miss below.
            let replay = loaded.and_then(|rec| {
                Telemetry::import_flat(&rec.metrics)
                    .ok()
                    .map(|m| (rec.bytes, m))
            });
            if let Some((bytes, metrics)) = replay {
                tm.event("cache.probe.done", &[("hit", AttrValue::Bool(true))]);
                tm.span_close(root);
                let metrics = if tm.is_enabled() {
                    // Replay the cached counters into the task's own
                    // registry so the trace and the metrics travel
                    // together.
                    tm.merge(&metrics);
                    tm
                } else {
                    Telemetry::disabled()
                };
                return Ok(TaskOut {
                    bytes,
                    metrics,
                    cache_hit: true,
                    task_wall_ns: elapsed_ns(task_started),
                });
            }
            tm.event("cache.probe.done", &[("hit", AttrValue::Bool(false))]);
        }
        let (bytes, tm) = work(idx, input, tm)?;
        if let Some(cache) = cache {
            // A failed store (vanished/readonly cache dir) degrades to
            // cache-off operation for this task: the artifact is still
            // produced, and the degradation is counted in the merged
            // `cache.degraded` metric.
            let rec = ModuleRecord {
                bytes: bytes.clone(),
                metrics: tm.export_flat(),
            };
            if !cache.put_module_degrading(&key, &rec) {
                degraded.fetch_add(1, Ordering::Relaxed);
            }
        }
        tm.span_close(root);
        Ok(TaskOut {
            bytes,
            metrics: tm,
            cache_hit: false,
            task_wall_ns: elapsed_ns(task_started),
        })
    };

    // Each worker returns its (index, outcome) pairs; slots are then
    // reassembled by index, so completion order never shows.
    let mut slots: Vec<Option<Result<TaskOut, Error>>> = Vec::new();
    slots.resize_with(inputs.len(), || None);
    let mut worker_meta: Vec<(Instant, Instant, u64)> = Vec::with_capacity(jobs);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                s.spawn(|| {
                    let worker_started = Instant::now();
                    let mut done: Vec<(usize, Result<TaskOut, Error>)> = Vec::new();
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        let Some(input) = inputs.get(idx) else { break };
                        // Panic isolation: a panicking work closure (or
                        // a compiler bug it tickles) becomes this
                        // task's error while the remaining tasks — on
                        // this worker and the others — still complete.
                        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            run_task(idx, input)
                        }))
                        .unwrap_or_else(|p| Err(Error::Panic(panic_message(p.as_ref()))));
                        done.push((idx, out));
                    }
                    (done, worker_started, Instant::now())
                })
            })
            .collect();
        for h in handles {
            // With per-task catch_unwind above a worker can only die on
            // a panic *between* tasks (allocator failure and the like);
            // its claimed-but-unreported tasks surface as `Panic` via
            // the still-empty slots below instead of poisoning the run.
            if let Ok((done, wstart, wend)) = h.join() {
                worker_meta.push((wstart, wend, done.len() as u64));
                for (idx, out) in done {
                    slots[idx] = Some(out);
                }
            }
        }
    });

    let mut items = Vec::with_capacity(inputs.len());
    let mut merged = if opts.trace {
        Telemetry::with_trace_at(started, 0)
    } else if opts.telemetry {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    let (mut hits, mut misses, mut tasks_wall_ns) = (0u64, 0u64, 0u64);
    for (input, slot) in inputs.iter().zip(slots) {
        let out = slot
            .unwrap_or_else(|| Err(Error::Panic("batch worker died before reporting".into())))?;
        merged.merge(&out.metrics);
        hits += u64::from(out.cache_hit);
        misses += u64::from(!out.cache_hit);
        tasks_wall_ns += out.task_wall_ns;
        items.push(BatchItem {
            name: input.name.clone(),
            bytes: out.bytes,
            metrics: out.metrics,
            cache_hit: out.cache_hit,
            task_wall_ns: out.task_wall_ns,
        });
    }
    // Driver-plane spans live on lane 0: worker lifetimes (which
    // worker ran how many tasks — inherently scheduling-dependent, so
    // they are kept off the deterministic task lanes) and the batch
    // envelope itself.
    for (widx, (wstart, wend, ntasks)) in worker_meta.iter().enumerate() {
        merged.record_span(
            "worker",
            *wstart,
            *wend,
            &[
                ("worker", AttrValue::U64(widx as u64)),
                ("tasks", AttrValue::U64(*ntasks)),
            ],
        );
    }
    merged.record_span(
        "batch",
        started,
        Instant::now(),
        &[
            ("jobs", AttrValue::U64(jobs as u64)),
            ("tasks", AttrValue::U64(inputs.len() as u64)),
        ],
    );
    let wall_ns = elapsed_ns(started);
    merged.set("driver.jobs", jobs as u64);
    merged.set("driver.tasks", inputs.len() as u64);
    merged.add_time_ns("driver.wall_ns", wall_ns);
    merged.add_time_ns("driver.tasks_wall_ns", tasks_wall_ns);
    merged.set("cache.hits", hits);
    merged.set("cache.misses", misses);
    merged.set("cache.degraded", degraded.load(Ordering::Relaxed));
    Ok(BatchReport {
        items,
        merged,
        jobs,
        cache_hits: hits,
        cache_misses: misses,
        wall_ns,
        tasks_wall_ns,
    })
}

fn elapsed_ns(since: Instant) -> u64 {
    since.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(n: usize) -> Vec<BatchInput> {
        (0..n)
            .map(|i| BatchInput {
                name: format!("task{i}"),
                source: format!("source {i}"),
            })
            .collect()
    }

    /// The work closure: deterministic bytes per input, one counter.
    fn work(
        _idx: usize,
        input: &BatchInput,
        tm: Telemetry,
    ) -> Result<(Vec<u8>, Telemetry), Error> {
        tm.add("work.calls", 1);
        tm.add("work.bytes", input.source.len() as u64);
        tm.span("compile", || {});
        Ok((
            input.source.as_bytes().iter().rev().copied().collect(),
            tm,
        ))
    }

    #[test]
    fn output_order_is_input_order_regardless_of_jobs() {
        let ins = inputs(17);
        let serial = run_batch(&ins, &BatchOptions::new("t"), work).unwrap();
        let mut par_opts = BatchOptions::new("t");
        par_opts.jobs = 8;
        par_opts.telemetry = true;
        let parallel = run_batch(&ins, &par_opts, work).unwrap();
        assert_eq!(serial.items.len(), parallel.items.len());
        for (a, b) in serial.items.iter().zip(parallel.items.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.bytes, b.bytes);
        }
        assert_eq!(parallel.merged.counter("work.calls"), Some(17));
        assert_eq!(parallel.merged.counter("driver.tasks"), Some(17));
        assert_eq!(parallel.merged.counter("cache.misses"), Some(17));
        assert_eq!(parallel.jobs, 8);
    }

    #[test]
    fn failure_reports_lowest_index_deterministically() {
        let ins = inputs(9);
        let mut opts = BatchOptions::new("t");
        opts.jobs = 4;
        let failing = |idx: usize, input: &BatchInput, tm: Telemetry| {
            if idx % 3 == 2 {
                return Err(Error::Usage(format!("task {idx} failed")));
            }
            work(idx, input, tm)
        };
        let err = run_batch(&ins, &opts, failing).unwrap_err();
        assert_eq!(err.to_string(), "task 2 failed");
    }

    /// Regression test for the old `h.join().expect("batch worker
    /// panicked")`: a deliberately panicking stage must become that
    /// task's `Error::Panic` while every other task still completes
    /// (proved by the lowest-index-error contract still holding and by
    /// the run not aborting the process).
    #[test]
    fn panicking_stage_becomes_a_task_error_not_a_crash() {
        let ins = inputs(8);
        let mut opts = BatchOptions::new("t");
        opts.jobs = 4;
        let bomb = |idx: usize, input: &BatchInput, tm: Telemetry| {
            if idx == 3 {
                panic!("injected stage panic on task {idx}");
            }
            work(idx, input, tm)
        };
        let err = run_batch(&ins, &opts, bomb).unwrap_err();
        assert!(matches!(err, Error::Panic(_)), "{err}");
        assert!(err.to_string().contains("injected stage panic on task 3"));
        assert_eq!(err.kind(), "panic");
        // Two bombs: the lowest-indexed one is reported, which requires
        // the other tasks (including the second bomb) to have run to
        // completion rather than tearing the pool down.
        let two = |idx: usize, input: &BatchInput, tm: Telemetry| {
            if idx == 2 || idx == 6 {
                panic!("bomb {idx}");
            }
            work(idx, input, tm)
        };
        let err = run_batch(&ins, &opts, two).unwrap_err();
        assert!(err.to_string().contains("bomb 2"), "{err}");
    }

    /// A cache directory deleted mid-run degrades stores to cache-off
    /// operation: every task still succeeds and the merged metrics
    /// count the degradations.
    #[test]
    fn vanished_cache_dir_degrades_with_counter() {
        let dir = std::env::temp_dir().join(format!(
            "safetsa-batch-degrade-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let ins = inputs(4);
        let mut opts = BatchOptions::new("t");
        opts.telemetry = true;
        opts.cache_dir = Some(dir.clone());
        // Sabotage: replace the cache directory with a plain file after
        // open() created it, so every store fails even after the
        // recreate-and-retry.
        let sab = |idx: usize, input: &BatchInput, tm: Telemetry| {
            let _ = std::fs::remove_dir_all(&dir);
            let _ = std::fs::write(&dir, b"not a directory");
            work(idx, input, tm)
        };
        let report = run_batch(&ins, &opts, sab).unwrap();
        assert_eq!(report.items.len(), 4);
        assert_eq!(report.merged.counter("cache.degraded"), Some(4));
        assert_eq!(report.cache_hits, 0);
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn cache_replays_bytes_and_metrics() {
        let dir = std::env::temp_dir().join(format!("safetsa-batch-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let ins = inputs(6);
        let mut opts = BatchOptions::new("t");
        opts.jobs = 3;
        opts.telemetry = true;
        opts.cache_dir = Some(dir.clone());
        let cold = run_batch(&ins, &opts, work).unwrap();
        assert_eq!((cold.cache_hits, cold.cache_misses), (0, 6));
        let warm = run_batch(&ins, &opts, work).unwrap();
        assert_eq!((warm.cache_hits, warm.cache_misses), (6, 0));
        for (a, b) in cold.items.iter().zip(warm.items.iter()) {
            assert_eq!(a.bytes, b.bytes);
            assert_eq!(a.metrics.export_flat(), b.metrics.export_flat());
            assert!(b.cache_hit);
        }
        // A different fingerprint misses: the config is part of the key.
        let mut other = opts.clone();
        other.fingerprint = "t2".into();
        let cross = run_batch(&ins, &other, work).unwrap();
        assert_eq!(cross.cache_hits, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Renders the scheduling-independent part of a trace: every span
    /// off lane 0 (worker/batch spans are inherently
    /// scheduling-dependent and live on lane 0 by construction), with
    /// the `_ns` fields dropped. Two runs of the same batch must agree
    /// on this rendering exactly.
    fn deterministic_tree(tm: &Telemetry) -> String {
        let mut out = String::new();
        for s in tm.trace_spans() {
            if s.lane == 0 {
                continue;
            }
            out.push_str(&format!(
                "span id={} parent={:?} name={} lane={} attrs={:?}\n",
                s.id, s.parent, s.name, s.lane, s.attrs
            ));
        }
        for e in tm.trace_events() {
            if e.lane == 0 {
                continue;
            }
            out.push_str(&format!(
                "event parent={:?} name={} lane={} attrs={:?}\n",
                e.parent, e.name, e.lane, e.attrs
            ));
        }
        out
    }

    #[test]
    fn span_tree_is_identical_for_one_and_eight_jobs() {
        let ins = inputs(9);
        let mut serial = BatchOptions::new("t");
        serial.telemetry = true;
        serial.trace = true;
        let mut par = serial.clone();
        par.jobs = 8;
        let a = run_batch(&ins, &serial, work).unwrap();
        let b = run_batch(&ins, &par, work).unwrap();
        let ta = deterministic_tree(&a.merged);
        let tb = deterministic_tree(&b.merged);
        assert!(!ta.is_empty());
        assert_eq!(ta, tb, "span tree must not depend on scheduling");
        // Each task contributed its root span on its own lane, with the
        // work closure's span nested under it.
        for (i, input) in ins.iter().enumerate() {
            let lane = i as u32 + 1;
            let spans: Vec<_> = a
                .merged
                .trace_spans()
                .into_iter()
                .filter(|s| s.lane == lane)
                .collect();
            let task = spans.iter().find(|s| s.name == "task").unwrap();
            assert_eq!(
                task.attrs,
                vec![("name".to_string(), AttrValue::Str(input.name.clone()))]
            );
            let compile = spans.iter().find(|s| s.name == "compile").unwrap();
            assert_eq!(compile.parent, Some(task.id));
        }
        // Lane 0 holds the driver plane: one batch span, >= 1 worker.
        let lane0: Vec<_> = b
            .merged
            .trace_spans()
            .into_iter()
            .filter(|s| s.lane == 0)
            .collect();
        assert!(lane0.iter().any(|s| s.name == "batch"));
        assert!(lane0.iter().any(|s| s.name == "worker"));
    }

    #[test]
    fn cache_hits_still_appear_in_the_trace() {
        let dir = std::env::temp_dir().join(format!(
            "safetsa-batch-trace-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let ins = inputs(3);
        let mut opts = BatchOptions::new("t");
        opts.telemetry = true;
        opts.trace = true;
        opts.cache_dir = Some(dir.clone());
        let cold = run_batch(&ins, &opts, work).unwrap();
        let warm = run_batch(&ins, &opts, work).unwrap();
        assert_eq!(warm.cache_hits, 3);
        // The warm run's trace still shows every task + its cache probe,
        // and the replayed counters merged into the traced registries.
        for report in [&cold, &warm] {
            let spans = report.merged.trace_spans();
            assert_eq!(spans.iter().filter(|s| s.name == "task").count(), 3);
            assert_eq!(spans.iter().filter(|s| s.name == "cache.probe").count(), 3);
        }
        let hits = |r: &BatchReport, hit: bool| {
            r.merged
                .trace_events()
                .iter()
                .filter(|e| {
                    e.name == "cache.probe.done"
                        && e.attrs
                            .contains(&("hit".to_string(), AttrValue::Bool(hit)))
                })
                .count()
        };
        assert_eq!(hits(&cold, false), 3);
        assert_eq!(hits(&warm, true), 3);
        assert_eq!(
            warm.merged.counter("work.bytes"),
            cold.merged.counter("work.bytes"),
            "replayed counters must equal fresh ones"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
