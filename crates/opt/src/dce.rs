//! Dead code elimination: removes effect-free instructions whose
//! results are never used, and dead phis (transitively).
//!
//! Exceptional instructions (`nullcheck`, `indexcheck`, `upcast`,
//! `xprimitive`, calls) are never removed even when their results are
//! dead — their potential exception is an observable effect. Stores
//! and calls are effects and always stay.

use safetsa_core::function::Function;
use safetsa_core::instr::Instr;
use safetsa_core::rewrite::{compact, Rewrite};
use safetsa_core::value::{BlockId, Def, ValueId};
use std::collections::{HashMap, HashSet};

/// Whether an instruction can be deleted when its result is unused.
fn is_removable(i: &Instr) -> bool {
    matches!(
        i,
        Instr::Primitive { .. }
            | Instr::Downcast { .. }
            | Instr::InstanceOf { .. }
            | Instr::RefEq { .. }
            | Instr::ArrayLength { .. }
            | Instr::GetField { .. }
            | Instr::GetStatic { .. }
            | Instr::GetElt { .. }
            | Instr::New { .. }
    )
}

/// Runs DCE to a fixpoint; returns the new function and the number of
/// instructions + phis removed.
pub fn run(f: &Function) -> (Function, usize) {
    let mut cur = f.clone();
    let mut total = 0;
    loop {
        let mut removed = run_once(&mut cur);
        // Trivial- and dead-phi pruning (Briggs et al.; the phi-count
        // reductions of Figure 6 come from here).
        let (pruned, phis_removed) = safetsa_core::rewrite::prune_phis(&cur);
        if phis_removed > 0 {
            cur = pruned;
            removed += phis_removed;
        }
        if removed == 0 {
            return (cur, total);
        }
        total += removed;
    }
}

fn run_once(f: &mut Function) -> usize {
    // Mark: roots are terminator uses, effects' operands, provenance.
    let mut uses: HashMap<ValueId, usize> = HashMap::new();
    let mut bump = |v: ValueId| *uses.entry(v).or_insert(0) += 1;
    for block in &f.blocks {
        for phi in &block.phis {
            for (_, v) in &phi.args {
                bump(*v);
            }
        }
        for instr in &block.instrs {
            for v in instr.operands() {
                bump(v);
            }
        }
    }
    f.body.walk(&mut |c| {
        use safetsa_core::cst::Cst;
        match c {
            Cst::If { cond, .. } => bump(*cond),
            Cst::Return(Some(v)) | Cst::Throw(v) => bump(*v),
            _ => {}
        }
    });
    for info in &f.values {
        if let Some(p) = info.provenance {
            bump(p);
        }
    }

    // Sweep: iteratively find dead values (count 0, or only used by
    // other dead values). Simple worklist: collect dead candidates.
    let mut dead: HashSet<ValueId> = HashSet::new();
    let mut changed = true;
    while changed {
        changed = false;
        for (bi, block) in f.blocks.iter().enumerate() {
            let b = BlockId(bi as u32);
            for (k, instr) in block.instrs.iter().enumerate() {
                let Some(result) = f.instr_result(b, k) else {
                    continue;
                };
                if dead.contains(&result) || !is_removable(instr) {
                    continue;
                }
                if uses.get(&result).copied().unwrap_or(0) == 0 {
                    dead.insert(result);
                    changed = true;
                    for v in instr.operands() {
                        if let Some(c) = uses.get_mut(&v) {
                            *c -= 1;
                        }
                    }
                }
            }
            for (k, phi) in block.phis.iter().enumerate() {
                let result = f.phi_result(b, k);
                if dead.contains(&result) {
                    continue;
                }
                // A phi used only by itself (self-loop) with no other
                // uses is dead too.
                let self_uses = phi.args.iter().filter(|(_, v)| *v == result).count();
                if uses.get(&result).copied().unwrap_or(0) == self_uses {
                    dead.insert(result);
                    changed = true;
                    for (_, v) in &phi.args {
                        if let Some(c) = uses.get_mut(v) {
                            *c -= 1;
                        }
                    }
                }
            }
        }
    }
    if dead.is_empty() {
        return 0;
    }
    let mut rw = Rewrite::default();
    for &v in &dead {
        match f.value(v).def {
            Def::Instr(b, k) => rw.delete_instrs.push((b, k as usize)),
            Def::Phi(b, k) => rw.delete_phis.push((b, k as usize)),
            _ => {}
        }
    }
    let removed = rw.delete_instrs.len() + rw.delete_phis.len();
    *f = compact(f, &rw);
    removed
}
