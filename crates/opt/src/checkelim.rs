//! Analysis-driven check elimination — beyond what CSE can reach.
//!
//! CSE removes a `nullcheck`/`indexcheck` only when an *identical
//! dominating check* exists. This pass consumes the sparse dataflow
//! facts from `safetsa-analysis` to go further:
//!
//! * **`nullcheck` → `downcast`**: when the checked reference provably
//!   carries a *safe-plane witness* — chasing its definition through
//!   the reference-preserving casts reaches a value `w` on a
//!   `safe-ref` plane whose downcast to the check's result plane is
//!   statically safe — the check is rewritten **in place** into
//!   `downcast safe-ref(A) → safe-ref(B) w`. The result keeps its
//!   value id, plane, and def site, so no renumbering is needed, and
//!   the downcast generates no target-machine code. This removes the
//!   *first* check of a freshly allocated object (`X a = new X();
//!   a.f…`), which CSE never can — there is no dominating check to
//!   reuse.
//! * **dead proven `indexcheck` deletion**: DCE refuses to delete
//!   exceptional instructions — their potential trap is observable.
//!   When range analysis proves the check *cannot* trap
//!   (`0 ≤ index < length(array)`) and liveness proves its result
//!   cannot influence behaviour, the trap is no longer observable and
//!   the instruction is deleted outright.
//!
//! `indexcheck`s with *live* results are never rewritten even when
//! proven in bounds: the format deliberately has no `int → safe-index`
//! coercion (a producer-asserted bounds fact the consumer cannot
//! recheck cheaply must not ride the wire), so a live safe-index value
//! can only be produced by a real check. Proven-but-kept checks are
//! still counted (`index_proven`) for the paper's telemetry.
//!
//! Exception-edge bookkeeping mirrors CSE's: removing a check removes
//! its exception edge, so a handler's *last* incoming edge is never
//! removed (the rewrite is skipped), and dangling phi arguments are
//! pruned afterwards.

use crate::fixup;
use safetsa_analysis::{liveness, nullness, range, Nullity};
use safetsa_core::cfg::Cfg;
use safetsa_core::function::Function;
use safetsa_core::instr::Instr;
use safetsa_core::rewrite::{compact, Rewrite};
use safetsa_core::types::{TypeTable, TypeId};
use safetsa_core::typing;
use safetsa_core::value::{BlockId, Def, ValueId};
use std::collections::HashMap;

/// Per-function statistics of one check-elimination run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckElimStats {
    /// `nullcheck`s rewritten into safe downcasts.
    pub null_converted: usize,
    /// Proven-in-bounds `indexcheck`s with dead results, deleted.
    pub index_deleted: usize,
    /// `nullcheck`s whose operand is proven non-null at the check site.
    pub null_proven: usize,
    /// `indexcheck`s proven in bounds at the check site.
    pub index_proven: usize,
    /// Nullness facts computed (values with a fact).
    pub nullness_facts: u64,
    /// Range facts computed.
    pub range_facts: u64,
    /// Nullness fixpoint passes.
    pub nullness_iterations: u64,
    /// Range fixpoint passes.
    pub range_iterations: u64,
}

impl CheckElimStats {
    /// Accumulates another run's statistics.
    pub fn add(&mut self, o: &CheckElimStats) {
        self.null_converted += o.null_converted;
        self.index_deleted += o.index_deleted;
        self.null_proven += o.null_proven;
        self.index_proven += o.index_proven;
        self.nullness_facts += o.nullness_facts;
        self.range_facts += o.range_facts;
        self.nullness_iterations += o.nullness_iterations;
        self.range_iterations += o.range_iterations;
    }

    /// Total instructions removed or rewritten away.
    pub fn removed(&self) -> usize {
        self.null_converted + self.index_deleted
    }
}

/// Chases `value` through the reference-preserving casts to a value on
/// a `safe-ref` plane that can be safely downcast to `target` — the
/// non-null witness justifying a `nullcheck` rewrite.
fn safe_witness(types: &TypeTable, f: &Function, value: ValueId, target: TypeId) -> Option<ValueId> {
    let mut w = value;
    loop {
        let ty = f.value_ty(w);
        if types.is_safe_ref(ty) && typing::downcast_is_safe(types, ty, target) {
            return Some(w);
        }
        let Def::Instr(b, k) = f.value(w).def else {
            return None;
        };
        match &f.block(b).instrs[k as usize] {
            // Casts forward the same reference; `upcast` may trap, but
            // it stays in the program, so its trap is preserved — only
            // the reference identity matters here.
            Instr::Downcast { value, .. } | Instr::Upcast { value, .. } => w = *value,
            _ => return None,
        }
    }
}

/// Runs check elimination over `f`; returns the new function and the
/// run's statistics.
pub fn run(types: &TypeTable, f: &Function) -> (Function, CheckElimStats) {
    let mut stats = CheckElimStats::default();
    let Ok(cfg) = Cfg::build(f) else {
        return (f.clone(), stats);
    };
    let nn = nullness::analyze(types, f, &cfg);
    let rg = range::analyze(types, f, &cfg);
    let lv = liveness::analyze(f, &cfg);
    stats.nullness_facts = nn.facts_computed();
    stats.range_facts = rg.facts_computed();
    stats.nullness_iterations = nn.iterations;
    stats.range_iterations = rg.iterations;

    // Protect handlers from losing their last exception edge (shared
    // bookkeeping with CSE): each removed check takes its edge along.
    let exc_targets = fixup::exception_targets(f);
    let mut edges_per_handler: HashMap<BlockId, usize> = HashMap::new();
    for h in exc_targets.values() {
        *edges_per_handler.entry(*h).or_insert(0) += 1;
    }
    let mut take_edge = |b: BlockId, k: usize| -> bool {
        match exc_targets.get(&(b, k)) {
            Some(h) => {
                let cnt = edges_per_handler.get_mut(h).expect("edge counted");
                if *cnt <= 1 {
                    return false;
                }
                *cnt -= 1;
                true
            }
            None => true,
        }
    };

    let mut cur = f.clone();
    let mut edges_removed = false;

    // Phase 1: nullcheck → downcast, in place (value ids unchanged).
    for bi in 0..cur.blocks.len() {
        let b = BlockId(bi as u32);
        for k in 0..cur.block(b).instrs.len() {
            let Instr::NullCheck { value, .. } = cur.block(b).instrs[k] else {
                continue;
            };
            if nn.at(value, b) == Nullity::NonNull {
                stats.null_proven += 1;
            }
            let Some(result) = cur.instr_result(b, k) else {
                continue;
            };
            let target = cur.value_ty(result);
            let Some(w) = safe_witness(types, &cur, value, target) else {
                continue;
            };
            if !take_edge(b, k) {
                continue;
            }
            let from = cur.value_ty(w);
            cur.blocks[bi].instrs[k] = Instr::Downcast {
                from,
                to: target,
                value: w,
            };
            stats.null_converted += 1;
            edges_removed = true;
        }
    }

    // Phase 2: delete proven-in-bounds indexchecks with dead results.
    // Deletion needs *zero remaining references* (compact's contract);
    // liveness tells us the result is semantically dead, and the DCE
    // iterations of the pass pipeline strip any dead pure users so a
    // later round can finish the job.
    let uses = count_uses(&cur);
    let mut rw = Rewrite::default();
    for bi in 0..cur.blocks.len() {
        let b = BlockId(bi as u32);
        for k in 0..cur.block(b).instrs.len() {
            let Instr::IndexCheck { array, index, .. } = cur.block(b).instrs[k] else {
                continue;
            };
            if !rg.proves_index(types, &cur, b, array, index) {
                continue;
            }
            stats.index_proven += 1;
            let dead = match cur.instr_result(b, k) {
                Some(r) => !lv.is_live(r) && uses.get(&r).copied().unwrap_or(0) == 0,
                None => true,
            };
            if !dead || !take_edge(b, k) {
                continue;
            }
            rw.delete_instrs.push((b, k));
            stats.index_deleted += 1;
            edges_removed = true;
        }
    }
    if !rw.is_empty() {
        cur = compact(&cur, &rw);
    }
    if edges_removed {
        // Removed checks took their exception edges with them: drop
        // the now-dangling handler phi arguments.
        fixup::prune_phi_args(&mut cur);
    }
    (cur, stats)
}

/// Syntactic use counts: operands, phi arguments, CST terminator uses,
/// and provenance links (same roots as DCE's mark phase).
fn count_uses(f: &Function) -> HashMap<ValueId, usize> {
    let mut uses: HashMap<ValueId, usize> = HashMap::new();
    let mut bump = |v: ValueId| *uses.entry(v).or_insert(0) += 1;
    for block in &f.blocks {
        for phi in &block.phis {
            for (_, v) in &phi.args {
                bump(*v);
            }
        }
        for instr in &block.instrs {
            for v in instr.operands() {
                bump(v);
            }
        }
    }
    f.body.walk(&mut |c| {
        use safetsa_core::cst::Cst;
        match c {
            Cst::If { cond, .. } => bump(*cond),
            Cst::Return(Some(v)) | Cst::Throw(v) => bump(*v),
            _ => {}
        }
    });
    for info in &f.values {
        if let Some(p) = info.provenance {
            bump(p);
        }
    }
    uses
}
