//! Post-pass CFG/phi fix-up: after deleting exceptional instructions,
//! some exception edges disappear and handler phis must drop the
//! corresponding arguments.

use safetsa_core::cfg::Cfg;
use safetsa_core::function::Function;
use safetsa_core::value::BlockId;
use std::collections::HashSet;

/// Retains only phi arguments whose predecessor edge still exists.
/// Call after a rewrite that deleted exceptional instructions.
pub fn prune_phi_args(f: &mut Function) {
    let cfg = match Cfg::build(f) {
        Ok(c) => c,
        Err(_) => return, // verification will report it
    };
    for bi in 0..f.blocks.len() {
        let b = BlockId(bi as u32);
        if f.blocks[bi].phis.is_empty() {
            continue;
        }
        let preds: HashSet<BlockId> = cfg.preds_of(b).iter().map(|e| e.from).collect();
        for phi in &mut f.blocks[bi].phis {
            phi.args.retain(|(p, _)| preds.contains(p));
        }
    }
}

/// Maps each `(block, instr index)` of an exceptional instruction to
/// its handler-entry block, if the instruction sits in a `try` region.
pub fn exception_targets(f: &Function) -> std::collections::HashMap<(BlockId, usize), BlockId> {
    let mut out = std::collections::HashMap::new();
    if let Ok(cfg) = Cfg::build(f) {
        for bi in 0..f.blocks.len() {
            let h = BlockId(bi as u32);
            for e in cfg.preds_of(h) {
                if let safetsa_core::cfg::EdgeKind::Exception { upto } = e.kind {
                    // The edge's source instruction is the exceptional
                    // instruction at index `upto` (or a throw terminator
                    // when upto equals the instruction count).
                    let idx = upto as usize;
                    if idx < f.block(e.from).instrs.len() {
                        out.insert((e.from, idx), h);
                    }
                }
            }
        }
    }
    out
}
