//! Dead-store elimination over the allocation-site alias and escape
//! facts.
//!
//! Two rules, both justified by the same observation: a store is dead
//! when no execution can observe the stored value.
//!
//! * **Overwritten** (flow-sensitive, per block): a store to a
//!   location that is stored again later in the same block, with no
//!   possible observer in between, is dead. Observers are loads that
//!   may alias the location, calls (unless every site of the base is
//!   `NoEscape` — the callee cannot reach the object), and exceptional
//!   instructions: one with a local handler may resume in-function
//!   code that reads anything, one without unwinds out of the function
//!   — where the caller can observe escaped bases and statics, but
//!   never a `NoEscape` object (no reference to it exists outside).
//! * **Never read** (flow-insensitive, whole function): a store whose
//!   base's points-to set is complete and all-`NoEscape` is dead when
//!   no load in the function can address any of those sites. Since a
//!   `NoEscape` site has no reference outside the function's SSA
//!   values, the only possible observers are in-function loads of the
//!   same field (or same-element-type array loads) whose base may
//!   denote one of the sites — and by the escape lemma an
//!   external-tainted load base can never denote a `NoEscape` site, so
//!   site-set intersection is the exact observer test.
//!
//! Stores have no results and are not exceptional, so deleting them
//! removes no value and no exception edge: no phi pruning or
//! handler-edge fixup is needed, and `compact` alone rebuilds the
//! function. Deleting every store to an allocation typically makes the
//! `new` itself dead — DCE (which treats `new` as pure) then removes
//! the allocation, completing scalar-style removal of unobservable
//! objects.

use crate::fixup;
use safetsa_analysis::range::origin;
use safetsa_analysis::{alias, escape};
use safetsa_core::cfg::Cfg;
use safetsa_core::function::Function;
use safetsa_core::instr::Instr;
use safetsa_core::rewrite::{compact, Rewrite};
use safetsa_core::types::{FieldRef, TypeId, TypeTable};
use safetsa_core::value::{BlockId, ValueId};
use std::collections::{BTreeSet, HashMap, HashSet};

/// Per-function statistics of one dead-store-elimination run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DseStats {
    /// Stores overwritten before any possible observer.
    pub overwritten: usize,
    /// Stores to non-escaping sites never read in the function.
    pub never_read: usize,
}

impl DseStats {
    /// Accumulates another run's statistics.
    pub fn add(&mut self, o: &DseStats) {
        self.overwritten += o.overwritten;
        self.never_read += o.never_read;
    }

    /// Total stores removed.
    pub fn removed(&self) -> usize {
        self.overwritten + self.never_read
    }
}

/// A stored-to heap location, keyed by the base's canonical origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Loc {
    Field(ValueId, FieldRef),
    Static(FieldRef),
    Elt(TypeId, ValueId, ValueId),
}

/// Runs dead-store elimination over `f`; returns the new function and
/// the run's statistics.
pub fn run(types: &TypeTable, f: &Function) -> (Function, DseStats) {
    let mut stats = DseStats::default();
    let Ok(cfg) = Cfg::build(f) else {
        return (f.clone(), stats);
    };
    let al = alias::analyze(types, f, &cfg);
    let esc = escape::analyze(f, &cfg, &al);
    let handlers = fixup::exception_targets(f);

    // Whether a location based on `base` is invisible outside the
    // function: points-to set complete and every site `NoEscape`.
    let contained = |base: ValueId| -> bool {
        al.sites_of(base).is_some_and(|s| esc.all_no_escape(s))
    };

    let mut dead: HashSet<(BlockId, usize)> = HashSet::new();

    // Rule 1: overwritten before any observer, within a block.
    for (bi, block) in f.blocks.iter().enumerate() {
        let b = BlockId(bi as u32);
        // location → index of the store whose value is still unread
        let mut pending: HashMap<Loc, usize> = HashMap::new();
        for (k, instr) in block.instrs.iter().enumerate() {
            // Exceptional instructions first: with a local handler,
            // control may resume in-function code that can read any
            // pending location; without one, the unwinding caller can
            // observe statics and escaped objects, but no `NoEscape`
            // site.
            if instr.is_exceptional() {
                if handlers.contains_key(&(b, k)) {
                    pending.clear();
                } else {
                    pending.retain(|loc, _| match loc {
                        Loc::Field(base, _) | Loc::Elt(_, base, _) => contained(*base),
                        Loc::Static(_) => false,
                    });
                }
            }
            match instr {
                Instr::GetField { object, field, .. } => {
                    let ob = origin(f, *object);
                    pending.retain(|loc, _| match loc {
                        Loc::Field(sb, sf) if sf == field => !al.may_alias(*sb, ob),
                        _ => true,
                    });
                }
                Instr::GetStatic { field } => {
                    pending.remove(&Loc::Static(*field));
                }
                Instr::GetElt { arr_ty, array, .. } => {
                    let ab = origin(f, *array);
                    pending.retain(|loc, _| match loc {
                        Loc::Elt(t, sb, _) if t == arr_ty => !al.may_alias(*sb, ab),
                        _ => true,
                    });
                }
                Instr::SetField { object, field, .. } => {
                    let loc = Loc::Field(origin(f, *object), *field);
                    if let Some(prev) = pending.insert(loc, k) {
                        dead.insert((b, prev));
                        stats.overwritten += 1;
                    }
                }
                Instr::SetStatic { field, .. } => {
                    if let Some(prev) = pending.insert(Loc::Static(*field), k) {
                        dead.insert((b, prev));
                        stats.overwritten += 1;
                    }
                }
                Instr::SetElt {
                    arr_ty,
                    array,
                    index,
                    ..
                } => {
                    // Guaranteed overwrite needs the same SSA index
                    // value; a different index value may or may not
                    // coincide at runtime, so it opens its own slot
                    // (another *write* is never an observer).
                    let loc = Loc::Elt(*arr_ty, origin(f, *array), *index);
                    if let Some(prev) = pending.insert(loc, k) {
                        dead.insert((b, prev));
                        stats.overwritten += 1;
                    }
                }
                Instr::XCall { .. } | Instr::XDispatch { .. } => {
                    // The callee may read any static and any object it
                    // can reach — which excludes contained bases.
                    pending.retain(|loc, _| match loc {
                        Loc::Field(base, _) | Loc::Elt(_, base, _) => contained(*base),
                        Loc::Static(_) => false,
                    });
                }
                _ => {}
            }
        }
        // Block ends: control continues elsewhere, later reads are
        // possible — pending stores stay live.
    }

    // Rule 2: stores to contained sites never read in the function.
    // Gather, per field and per element type, the union of sites any
    // load's base may denote (external taint contributes nothing for
    // contained sites, by the escape lemma).
    let mut field_reads: HashMap<FieldRef, BTreeSet<alias::AllocSite>> = HashMap::new();
    let mut elt_reads: HashMap<TypeId, BTreeSet<alias::AllocSite>> = HashMap::new();
    for block in &f.blocks {
        for instr in &block.instrs {
            match instr {
                Instr::GetField { object, field, .. } => {
                    field_reads
                        .entry(*field)
                        .or_default()
                        .extend(al.possible_sites(*object));
                }
                Instr::GetElt { arr_ty, array, .. } => {
                    elt_reads
                        .entry(*arr_ty)
                        .or_default()
                        .extend(al.possible_sites(*array));
                }
                _ => {}
            }
        }
    }
    let unread = |sites: &BTreeSet<alias::AllocSite>,
                  reads: Option<&BTreeSet<alias::AllocSite>>| {
        reads.is_none_or(|r| sites.iter().all(|s| !r.contains(s)))
    };
    for (bi, block) in f.blocks.iter().enumerate() {
        let b = BlockId(bi as u32);
        for (k, instr) in block.instrs.iter().enumerate() {
            if dead.contains(&(b, k)) {
                continue;
            }
            let gone = match instr {
                Instr::SetField { object, field, .. } => al
                    .sites_of(*object)
                    .is_some_and(|s| {
                        esc.all_no_escape(s) && unread(s, field_reads.get(field))
                    }),
                Instr::SetElt { arr_ty, array, .. } => al
                    .sites_of(*array)
                    .is_some_and(|s| {
                        esc.all_no_escape(s) && unread(s, elt_reads.get(arr_ty))
                    }),
                _ => false,
            };
            if gone {
                dead.insert((b, k));
                stats.never_read += 1;
            }
        }
    }

    if dead.is_empty() {
        return (f.clone(), stats);
    }
    let rw = Rewrite {
        delete_instrs: dead.into_iter().collect(),
        ..Rewrite::default()
    };
    let g = compact(f, &rw);
    (g, stats)
}
