//! Common subexpression elimination with memory dependence tracking.
//!
//! Dominator-scoped available-expression CSE: walking the dominator
//! tree, an instruction whose key is already available in a dominating
//! position is removed and its uses rewired.
//!
//! Memory is modelled exactly as §8 describes: a pseudo-value `Mem`
//! stands for the state of the heap. Every store (`setfield`,
//! `setstatic`, `setelt`) and every call defines a new `Mem`; loads
//! carry the current `Mem` in their key, so two loads of `o.f` only
//! match while no intervening write can have changed the heap. Control
//! flow joins conservatively define a fresh `Mem` (the `Mem`-phi of the
//! paper), as do loop headers.
//!
//! Check elimination falls out of the same mechanism: `nullcheck v`
//! keys only on `v` (null-ness of a value never changes), so a
//! dominating check subsumes later ones — this is how the producer
//! eliminates 30–70% of null checks (Figure 6) and ships the result
//! tamper-proof. `indexcheck` keys on `(array value, index value)`
//! (Appendix A binds safe indices to array values, whose length is
//! immutable).

use crate::fixup;
use crate::MemModel;
use safetsa_core::cfg::Cfg;
use safetsa_core::dom::DomTree;
use safetsa_core::function::Function;
use safetsa_core::instr::Instr;
use safetsa_core::rewrite::{compact, Rewrite};
use safetsa_core::types::{FieldRef, TypeId, TypeTable};
use safetsa_core::value::{BlockId, ValueId};
use std::collections::HashMap;

/// An available-expression key. `Mem(u64)` components make load keys
/// valid only within one memory epoch.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    Prim(TypeId, u16, Vec<ValueId>),
    NullCheck(ValueId),
    IndexCheck(ValueId, ValueId),
    Downcast(TypeId, TypeId, ValueId),
    Upcast(TypeId, TypeId, ValueId),
    InstanceOf(TypeId, TypeId, ValueId),
    RefEq(ValueId, ValueId),
    ArrayLength(ValueId),
    GetField(u64, ValueId, FieldRef),
    GetStatic(u64, FieldRef),
    GetElt(u64, ValueId, ValueId),
}

/// Runs CSE with the monolithic `Mem` model of §8.
pub fn run(types: &TypeTable, f: &Function) -> (Function, usize) {
    run_with(types, f, MemModel::Monolithic)
}

/// Runs CSE; returns the new function and the number of instructions
/// removed. With [`MemModel::FieldPartitioned`], `Mem` is split by
/// field name / element type — the "simple form of field analysis"
/// the paper's §8 proposes as its first improvement: a store to field
/// `f` only invalidates loads of `f`; an element store to `T[]` only
/// invalidates `T[]` element loads; calls invalidate everything. Type
/// separation makes this sound (a `T[]` store cannot alias a `U[]`
/// load), exactly as the paper notes.
pub fn run_with(types: &TypeTable, f: &Function, model: MemModel) -> (Function, usize) {
    let _ = types;
    let Ok(cfg) = Cfg::build(f) else {
        return (f.clone(), 0);
    };
    let dom = DomTree::build(&cfg);
    // Protect handlers from losing their last exception edge.
    let exc_targets = fixup::exception_targets(f);
    let mut edges_per_handler: HashMap<BlockId, usize> = HashMap::new();
    for h in exc_targets.values() {
        *edges_per_handler.entry(*h).or_insert(0) += 1;
    }

    let mut rw = Rewrite::default();
    let mut removed = 0;

    // Recursive walk over the dominator tree with a scoped table.
    struct Walker<'a> {
        f: &'a Function,
        cfg: &'a Cfg,
        dom: &'a DomTree,
        avail: HashMap<Key, ValueId>,
        rw: Rewrite,
        removed: usize,
        mem_counter: u64,
        model: MemModel,
        exc_targets: HashMap<(BlockId, usize), BlockId>,
        edges_per_handler: HashMap<BlockId, usize>,
    }

    /// The memory state: a global epoch plus (in the field-partitioned
    /// model) per-partition epochs. A partition's effective epoch is
    /// the larger of its own and the global one.
    #[derive(Clone, Default)]
    struct Mem {
        global: u64,
        parts: HashMap<Part, u64>,
    }

    #[derive(Clone, Copy, PartialEq, Eq, Hash)]
    enum Part {
        Field(FieldRef),
        Static(FieldRef),
        Elements(TypeId),
    }

    impl Mem {
        fn epoch_of(&self, p: Part) -> u64 {
            self.parts.get(&p).copied().unwrap_or(0).max(self.global)
        }
    }

    impl<'a> Walker<'a> {
        fn bump_for_write(&mut self, mem: &mut Mem, instr: &Instr) {
            self.mem_counter += 1;
            let e = self.mem_counter;
            if self.model == MemModel::Monolithic {
                mem.global = e;
                return;
            }
            match instr {
                Instr::SetField { field, .. } => {
                    mem.parts.insert(Part::Field(*field), e);
                }
                Instr::SetStatic { field, .. } => {
                    mem.parts.insert(Part::Static(*field), e);
                }
                Instr::SetElt { arr_ty, .. } => {
                    mem.parts.insert(Part::Elements(*arr_ty), e);
                }
                // Calls may write anything.
                _ => mem.global = e,
            }
        }

        fn visit(&mut self, b: BlockId, mem_in: &Mem) {
            let mut mem = mem_in.clone();
            // Fresh memory epoch at merge points and handler entries
            // (the conservative `Mem`-phi of §8).
            if self.cfg.preds_of(b).len() != 1 {
                self.mem_counter += 1;
                mem.global = self.mem_counter;
            }
            let mut inserted: Vec<Key> = Vec::new();
            let n = self.f.block(b).instrs.len();
            for k in 0..n {
                let instr = &self.f.block(b).instrs[k];
                // Resolve operands through earlier substitutions so
                // chained redundancies collapse in one pass.
                let mut instr = instr.clone();
                let rwref = &self.rw;
                instr.map_operands(|v| rwref.resolve(v));
                if instr.writes_memory() {
                    self.bump_for_write(&mut mem, &instr);
                }
                let epoch = match &instr {
                    Instr::GetField { field, .. } => mem.epoch_of(Part::Field(*field)),
                    Instr::GetStatic { field } => mem.epoch_of(Part::Static(*field)),
                    Instr::GetElt { arr_ty, .. } => mem.epoch_of(Part::Elements(*arr_ty)),
                    _ => mem.global,
                };
                let Some(key) = key_of(&instr, epoch) else {
                    continue;
                };
                let result = self.f.instr_result(b, k);
                match self.avail.get(&key) {
                    Some(&prior) => {
                        // Deleting the last exception edge of a handler
                        // would orphan it; skip such deletions.
                        if instr.is_exceptional() {
                            if let Some(h) = self.exc_targets.get(&(b, k)) {
                                let cnt = self.edges_per_handler.get_mut(h).expect("edge counted");
                                if *cnt <= 1 {
                                    continue;
                                }
                                *cnt -= 1;
                            }
                        }
                        if let Some(result) = result {
                            self.rw.replace.insert(result, prior);
                        }
                        self.rw.delete_instrs.push((b, k));
                        self.removed += 1;
                    }
                    None => {
                        if let Some(result) = result {
                            self.avail.insert(key.clone(), result);
                            inserted.push(key);
                        }
                    }
                }
            }
            let children = self.dom.children[b.index()].clone();
            for c in children {
                self.visit(c, &mem);
            }
            for key in inserted {
                self.avail.remove(&key);
            }
        }
    }

    let mut w = Walker {
        f,
        cfg: &cfg,
        dom: &dom,
        avail: HashMap::new(),
        rw: Rewrite::default(),
        removed: 0,
        mem_counter: 0,
        model,
        exc_targets,
        edges_per_handler,
    };
    if !dom.preorder.is_empty() {
        w.visit(dom.preorder[0], &Mem::default());
    }
    rw.replace = w.rw.replace;
    rw.delete_instrs = w.rw.delete_instrs;
    removed += w.removed;

    if rw.is_empty() {
        return (f.clone(), 0);
    }
    let mut g = compact(f, &rw);
    // Deleted exceptional instructions take their exception edges with
    // them: drop the now-dangling phi arguments.
    fixup::prune_phi_args(&mut g);
    (g, removed)
}

fn key_of(instr: &Instr, mem: u64) -> Option<Key> {
    Some(match instr {
        Instr::Primitive { ty, op, args } => Key::Prim(*ty, op.0, args.clone()),
        // Exceptional primitives (integer div/rem) are deterministic in
        // their operands: if a dominating occurrence didn't trap, the
        // later one wouldn't either.
        Instr::XPrimitive { ty, op, args } => Key::Prim(*ty, op.0, args.clone()),
        Instr::NullCheck { value, .. } => Key::NullCheck(*value),
        Instr::IndexCheck { array, index, .. } => Key::IndexCheck(*array, *index),
        Instr::Downcast { from, to, value } => Key::Downcast(*from, *to, *value),
        Instr::Upcast { from, to, value } => Key::Upcast(*from, *to, *value),
        Instr::InstanceOf {
            from,
            target,
            value,
        } => Key::InstanceOf(*from, *target, *value),
        Instr::RefEq { a, b, .. } => {
            // Commutative.
            let (x, y) = if a.0 <= b.0 { (*a, *b) } else { (*b, *a) };
            Key::RefEq(x, y)
        }
        Instr::ArrayLength { array, .. } => Key::ArrayLength(*array),
        Instr::GetField { object, field, .. } => Key::GetField(mem, *object, *field),
        Instr::GetStatic { field } => Key::GetStatic(mem, *field),
        Instr::GetElt { array, index, .. } => Key::GetElt(mem, *array, *index),
        _ => return None,
    })
}
