//! Redundant-load elimination and store-to-load forwarding, driven by
//! the allocation-site alias and escape analyses.
//!
//! Strictly stronger than what CSE's `Mem` pseudo-value can reach,
//! even in its field-partitioned form (§8's proposed improvement):
//!
//! * **store-to-load forwarding** — after `setfield o.f = v`, a later
//!   `getfield o.f` of the same object simply *is* `v`. CSE can never
//!   forward a stored value: a store defines a new `Mem` epoch, so the
//!   load after it never matches a dominating load key.
//! * **facts survive calls** — CSE invalidates every load fact at a
//!   call. Here a `(base, field)` fact survives when the base's
//!   points-to set is fully known and every site is
//!   [`safetsa_analysis::Escape::No`]: the callee cannot possibly hold
//!   a reference to the object (it never escaped), so it cannot write
//!   the field.
//! * **alias-precise invalidation** — a store to `p.f` only kills
//!   facts for bases that *may alias* `p` (same field, overlapping
//!   points-to sets); disjoint known site sets keep their facts.
//!
//! The walk mirrors CSE's dominator-tree discipline: available heap
//! facts flow from a block to the blocks it immediately dominates
//! (which, when they have a unique predecessor, is exactly the
//! fall-through state), and are conservatively dropped at merge
//! points. Blocks entered by an exception edge also start empty: the
//! trap happened *somewhere* inside the protected region, so
//! end-of-block facts of the thrower must not be trusted — this is
//! the exception-edge analogue of the `Mem`-phi.
//!
//! Deleted loads are pure and non-exceptional, so no exception edge
//! ever disappears and no handler-edge bookkeeping is needed; the
//! forwarded value always lives on the exact plane of the load result
//! (both are the field's/element's plane), which `debug_assertions`
//! re-verify.

use safetsa_analysis::range::origin;
use safetsa_analysis::{alias, escape};
use safetsa_core::cfg::{Cfg, EdgeKind};
use safetsa_core::dom::DomTree;
use safetsa_core::function::Function;
use safetsa_core::instr::Instr;
use safetsa_core::rewrite::{compact, Rewrite};
use safetsa_core::types::{FieldRef, TypeId, TypeTable};
use safetsa_core::value::{BlockId, ValueId};
use std::collections::HashMap;

/// Per-function statistics of one load-forwarding run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadFwdStats {
    /// Loads replaced by a dominating store's value.
    pub store_forwarded: usize,
    /// Loads replaced by a dominating load's result.
    pub load_reused: usize,
    /// Heap facts kept alive across a call because every base site is
    /// `NoEscape`.
    pub kept_across_calls: usize,
    /// Allocation sites seen by the alias analysis.
    pub alias_sites: u64,
    /// Values with a points-to fact.
    pub alias_facts: u64,
    /// Alias fixpoint passes.
    pub alias_iterations: u64,
    /// Sites classified `NoEscape`.
    pub escape_no: u64,
    /// Sites classified `ArgEscape`.
    pub escape_arg: u64,
    /// Sites classified `GlobalEscape`.
    pub escape_global: u64,
}

impl LoadFwdStats {
    /// Accumulates another run's statistics.
    pub fn add(&mut self, o: &LoadFwdStats) {
        self.store_forwarded += o.store_forwarded;
        self.load_reused += o.load_reused;
        self.kept_across_calls += o.kept_across_calls;
        self.alias_sites += o.alias_sites;
        self.alias_facts += o.alias_facts;
        self.alias_iterations += o.alias_iterations;
        self.escape_no += o.escape_no;
        self.escape_arg += o.escape_arg;
        self.escape_global += o.escape_global;
    }

    /// Total loads removed.
    pub fn removed(&self) -> usize {
        self.store_forwarded + self.load_reused
    }
}

/// A heap location, canonicalized by the base reference's origin
/// (chasing `nullcheck`/`downcast`/`upcast`): same key ⇒ same runtime
/// location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Loc {
    Field(ValueId, FieldRef),
    Static(FieldRef),
    Elt(TypeId, ValueId, ValueId),
}

impl Loc {
    /// The base reference whose aliasing governs invalidation, if the
    /// location has one (statics are absolute).
    fn base(&self) -> Option<ValueId> {
        match self {
            Loc::Field(b, _) | Loc::Elt(_, b, _) => Some(*b),
            Loc::Static(_) => None,
        }
    }
}

/// How a fact entered the table (for the statistics split).
#[derive(Debug, Clone, Copy)]
enum Src {
    Store,
    Load,
}

/// Runs load forwarding over `f`; returns the new function and the
/// run's statistics.
pub fn run(types: &TypeTable, f: &Function) -> (Function, LoadFwdStats) {
    let mut stats = LoadFwdStats::default();
    let Ok(cfg) = Cfg::build(f) else {
        return (f.clone(), stats);
    };
    let dom = DomTree::build(&cfg);
    let al = alias::analyze(types, f, &cfg);
    let esc = escape::analyze(f, &cfg, &al);
    stats.alias_sites = al.sites.len() as u64;
    stats.alias_facts = al.facts_computed();
    stats.alias_iterations = al.iterations;
    let (no, arg, global) = esc.counts(&al.sites);
    stats.escape_no = no;
    stats.escape_arg = arg;
    stats.escape_global = global;

    struct Walker<'a> {
        f: &'a Function,
        cfg: &'a Cfg,
        dom: &'a DomTree,
        al: &'a alias::AliasAnalysis,
        esc: &'a escape::EscapeAnalysis,
        rw: Rewrite,
        stats: LoadFwdStats,
    }

    impl<'a> Walker<'a> {
        /// Whether the fact for a location based on `base` survives a
        /// call: every possible referent is a local allocation that
        /// never escaped, so the callee cannot write it.
        fn survives_call(&self, base: ValueId) -> bool {
            self.al
                .sites_of(base)
                .is_some_and(|s| self.esc.all_no_escape(s))
        }

        fn visit(&mut self, b: BlockId, facts_in: &HashMap<Loc, (ValueId, Src)>) {
            let mut facts = facts_in.clone();
            // Merge points drop everything (the conservative heap phi,
            // like CSE's fresh `Mem` epoch), and so do handler
            // entries: an exception edge leaves its source block
            // mid-flight, before the facts at its end held.
            let preds = self.cfg.preds_of(b);
            if preds.len() != 1
                || preds
                    .iter()
                    .any(|e| matches!(e.kind, EdgeKind::Exception { .. }))
            {
                facts.clear();
            }
            let n = self.f.block(b).instrs.len();
            for k in 0..n {
                // Resolve operands through earlier substitutions so
                // chained forwards collapse in one pass.
                let mut instr = self.f.block(b).instrs[k].clone();
                let rwref = &self.rw;
                instr.map_operands(|v| rwref.resolve(v));
                match &instr {
                    Instr::GetField { object, field, .. } => {
                        let key = Loc::Field(origin(self.f, *object), *field);
                        self.load(b, k, key, &mut facts);
                    }
                    Instr::GetStatic { field } => {
                        self.load(b, k, Loc::Static(*field), &mut facts);
                    }
                    Instr::GetElt {
                        arr_ty,
                        array,
                        index,
                    } => {
                        let key = Loc::Elt(*arr_ty, origin(self.f, *array), *index);
                        self.load(b, k, key, &mut facts);
                    }
                    Instr::SetField {
                        object,
                        field,
                        value,
                        ..
                    } => {
                        let obase = origin(self.f, *object);
                        let fld = *field;
                        let al = self.al;
                        // A store to `o.f` kills same-field facts for
                        // may-aliasing bases; other fields and
                        // provably disjoint bases keep theirs (type
                        // and field separation make this sound).
                        facts.retain(|loc, _| match loc {
                            Loc::Field(b2, f2) if *f2 == fld => {
                                *b2 != obase && !al.may_alias(*b2, obase)
                            }
                            _ => true,
                        });
                        facts.insert(Loc::Field(obase, fld), (*value, Src::Store));
                    }
                    Instr::SetStatic { field, value } => {
                        // Distinct static fields are distinct absolute
                        // locations; only the stored one changes.
                        facts.insert(Loc::Static(*field), (*value, Src::Store));
                    }
                    Instr::SetElt {
                        arr_ty,
                        array,
                        index,
                        value,
                    } => {
                        let abase = origin(self.f, *array);
                        let ty = *arr_ty;
                        let al = self.al;
                        // Element stores kill facts for may-aliasing
                        // arrays of the same element type — including
                        // the same array under a different index value
                        // (two index values may coincide at runtime).
                        facts.retain(|loc, _| match loc {
                            Loc::Elt(t2, b2, _) if *t2 == ty => !al.may_alias(*b2, abase),
                            _ => true,
                        });
                        facts.insert(Loc::Elt(ty, abase, *index), (*value, Src::Store));
                    }
                    Instr::XCall { .. } | Instr::XDispatch { .. } => {
                        // The callee may write any static and any
                        // object it can reach. Facts whose base
                        // provably never escaped survive — the
                        // headline improvement over the `Mem` model.
                        let mut kept = 0usize;
                        let this = &*self;
                        facts.retain(|loc, _| match loc.base() {
                            Some(base) if this.survives_call(base) => {
                                kept += 1;
                                true
                            }
                            _ => false,
                        });
                        self.stats.kept_across_calls += kept;
                    }
                    _ => {}
                }
            }
            let children = self.dom.children[b.index()].clone();
            for c in children {
                self.visit(c, &facts);
            }
        }

        /// Processes one load: forward a known fact, or record the
        /// result for later loads.
        fn load(&mut self, b: BlockId, k: usize, key: Loc, facts: &mut HashMap<Loc, (ValueId, Src)>) {
            let Some(result) = self.f.instr_result(b, k) else {
                return;
            };
            match facts.get(&key) {
                Some(&(prior, src)) => {
                    // The forwarded value must live on the load
                    // result's exact plane — it always does (both are
                    // the field's/element's plane), but a mismatch
                    // would silently break type separation, so check.
                    if self.f.value_ty(prior) != self.f.value_ty(result) {
                        debug_assert!(
                            false,
                            "loadfwd: plane mismatch forwarding {prior} for {result}"
                        );
                        return;
                    }
                    self.rw.replace.insert(result, prior);
                    self.rw.delete_instrs.push((b, k));
                    match src {
                        Src::Store => self.stats.store_forwarded += 1,
                        Src::Load => self.stats.load_reused += 1,
                    }
                }
                None => {
                    facts.insert(key, (result, Src::Load));
                }
            }
        }
    }

    let mut w = Walker {
        f,
        cfg: &cfg,
        dom: &dom,
        al: &al,
        esc: &esc,
        rw: Rewrite::default(),
        stats,
    };
    if !dom.preorder.is_empty() {
        w.visit(dom.preorder[0], &HashMap::new());
    }
    let stats = w.stats;
    if w.rw.is_empty() {
        return (f.clone(), stats);
    }
    let g = compact(f, &w.rw);
    (g, stats)
}
