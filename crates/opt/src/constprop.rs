//! Constant propagation and folding over the SSA graph.
//!
//! Instructions whose operands all resolve to constant-pool pre-loads
//! are evaluated with Java semantics and replaced by (possibly new)
//! constant-pool entries. Exceptional cases (division by a constant
//! zero) are left in place so the runtime exception survives.

use safetsa_core::function::Function;
use safetsa_core::instr::Instr;
use safetsa_core::primops;
use safetsa_core::rewrite::{compact, used_values, Rewrite};
use safetsa_core::types::{PrimKind, TypeKind, TypeTable};
use safetsa_core::value::{BlockId, Const, Literal, ValueId};
use std::collections::HashMap;

/// Runs constant propagation; returns the new function and the number
/// of instructions folded away.
pub fn run(types: &TypeTable, f: &Function) -> (Function, usize) {
    // Constant environment: value → literal.
    let mut consts: HashMap<ValueId, Literal> = HashMap::new();
    for (i, c) in f.consts.iter().enumerate() {
        consts.insert(f.const_value(i), c.lit.clone());
    }
    // One forward sweep per block (operands always dominate uses, and
    // dominators appear earlier only along the tree — a block-order
    // sweep is still sound because we only ever *add* facts keyed by
    // value id, and ids are unique).
    let mut fold: Vec<(BlockId, usize, Literal, safetsa_core::types::TypeId)> = Vec::new();
    for (bi, block) in f.blocks.iter().enumerate() {
        for (k, instr) in block.instrs.iter().enumerate() {
            let Some(result) = f.instr_result(BlockId(bi as u32), k) else {
                continue;
            };
            let Some(lit) = try_fold(types, &consts, instr) else {
                continue;
            };
            let ty = f.value_ty(result);
            consts.insert(result, lit.clone());
            fold.push((BlockId(bi as u32), k, lit, ty));
        }
    }
    if fold.is_empty() {
        return (f.clone(), 0);
    }
    // Materialize pool entries on a clone, then rewrite uses.
    let mut g = f.clone();
    let mut rw = Rewrite::default();
    for (b, k, lit, ty) in &fold {
        let cv = g.add_const(Const {
            ty: *ty,
            lit: lit.clone(),
        });
        let result = g.instr_result(*b, *k).expect("folded instr has result");
        if cv != result {
            rw.replace.insert(result, cv);
        }
    }
    // Delete folded instructions that are no longer referenced (they
    // cannot be: every use was substituted; exceptional ones were never
    // folded).
    let used = used_values(&g, &rw);
    let mut removed = 0;
    for (b, k, _, _) in &fold {
        let result = g.instr_result(*b, *k).expect("folded instr has result");
        if !used.contains(&rw.resolve(result)) || rw.replace.contains_key(&result) {
            rw.delete_instrs.push((*b, *k));
            removed += 1;
        }
    }
    if rw.is_empty() {
        return (g, 0);
    }
    (compact(&g, &rw), removed)
}

fn lit_of(consts: &HashMap<ValueId, Literal>, v: ValueId) -> Option<&Literal> {
    consts.get(&v)
}

/// Folds one instruction if all operands are known constants and the
/// operation cannot trap.
fn try_fold(
    types: &TypeTable,
    consts: &HashMap<ValueId, Literal>,
    instr: &Instr,
) -> Option<Literal> {
    let Instr::Primitive { ty, op, args } = instr else {
        return None;
    };
    let kind = match types.kind(*ty) {
        TypeKind::Prim(k) => k,
        _ => return None,
    };
    let name = primops::resolve(kind, *op)?.name;
    let lits: Vec<&Literal> = args
        .iter()
        .map(|a| lit_of(consts, *a))
        .collect::<Option<Vec<_>>>()?;
    fold_prim(kind, name, &lits)
}

#[allow(clippy::too_many_lines)]
fn fold_prim(kind: PrimKind, name: &str, a: &[&Literal]) -> Option<Literal> {
    use Literal::*;
    Some(match (kind, a) {
        (PrimKind::Bool, [Bool(x)]) => match name {
            "not" => Bool(!x),
            _ => return None,
        },
        (PrimKind::Bool, [Bool(x), Bool(y)]) => match name {
            "and" => Bool(x & y),
            "or" => Bool(x | y),
            "xor" => Bool(x ^ y),
            "eq" => Bool(x == y),
            "ne" => Bool(x != y),
            _ => return None,
        },
        (PrimKind::Char, [Char(x)]) => match name {
            "to_int" => Int(*x as i32),
            _ => return None,
        },
        (PrimKind::Char, [Char(x), Char(y)]) => match name {
            "eq" => Bool(x == y),
            "ne" => Bool(x != y),
            "lt" => Bool(x < y),
            "le" => Bool(x <= y),
            "gt" => Bool(x > y),
            "ge" => Bool(x >= y),
            _ => return None,
        },
        (PrimKind::Int, [Int(x)]) => match name {
            "neg" => Int(x.wrapping_neg()),
            "not" => Int(!x),
            "to_char" => Char(*x as u16),
            "to_long" => Long(*x as i64),
            "to_float" => Float(*x as f32),
            "to_double" => Double(*x as f64),
            _ => return None,
        },
        (PrimKind::Int, [Int(x), Int(y)]) => match name {
            "add" => Int(x.wrapping_add(*y)),
            "sub" => Int(x.wrapping_sub(*y)),
            "mul" => Int(x.wrapping_mul(*y)),
            "and" => Int(x & y),
            "or" => Int(x | y),
            "xor" => Int(x ^ y),
            "shl" => Int(x.wrapping_shl(*y as u32 & 31)),
            "shr" => Int(x.wrapping_shr(*y as u32 & 31)),
            "ushr" => Int(((*x as u32) >> (*y as u32 & 31)) as i32),
            "eq" => Bool(x == y),
            "ne" => Bool(x != y),
            "lt" => Bool(x < y),
            "le" => Bool(x <= y),
            "gt" => Bool(x > y),
            "ge" => Bool(x >= y),
            _ => return None, // div/rem are xprimitives anyway
        },
        (PrimKind::Long, [Long(x)]) => match name {
            "neg" => Long(x.wrapping_neg()),
            "not" => Long(!x),
            "to_int" => Int(*x as i32),
            "to_float" => Float(*x as f32),
            "to_double" => Double(*x as f64),
            _ => return None,
        },
        (PrimKind::Long, [Long(x), Long(y)]) => match name {
            "add" => Long(x.wrapping_add(*y)),
            "sub" => Long(x.wrapping_sub(*y)),
            "mul" => Long(x.wrapping_mul(*y)),
            "and" => Long(x & y),
            "or" => Long(x | y),
            "xor" => Long(x ^ y),
            "eq" => Bool(x == y),
            "ne" => Bool(x != y),
            "lt" => Bool(x < y),
            "le" => Bool(x <= y),
            "gt" => Bool(x > y),
            "ge" => Bool(x >= y),
            _ => return None,
        },
        (PrimKind::Long, [Long(x), Int(y)]) => match name {
            "shl" => Long(x.wrapping_shl(*y as u32 & 63)),
            "shr" => Long(x.wrapping_shr(*y as u32 & 63)),
            "ushr" => Long(((*x as u64) >> (*y as u32 & 63)) as i64),
            _ => return None,
        },
        // Floating point folding is bit-exact and safe.
        (PrimKind::Float, [Float(x)]) => match name {
            "neg" => Float(-x),
            "to_int" => Int(*x as i32),
            "to_long" => Long(*x as i64),
            "to_double" => Double(*x as f64),
            _ => return None,
        },
        (PrimKind::Float, [Float(x), Float(y)]) => match name {
            "add" => Float(x + y),
            "sub" => Float(x - y),
            "mul" => Float(x * y),
            "div" => Float(x / y),
            "rem" => Float(x % y),
            "eq" => Bool(x == y),
            "ne" => Bool(x != y),
            "lt" => Bool(x < y),
            "le" => Bool(x <= y),
            "gt" => Bool(x > y),
            "ge" => Bool(x >= y),
            _ => return None,
        },
        (PrimKind::Double, [Double(x)]) => match name {
            "neg" => Double(-x),
            "to_int" => Int(*x as i32),
            "to_long" => Long(*x as i64),
            "to_float" => Float(*x as f32),
            _ => return None,
        },
        (PrimKind::Double, [Double(x), Double(y)]) => match name {
            "add" => Double(x + y),
            "sub" => Double(x - y),
            "mul" => Double(x * y),
            "div" => Double(x / y),
            "rem" => Double(x % y),
            "eq" => Bool(x == y),
            "ne" => Bool(x != y),
            "lt" => Bool(x < y),
            "le" => Bool(x <= y),
            "gt" => Bool(x > y),
            "ge" => Bool(x >= y),
            _ => return None,
        },
        _ => return None,
    })
}
