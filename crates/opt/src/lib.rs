//! # safetsa-opt
//!
//! Producer-side optimization of SafeTSA programs (§8 of the paper):
//! the code *producer* runs constant propagation, common subexpression
//! elimination, and dead-code elimination, and ships the optimized
//! program — the format transports the result tamper-proof, which is
//! the paper's headline capability (null-check and bounds-check
//! elimination whose results survive transport).
//!
//! * [`constprop`] — constant folding over the SSA graph,
//! * [`cse`] — dominator-scoped available-expression CSE with the `Mem`
//!   pseudo-value for memory dependences (stores and calls define a new
//!   memory state; loads key on the current one),
//! * [`checkelim`] — dataflow-driven check elimination: nullness and
//!   range facts from `safetsa-analysis` prove checks redundant that
//!   CSE cannot reach (no dominating identical check required),
//! * [`loadfwd`] — redundant-load elimination and store-to-load
//!   forwarding over the allocation-site alias/escape facts; strictly
//!   stronger than CSE's `Mem` model (forwards stored values, keeps
//!   facts alive across calls for non-escaping receivers),
//! * [`dse`] — dead-store elimination: stores overwritten before any
//!   observer, and stores to non-escaping allocations never read,
//! * [`dce`] — liveness-based dead instruction and phi removal.
//!
//! Baseline check elimination falls out of CSE: a dominating
//! `nullcheck` (`indexcheck`) of the same value(s) makes later ones
//! redundant; the later check's uses are rewired to the dominating
//! safe value. [`checkelim`] goes beyond that, e.g. removing the very
//! *first* check of a freshly allocated object.
//!
//! # Examples
//!
//! ```
//! let prog = safetsa_frontend::compile(
//!     "class A { int f; static int g(A a) { return a.f + a.f; } }",
//! )?;
//! let mut lowered = safetsa_ssa::lower_program(&prog)?;
//! let stats = safetsa_opt::optimize_module(&mut lowered.module);
//! assert!(stats.null_checks_after <= stats.null_checks_before);
//! safetsa_core::verify::verify_module(&lowered.module)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod checkelim;
pub mod constprop;
pub mod cse;
pub mod dce;
pub mod dse;
mod fixup;
pub mod loadfwd;

use safetsa_core::function::Function;
use safetsa_core::instr::Instr;
use safetsa_core::module::Module;
use safetsa_core::types::TypeTable;
use safetsa_telemetry::Telemetry;

/// How CSE models memory dependences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemModel {
    /// §8's single `Mem` pseudo-value: any store or call invalidates
    /// every load.
    #[default]
    Monolithic,
    /// §8's proposed improvement (field analysis, the paper's citation
    /// \[15\]): `Mem` partitioned by field name and by array element
    /// type; only calls invalidate everything. Sound because of type
    /// separation.
    FieldPartitioned,
}

/// Which passes to run (ablation knobs for the pass-contribution
/// breakdown the paper reports in §8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Passes {
    /// Constant propagation and folding.
    pub constprop: bool,
    /// Common subexpression elimination (with `Mem`).
    pub cse: bool,
    /// Dataflow-driven check elimination (nullness + range analysis).
    pub checkelim: bool,
    /// Alias/escape-driven load forwarding.
    pub loadfwd: bool,
    /// Alias/escape-driven dead-store elimination.
    pub dse: bool,
    /// Dead code and phi elimination.
    pub dce: bool,
    /// Memory model used by CSE.
    pub mem: MemModel,
}

impl Passes {
    /// Everything on (the paper's "SafeTSA optimized" configuration).
    pub const ALL: Passes = Passes {
        constprop: true,
        cse: true,
        checkelim: true,
        loadfwd: true,
        dse: true,
        dce: true,
        mem: MemModel::Monolithic,
    };

    /// Everything on, with the field-partitioned memory extension.
    pub const ALL_FIELD_MEM: Passes = Passes {
        constprop: true,
        cse: true,
        checkelim: true,
        loadfwd: true,
        dse: true,
        dce: true,
        mem: MemModel::FieldPartitioned,
    };

    /// Nothing on.
    pub const NONE: Passes = Passes {
        constprop: false,
        cse: false,
        checkelim: false,
        loadfwd: false,
        dse: false,
        dce: false,
        mem: MemModel::Monolithic,
    };
}

/// Aggregate statistics for Figure 6.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Instructions before optimization.
    pub instrs_before: usize,
    /// Instructions after.
    pub instrs_after: usize,
    /// Phi nodes before.
    pub phis_before: usize,
    /// Phi nodes after.
    pub phis_after: usize,
    /// `nullcheck` instructions before.
    pub null_checks_before: usize,
    /// `nullcheck` instructions after.
    pub null_checks_after: usize,
    /// `indexcheck` instructions before.
    pub index_checks_before: usize,
    /// `indexcheck` instructions after.
    pub index_checks_after: usize,
    /// Instructions removed by constant propagation.
    pub removed_by_constprop: usize,
    /// Instructions removed by CSE.
    pub removed_by_cse: usize,
    /// Checks rewritten away or deleted by check elimination.
    pub removed_by_checkelim: usize,
    /// Loads removed by load forwarding.
    pub removed_by_loadfwd: usize,
    /// Stores removed by dead-store elimination.
    pub removed_by_dse: usize,
    /// Instructions (and phis) removed by DCE.
    pub removed_by_dce: usize,
    /// Per-analysis telemetry from check elimination.
    pub checkelim: checkelim::CheckElimStats,
    /// Per-analysis telemetry from load forwarding (includes the
    /// alias/escape analysis counters).
    pub loadfwd: loadfwd::LoadFwdStats,
    /// Telemetry from dead-store elimination.
    pub dse: dse::DseStats,
}

impl OptStats {
    /// Accumulates another function's statistics.
    pub fn add(&mut self, o: &OptStats) {
        self.instrs_before += o.instrs_before;
        self.instrs_after += o.instrs_after;
        self.phis_before += o.phis_before;
        self.phis_after += o.phis_after;
        self.null_checks_before += o.null_checks_before;
        self.null_checks_after += o.null_checks_after;
        self.index_checks_before += o.index_checks_before;
        self.index_checks_after += o.index_checks_after;
        self.removed_by_constprop += o.removed_by_constprop;
        self.removed_by_cse += o.removed_by_cse;
        self.removed_by_checkelim += o.removed_by_checkelim;
        self.removed_by_loadfwd += o.removed_by_loadfwd;
        self.removed_by_dse += o.removed_by_dse;
        self.removed_by_dce += o.removed_by_dce;
        self.checkelim.add(&o.checkelim);
        self.loadfwd.add(&o.loadfwd);
        self.dse.add(&o.dse);
    }
}

fn count_checks(f: &Function) -> (usize, usize) {
    (
        f.count_instrs(|i| matches!(i, Instr::NullCheck { .. })),
        f.count_instrs(|i| matches!(i, Instr::IndexCheck { .. })),
    )
}

/// Optimizes one function with the selected passes, returning the new
/// function and its statistics.
pub fn optimize_function(types: &TypeTable, f: &Function, passes: Passes) -> (Function, OptStats) {
    let mut stats = OptStats {
        instrs_before: f.instr_count(),
        phis_before: f.phi_count(),
        ..OptStats::default()
    };
    let (nb, ib) = count_checks(f);
    stats.null_checks_before = nb;
    stats.index_checks_before = ib;

    let mut cur = f.clone();
    // Iterate to a small fixpoint: constant propagation can expose CSE,
    // CSE exposes dead code, and DCE can expose more constants.
    for _ in 0..3 {
        let mut changed = false;
        if passes.constprop {
            let (next, removed) = constprop::run(types, &cur);
            stats.removed_by_constprop += removed;
            changed |= removed > 0;
            cur = next;
        }
        if passes.cse {
            let (next, removed) = cse::run_with(types, &cur, passes.mem);
            stats.removed_by_cse += removed;
            changed |= removed > 0;
            cur = next;
        }
        if passes.checkelim {
            let (next, ce) = checkelim::run(types, &cur);
            stats.removed_by_checkelim += ce.removed();
            stats.checkelim.add(&ce);
            changed |= ce.removed() > 0;
            cur = next;
        }
        if passes.loadfwd {
            let (next, lf) = loadfwd::run(types, &cur);
            stats.removed_by_loadfwd += lf.removed();
            stats.loadfwd.add(&lf);
            changed |= lf.removed() > 0;
            cur = next;
        }
        if passes.dse {
            let (next, ds) = dse::run(types, &cur);
            stats.removed_by_dse += ds.removed();
            stats.dse.add(&ds);
            changed |= ds.removed() > 0;
            cur = next;
        }
        if passes.dce {
            let (next, removed) = dce::run(&cur);
            stats.removed_by_dce += removed;
            changed |= removed > 0;
            cur = next;
        }
        if !changed {
            break;
        }
    }

    stats.instrs_after = cur.instr_count();
    stats.phis_after = cur.phi_count();
    let (na, ia) = count_checks(&cur);
    stats.null_checks_after = na;
    stats.index_checks_after = ia;
    (cur, stats)
}

/// Optimizes every function of a module in place with all passes.
pub fn optimize_module(m: &mut Module) -> OptStats {
    optimize(m, Passes::ALL, &Telemetry::disabled())
}

/// The canonical entry point: optimizes every function of a module in
/// place with the selected passes, and — when the registry is enabled —
/// records the optimization wall time (`opt.optimize_ns`) and the exact
/// quantities behind the paper's Tables 1–3: instruction/phi counts
/// before and after, per-pass removal counters (`opt.constprop.removed`
/// / `opt.cse.removed` / `opt.dce.removed`), and the check-elimination
/// plane (`opt.null_checks.{before,after,eliminated}`, likewise
/// `opt.index_checks`). A disabled registry costs nothing beyond the
/// [`OptStats`] bookkeeping the passes already do.
///
/// In debug/test builds the optimized module is re-validated with
/// [`safetsa_core::verify::verify_module`]: every pass must preserve
/// the type-separation and safety invariants the format enforces on
/// the wire.
pub fn optimize(m: &mut Module, passes: Passes, tm: &Telemetry) -> OptStats {
    let stats = tm.time("opt.optimize_ns", || {
        let mut total = OptStats::default();
        let functions = std::mem::take(&mut m.functions);
        for f in functions {
            let (g, stats) = optimize_function(&m.types, &f, passes);
            total.add(&stats);
            m.functions.push(g);
        }
        #[cfg(debug_assertions)]
        if let Err(e) = safetsa_core::verify::verify_module(m) {
            panic!("optimizer produced an unverifiable module: {e}");
        }
        total
    });
    record_stats(&stats, &passes, tm);
    stats
}

/// Records one [`OptStats`] into the `opt.*` counter plane. Key planes
/// belonging to a pass are emitted only when that pass ran, so ablated
/// configurations (and cached metric replays of them) carry exactly
/// the keys of the passes they exercised.
pub fn record_stats(stats: &OptStats, passes: &Passes, tm: &Telemetry) {
    if !tm.is_enabled() {
        return;
    }
    tm.add("opt.instrs.before", stats.instrs_before as u64);
    tm.add("opt.instrs.after", stats.instrs_after as u64);
    tm.add("opt.phis.before", stats.phis_before as u64);
    tm.add("opt.phis.after", stats.phis_after as u64);
    tm.add("opt.null_checks.before", stats.null_checks_before as u64);
    tm.add("opt.null_checks.after", stats.null_checks_after as u64);
    tm.add(
        "opt.null_checks.eliminated",
        stats.null_checks_before.saturating_sub(stats.null_checks_after) as u64,
    );
    tm.add("opt.index_checks.before", stats.index_checks_before as u64);
    tm.add("opt.index_checks.after", stats.index_checks_after as u64);
    tm.add(
        "opt.index_checks.eliminated",
        stats
            .index_checks_before
            .saturating_sub(stats.index_checks_after) as u64,
    );
    tm.add("opt.constprop.removed", stats.removed_by_constprop as u64);
    tm.add("opt.cse.removed", stats.removed_by_cse as u64);
    tm.add("opt.checkelim.removed", stats.removed_by_checkelim as u64);
    tm.add("opt.dce.removed", stats.removed_by_dce as u64);
    let ce = &stats.checkelim;
    tm.add("opt.checkelim.null_converted", ce.null_converted as u64);
    tm.add("opt.checkelim.index_deleted", ce.index_deleted as u64);
    tm.add("analysis.nullness.facts", ce.nullness_facts);
    tm.add("analysis.nullness.checks_proven", ce.null_proven as u64);
    tm.add(
        "analysis.nullness.fixpoint_iterations",
        ce.nullness_iterations,
    );
    tm.add("analysis.range.facts", ce.range_facts);
    tm.add("analysis.range.checks_proven", ce.index_proven as u64);
    tm.add("analysis.range.fixpoint_iterations", ce.range_iterations);
    if passes.loadfwd {
        let lf = &stats.loadfwd;
        tm.add("opt.loadfwd.removed", stats.removed_by_loadfwd as u64);
        tm.add("opt.loadfwd.store_forwarded", lf.store_forwarded as u64);
        tm.add("opt.loadfwd.load_reused", lf.load_reused as u64);
        tm.add("opt.loadfwd.kept_across_calls", lf.kept_across_calls as u64);
        tm.add("analysis.alias.sites", lf.alias_sites);
        tm.add("analysis.alias.facts", lf.alias_facts);
        tm.add("analysis.alias.fixpoint_iterations", lf.alias_iterations);
        tm.add("analysis.escape.no_escape", lf.escape_no);
        tm.add("analysis.escape.arg_escape", lf.escape_arg);
        tm.add("analysis.escape.global_escape", lf.escape_global);
    }
    if passes.dse {
        tm.add("opt.dse.removed", stats.removed_by_dse as u64);
        tm.add("opt.dse.overwritten", stats.dse.overwritten as u64);
        tm.add("opt.dse.never_read", stats.dse.never_read as u64);
    }
}
