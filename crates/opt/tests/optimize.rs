//! Optimizer tests: semantics preservation (differential before/after),
//! check-elimination effectiveness, and pass behavior.

use safetsa_core::verify::verify_module;
use safetsa_frontend::compile;
use safetsa_opt::{optimize_module, OptStats, Passes};
use safetsa_telemetry::Telemetry;
use safetsa_rt::Value;
use safetsa_ssa::lower_program;
use safetsa_vm::Vm;

fn run_module(m: &safetsa_core::Module, entry: &str) -> (Option<Value>, String) {
    let mut vm = Vm::load(m).expect("loads");
    vm.set_fuel(100_000_000);
    let r = vm.run_entry(entry).expect("runs");
    (r, vm.output.text().to_string())
}

/// Optimizes and checks: still verifies, and runs identically.
fn opt_differential(src: &str, entry: &str) -> OptStats {
    let prog = compile(src).expect("front-end");
    let lowered = lower_program(&prog).expect("lowering");
    verify_module(&lowered.module).expect("verifies before");
    let before = run_module(&lowered.module, entry);
    let mut module = lowered.module;
    let stats = optimize_module(&mut module);
    verify_module(&module).expect("verifies after optimization");
    let after = run_module(&module, entry);
    match (&before.0, &after.0) {
        (Some(x), Some(y)) => assert!(x.bits_eq(*y), "{x:?} vs {y:?}"),
        (None, None) => {}
        other => panic!("result mismatch {other:?}"),
    }
    assert_eq!(before.1, after.1, "output changed");
    stats
}

#[test]
fn cse_removes_duplicate_arithmetic() {
    let stats = opt_differential(
        "class A {
             static int f(int a, int b) { return (a * b) + (a * b) + (a * b); }
             static int main() { return f(6, 7); }
         }",
        "A.main",
    );
    assert!(stats.removed_by_cse >= 1, "{stats:?}");
}

#[test]
fn null_checks_eliminated_for_repeated_field_access() {
    let stats = opt_differential(
        "class P { int x; int y; int z; }
         class A {
             static int sum(P p) { return p.x + p.y + p.z; }
             static int main() { P p = new P(); p.x = 1; p.y = 2; p.z = 3; return sum(p); }
         }",
        "A.main",
    );
    // sum() checks p three times before optimization; one survives.
    assert!(
        stats.null_checks_after < stats.null_checks_before,
        "{stats:?}"
    );
}

#[test]
fn loads_not_merged_across_stores() {
    // a.v is loaded, stored to, loaded again — the second load must
    // survive (Mem dependence).
    let stats = opt_differential(
        "class Box { int v; }
         class A { static int main() {
             Box b = new Box();
             b.v = 5;
             int x = b.v;
             b.v = 9;
             int y = b.v;     // must NOT be CSE'd with x
             return x * 100 + y;
         } }",
        "A.main",
    );
    let _ = stats;
}

#[test]
fn loads_not_merged_across_calls() {
    opt_differential(
        "class Box { int v; }
         class A {
             static Box shared;
             static void mutate() { shared.v = 42; }
             static int main() {
                 shared = new Box();
                 shared.v = 1;
                 Box b = shared;
                 int x = b.v;
                 mutate();
                 int y = b.v;   // call invalidates memory
                 return x * 100 + y;
             }
         }",
        "A.main",
    );
}

#[test]
fn constprop_folds_constants() {
    let stats = opt_differential(
        "class A { static int main() {
             int x = 3 * 4 + 5;
             int y = x * 2;
             long z = 100L * 100L;
             boolean b = 3 < 4;
             return b ? y + (int) (z / 100L) : 0;
         } }",
        "A.main",
    );
    assert!(stats.removed_by_constprop >= 2, "{stats:?}");
}

#[test]
fn dce_removes_unused_code() {
    let stats = opt_differential(
        "class A { static int main() {
             int unused1 = 3 + 4;
             int used = 10;
             int unused2 = used * used;
             return used;
         } }",
        "A.main",
    );
    assert!(
        stats.removed_by_dce + stats.removed_by_constprop >= 2,
        "{stats:?}"
    );
    assert!(stats.instrs_after < stats.instrs_before, "{stats:?}");
}

#[test]
fn index_checks_deduped_in_unrolled_access() {
    let stats = opt_differential(
        "class A { static int main() {
             int[] a = new int[4];
             int i = 2;
             a[i] = 7;
             int x = a[i] + a[i];   // same array value, same index value
             return x;
         } }",
        "A.main",
    );
    assert!(
        stats.index_checks_after < stats.index_checks_before,
        "{stats:?}"
    );
}

#[test]
fn exceptional_semantics_preserved() {
    // Redundant division: CSE may merge them, but behaviour (catching
    // the exception) must not change.
    opt_differential(
        "class A { static int main() {
             int q = 0; int caught = 0;
             for (int d = -2; d <= 2; d++) {
                 try { q += 100 / d + 100 / d; }
                 catch (ArithmeticException e) { caught++; }
             }
             return q * 10 + caught;
         } }",
        "A.main",
    );
}

#[test]
fn optimization_inside_loops() {
    let stats = opt_differential(
        "class A { static int main() {
             int[] data = new int[50];
             for (int i = 0; i < data.length; i++) data[i] = i;
             int s = 0;
             for (int i = 0; i < data.length; i++) {
                 s += data[i] * 2 + data[i] * 2;   // CSE within iteration
             }
             return s;
         } }",
        "A.main",
    );
    assert!(stats.removed_by_cse >= 1, "{stats:?}");
}

#[test]
fn pass_selection_ablation() {
    let src = "class A { static int main() {
         int a = 2 + 3;
         int b = a * a + a * a;
         int dead = b * 17;
         return b;
     } }";
    let prog = compile(src).unwrap();
    let base = lower_program(&prog).unwrap();
    // No passes: nothing changes.
    let mut m0 = base.module.clone();
    let s0 = safetsa_opt::optimize(&mut m0, Passes::NONE, &Telemetry::disabled());
    assert_eq!(s0.instrs_before, s0.instrs_after);
    // CSE only.
    let mut m1 = base.module.clone();
    let s1 = safetsa_opt::optimize(
        &mut m1,
        Passes {
            cse: true,
            ..Passes::NONE
        },
        &Telemetry::disabled(),
    );
    assert!(s1.removed_by_cse >= 1);
    assert_eq!(s1.removed_by_constprop, 0);
    verify_module(&m1).unwrap();
    // All passes shrink at least as much as CSE alone.
    let mut m2 = base.module.clone();
    let s2 = safetsa_opt::optimize(&mut m2, Passes::ALL, &Telemetry::disabled());
    assert!(s2.instrs_after <= s1.instrs_after);
    verify_module(&m2).unwrap();
}

#[test]
fn field_partitioned_mem_keeps_unrelated_loads_available() {
    // x.a is loaded, x.b is stored, x.a is loaded again. The monolithic
    // Mem model must keep both loads; field-partitioned Mem (§8's
    // proposed improvement) merges them — and execution must agree.
    let src = "class P { int a; int b;
                 static int f(P p) {
                     int x = p.a;
                     p.b = 99;
                     int y = p.a;   // unaffected by the p.b store
                     return x + y;
                 }
                 static int main() { P p = new P(); p.a = 21; return f(p); }
             }";
    let prog = compile(src).unwrap();
    let base = lower_program(&prog).unwrap();
    let loads = |m: &safetsa_core::Module| {
        m.functions
            .iter()
            .map(|f| f.count_instrs(|i| matches!(i, safetsa_core::instr::Instr::GetField { .. })))
            .sum::<usize>()
    };
    // Load forwarding is off on both sides: it is alias-aware and
    // merges across the unrelated store under *either* memory model,
    // which would erase the contrast this test pins.
    let mut mono = base.module.clone();
    let mono_passes = Passes {
        loadfwd: false,
        ..Passes::ALL
    };
    safetsa_opt::optimize(&mut mono, mono_passes, &Telemetry::disabled());
    let mut field = base.module.clone();
    let field_passes = Passes {
        loadfwd: false,
        ..Passes::ALL_FIELD_MEM
    };
    safetsa_opt::optimize(&mut field, field_passes, &Telemetry::disabled());
    verify_module(&field).unwrap();
    assert!(
        loads(&field) < loads(&mono),
        "field-partitioned Mem merges across the unrelated store: {} vs {}",
        loads(&field),
        loads(&mono)
    );
    // With loadfwd back on, even the monolithic model reaches the
    // merged count: alias-aware forwarding subsumes the partitioning.
    let mut fwd = base.module.clone();
    safetsa_opt::optimize(&mut fwd, Passes::ALL, &Telemetry::disabled());
    verify_module(&fwd).unwrap();
    assert!(
        loads(&fwd) <= loads(&field),
        "loadfwd should subsume field-partitioned merging: {} vs {}",
        loads(&fwd),
        loads(&field)
    );
    // Semantics preserved.
    let run = |m: &safetsa_core::Module| run_module(m, "P.main").0;
    assert_eq!(run(&mono), run(&field));
    assert_eq!(run(&mono), Some(Value::I(42)));
}

#[test]
fn field_partitioned_mem_respects_same_field_stores() {
    // Same field stored between loads: even field-partitioned Mem must
    // keep the second load.
    let src = "class P { int a;
             static int main() {
                 P p = new P();
                 p.a = 1;
                 int x = p.a;
                 p.a = 2;
                 int y = p.a;
                 return x * 10 + y;
             }
         }";
    let prog = compile(src).unwrap();
    let base = lower_program(&prog).unwrap();
    let mut m = base.module.clone();
    safetsa_opt::optimize(&mut m, Passes::ALL_FIELD_MEM, &Telemetry::disabled());
    verify_module(&m).unwrap();
    assert_eq!(run_module(&m, "P.main").0, Some(Value::I(12)));
}

#[test]
fn objects_and_dispatch_still_work() {
    opt_differential(
        "class Shape { int area() { return 0; } }
         class Sq extends Shape { int s; Sq(int s) { this.s = s; } int area() { return s * s; } }
         class Main { static int main() {
             Shape[] shapes = new Shape[3];
             for (int i = 0; i < 3; i++) shapes[i] = new Sq(i + 1);
             int total = 0;
             for (int i = 0; i < 3; i++) total += shapes[i].area();
             Sys.println(total);
             return total;
         } }",
        "Main.main",
    );
}

#[test]
fn strings_still_work() {
    opt_differential(
        r#"class A { static int main() {
            String s = "ab" + "cd";
            String t = s + s;
            Sys.println(t);
            return t.length();
        } }"#,
        "A.main",
    );
}

#[test]
fn try_heavy_code_optimizes_safely() {
    opt_differential(
        "class A {
             static int risky(int[] a, int i, int d) {
                 try {
                     return a[i] / d + a[i] / d;  // duplicate xprims in try
                 } catch (ArithmeticException e) {
                     return -1;
                 } catch (IndexOutOfBoundsException e) {
                     return -2;
                 }
             }
             static int main() {
                 int[] a = {10, 20, 30};
                 int s = 0;
                 s += risky(a, 1, 2);
                 s += risky(a, 1, 0);
                 s += risky(a, 9, 2);
                 Sys.println(s);
                 return s;
             }
         }",
        "A.main",
    );
}
