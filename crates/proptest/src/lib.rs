//! A self-contained stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the small slice of the proptest API its property
//! tests actually use: the [`proptest!`] macro, [`strategy::Strategy`]
//! with `prop_map`/`prop_recursive`/`boxed`, [`prop_oneof!`],
//! [`strategy::Just`], integer-range and tuple strategies,
//! [`collection::vec`], `any::<T>()` for the integer primitives, and a
//! printable-string strategy for `&str` patterns.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * cases are generated from a fixed deterministic seed (per test
//!   name + case index), so runs are reproducible but not persisted —
//!   `.proptest-regressions` files are ignored;
//! * there is no shrinking: a failing case reports its inputs via the
//!   ordinary panic message of the failed assertion;
//! * `&str` strategies ignore the concrete regex and produce arbitrary
//!   printable (non-control) strings, which satisfies the `"\\PC*"`
//!   patterns used in this workspace.

// The stub mirrors real proptest's doc comments, whose intra-doc links
// target items this slice does not vendor.
#![allow(rustdoc::broken_intra_doc_links)]

pub mod test_runner {
    /// Per-test configuration (only the case count is honoured).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Deterministic SplitMix64 generator seeding every test case.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case `case` of the test named `name`.
        pub fn for_case(name: &str, case: u64) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; 0 when `bound` is 0.
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                0
            } else {
                self.next_u64() % bound
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A value generator. Unlike real proptest there is no value tree:
    /// strategies produce final values directly.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy behind a cheaply clonable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Rc::new(self),
            }
        }

        /// Recursive strategy: expands `self` (the leaf) through
        /// `recurse` up to `depth` times. `desired_size` and
        /// `expected_branch_size` are accepted for API compatibility
        /// and ignored.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let leaf = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                cur = one_of(vec![leaf.clone(), recurse(cur).boxed()]);
            }
            cur
        }
    }

    /// A type-erased, clonable strategy handle.
    pub struct BoxedStrategy<T> {
        inner: Rc<dyn Strategy<Value = T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: Rc::clone(&self.inner),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.generate(rng)
        }
    }

    /// Uniform choice among boxed alternatives (what [`prop_oneof!`]
    /// expands to).
    pub fn one_of<T: 'static>(alts: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
        assert!(!alts.is_empty(), "one_of needs at least one alternative");
        OneOf { alts }.boxed()
    }

    struct OneOf<T> {
        alts: Vec<BoxedStrategy<T>>,
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.alts.len() as u64) as usize;
            self.alts[i].generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Full-range strategy backing `any::<T>()`.
    #[derive(Clone, Debug)]
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any {
                _marker: std::marker::PhantomData,
            }
        }
    }

    macro_rules! any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident: $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A: 0);
    tuple_strategy!(A: 0, B: 1);
    tuple_strategy!(A: 0, B: 1, C: 2);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

    /// `&str` patterns act as string strategies. The concrete regex is
    /// ignored; arbitrary printable (non-control) strings are produced,
    /// which covers the `"\\PC*"` patterns used in this workspace.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let len = rng.below(120) as usize;
            (0..len)
                .map(|_| match rng.below(10) {
                    // Mostly ASCII printable, occasionally wider chars.
                    0..=7 => char::from(32 + rng.below(95) as u8),
                    8 => char::from_u32(0xA1 + rng.below(0xFF) as u32).unwrap_or('¿'),
                    _ => char::from_u32(0x4E00 + rng.below(0x100) as u32).unwrap_or('块'),
                })
                .collect()
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A strategy for vectors whose length is drawn from `len` and
    /// whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Full-range strategy for a primitive type.
pub fn any<T>() -> strategy::Any<T>
where
    strategy::Any<T>: strategy::Strategy,
{
    strategy::Any::default()
}

pub mod prelude {
    //! The usual glob-import surface.
    pub use crate::any;
    pub use crate::prop_assert;
    pub use crate::prop_assert_eq;
    pub use crate::prop_oneof;
    pub use crate::proptest;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
}

/// Asserts a condition inside a property (plain `assert!` here — there
/// is no shrinking phase to feed).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...)` runs
/// `cases` times with freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::Config = $cfg;
                for case in 0..u64::from(cfg.cases) {
                    let mut rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    $(
                        let $pat =
                            $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let v = Strategy::generate(&(-100i32..100), &mut rng);
            assert!((-100..100).contains(&v));
            let u = Strategy::generate(&(1u8..4), &mut rng);
            assert!((1..4).contains(&u));
        }
    }

    #[test]
    fn vec_lengths_respect_bounds() {
        let mut rng = TestRng::for_case("vecs", 0);
        for _ in 0..200 {
            let v = Strategy::generate(&crate::collection::vec(any::<u8>(), 2..7), &mut rng);
            assert!((2..7).contains(&v.len()));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let s = prop_oneof![Just(1i32), (10i32..20).prop_map(|x| x * 2)];
        let mut rng = TestRng::for_case("compose", 0);
        for _ in 0..100 {
            let v = Strategy::generate(&s, &mut rng);
            assert!(v == 1 || (20..40).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_smoke(x in 0usize..10, s in "\\PC*") {
            prop_assert!(x < 10);
            prop_assert!(s.chars().all(|c| !c.is_control()));
        }
    }
}
