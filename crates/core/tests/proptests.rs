//! Property-based tests for the core IR machinery: the two dominator
//! algorithms agree on arbitrary (reachable-rooted) flow graphs, and
//! dominator-tree invariants hold.

use proptest::prelude::*;
use safetsa_core::cfg::{Cfg, Edge, EdgeKind};
use safetsa_core::dom::DomTree;
use safetsa_core::value::BlockId;

/// Builds a synthetic CFG from an edge list over `n` nodes rooted at 0.
fn synth_cfg(n: usize, raw_edges: &[(usize, usize)]) -> Cfg {
    let mut preds: Vec<Vec<Edge>> = vec![Vec::new(); n];
    let mut succs: Vec<Vec<BlockId>> = vec![Vec::new(); n];
    for &(from, to) in raw_edges {
        let (from, to) = (from % n, to % n);
        // Skip duplicate edges (the verifier forbids them anyway).
        if preds[to].iter().any(|e| e.from == BlockId(from as u32)) {
            continue;
        }
        preds[to].push(Edge {
            from: BlockId(from as u32),
            kind: EdgeKind::Normal,
        });
        succs[from].push(BlockId(to as u32));
    }
    // Reachability from node 0.
    let mut reachable = vec![false; n];
    let mut stack = vec![BlockId(0)];
    reachable[0] = true;
    while let Some(b) = stack.pop() {
        for &s in &succs[b.index()] {
            if !reachable[s.index()] {
                reachable[s.index()] = true;
                stack.push(s);
            }
        }
    }
    // Drop edges from unreachable nodes (the real builder never emits
    // them, and the iterative algorithm assumes processed preds).
    for p in preds.iter_mut() {
        p.retain(|e| reachable[e.from.index()]);
    }
    let mut succs: Vec<Vec<BlockId>> = vec![Vec::new(); n];
    for (to, es) in preds.iter().enumerate() {
        for e in es {
            succs[e.from.index()].push(BlockId(to as u32));
        }
    }
    Cfg {
        preds,
        succs,
        reachable,
        traversal: (0..n).map(|i| BlockId(i as u32)).collect(),
        cond_uses: vec![],
        return_uses: vec![],
        throw_uses: vec![],
        falls_through: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn chk_and_lengauer_tarjan_agree(
        n in 1usize..24,
        edges in proptest::collection::vec((0usize..24, 0usize..24), 0..64)
    ) {
        let cfg = synth_cfg(n, &edges);
        let a = DomTree::build(&cfg);
        let b = DomTree::build_lengauer_tarjan(&cfg);
        prop_assert_eq!(&a.idom, &b.idom, "algorithms disagree");
    }

    #[test]
    fn dominator_tree_invariants(
        n in 1usize..24,
        edges in proptest::collection::vec((0usize..24, 0usize..24), 0..64)
    ) {
        let cfg = synth_cfg(n, &edges);
        let dom = DomTree::build(&cfg);
        // Entry has no idom; reachable non-entry nodes have one;
        // unreachable nodes have none.
        prop_assert_eq!(dom.idom[0], None);
        for i in 1..n {
            if cfg.reachable[i] {
                let id = dom.idom[i].expect("reachable nodes have an idom");
                prop_assert!(dom.dominates(id, BlockId(i as u32)));
                prop_assert_eq!(dom.depth[i], dom.depth[id.index()] + 1);
            } else {
                prop_assert_eq!(dom.idom[i], None);
            }
        }
        // ancestor() is consistent with depth and level_distance.
        for i in 0..n {
            if !cfg.reachable[i] {
                continue;
            }
            let b = BlockId(i as u32);
            let d = dom.depth[i];
            prop_assert_eq!(dom.ancestor(b, 0), Some(b));
            prop_assert_eq!(dom.ancestor(b, d), Some(BlockId(0)));
            prop_assert_eq!(dom.level_distance(BlockId(0), b), Some(d));
        }
        // preorder covers exactly the reachable set, parents first.
        let mut seen = vec![false; n];
        for &b in &dom.preorder {
            if let Some(p) = dom.idom[b.index()] {
                prop_assert!(seen[p.index()], "parent before child");
            }
            seen[b.index()] = true;
        }
        for (s, r) in seen.iter().zip(&cfg.reachable) {
            prop_assert_eq!(s, r);
        }
    }
}
