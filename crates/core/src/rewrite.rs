//! Function rewriting utilities: value substitution and compaction.
//!
//! Optimization passes (dead-code/phi elimination, CSE) first decide on
//! a substitution (`old value → replacement value`) and a set of
//! phis/instructions to delete, then call [`compact`] to rebuild the
//! function with dense value ids and consistent def sites.

use crate::function::{Block, BlockResults, Function};
#[cfg(test)]
use crate::instr::Instr;
use crate::instr::Phi;
use crate::value::{BlockId, Def, ValueId, ValueInfo};
use std::collections::HashMap;

/// A rewrite plan for one function.
#[derive(Debug, Clone, Default)]
pub struct Rewrite {
    /// Value substitutions applied to every operand (resolved
    /// transitively). Keys must not appear in `delete`d instructions'
    /// operand positions after substitution.
    pub replace: HashMap<ValueId, ValueId>,
    /// Phis to delete, as `(block, phi index)`.
    pub delete_phis: Vec<(BlockId, usize)>,
    /// Instructions to delete, as `(block, instr index)`. Their results
    /// (if any) must be unused after substitution.
    pub delete_instrs: Vec<(BlockId, usize)>,
}

impl Rewrite {
    /// Whether the plan changes anything.
    pub fn is_empty(&self) -> bool {
        self.replace.is_empty() && self.delete_phis.is_empty() && self.delete_instrs.is_empty()
    }

    /// Resolves a value through the substitution chain.
    pub fn resolve(&self, mut v: ValueId) -> ValueId {
        let mut steps = 0;
        while let Some(&n) = self.replace.get(&v) {
            v = n;
            steps += 1;
            assert!(steps <= self.replace.len(), "substitution cycle");
        }
        v
    }
}

/// Applies `rw` to `f`, producing a compacted function.
///
/// All surviving operands are substituted; deleted phis/instructions are
/// removed; value ids are renumbered densely; def sites, block results,
/// and safe-index provenance are rebuilt.
///
/// # Panics
///
/// Panics if a deleted value is still referenced by a surviving
/// instruction, phi, or terminator after substitution.
pub fn compact(f: &Function, rw: &Rewrite) -> Function {
    use std::collections::HashSet;
    let dead_phis: HashSet<(u32, usize)> = rw.delete_phis.iter().map(|(b, i)| (b.0, *i)).collect();
    let dead_instrs: HashSet<(u32, usize)> =
        rw.delete_instrs.iter().map(|(b, i)| (b.0, *i)).collect();

    // Pass 1: allocate new ids for surviving values, in the original
    // value-id order (preloads keep their positions).
    let mut new_id: Vec<Option<ValueId>> = vec![None; f.values.len()];
    let mut new_values: Vec<ValueInfo> = Vec::with_capacity(f.values.len());
    // Per-block new indices for phis/instrs.
    let mut phi_new_idx: HashMap<(u32, usize), u32> = HashMap::new();
    let mut instr_new_idx: HashMap<(u32, usize), u32> = HashMap::new();
    for (bi, block) in f.blocks.iter().enumerate() {
        let mut k = 0;
        for i in 0..block.phis.len() {
            if !dead_phis.contains(&(bi as u32, i)) {
                phi_new_idx.insert((bi as u32, i), k);
                k += 1;
            }
        }
        let mut k = 0;
        for i in 0..block.instrs.len() {
            if !dead_instrs.contains(&(bi as u32, i)) {
                instr_new_idx.insert((bi as u32, i), k);
                k += 1;
            }
        }
    }
    for (vi, info) in f.values.iter().enumerate() {
        let keep = match info.def {
            Def::Param(_) | Def::Const(_) => true,
            Def::Phi(b, i) => !dead_phis.contains(&(b.0, i as usize)),
            Def::Instr(b, i) => !dead_instrs.contains(&(b.0, i as usize)),
        };
        if keep {
            let id = ValueId(new_values.len() as u32);
            new_id[vi] = Some(id);
            let def = match info.def {
                Def::Phi(b, i) => Def::Phi(b, phi_new_idx[&(b.0, i as usize)]),
                Def::Instr(b, i) => Def::Instr(b, instr_new_idx[&(b.0, i as usize)]),
                d => d,
            };
            new_values.push(ValueInfo { def, ..*info });
        }
    }
    let map = |v: ValueId| -> ValueId {
        let r = rw.resolve(v);
        new_id[r.index()].unwrap_or_else(|| panic!("rewrite: deleted value {r} still referenced"))
    };
    // Fix provenance references.
    for info in &mut new_values {
        if let Some(p) = info.provenance {
            let r = rw.resolve(p);
            info.provenance = Some(new_id[r.index()].expect("provenance deleted"));
        }
    }

    // Pass 2: rebuild blocks.
    let mut blocks = Vec::with_capacity(f.blocks.len());
    let mut results = Vec::with_capacity(f.blocks.len());
    for (bi, block) in f.blocks.iter().enumerate() {
        let mut nb = Block::default();
        let mut nr = BlockResults::default();
        for (i, phi) in block.phis.iter().enumerate() {
            if dead_phis.contains(&(bi as u32, i)) {
                continue;
            }
            let args = phi.args.iter().map(|(p, v)| (*p, map(*v))).collect();
            nb.phis.push(Phi { ty: phi.ty, args });
            nr.phi_results
                .push(map(f.phi_result(BlockId(bi as u32), i)));
        }
        for (i, instr) in block.instrs.iter().enumerate() {
            if dead_instrs.contains(&(bi as u32, i)) {
                continue;
            }
            let mut ni = instr.clone();
            ni.map_operands(&mut |v| map(v));
            nb.instrs.push(ni);
            nr.instr_results
                .push(f.instr_result(BlockId(bi as u32), i).map(&map));
        }
        blocks.push(nb);
        results.push(nr);
    }

    // Pass 3: rebuild the CST value references.
    let body = map_cst(&f.body, &map);

    let const_values = f.const_values.iter().map(|v| map(*v)).collect();
    Function {
        name: f.name.clone(),
        class: f.class,
        params: f.params.clone(),
        ret: f.ret,
        consts: f.consts.clone(),
        const_values,
        blocks,
        results,
        values: new_values,
        body,
    }
}

fn map_cst(cst: &crate::cst::Cst, map: &impl Fn(ValueId) -> ValueId) -> crate::cst::Cst {
    use crate::cst::Cst;
    match cst {
        Cst::Basic(b) => Cst::Basic(*b),
        Cst::Seq(items) => Cst::Seq(items.iter().map(|c| map_cst(c, map)).collect()),
        Cst::If {
            cond,
            then_br,
            else_br,
            join,
        } => Cst::If {
            cond: map(*cond),
            then_br: Box::new(map_cst(then_br, map)),
            else_br: Box::new(map_cst(else_br, map)),
            join: *join,
        },
        Cst::Loop { header, body } => Cst::Loop {
            header: *header,
            body: Box::new(map_cst(body, map)),
        },
        Cst::Labeled { body, join } => Cst::Labeled {
            body: Box::new(map_cst(body, map)),
            join: *join,
        },
        Cst::Break(n) => Cst::Break(*n),
        Cst::Continue(n) => Cst::Continue(*n),
        Cst::Return(v) => Cst::Return(v.map(map)),
        Cst::Throw(v) => Cst::Throw(map(*v)),
        Cst::Try {
            body,
            handler_entry,
            handler,
            join,
        } => Cst::Try {
            body: Box::new(map_cst(body, map)),
            handler_entry: *handler_entry,
            handler: Box::new(map_cst(handler, map)),
            join: *join,
        },
    }
}

/// Collects every value used by surviving instructions, phis, and
/// terminators (ignoring the deletions listed in `rw`).
pub fn used_values(f: &Function, rw: &Rewrite) -> std::collections::HashSet<ValueId> {
    use std::collections::HashSet;
    let dead_phis: HashSet<(u32, usize)> = rw.delete_phis.iter().map(|(b, i)| (b.0, *i)).collect();
    let dead_instrs: HashSet<(u32, usize)> =
        rw.delete_instrs.iter().map(|(b, i)| (b.0, *i)).collect();
    let mut used = HashSet::new();
    for (bi, block) in f.blocks.iter().enumerate() {
        for (i, phi) in block.phis.iter().enumerate() {
            if dead_phis.contains(&(bi as u32, i)) {
                continue;
            }
            for (_, v) in &phi.args {
                used.insert(rw.resolve(*v));
            }
        }
        for (i, instr) in block.instrs.iter().enumerate() {
            if dead_instrs.contains(&(bi as u32, i)) {
                continue;
            }
            for v in instr.operands() {
                used.insert(rw.resolve(v));
            }
        }
    }
    collect_cst_uses(&f.body, rw, &mut used);
    used
}

fn collect_cst_uses(
    cst: &crate::cst::Cst,
    rw: &Rewrite,
    used: &mut std::collections::HashSet<ValueId>,
) {
    use crate::cst::Cst;
    cst.walk(&mut |c| match c {
        Cst::If { cond, .. } => {
            used.insert(rw.resolve(*cond));
        }
        Cst::Return(Some(v)) | Cst::Throw(v) => {
            used.insert(rw.resolve(*v));
        }
        _ => {}
    });
}

/// Removes trivial phis (all operands equal, or equal to the phi
/// itself) and dead phis (transitively unused). Returns the cleaned
/// function and the number of phis removed.
///
/// The paper performs this cleanup as part of SSA construction (§7,
/// the Briggs-style pruning) and again during producer-side dead-code
/// elimination; both callers share this implementation.
pub fn prune_phis(f: &Function) -> (Function, usize) {
    let mut f = f.clone();
    let mut removed_total = 0;
    loop {
        let removed = prune_once(&mut f);
        if removed == 0 {
            return (f, removed_total);
        }
        removed_total += removed;
    }
}

fn prune_once(f: &mut Function) -> usize {
    use std::collections::HashSet;
    let mut rw = Rewrite::default();
    // Trivial phis: operands all resolve to one value (ignoring self).
    let mut changed = true;
    while changed {
        changed = false;
        for (bi, block) in f.blocks.iter().enumerate() {
            for (k, phi) in block.phis.iter().enumerate() {
                let me = f.phi_result(BlockId(bi as u32), k);
                if rw.replace.contains_key(&me) {
                    continue;
                }
                let mut unique: Option<ValueId> = None;
                let mut trivial = true;
                for (_, arg) in &phi.args {
                    let a = rw.resolve(*arg);
                    if a == rw.resolve(me) {
                        continue;
                    }
                    match unique {
                        None => unique = Some(a),
                        Some(u) if u == a => {}
                        Some(_) => {
                            trivial = false;
                            break;
                        }
                    }
                }
                if trivial {
                    if let Some(u) = unique {
                        rw.replace.insert(me, u);
                        rw.delete_phis.push((BlockId(bi as u32), k));
                        changed = true;
                    }
                }
            }
        }
    }
    // Dead phis: results never used outside the deleted set.
    let mut phi_of: HashMap<ValueId, (u32, usize)> = HashMap::new();
    let deleted: HashSet<(u32, usize)> = rw.delete_phis.iter().map(|(b, i)| (b.0, *i)).collect();
    for (bi, block) in f.blocks.iter().enumerate() {
        for k in 0..block.phis.len() {
            if deleted.contains(&(bi as u32, k)) {
                continue;
            }
            phi_of.insert(f.phi_result(BlockId(bi as u32), k), (bi as u32, k));
        }
    }
    let mut live: HashSet<(u32, usize)> = HashSet::new();
    let mut work: Vec<(u32, usize)> = Vec::new();
    {
        let mut seed = |v: ValueId| {
            if let Some(&site) = phi_of.get(&v) {
                if live.insert(site) {
                    work.push(site);
                }
            }
        };
        for block in &f.blocks {
            for instr in &block.instrs {
                for v in instr.operands() {
                    seed(rw.resolve(v));
                }
            }
        }
        f.body.walk(&mut |c| {
            use crate::cst::Cst;
            match c {
                Cst::If { cond, .. } => seed(rw.resolve(*cond)),
                Cst::Return(Some(v)) | Cst::Throw(v) => {
                    seed(rw.resolve(*v));
                }
                _ => {}
            }
        });
        for info in &f.values {
            if let Some(p) = info.provenance {
                seed(rw.resolve(p));
            }
        }
    }
    while let Some((b, k)) = work.pop() {
        let args = f.blocks[b as usize].phis[k].args.clone();
        for (_, v) in args {
            let v = rw.resolve(v);
            if let Some(&site) = phi_of.get(&v) {
                if live.insert(site) {
                    work.push(site);
                }
            }
        }
    }
    for &site in phi_of.values() {
        if !live.contains(&site) {
            rw.delete_phis.push((BlockId(site.0), site.1));
        }
    }
    if rw.is_empty() {
        return 0;
    }
    let removed = rw.delete_phis.len();
    *f = compact(f, &rw);
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cst::Cst;
    use crate::function::ENTRY;
    use crate::primops;
    use crate::types::{PrimKind, TypeTable};

    #[test]
    fn compact_removes_dead_instruction() {
        let mut types = TypeTable::new();
        let int = types.prim(PrimKind::Int);
        let mut f = Function::new("t", None, vec![int, int], Some(int));
        let add = primops::find(PrimKind::Int, "add").unwrap();
        let dead = f
            .add_instr(
                &mut types,
                ENTRY,
                Instr::Primitive {
                    ty: int,
                    op: add,
                    args: vec![f.param_value(0), f.param_value(1)],
                },
            )
            .unwrap()
            .unwrap();
        let live = f
            .add_instr(
                &mut types,
                ENTRY,
                Instr::Primitive {
                    ty: int,
                    op: add,
                    args: vec![f.param_value(0), f.param_value(0)],
                },
            )
            .unwrap()
            .unwrap();
        f.body = Cst::Seq(vec![Cst::Basic(ENTRY), Cst::Return(Some(live))]);
        let mut rw = Rewrite::default();
        rw.delete_instrs.push((ENTRY, 0));
        let g = compact(&f, &rw);
        assert_eq!(g.instr_count(), 1);
        assert_eq!(g.values.len(), 3); // 2 params + 1 instr
                                       // The return value was renumbered.
        match &g.body {
            Cst::Seq(items) => match items[1] {
                Cst::Return(Some(v)) => {
                    assert_eq!(g.value(v).def, Def::Instr(ENTRY, 0));
                }
                _ => panic!("bad CST"),
            },
            _ => panic!("bad CST"),
        }
        let _ = dead;
    }

    #[test]
    fn compact_applies_substitution() {
        let mut types = TypeTable::new();
        let int = types.prim(PrimKind::Int);
        let mut f = Function::new("t", None, vec![int, int], Some(int));
        let add = primops::find(PrimKind::Int, "add").unwrap();
        let a = f
            .add_instr(
                &mut types,
                ENTRY,
                Instr::Primitive {
                    ty: int,
                    op: add,
                    args: vec![f.param_value(0), f.param_value(1)],
                },
            )
            .unwrap()
            .unwrap();
        // duplicate of `a`
        let b = f
            .add_instr(
                &mut types,
                ENTRY,
                Instr::Primitive {
                    ty: int,
                    op: add,
                    args: vec![f.param_value(0), f.param_value(1)],
                },
            )
            .unwrap()
            .unwrap();
        let c = f
            .add_instr(
                &mut types,
                ENTRY,
                Instr::Primitive {
                    ty: int,
                    op: add,
                    args: vec![a, b],
                },
            )
            .unwrap()
            .unwrap();
        f.body = Cst::Seq(vec![Cst::Basic(ENTRY), Cst::Return(Some(c))]);
        let mut rw = Rewrite::default();
        rw.replace.insert(b, a);
        rw.delete_instrs.push((ENTRY, 1));
        let g = compact(&f, &rw);
        assert_eq!(g.instr_count(), 2);
        let last = &g.block(ENTRY).instrs[1];
        let ops = last.operands();
        assert_eq!(ops[0], ops[1], "both operands now the CSE'd value");
    }

    #[test]
    #[should_panic(expected = "still referenced")]
    fn compact_panics_on_dangling_use() {
        let mut types = TypeTable::new();
        let int = types.prim(PrimKind::Int);
        let mut f = Function::new("t", None, vec![int], Some(int));
        let add = primops::find(PrimKind::Int, "add").unwrap();
        let a = f
            .add_instr(
                &mut types,
                ENTRY,
                Instr::Primitive {
                    ty: int,
                    op: add,
                    args: vec![f.param_value(0), f.param_value(0)],
                },
            )
            .unwrap()
            .unwrap();
        f.body = Cst::Seq(vec![Cst::Basic(ENTRY), Cst::Return(Some(a))]);
        let mut rw = Rewrite::default();
        rw.delete_instrs.push((ENTRY, 0)); // but `a` is returned
        let _ = compact(&f, &rw);
    }

    #[test]
    fn used_values_sees_terminators() {
        let mut types = TypeTable::new();
        let int = types.prim(PrimKind::Int);
        let mut f = Function::new("t", None, vec![int], Some(int));
        let _ = &mut types;
        f.body = Cst::Seq(vec![Cst::Basic(ENTRY), Cst::Return(Some(f.param_value(0)))]);
        let used = used_values(&f, &Rewrite::default());
        assert!(used.contains(&f.param_value(0)));
    }
}
