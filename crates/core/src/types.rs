//! The SafeTSA type table and "register plane" universe.
//!
//! SafeTSA's *type separation* assigns every type its own register plane
//! (see §3 of the paper). The type table is the authoritative list of
//! planes for a module: primitive types, classes (local or imported),
//! array types, and the derived `safe-ref` / `safe-index` types that are
//! the cornerstone of the memory-safety construction (§4).
//!
//! Most entries in the table (primitives, imported host types) are
//! generated implicitly by the consumer and are therefore tamper-proof;
//! only locally declared classes travel with the mobile program.

use std::collections::HashMap;
use std::fmt;

/// Index of a type (= register plane) in a [`TypeTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(pub u32);

impl TypeId {
    /// Returns the raw table index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Index of a class declaration in a [`TypeTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub u32);

impl ClassId {
    /// Returns the raw table index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The built-in primitive types of the machine model.
///
/// Primitive *operations* are subordinate to these types (§5): the
/// instruction set has only the generic `primitive`/`xprimitive`
/// instructions, parameterized by a type and an operation defined on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PrimKind {
    /// `boolean`: result plane of comparisons, input of control flow.
    Bool,
    /// `char`: unsigned 16-bit code unit.
    Char,
    /// `int`: signed 32-bit integer.
    Int,
    /// `long`: signed 64-bit integer.
    Long,
    /// `float`: IEEE-754 binary32.
    Float,
    /// `double`: IEEE-754 binary64.
    Double,
}

impl PrimKind {
    /// All primitive kinds, in canonical (encoding) order.
    pub const ALL: [PrimKind; 6] = [
        PrimKind::Bool,
        PrimKind::Char,
        PrimKind::Int,
        PrimKind::Long,
        PrimKind::Float,
        PrimKind::Double,
    ];

    /// The Java-facing name of the type.
    pub fn name(self) -> &'static str {
        match self {
            PrimKind::Bool => "boolean",
            PrimKind::Char => "char",
            PrimKind::Int => "int",
            PrimKind::Long => "long",
            PrimKind::Float => "float",
            PrimKind::Double => "double",
        }
    }
}

impl fmt::Display for PrimKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The structural kind of a type-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TypeKind {
    /// A primitive type.
    Prim(PrimKind),
    /// A class reference type (the *unsafe* `ref` plane of §4).
    Class(ClassId),
    /// An array-of-`elem` reference type (unsafe plane).
    Array(TypeId),
    /// The null-checked companion plane of a class or array type (§4).
    SafeRef(TypeId),
    /// The bounds-checked index plane of an array type (§4, Appendix A).
    ///
    /// The payload is the *array type* whose plane this serves; the
    /// binding to a particular array *value* is carried per-value (see
    /// `safetsa_core::value`).
    SafeIndex(TypeId),
}

/// Dispatch kind of a method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MethodKind {
    /// Static method: invoked with `xcall`, no receiver.
    Static,
    /// Instance method subject to dynamic dispatch: `xdispatch`.
    Virtual,
    /// Constructor or other statically-bound instance method: `xcall`.
    Special,
}

/// A field declaration inside a class entry.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldInfo {
    /// Source-level name (symbolic linking information).
    pub name: String,
    /// Declared type of the field.
    pub ty: TypeId,
    /// Whether the field is static (accessed via `getstatic`/`setstatic`).
    pub is_static: bool,
}

/// A method declaration inside a class entry.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodInfo {
    /// Source-level name (constructors use `<init>`).
    pub name: String,
    /// Parameter types, excluding the receiver.
    pub params: Vec<TypeId>,
    /// Result type; `None` for `void`.
    pub ret: Option<TypeId>,
    /// Dispatch kind.
    pub kind: MethodKind,
    /// Virtual-dispatch slot, assigned for [`MethodKind::Virtual`] methods.
    pub vtable_slot: Option<u32>,
    /// Index of the function body in the module, if the method is local
    /// (imported/intrinsic methods have none).
    pub body: Option<u32>,
}

/// A class declaration (local or imported).
#[derive(Debug, Clone, PartialEq)]
pub struct ClassInfo {
    /// Fully qualified source name.
    pub name: String,
    /// Superclass; `None` only for the root class `Object`.
    pub superclass: Option<ClassId>,
    /// Declared fields (not including inherited ones).
    pub fields: Vec<FieldInfo>,
    /// Declared methods (not including inherited ones).
    pub methods: Vec<MethodInfo>,
    /// `true` for host-environment classes that are generated implicitly
    /// by the consumer and never transmitted (tamper-proof by §4).
    pub imported: bool,
}

/// Symbolic reference to a field: `(declaring class, field index)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FieldRef {
    /// The class whose declaration list is indexed.
    pub class: ClassId,
    /// Index into that class's `fields`.
    pub index: u32,
}

/// Symbolic reference to a method: `(declaring class, method index)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MethodRef {
    /// The class whose declaration list is indexed.
    pub class: ClassId,
    /// Index into that class's `methods`.
    pub index: u32,
}

/// The module-wide table of types (register planes) and classes.
///
/// Construction interns structurally: requesting the same array /
/// safe-ref / safe-index type twice yields the same [`TypeId`].
///
/// # Examples
///
/// ```
/// use safetsa_core::types::{TypeTable, PrimKind};
///
/// let mut table = TypeTable::new();
/// let int = table.prim(PrimKind::Int);
/// let arr = table.array_of(int);
/// let safe = table.safe_ref_of(arr);
/// assert_eq!(table.array_of(int), arr);
/// assert!(table.is_safe_ref(safe));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TypeTable {
    kinds: Vec<TypeKind>,
    classes: Vec<ClassInfo>,
    prim_ids: HashMap<PrimKind, TypeId>,
    class_ids: HashMap<ClassId, TypeId>,
    array_ids: HashMap<TypeId, TypeId>,
    safe_ref_ids: HashMap<TypeId, TypeId>,
    safe_index_ids: HashMap<TypeId, TypeId>,
}

impl TypeTable {
    /// Creates a table pre-populated with the six primitive planes.
    pub fn new() -> Self {
        let mut t = TypeTable {
            kinds: Vec::new(),
            classes: Vec::new(),
            prim_ids: HashMap::new(),
            class_ids: HashMap::new(),
            array_ids: HashMap::new(),
            safe_ref_ids: HashMap::new(),
            safe_index_ids: HashMap::new(),
        };
        for &p in &PrimKind::ALL {
            let id = t.push(TypeKind::Prim(p));
            t.prim_ids.insert(p, id);
        }
        t
    }

    fn push(&mut self, kind: TypeKind) -> TypeId {
        let id = TypeId(self.kinds.len() as u32);
        self.kinds.push(kind);
        id
    }

    /// Number of type entries (= number of register planes).
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the table is empty (never true after [`TypeTable::new`]).
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// The kind of `ty`.
    ///
    /// # Panics
    ///
    /// Panics if `ty` is not an entry of this table.
    pub fn kind(&self, ty: TypeId) -> TypeKind {
        self.kinds[ty.index()]
    }

    /// The kind of `ty`, or `None` if out of range (used by the decoder).
    pub fn kind_checked(&self, ty: TypeId) -> Option<TypeKind> {
        self.kinds.get(ty.index()).copied()
    }

    /// The plane of primitive `p`.
    pub fn prim(&self, p: PrimKind) -> TypeId {
        self.prim_ids[&p]
    }

    /// Shorthand for the `boolean` plane.
    pub fn bool_ty(&self) -> TypeId {
        self.prim(PrimKind::Bool)
    }

    /// Shorthand for the `int` plane.
    pub fn int_ty(&self) -> TypeId {
        self.prim(PrimKind::Int)
    }

    /// Declares a new class and returns `(class id, ref-type id)`.
    ///
    /// The unsafe `ref` plane is created eagerly; the `safe-ref` plane is
    /// interned on first use.
    pub fn declare_class(&mut self, info: ClassInfo) -> (ClassId, TypeId) {
        let cid = ClassId(self.classes.len() as u32);
        self.classes.push(info);
        let ty = self.push(TypeKind::Class(cid));
        self.class_ids.insert(cid, ty);
        (cid, ty)
    }

    /// The `ref` plane of class `c`.
    pub fn class_ty(&self, c: ClassId) -> TypeId {
        self.class_ids[&c]
    }

    /// The class metadata for `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is not a class of this table.
    pub fn class(&self, c: ClassId) -> &ClassInfo {
        &self.classes[c.index()]
    }

    /// Mutable class metadata (used while the front-end is populating
    /// method bodies).
    pub fn class_mut(&mut self, c: ClassId) -> &mut ClassInfo {
        &mut self.classes[c.index()]
    }

    /// The class metadata for `c`, or `None` if out of range.
    pub fn class_checked(&self, c: ClassId) -> Option<&ClassInfo> {
        self.classes.get(c.index())
    }

    /// Number of declared classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Iterates over `(ClassId, &ClassInfo)` pairs.
    pub fn classes(&self) -> impl Iterator<Item = (ClassId, &ClassInfo)> {
        self.classes
            .iter()
            .enumerate()
            .map(|(i, c)| (ClassId(i as u32), c))
    }

    /// Interns the array type with element type `elem`.
    pub fn array_of(&mut self, elem: TypeId) -> TypeId {
        if let Some(&id) = self.array_ids.get(&elem) {
            return id;
        }
        let id = self.push(TypeKind::Array(elem));
        self.array_ids.insert(elem, id);
        id
    }

    /// Interns the `safe-ref` companion of reference type `of`.
    ///
    /// # Panics
    ///
    /// Panics if `of` is not a class or array type.
    pub fn safe_ref_of(&mut self, of: TypeId) -> TypeId {
        assert!(
            matches!(self.kind(of), TypeKind::Class(_) | TypeKind::Array(_)),
            "safe-ref requires a reference type, got {:?}",
            self.kind(of)
        );
        if let Some(&id) = self.safe_ref_ids.get(&of) {
            return id;
        }
        let id = self.push(TypeKind::SafeRef(of));
        self.safe_ref_ids.insert(of, id);
        id
    }

    /// Interns the `safe-index` companion plane of array type `arr`.
    ///
    /// # Panics
    ///
    /// Panics if `arr` is not an array type.
    pub fn safe_index_of(&mut self, arr: TypeId) -> TypeId {
        assert!(
            matches!(self.kind(arr), TypeKind::Array(_)),
            "safe-index requires an array type, got {:?}",
            self.kind(arr)
        );
        if let Some(&id) = self.safe_index_ids.get(&arr) {
            return id;
        }
        let id = self.push(TypeKind::SafeIndex(arr));
        self.safe_index_ids.insert(arr, id);
        id
    }

    /// Looks up an already-interned safe-ref plane without creating it.
    pub fn find_safe_ref(&self, of: TypeId) -> Option<TypeId> {
        self.safe_ref_ids.get(&of).copied()
    }

    /// Looks up an already-interned array plane without creating it.
    pub fn find_array(&self, elem: TypeId) -> Option<TypeId> {
        self.array_ids.get(&elem).copied()
    }

    /// Looks up an already-interned safe-index plane without creating it.
    pub fn find_safe_index(&self, arr: TypeId) -> Option<TypeId> {
        self.safe_index_ids.get(&arr).copied()
    }

    /// Whether `ty` is a primitive plane.
    pub fn is_prim(&self, ty: TypeId) -> bool {
        matches!(self.kind(ty), TypeKind::Prim(_))
    }

    /// Whether `ty` is an (unsafe) reference plane — class or array.
    pub fn is_ref(&self, ty: TypeId) -> bool {
        matches!(self.kind(ty), TypeKind::Class(_) | TypeKind::Array(_))
    }

    /// Whether `ty` is a safe-ref plane.
    pub fn is_safe_ref(&self, ty: TypeId) -> bool {
        matches!(self.kind(ty), TypeKind::SafeRef(_))
    }

    /// Whether `ty` is a safe-index plane.
    pub fn is_safe_index(&self, ty: TypeId) -> bool {
        matches!(self.kind(ty), TypeKind::SafeIndex(_))
    }

    /// The unsafe reference type underlying a safe-ref plane.
    pub fn safe_ref_target(&self, ty: TypeId) -> Option<TypeId> {
        match self.kind(ty) {
            TypeKind::SafeRef(of) => Some(of),
            _ => None,
        }
    }

    /// The array type underlying a safe-index plane.
    pub fn safe_index_array(&self, ty: TypeId) -> Option<TypeId> {
        match self.kind(ty) {
            TypeKind::SafeIndex(arr) => Some(arr),
            _ => None,
        }
    }

    /// The element type of an array type.
    pub fn array_elem(&self, ty: TypeId) -> Option<TypeId> {
        match self.kind(ty) {
            TypeKind::Array(e) => Some(e),
            _ => None,
        }
    }

    /// Whether class `sub` equals `sup` or transitively extends it.
    pub fn is_subclass(&self, sub: ClassId, sup: ClassId) -> bool {
        let mut cur = Some(sub);
        while let Some(c) = cur {
            if c == sup {
                return true;
            }
            cur = self.class(c).superclass;
        }
        false
    }

    /// Whether reference type `sub` is assignable to reference type `sup`
    /// without a dynamic check (Java widening reference conversion over
    /// our subset: class subtyping; arrays are invariant but any array or
    /// class widens to the root class).
    pub fn is_ref_assignable(&self, sub: TypeId, sup: TypeId, root: ClassId) -> bool {
        if sub == sup {
            return true;
        }
        match (self.kind(sub), self.kind(sup)) {
            (TypeKind::Class(a), TypeKind::Class(b)) => self.is_subclass(a, b),
            (TypeKind::Array(_), TypeKind::Class(b)) => b == root,
            _ => false,
        }
    }

    /// Resolves a field reference, checking bounds.
    pub fn field(&self, r: FieldRef) -> Option<&FieldInfo> {
        self.class_checked(r.class)?.fields.get(r.index as usize)
    }

    /// Resolves a method reference, checking bounds.
    pub fn method(&self, r: MethodRef) -> Option<&MethodInfo> {
        self.class_checked(r.class)?.methods.get(r.index as usize)
    }

    /// Looks up a field by name along the superclass chain, returning the
    /// declaring-class reference.
    pub fn find_field(&self, class: ClassId, name: &str) -> Option<FieldRef> {
        let mut cur = Some(class);
        while let Some(c) = cur {
            let info = self.class(c);
            if let Some(i) = info.fields.iter().position(|f| f.name == name) {
                return Some(FieldRef {
                    class: c,
                    index: i as u32,
                });
            }
            cur = info.superclass;
        }
        None
    }

    /// A human-readable name for a type (used by the pretty printers).
    pub fn type_name(&self, ty: TypeId) -> String {
        match self.kind(ty) {
            TypeKind::Prim(p) => p.name().to_string(),
            TypeKind::Class(c) => self.class(c).name.clone(),
            TypeKind::Array(e) => format!("{}[]", self.type_name(e)),
            TypeKind::SafeRef(of) => format!("safe-{}", self.type_name(of)),
            TypeKind::SafeIndex(arr) => format!("safe-index-{}", self.type_name(arr)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn object_class(t: &mut TypeTable) -> (ClassId, TypeId) {
        t.declare_class(ClassInfo {
            name: "Object".into(),
            superclass: None,
            fields: vec![],
            methods: vec![],
            imported: true,
        })
    }

    #[test]
    fn primitives_preinterned() {
        let t = TypeTable::new();
        assert_eq!(t.len(), 6);
        for &p in &PrimKind::ALL {
            assert_eq!(t.kind(t.prim(p)), TypeKind::Prim(p));
        }
    }

    #[test]
    fn array_interning_is_idempotent() {
        let mut t = TypeTable::new();
        let int = t.prim(PrimKind::Int);
        let a1 = t.array_of(int);
        let a2 = t.array_of(int);
        assert_eq!(a1, a2);
        assert_eq!(t.array_elem(a1), Some(int));
    }

    #[test]
    fn nested_arrays_are_distinct() {
        let mut t = TypeTable::new();
        let int = t.prim(PrimKind::Int);
        let a = t.array_of(int);
        let aa = t.array_of(a);
        assert_ne!(a, aa);
        assert_eq!(t.array_elem(aa), Some(a));
    }

    #[test]
    fn safe_ref_round_trip() {
        let mut t = TypeTable::new();
        let (_, obj_ty) = object_class(&mut t);
        let s = t.safe_ref_of(obj_ty);
        assert!(t.is_safe_ref(s));
        assert_eq!(t.safe_ref_target(s), Some(obj_ty));
        assert_eq!(t.find_safe_ref(obj_ty), Some(s));
    }

    #[test]
    fn safe_index_round_trip() {
        let mut t = TypeTable::new();
        let int = t.prim(PrimKind::Int);
        let arr = t.array_of(int);
        let si = t.safe_index_of(arr);
        assert!(t.is_safe_index(si));
        assert_eq!(t.safe_index_array(si), Some(arr));
    }

    #[test]
    #[should_panic(expected = "safe-ref requires a reference type")]
    fn safe_ref_of_prim_panics() {
        let mut t = TypeTable::new();
        let int = t.prim(PrimKind::Int);
        t.safe_ref_of(int);
    }

    #[test]
    fn subclass_chain() {
        let mut t = TypeTable::new();
        let (obj, _) = object_class(&mut t);
        let (a, _) = t.declare_class(ClassInfo {
            name: "A".into(),
            superclass: Some(obj),
            fields: vec![],
            methods: vec![],
            imported: false,
        });
        let (b, _) = t.declare_class(ClassInfo {
            name: "B".into(),
            superclass: Some(a),
            fields: vec![],
            methods: vec![],
            imported: false,
        });
        assert!(t.is_subclass(b, obj));
        assert!(t.is_subclass(b, a));
        assert!(t.is_subclass(a, obj));
        assert!(!t.is_subclass(a, b));
    }

    #[test]
    fn field_lookup_follows_superclass() {
        let mut t = TypeTable::new();
        let (obj, _) = object_class(&mut t);
        let int = t.prim(PrimKind::Int);
        let (a, _) = t.declare_class(ClassInfo {
            name: "A".into(),
            superclass: Some(obj),
            fields: vec![FieldInfo {
                name: "x".into(),
                ty: int,
                is_static: false,
            }],
            methods: vec![],
            imported: false,
        });
        let (b, _) = t.declare_class(ClassInfo {
            name: "B".into(),
            superclass: Some(a),
            fields: vec![],
            methods: vec![],
            imported: false,
        });
        let r = t.find_field(b, "x").expect("field found");
        assert_eq!(r.class, a);
        assert_eq!(t.field(r).unwrap().name, "x");
        assert!(t.find_field(b, "y").is_none());
    }

    #[test]
    fn ref_assignability() {
        let mut t = TypeTable::new();
        let (obj, obj_ty) = object_class(&mut t);
        let (a, a_ty) = t.declare_class(ClassInfo {
            name: "A".into(),
            superclass: Some(obj),
            fields: vec![],
            methods: vec![],
            imported: false,
        });
        let _ = a;
        let int = t.prim(PrimKind::Int);
        let arr = t.array_of(int);
        assert!(t.is_ref_assignable(a_ty, obj_ty, obj));
        assert!(!t.is_ref_assignable(obj_ty, a_ty, obj));
        assert!(t.is_ref_assignable(arr, obj_ty, obj));
        assert!(!t.is_ref_assignable(obj_ty, arr, obj));
    }

    #[test]
    fn type_names() {
        let mut t = TypeTable::new();
        let int = t.prim(PrimKind::Int);
        let arr = t.array_of(int);
        let sr = t.safe_ref_of(arr);
        let si = t.safe_index_of(arr);
        assert_eq!(t.type_name(arr), "int[]");
        assert_eq!(t.type_name(sr), "safe-int[]");
        assert_eq!(t.type_name(si), "safe-index-int[]");
    }
}
