//! SSA values, literals, and the per-function constant pool.
//!
//! Internally the IR names every value with an absolute [`ValueId`];
//! the dominator-relative `(l, r)` pairs of the wire format (§2) are
//! computed by the encoder and resolved back by the decoder, so that
//! referential integrity is a property of the *encoding*, while the
//! in-memory representation stays convenient for optimizers.

use crate::types::TypeId;
use std::fmt;

/// Absolute name of an SSA value within one function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub u32);

impl ValueId {
    /// Raw index into the function's value table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Index of a basic block within one function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Raw index into the function's block list.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// A literal constant carried in a function's constant pool.
///
/// Constants are *pre-loaded* into registers of the appropriate planes
/// in the initial basic block (§5) — there is no instruction for
/// materializing a constant.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// `boolean` literal.
    Bool(bool),
    /// `char` literal (UTF-16 code unit).
    Char(u16),
    /// `int` literal.
    Int(i32),
    /// `long` literal.
    Long(i64),
    /// `float` literal (bit-exact).
    Float(f32),
    /// `double` literal (bit-exact).
    Double(f64),
    /// String literal; lives on the plane of the imported `String` class.
    Str(String),
    /// The `null` reference, typed at a specific reference plane.
    Null,
}

impl Literal {
    /// Structural equality that, unlike `PartialEq` on floats, treats
    /// NaNs with identical bits as equal (needed for pool deduplication).
    pub fn bit_eq(&self, other: &Literal) -> bool {
        match (self, other) {
            (Literal::Float(a), Literal::Float(b)) => a.to_bits() == b.to_bits(),
            (Literal::Double(a), Literal::Double(b)) => a.to_bits() == b.to_bits(),
            _ => self == other,
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Bool(b) => write!(f, "{b}"),
            Literal::Char(c) => match char::from_u32(*c as u32) {
                Some(ch) if !ch.is_control() => write!(f, "'{ch}'"),
                _ => write!(f, "'\\u{c:04x}'"),
            },
            Literal::Int(v) => write!(f, "{v}"),
            Literal::Long(v) => write!(f, "{v}L"),
            Literal::Float(v) => write!(f, "{v}f"),
            Literal::Double(v) => write!(f, "{v}d"),
            Literal::Str(s) => write!(f, "{s:?}"),
            Literal::Null => write!(f, "null"),
        }
    }
}

/// One constant-pool entry: a literal pre-loaded onto plane `ty`.
#[derive(Debug, Clone, PartialEq)]
pub struct Const {
    /// The plane the constant is pre-loaded onto.
    pub ty: TypeId,
    /// The literal value.
    pub lit: Literal,
}

/// Where a value is defined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Def {
    /// The `i`-th parameter, pre-loaded in the entry block.
    Param(u32),
    /// The `i`-th constant-pool entry, pre-loaded in the entry block.
    Const(u32),
    /// Result of the `i`-th phi of a block (phis precede instructions).
    Phi(BlockId, u32),
    /// Result of the `i`-th instruction of a block.
    Instr(BlockId, u32),
}

impl Def {
    /// Whether this is an entry-block pre-load (parameter or constant).
    pub fn is_preload(self) -> bool {
        matches!(self, Def::Param(_) | Def::Const(_))
    }
}

/// Metadata for one SSA value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValueInfo {
    /// The plane the value lives on.
    pub ty: TypeId,
    /// The defining site.
    pub def: Def,
    /// The block the value is defined in (entry block for pre-loads).
    pub block: BlockId,
    /// For `safe-index` values: the array *value* this index was checked
    /// against (Appendix A binds safe-index types to array values).
    /// `None` for all other planes.
    pub provenance: Option<ValueId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_display() {
        assert_eq!(Literal::Int(-3).to_string(), "-3");
        assert_eq!(Literal::Long(7).to_string(), "7L");
        assert_eq!(Literal::Bool(true).to_string(), "true");
        assert_eq!(Literal::Char(b'a' as u16).to_string(), "'a'");
        assert_eq!(Literal::Null.to_string(), "null");
        assert_eq!(Literal::Str("hi".into()).to_string(), "\"hi\"");
    }

    #[test]
    fn nan_bit_equality() {
        let a = Literal::Double(f64::NAN);
        let b = Literal::Double(f64::NAN);
        assert!(a.bit_eq(&b));
        assert!(a != b, "PartialEq must still be IEEE");
        assert!(Literal::Float(0.0).bit_eq(&Literal::Float(0.0)));
        assert!(!Literal::Float(0.0).bit_eq(&Literal::Float(-0.0)));
    }

    #[test]
    fn preload_defs() {
        assert!(Def::Param(0).is_preload());
        assert!(Def::Const(1).is_preload());
        assert!(!Def::Phi(BlockId(0), 0).is_preload());
        assert!(!Def::Instr(BlockId(0), 0).is_preload());
    }
}
