//! The SafeTSA verifier.
//!
//! Because referential integrity and type separation are properties of
//! the encoding, verification reduces to local, linear checks — no
//! dataflow analysis is needed (contrast `safetsa-baseline`'s JVM-style
//! verifier). The checks performed here are:
//!
//! 1. the CST is structurally well formed and the CFG derives from it;
//! 2. unreachable blocks are empty;
//! 3. every instruction types under the rules of [`crate::typing`]
//!    (type separation, safe-operand discipline, downcast safety,
//!    safe-index provenance);
//! 4. every operand *dominates* its use — the invariant the `(l, r)`
//!    wire references make intrinsic;
//! 5. phi operands cover the join's incoming edges exactly, respect
//!    per-edge visibility (exception edges only expose the results
//!    produced before the throwing instruction), and safe-index phis
//!    keep their array provenance in scope;
//! 6. the recorded value table agrees with re-typing (defense in depth
//!    for hand-constructed or decoded functions);
//! 7. `catch` appears exactly at handler entries; functions with a
//!    result type cannot fall off the end.

use crate::cfg::{Cfg, CfgError, EdgeKind};
use crate::cst::Cst;
use crate::dom::DomTree;
use crate::function::{Function, ENTRY};
use crate::instr::Instr;
use crate::module::Module;
use crate::types::{TypeKind, TypeTable};
use crate::typing::{self, TypeError};
use crate::value::{BlockId, Def, ValueId};
use std::collections::HashSet;
use std::fmt;

/// A verification failure.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyError {
    /// The CST was structurally malformed.
    Cfg(CfgError),
    /// An instruction violated the typing rules.
    Type {
        /// Function name.
        func: String,
        /// Block of the offending instruction.
        block: BlockId,
        /// The violation.
        err: TypeError,
    },
    /// An operand does not dominate its use.
    Dominance {
        /// Function name.
        func: String,
        /// Block of the use.
        block: BlockId,
        /// The offending operand.
        value: ValueId,
    },
    /// A value id out of range.
    BadValue(ValueId),
    /// A reachable phi's operands don't match the join's incoming edges.
    PhiArgs {
        /// Function name.
        func: String,
        /// The join block.
        block: BlockId,
        /// Explanation.
        why: &'static str,
    },
    /// Unreachable block contains phis or instructions.
    NonEmptyUnreachable(BlockId),
    /// A block never referenced by the CST.
    UnusedBlock(BlockId),
    /// Two CFG edges between the same pair of blocks (the encoding
    /// requires sub-block splitting to keep phi operands unambiguous).
    DuplicatePred {
        /// The join block.
        block: BlockId,
        /// The duplicated predecessor.
        pred: BlockId,
    },
    /// The recorded value table disagrees with re-typing.
    ValueTable {
        /// Function name.
        func: String,
        /// The inconsistent value.
        value: ValueId,
    },
    /// An instruction's result arity disagrees with the recorded
    /// results: typing says it produces a value but none is recorded,
    /// or vice versa.
    ResultArity {
        /// Function name.
        func: String,
        /// Block of the offending instruction.
        block: BlockId,
        /// Instruction index within the block.
        instr: usize,
    },
    /// `catch` not at a handler entry, or handler entry without `catch`.
    CatchPlacement(BlockId),
    /// An `If` condition is not on the boolean plane.
    CondNotBool(BlockId),
    /// A `Return` value's plane doesn't match the function result.
    ReturnType(BlockId),
    /// A `Throw` operand is not a throwable reference.
    ThrowType(BlockId),
    /// Control can fall off the end of a non-void function.
    MissingReturn(String),
    /// Class metadata inconsistency (bad body index, vtable slot…).
    ClassMeta(String),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Cfg(e) => write!(f, "control structure: {e}"),
            VerifyError::Type { func, block, err } => {
                write!(f, "{func} {block}: {err}")
            }
            VerifyError::Dominance { func, block, value } => {
                write!(
                    f,
                    "{func} {block}: operand {value} does not dominate its use"
                )
            }
            VerifyError::BadValue(v) => write!(f, "value {v} out of range"),
            VerifyError::PhiArgs { func, block, why } => {
                write!(f, "{func} {block}: phi operands invalid: {why}")
            }
            VerifyError::NonEmptyUnreachable(b) => {
                write!(f, "unreachable block {b} is not empty")
            }
            VerifyError::UnusedBlock(b) => write!(f, "block {b} not referenced by the CST"),
            VerifyError::DuplicatePred { block, pred } => {
                write!(f, "join {block} has duplicate predecessor {pred}")
            }
            VerifyError::ValueTable { func, value } => {
                write!(f, "{func}: value table inconsistent at {value}")
            }
            VerifyError::ResultArity { func, block, instr } => {
                write!(
                    f,
                    "{func} {block}: instruction {instr} result arity disagrees with the value table"
                )
            }
            VerifyError::CatchPlacement(b) => write!(f, "catch misplaced at {b}"),
            VerifyError::CondNotBool(b) => write!(f, "condition at {b} is not boolean"),
            VerifyError::ReturnType(b) => write!(f, "return at {b} has wrong plane"),
            VerifyError::ThrowType(b) => write!(f, "throw at {b} is not a throwable"),
            VerifyError::MissingReturn(n) => write!(f, "{n}: control falls off the end"),
            VerifyError::ClassMeta(s) => write!(f, "class metadata: {s}"),
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<CfgError> for VerifyError {
    fn from(e: CfgError) -> Self {
        VerifyError::Cfg(e)
    }
}

/// Statistics from a successful verification (useful for benchmarks).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerifyStats {
    /// Instructions checked.
    pub instrs: usize,
    /// Phi nodes checked.
    pub phis: usize,
    /// Operand references checked for dominance.
    pub operands: usize,
}

/// Position of a definition within its block, for intra-block ordering.
fn def_pos(def: Def) -> (u8, u32) {
    match def {
        Def::Param(i) => (0, i),
        Def::Const(i) => (0, u32::MAX / 2 + i),
        Def::Phi(_, i) => (1, i),
        Def::Instr(_, i) => (2, i),
    }
}

struct Checker<'a> {
    types: &'a TypeTable,
    f: &'a Function,
    cfg: &'a Cfg,
    dom: &'a DomTree,
    stats: VerifyStats,
}

impl<'a> Checker<'a> {
    fn value_in_range(&self, v: ValueId) -> Result<(), VerifyError> {
        if v.index() < self.f.values.len() {
            Ok(())
        } else {
            Err(VerifyError::BadValue(v))
        }
    }

    /// Checks that `v` is visible at instruction position `use_pos`
    /// (`(rank, idx)`) of block `b`.
    fn check_dominance(
        &mut self,
        b: BlockId,
        use_pos: (u8, u32),
        v: ValueId,
    ) -> Result<(), VerifyError> {
        self.value_in_range(v)?;
        self.stats.operands += 1;
        let info = self.f.value(v);
        let err = || VerifyError::Dominance {
            func: self.f.name.clone(),
            block: b,
            value: v,
        };
        if info.block == b {
            if def_pos(info.def) < use_pos {
                Ok(())
            } else {
                Err(err())
            }
        } else if self.cfg.reachable[info.block.index()] && self.dom.dominates(info.block, b) {
            Ok(())
        } else {
            Err(err())
        }
    }

    /// Checks that `v` is visible at the *end* of block `b` (used for
    /// branch conditions, returns, throws, and normal-edge phi args).
    fn check_visible_at_end(&mut self, b: BlockId, v: ValueId) -> Result<(), VerifyError> {
        self.check_dominance(b, (3, 0), v)
    }

    fn check_blocks(&mut self) -> Result<(), VerifyError> {
        // Every block appears in the CST exactly once (duplicates are a
        // CfgError); here we catch blocks never mentioned.
        if self.cfg.traversal.len() != self.f.block_count() {
            let mentioned: HashSet<BlockId> = self.cfg.traversal.iter().copied().collect();
            for i in 0..self.f.block_count() {
                let b = BlockId(i as u32);
                if !mentioned.contains(&b) {
                    return Err(VerifyError::UnusedBlock(b));
                }
            }
        }
        let handler_entries: HashSet<BlockId> = {
            let mut set = HashSet::new();
            self.f.body.walk(&mut |c| {
                if let Cst::Try { handler_entry, .. } = c {
                    set.insert(*handler_entry);
                }
            });
            set
        };
        for (bi, block) in self.f.blocks.iter().enumerate() {
            let b = BlockId(bi as u32);
            if !self.cfg.reachable[bi] {
                if !block.phis.is_empty() || !block.instrs.is_empty() {
                    return Err(VerifyError::NonEmptyUnreachable(b));
                }
                continue;
            }
            // Duplicate predecessors make phi operands ambiguous.
            let mut seen_preds = HashSet::new();
            for e in self.cfg.preds_of(b) {
                if !seen_preds.insert(e.from) {
                    return Err(VerifyError::DuplicatePred {
                        block: b,
                        pred: e.from,
                    });
                }
            }
            self.check_phis(b)?;
            let is_handler = handler_entries.contains(&b);
            for (k, instr) in block.instrs.iter().enumerate() {
                self.stats.instrs += 1;
                // `catch` exactly at handler entries, position 0.
                match instr {
                    Instr::Catch { .. } => {
                        if !is_handler || k != 0 {
                            return Err(VerifyError::CatchPlacement(b));
                        }
                    }
                    _ => {
                        if is_handler && k == 0 {
                            return Err(VerifyError::CatchPlacement(b));
                        }
                    }
                }
                for v in instr.operands() {
                    self.check_dominance(b, (2, k as u32), v)?;
                }
                let typed = typing::type_instr(self.types, self.f, instr).map_err(|err| {
                    VerifyError::Type {
                        func: self.f.name.clone(),
                        block: b,
                        err,
                    }
                })?;
                // Cross-check the recorded value table.
                let recorded = self.f.instr_result(b, k);
                match (typed.result, recorded) {
                    (None, None) => {}
                    (Some(ty), Some(v)) => {
                        let info = self.f.value(v);
                        if info.ty != ty
                            || info.block != b
                            || info.def != Def::Instr(b, k as u32)
                            || info.provenance != typed.provenance
                        {
                            return Err(VerifyError::ValueTable {
                                func: self.f.name.clone(),
                                value: v,
                            });
                        }
                    }
                    _ => {
                        return Err(VerifyError::ResultArity {
                            func: self.f.name.clone(),
                            block: b,
                            instr: k,
                        })
                    }
                }
            }
            // Handler entries must begin with `catch`.
            if is_handler
                && block
                    .instrs
                    .first()
                    .map(|i| !matches!(i, Instr::Catch { .. }))
                    .unwrap_or(true)
            {
                return Err(VerifyError::CatchPlacement(b));
            }
        }
        Ok(())
    }

    fn check_phis(&mut self, b: BlockId) -> Result<(), VerifyError> {
        let preds = self.cfg.preds_of(b).to_vec();
        let n_phis = self.f.block(b).phis.len();
        for k in 0..n_phis {
            self.stats.phis += 1;
            let phi = self.f.block(b).phis[k].clone();
            let fail = |why: &'static str| VerifyError::PhiArgs {
                func: self.f.name.clone(),
                block: b,
                why,
            };
            if phi.args.len() != preds.len() {
                return Err(fail("operand count != incoming edge count"));
            }
            // Every pred covered exactly once (pred uniqueness already
            // established), in any stored order.
            for e in &preds {
                let arg = phi
                    .arg_from(e.from)
                    .ok_or_else(|| fail("missing edge operand"))?;
                self.value_in_range(arg)?;
                let info = self.f.value(arg);
                if info.ty != phi.ty {
                    return Err(fail("operand on different plane"));
                }
                match e.kind {
                    EdgeKind::Normal => {
                        self.check_visible_at_end(e.from, arg)?;
                    }
                    EdgeKind::Exception { upto } => {
                        // Only the first `upto` instruction results of the
                        // pred block are visible along this edge.
                        self.check_dominance(e.from, (2, upto), arg)?;
                    }
                }
            }
            // Safe-index phis: provenance must be common and in scope.
            let result = self.f.phi_result(b, k);
            let rec = self.f.value(result);
            if rec.ty != phi.ty || rec.def != Def::Phi(b, k as u32) || rec.block != b {
                return Err(VerifyError::ValueTable {
                    func: self.f.name.clone(),
                    value: result,
                });
            }
            if self.types.is_safe_index(phi.ty) {
                let prov = rec
                    .provenance
                    .ok_or_else(|| fail("safe-index phi without provenance"))?;
                self.value_in_range(prov)?;
                for (_, arg) in &phi.args {
                    if self.f.value(*arg).provenance != Some(prov) {
                        return Err(fail("safe-index operands bound to different arrays"));
                    }
                }
                // The array value must dominate the phi (Appendix A).
                self.check_dominance(b, (1, 0), prov)
                    .map_err(|_| fail("safe-index provenance out of scope"))?;
            } else if rec.provenance.is_some() {
                return Err(fail("provenance on non-safe-index phi"));
            }
        }
        Ok(())
    }

    fn check_terminators(
        &mut self,
        throwable_root: crate::types::ClassId,
    ) -> Result<(), VerifyError> {
        for &(b, v) in &self.cfg.cond_uses {
            self.value_in_range(v)?;
            if self.f.value_ty(v) != self.types.bool_ty() {
                return Err(VerifyError::CondNotBool(b));
            }
            self.check_visible_at_end(b, v)?;
        }
        for &(b, v) in &self.cfg.return_uses {
            match (v, self.f.ret) {
                (None, None) => {}
                (Some(v), Some(ret)) => {
                    self.value_in_range(v)?;
                    if self.f.value_ty(v) != ret {
                        return Err(VerifyError::ReturnType(b));
                    }
                    self.check_visible_at_end(b, v)?;
                }
                _ => return Err(VerifyError::ReturnType(b)),
            }
        }
        for &(b, v) in &self.cfg.throw_uses {
            self.value_in_range(v)?;
            let ty = self.f.value_ty(v);
            let ok = match self.types.kind(ty) {
                TypeKind::Class(c) => self.types.is_subclass(c, throwable_root),
                TypeKind::SafeRef(of) => match self.types.kind(of) {
                    TypeKind::Class(c) => self.types.is_subclass(c, throwable_root),
                    _ => false,
                },
                _ => false,
            };
            if !ok {
                return Err(VerifyError::ThrowType(b));
            }
            self.check_visible_at_end(b, v)?;
        }
        if self.f.ret.is_some() && self.cfg.falls_through {
            return Err(VerifyError::MissingReturn(self.f.name.clone()));
        }
        Ok(())
    }
}

/// Verifies one function against `types`.
///
/// # Errors
///
/// Returns the first [`VerifyError`] encountered.
pub fn verify_function(
    types: &TypeTable,
    throwable_root: crate::types::ClassId,
    f: &Function,
) -> Result<VerifyStats, VerifyError> {
    // Parameters and constants must be on valid planes.
    for p in &f.params {
        if types.kind_checked(*p).is_none() {
            return Err(VerifyError::ClassMeta(format!(
                "{}: parameter plane out of range",
                f.name
            )));
        }
    }
    if f.const_values.len() != f.consts.len() {
        return Err(VerifyError::ClassMeta(format!(
            "{}: constant value list out of sync",
            f.name
        )));
    }
    for (i, c) in f.consts.iter().enumerate() {
        let cv = f.const_value(i);
        if cv.index() >= f.values.len() {
            return Err(VerifyError::BadValue(cv));
        }
        let vi = f.value(cv);
        if vi.ty != c.ty || vi.def != Def::Const(i as u32) || vi.block != ENTRY {
            return Err(VerifyError::ValueTable {
                func: f.name.clone(),
                value: cv,
            });
        }
    }
    let cfg = Cfg::build(f)?;
    let dom = DomTree::build(&cfg);
    let mut checker = Checker {
        types,
        f,
        cfg: &cfg,
        dom: &dom,
        stats: VerifyStats::default(),
    };
    checker.check_blocks()?;
    checker.check_terminators(throwable_root)?;
    Ok(checker.stats)
}

/// Verifies an entire module: class metadata plus every function body.
///
/// # Errors
///
/// Returns the first [`VerifyError`] encountered.
pub fn verify_module(m: &Module) -> Result<VerifyStats, VerifyError> {
    // Class metadata sanity.
    for (_, class) in m.types.classes() {
        for field in &class.fields {
            if m.types.kind_checked(field.ty).is_none() {
                return Err(VerifyError::ClassMeta(format!(
                    "{}.{}: field type out of range",
                    class.name, field.name
                )));
            }
        }
        for method in &class.methods {
            if let Some(body) = method.body {
                if body as usize >= m.functions.len() {
                    return Err(VerifyError::ClassMeta(format!(
                        "{}.{}: body index out of range",
                        class.name, method.name
                    )));
                }
            }
            for p in &method.params {
                if m.types.kind_checked(*p).is_none() {
                    return Err(VerifyError::ClassMeta(format!(
                        "{}.{}: parameter type out of range",
                        class.name, method.name
                    )));
                }
            }
        }
    }
    let mut total = VerifyStats::default();
    for f in &m.functions {
        let s = verify_function(&m.types, m.well_known.throwable, f)?;
        total.instrs += s.instrs;
        total.phis += s.phis;
        total.operands += s.operands;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primops;
    use crate::types::{ClassId, ClassInfo, PrimKind};
    use crate::value::{Const, Literal};

    fn base_types() -> (TypeTable, ClassId) {
        let mut t = TypeTable::new();
        let (obj, _) = t.declare_class(ClassInfo {
            name: "Object".into(),
            superclass: None,
            fields: vec![],
            methods: vec![],
            imported: true,
        });
        let (thr, _) = t.declare_class(ClassInfo {
            name: "Throwable".into(),
            superclass: Some(obj),
            fields: vec![],
            methods: vec![],
            imported: true,
        });
        (t, thr)
    }

    #[test]
    fn straight_line_function_verifies() {
        let (mut types, thr) = base_types();
        let int = types.prim(PrimKind::Int);
        let mut f = Function::new("f", None, vec![int, int], Some(int));
        let add = primops::find(PrimKind::Int, "add").unwrap();
        let r = f
            .add_instr(
                &mut types,
                ENTRY,
                Instr::Primitive {
                    ty: int,
                    op: add,
                    args: vec![f.param_value(0), f.param_value(1)],
                },
            )
            .unwrap()
            .unwrap();
        f.body = Cst::Seq(vec![Cst::Basic(ENTRY), Cst::Return(Some(r))]);
        let stats = verify_function(&types, thr, &f).unwrap();
        assert_eq!(stats.instrs, 1);
        // two instruction operands + the return value reference
        assert_eq!(stats.operands, 3);
    }

    #[test]
    fn missing_return_is_rejected() {
        let (types, thr) = base_types();
        let int = types.prim(PrimKind::Int);
        let mut f = Function::new("f", None, vec![int], Some(int));
        f.body = Cst::Basic(ENTRY);
        assert!(matches!(
            verify_function(&types, thr, &f),
            Err(VerifyError::MissingReturn(_))
        ));
    }

    #[test]
    fn use_before_def_in_same_block_rejected() {
        let (mut types, thr) = base_types();
        let int = types.prim(PrimKind::Int);
        let mut f = Function::new("f", None, vec![int], None);
        let add = primops::find(PrimKind::Int, "add").unwrap();
        // Manually craft an instruction referencing its own result.
        let v = f
            .add_instr(
                &mut types,
                ENTRY,
                Instr::Primitive {
                    ty: int,
                    op: add,
                    args: vec![f.param_value(0), f.param_value(0)],
                },
            )
            .unwrap()
            .unwrap();
        // Tamper: make the instruction reference its own result.
        f.blocks[0].instrs[0] = Instr::Primitive {
            ty: int,
            op: add,
            args: vec![v, f.param_value(0)],
        };
        f.body = Cst::Basic(ENTRY);
        assert!(matches!(
            verify_function(&types, thr, &f),
            Err(VerifyError::Dominance { .. })
        ));
    }

    #[test]
    fn cross_branch_reference_rejected() {
        // The attack from §2: referencing a value from the other branch
        // of an if/else (value (10) used while taking the (11) path).
        let (mut types, thr) = base_types();
        let int = types.prim(PrimKind::Int);
        let boolean = types.bool_ty();
        let mut f = Function::new("f", None, vec![boolean, int], None);
        let add = primops::find(PrimKind::Int, "add").unwrap();
        let then_b = f.add_block();
        let else_b = f.add_block();
        let join = f.add_block();
        let tv = f
            .add_instr(
                &mut types,
                then_b,
                Instr::Primitive {
                    ty: int,
                    op: add,
                    args: vec![f.param_value(1), f.param_value(1)],
                },
            )
            .unwrap()
            .unwrap();
        // else branch illegally references the then-branch value `tv`.
        f.add_instr(
            &mut types,
            else_b,
            Instr::Primitive {
                ty: int,
                op: add,
                args: vec![tv, f.param_value(1)],
            },
        )
        .unwrap();
        f.body = Cst::Seq(vec![
            Cst::Basic(ENTRY),
            Cst::If {
                cond: f.param_value(0),
                then_br: Box::new(Cst::Basic(then_b)),
                else_br: Box::new(Cst::Basic(else_b)),
                join,
            },
        ]);
        assert!(matches!(
            verify_function(&types, thr, &f),
            Err(VerifyError::Dominance { .. })
        ));
    }

    #[test]
    fn valid_phi_at_join_verifies() {
        let (mut types, thr) = base_types();
        let int = types.prim(PrimKind::Int);
        let boolean = types.bool_ty();
        let mut f = Function::new("f", None, vec![boolean, int], Some(int));
        let add = primops::find(PrimKind::Int, "add").unwrap();
        let then_b = f.add_block();
        let join = f.add_block();
        let tv = f
            .add_instr(
                &mut types,
                then_b,
                Instr::Primitive {
                    ty: int,
                    op: add,
                    args: vec![f.param_value(1), f.param_value(1)],
                },
            )
            .unwrap()
            .unwrap();
        let phi = f.add_phi(join, int);
        f.set_phi_args(join, 0, vec![(then_b, tv), (ENTRY, f.param_value(1))]);
        f.body = Cst::Seq(vec![
            Cst::Basic(ENTRY),
            Cst::If {
                cond: f.param_value(0),
                then_br: Box::new(Cst::Basic(then_b)),
                else_br: Box::new(Cst::empty()),
                join,
            },
            Cst::Return(Some(phi)),
        ]);
        verify_function(&types, thr, &f).expect("verifies");
    }

    #[test]
    fn phi_with_wrong_arity_rejected() {
        let (types, thr) = base_types();
        let int = types.prim(PrimKind::Int);
        let boolean = types.bool_ty();
        let mut f = Function::new("f", None, vec![boolean, int], Some(int));
        let then_b = f.add_block();
        let join = f.add_block();
        let phi = f.add_phi(join, int);
        f.set_phi_args(join, 0, vec![(then_b, f.param_value(1))]);
        f.body = Cst::Seq(vec![
            Cst::Basic(ENTRY),
            Cst::If {
                cond: f.param_value(0),
                then_br: Box::new(Cst::Basic(then_b)),
                else_br: Box::new(Cst::empty()),
                join,
            },
            Cst::Return(Some(phi)),
        ]);
        assert!(matches!(
            verify_function(&types, thr, &f),
            Err(VerifyError::PhiArgs { .. })
        ));
    }

    #[test]
    fn nonempty_unreachable_block_rejected() {
        let (mut types, thr) = base_types();
        let int = types.prim(PrimKind::Int);
        let mut f = Function::new("f", None, vec![int], None);
        let dead = f.add_block();
        let add = primops::find(PrimKind::Int, "add").unwrap();
        f.add_instr(
            &mut types,
            dead,
            Instr::Primitive {
                ty: int,
                op: add,
                args: vec![f.param_value(0), f.param_value(0)],
            },
        )
        .unwrap();
        f.body = Cst::Seq(vec![
            Cst::Basic(ENTRY),
            Cst::Return(None),
            // `dead` never referenced → UnusedBlock; reference it behind a
            // return to make it unreachable instead:
        ]);
        assert!(matches!(
            verify_function(&types, thr, &f),
            Err(VerifyError::UnusedBlock(_))
        ));
    }

    #[test]
    fn return_type_mismatch_rejected() {
        let (types, thr) = base_types();
        let int = types.prim(PrimKind::Int);
        let dbl = types.prim(PrimKind::Double);
        let mut f = Function::new("f", None, vec![dbl], Some(int));
        f.body = Cst::Seq(vec![Cst::Basic(ENTRY), Cst::Return(Some(f.param_value(0)))]);
        assert!(matches!(
            verify_function(&types, thr, &f),
            Err(VerifyError::ReturnType(_))
        ));
    }

    #[test]
    fn throw_requires_throwable() {
        let (types, thr) = base_types();
        let obj_ty = types.class_ty(ClassId(0));
        let thr_ty = types.class_ty(thr);
        // Throwing an Object is rejected…
        let mut f = Function::new("f", None, vec![obj_ty], None);
        f.body = Cst::Seq(vec![Cst::Basic(ENTRY), Cst::Throw(f.param_value(0))]);
        assert!(matches!(
            verify_function(&types, thr, &f),
            Err(VerifyError::ThrowType(_))
        ));
        // …throwing a Throwable is fine.
        let mut g = Function::new("g", None, vec![thr_ty], None);
        g.body = Cst::Seq(vec![Cst::Basic(ENTRY), Cst::Throw(g.param_value(0))]);
        verify_function(&types, thr, &g).expect("throwable throw verifies");
    }

    #[test]
    fn const_preload_table_checked() {
        let (types, thr) = base_types();
        let int = types.prim(PrimKind::Int);
        let mut f = Function::new("f", None, vec![], None);
        let _ = f.add_const(Const {
            ty: int,
            lit: Literal::Int(3),
        });
        // Tamper with the recorded plane of the constant.
        f.values[0].ty = types.prim(PrimKind::Double);
        f.body = Cst::Basic(ENTRY);
        assert!(matches!(
            verify_function(&types, thr, &f),
            Err(VerifyError::ValueTable { .. })
        ));
    }
}
