//! Textual renderings of the three program views used in the paper's
//! figures:
//!
//! * **plain SSA** (Figures 1 and 7): one global, consecutive value
//!   numbering; operands shown as `(n)`;
//! * **reference-safe SSA** (Figures 2 and 8): operands shown as
//!   dominator-relative `(l-r)` pairs over a single per-block register
//!   file;
//! * **SafeTSA** (Figures 4 and 9): type-separated — per-plane register
//!   numbering, with each instruction's result plane spelled out;
//! * the **machine model** view (Figure 3): the register planes of each
//!   block and their contents.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::function::{Function, ENTRY};
use crate::instr::Instr;
use crate::primops;
use crate::types::{TypeId, TypeKind, TypeTable};
use crate::value::{BlockId, Def, ValueId};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Pre-computed naming maps for a function.
struct Naming<'a> {
    f: &'a Function,
    types: &'a TypeTable,
    dom: DomTree,
    /// Global consecutive number per value (plain-SSA view).
    global: HashMap<ValueId, usize>,
    /// Per-block flat register index (reference-safe view).
    flat: HashMap<ValueId, usize>,
    /// Per-block, per-plane register index (SafeTSA view).
    plane: HashMap<ValueId, usize>,
    /// Block visit order.
    order: Vec<BlockId>,
}

impl<'a> Naming<'a> {
    fn new(types: &'a TypeTable, f: &'a Function) -> Self {
        let cfg = Cfg::build(f).expect("pretty: CST must be well formed");
        let dom = DomTree::build(&cfg);
        let order = cfg.traversal.clone();
        let mut global = HashMap::new();
        let mut flat = HashMap::new();
        let mut plane = HashMap::new();
        let mut counter = 0usize;
        for &b in &order {
            let mut per_plane: HashMap<TypeId, usize> = HashMap::new();
            for (i, v) in f.block_values(b).into_iter().enumerate() {
                global.insert(v, counter);
                counter += 1;
                flat.insert(v, i);
                let p = per_plane.entry(f.value_ty(v)).or_insert(0);
                plane.insert(v, *p);
                *p += 1;
            }
        }
        Naming {
            f,
            types,
            dom,
            global,
            flat,
            plane,
            order,
        }
    }

    fn lr(&self, use_block: BlockId, v: ValueId, r: usize) -> String {
        let def_block = self.f.value(v).block;
        let l = self
            .dom
            .level_distance(def_block, use_block)
            .unwrap_or(u32::MAX);
        format!("({l}-{r})")
    }
}

fn instr_head(types: &TypeTable, instr: &Instr) -> String {
    match instr {
        Instr::Primitive { ty, op, .. } | Instr::XPrimitive { ty, op, .. } => {
            let kind = match types.kind(*ty) {
                TypeKind::Prim(k) => k,
                _ => unreachable!("primitive on non-prim plane"),
            };
            let name = primops::resolve(kind, *op).map(|o| o.name).unwrap_or("?");
            format!("{}.{}", types.type_name(*ty), name)
        }
        Instr::NullCheck { ty, .. } => format!("nullcheck {}", types.type_name(*ty)),
        Instr::IndexCheck { arr_ty, .. } => format!("indexcheck {}", types.type_name(*arr_ty)),
        Instr::Upcast { from, to, .. } => format!(
            "upcast {} -> {}",
            types.type_name(*from),
            types.type_name(*to)
        ),
        Instr::Downcast { from, to, .. } => format!(
            "downcast {} -> {}",
            types.type_name(*from),
            types.type_name(*to)
        ),
        Instr::GetField { ty, field, .. } => format!(
            "getfield {}.{}",
            types.type_name(*ty),
            types.field(*field).map(|f| f.name.as_str()).unwrap_or("?")
        ),
        Instr::SetField { ty, field, .. } => format!(
            "setfield {}.{}",
            types.type_name(*ty),
            types.field(*field).map(|f| f.name.as_str()).unwrap_or("?")
        ),
        Instr::GetStatic { field } => format!(
            "getstatic {}.{}",
            types.class(field.class).name,
            types.field(*field).map(|f| f.name.as_str()).unwrap_or("?")
        ),
        Instr::SetStatic { field, .. } => format!(
            "setstatic {}.{}",
            types.class(field.class).name,
            types.field(*field).map(|f| f.name.as_str()).unwrap_or("?")
        ),
        Instr::GetElt { arr_ty, .. } => format!("getelt {}", types.type_name(*arr_ty)),
        Instr::SetElt { arr_ty, .. } => format!("setelt {}", types.type_name(*arr_ty)),
        Instr::ArrayLength { arr_ty, .. } => format!("arraylength {}", types.type_name(*arr_ty)),
        Instr::New { class_ty } => format!("new {}", types.type_name(*class_ty)),
        Instr::NewArray { arr_ty, .. } => format!("newarray {}", types.type_name(*arr_ty)),
        Instr::XCall { method, .. } => format!(
            "xcall {}.{}",
            types.class(method.class).name,
            types
                .method(*method)
                .map(|m| m.name.as_str())
                .unwrap_or("?")
        ),
        Instr::XDispatch { method, .. } => format!(
            "xdispatch {}.{}",
            types.class(method.class).name,
            types
                .method(*method)
                .map(|m| m.name.as_str())
                .unwrap_or("?")
        ),
        Instr::RefEq { ty, .. } => format!("refeq {}", types.type_name(*ty)),
        Instr::InstanceOf { target, .. } => {
            format!("instanceof {}", types.type_name(*target))
        }
        Instr::Catch { .. } => "catch".to_string(),
    }
}

fn preload_desc(f: &Function, v: ValueId) -> Option<String> {
    match f.value(v).def {
        Def::Param(i) => Some(format!("param {i}")),
        Def::Const(i) => Some(format!("const {}", f.consts[i as usize].lit)),
        _ => None,
    }
}

fn render(
    naming: &Naming<'_>,
    mut fmt_ref: impl FnMut(&Naming<'_>, BlockId, ValueId) -> String,
    show_planes: bool,
) -> String {
    let f = naming.f;
    let types = naming.types;
    let mut out = String::new();
    for &b in &naming.order {
        let _ = writeln!(out, "block {}:", b.0);
        if b == ENTRY {
            for v in f.block_values(b).into_iter().take(f.preload_count()) {
                let label = if show_planes {
                    format!("{}[{}]", types.type_name(f.value_ty(v)), naming.plane[&v])
                } else {
                    format!("{}", naming.global[&v])
                };
                let _ = writeln!(
                    out,
                    "  {label:>12} <- {}",
                    preload_desc(f, v).unwrap_or_default()
                );
            }
        }
        let block = f.block(b);
        for (k, phi) in block.phis.iter().enumerate() {
            let res = f.phi_result(b, k);
            let label = if show_planes {
                format!("{}[{}]", types.type_name(phi.ty), naming.plane[&res])
            } else {
                format!("{}", naming.global[&res])
            };
            let args: Vec<String> = phi
                .args
                .iter()
                .map(|(p, v)| fmt_ref(naming, *p, *v))
                .collect();
            let _ = writeln!(out, "  {label:>12} <- phi {}", args.join(" "));
        }
        for (k, instr) in block.instrs.iter().enumerate() {
            let head = instr_head(types, instr);
            let args: Vec<String> = instr
                .operands()
                .iter()
                .map(|v| fmt_ref(naming, b, *v))
                .collect();
            let lhs = match f.instr_result(b, k) {
                Some(res) => {
                    if show_planes {
                        format!(
                            "{}[{}]",
                            types.type_name(f.value_ty(res)),
                            naming.plane[&res]
                        )
                    } else {
                        format!("{}", naming.global[&res])
                    }
                }
                None => "-".to_string(),
            };
            let _ = writeln!(out, "  {lhs:>12} <- {head} {}", args.join(" "));
        }
    }
    out
}

/// The plain SSA view of Figures 1 and 7: global consecutive value
/// numbers, operands as `(n)`.
pub fn plain_ssa(types: &TypeTable, f: &Function) -> String {
    let naming = Naming::new(types, f);
    render(&naming, |n, _b, v| format!("({})", n.global[&v]), false)
}

/// The reference-safe view of Figures 2 and 8: operands as `(l-r)`
/// pairs over a single per-block register file.
pub fn reference_safe(types: &TypeTable, f: &Function) -> String {
    let naming = Naming::new(types, f);
    render(
        &naming,
        |n, b, v| {
            let r = n.flat[&v];
            n.lr(b, v, r)
        },
        false,
    )
}

/// The full SafeTSA view of Figures 4 and 9: type-separated `(l-r)`
/// pairs over per-plane register files, results labeled with planes.
pub fn safetsa(types: &TypeTable, f: &Function) -> String {
    let naming = Naming::new(types, f);
    render(
        &naming,
        |n, b, v| {
            let r = n.plane[&v];
            n.lr(b, v, r)
        },
        true,
    )
}

/// The "implied machine model" view of Figure 3: for each block, the
/// register planes that hold values and their contents.
pub fn machine_model(types: &TypeTable, f: &Function) -> String {
    let naming = Naming::new(types, f);
    let mut out = String::new();
    for &b in &naming.order {
        let _ = writeln!(out, "block {}:", b.0);
        let mut planes: HashMap<TypeId, Vec<ValueId>> = HashMap::new();
        for v in f.block_values(b) {
            planes.entry(f.value_ty(v)).or_default().push(v);
        }
        let mut keys: Vec<TypeId> = planes.keys().copied().collect();
        keys.sort();
        for ty in keys {
            let regs: Vec<String> = planes[&ty]
                .iter()
                .enumerate()
                .map(|(i, v)| match preload_desc(f, *v) {
                    Some(d) => format!("r{i}={d}"),
                    None => format!("r{i}"),
                })
                .collect();
            let _ = writeln!(
                out,
                "  plane {:<24} [{}]",
                types.type_name(ty),
                regs.join(", ")
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cst::Cst;
    use crate::primops;
    use crate::types::PrimKind;

    fn sample() -> (TypeTable, Function) {
        let mut types = TypeTable::new();
        let int = types.prim(PrimKind::Int);
        let boolean = types.bool_ty();
        let mut f = Function::new("sample", None, vec![int, int], Some(int));
        let lt = primops::find(PrimKind::Int, "lt").unwrap();
        let add = primops::find(PrimKind::Int, "add").unwrap();
        let cond = f
            .add_instr(
                &mut types,
                ENTRY,
                Instr::Primitive {
                    ty: int,
                    op: lt,
                    args: vec![f.param_value(0), f.param_value(1)],
                },
            )
            .unwrap()
            .unwrap();
        assert_eq!(f.value_ty(cond), boolean);
        let then_b = f.add_block();
        let join = f.add_block();
        let t = f
            .add_instr(
                &mut types,
                then_b,
                Instr::Primitive {
                    ty: int,
                    op: add,
                    args: vec![f.param_value(0), f.param_value(1)],
                },
            )
            .unwrap()
            .unwrap();
        let phi = f.add_phi(join, int);
        f.set_phi_args(join, 0, vec![(then_b, t), (ENTRY, f.param_value(0))]);
        f.body = Cst::Seq(vec![
            Cst::Basic(ENTRY),
            Cst::If {
                cond,
                then_br: Box::new(Cst::Basic(then_b)),
                else_br: Box::new(Cst::empty()),
                join,
            },
            Cst::Return(Some(phi)),
        ]);
        (types, f)
    }

    #[test]
    fn plain_view_uses_global_numbers() {
        let (types, f) = sample();
        let s = plain_ssa(&types, &f);
        assert!(s.contains("<- param 0"), "{s}");
        assert!(s.contains("int.lt (0) (1)"), "{s}");
        assert!(s.contains("phi"), "{s}");
    }

    #[test]
    fn reference_safe_view_uses_lr_pairs() {
        let (types, f) = sample();
        let s = reference_safe(&types, &f);
        assert!(s.contains("int.lt (0-0) (0-1)"), "{s}");
        // then-block add refers one level up the dominator tree
        assert!(s.contains("int.add (1-0) (1-1)"), "{s}");
    }

    #[test]
    fn safetsa_view_separates_planes() {
        let (types, f) = sample();
        let s = safetsa(&types, &f);
        // boolean result is register 0 on the boolean plane even though
        // two int registers precede it in the block.
        assert!(s.contains("boolean[0] <- int.lt (0-0) (0-1)"), "{s}");
        assert!(s.contains("int[0] <- phi"), "{s}");
    }

    #[test]
    fn machine_model_lists_planes() {
        let (types, f) = sample();
        let s = machine_model(&types, &f);
        assert!(s.contains("plane int"), "{s}");
        assert!(s.contains("plane boolean"), "{s}");
        assert!(s.contains("r0=param 0"), "{s}");
    }
}
