//! The Control Structure Tree (CST).
//!
//! SafeTSA partitions a method into a *Control Structure Tree* — the
//! structural part of the UAST — and blocks of SafeTSA instructions
//! (§7). The CST encodes structured control flow only (sequence,
//! if/else, loops, breaks, exception regions); a coherent control-flow
//! graph and dominator tree are *derived* from it (see
//! [`crate::cfg`]), which is what makes the `(l, r)` reference scheme
//! verifiable without dataflow analysis.
//!
//! Conventions:
//!
//! * Every join point is an explicit block owned by the structured node
//!   (`If::join`, `Labeled::join`, `Try::join`), so phi placement is
//!   always anchored to the tree.
//! * [`Cst::Loop`] is an infinite loop; the loop *header* holds the
//!   loop phis, and falling off the end of the body (or `Continue`)
//!   forms the back edge. Source-level `while`/`for`/`do` are expressed
//!   with a `Labeled` wrapper whose join is the loop exit and an `If`
//!   containing `Break` for the exit test, mirroring the single-pass
//!   Brandis–Mössenböck construction.
//! * `Break(n)` targets the `n`-th enclosing [`Cst::Labeled`]
//!   (innermost = 0); `Continue(n)` targets the `n`-th enclosing
//!   [`Cst::Loop`] header.

use crate::value::{BlockId, ValueId};

/// A node of the Control Structure Tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Cst {
    /// A straight-line basic block of instructions.
    Basic(BlockId),
    /// Sequential composition.
    Seq(Vec<Cst>),
    /// Two-way conditional. `cond` must be a `boolean` value dominating
    /// the node; `join` is the merge block holding the phis.
    If {
        /// The branch condition (on the `boolean` plane).
        cond: ValueId,
        /// Taken when `cond` is true.
        then_br: Box<Cst>,
        /// Taken when `cond` is false.
        else_br: Box<Cst>,
        /// The merge block (holds phis; may be unreachable and empty if
        /// both branches terminate abruptly).
        join: BlockId,
    },
    /// Infinite loop: `header` (phi block) executes, then `body`;
    /// control returns to `header` when the body falls through or a
    /// `Continue` targets this loop. Exited only by `Break`, `Return`,
    /// or `Throw`.
    Loop {
        /// The loop header block (loop phis live here).
        header: BlockId,
        /// The loop body.
        body: Box<Cst>,
    },
    /// Break target region: `Break(n)` inside `body` transfers control
    /// to `join`.
    Labeled {
        /// The labeled body.
        body: Box<Cst>,
        /// The block control lands on after a `Break` (or after the body
        /// falls through).
        join: BlockId,
    },
    /// Jump to the join of the `n`-th enclosing [`Cst::Labeled`].
    Break(u32),
    /// Jump to the header of the `n`-th enclosing [`Cst::Loop`].
    Continue(u32),
    /// Return from the function, optionally with a value.
    Return(Option<ValueId>),
    /// Raise the referenced throwable.
    Throw(ValueId),
    /// Exception region. Every exceptional instruction inside `body`
    /// adds an implicit edge to `handler_entry` (§7); `handler_entry`
    /// holds the exception phis and the `catch` instruction, and is
    /// followed by `handler` (the lowered catch arms). Normal exit of
    /// `body` or `handler` falls through to `join`.
    Try {
        /// The protected region.
        body: Box<Cst>,
        /// The block receiving all exception edges (phis + `catch`).
        handler_entry: BlockId,
        /// The lowered catch arms (instanceof chains, re-throw default).
        handler: Box<Cst>,
        /// The normal-path merge block.
        join: BlockId,
    },
}

impl Cst {
    /// An empty statement.
    pub fn empty() -> Cst {
        Cst::Seq(Vec::new())
    }

    /// Whether this subtree is an empty sequence.
    pub fn is_empty_seq(&self) -> bool {
        matches!(self, Cst::Seq(v) if v.is_empty())
    }

    /// Calls `f` on every node of the subtree, pre-order.
    pub fn walk(&self, f: &mut impl FnMut(&Cst)) {
        f(self);
        match self {
            Cst::Seq(items) => {
                for c in items {
                    c.walk(f);
                }
            }
            Cst::If {
                then_br, else_br, ..
            } => {
                then_br.walk(f);
                else_br.walk(f);
            }
            Cst::Loop { body, .. } | Cst::Labeled { body, .. } => body.walk(f),
            Cst::Try { body, handler, .. } => {
                body.walk(f);
                handler.walk(f);
            }
            _ => {}
        }
    }

    /// All block ids mentioned by the subtree, in traversal order
    /// (basic blocks where they execute, join/header blocks at their
    /// owning node).
    pub fn blocks(&self) -> Vec<BlockId> {
        let mut out = Vec::new();
        self.walk(&mut |c| match c {
            Cst::Basic(b) => out.push(*b),
            Cst::If { join, .. } => out.push(*join),
            Cst::Loop { header, .. } => out.push(*header),
            Cst::Labeled { join, .. } => out.push(*join),
            Cst::Try {
                handler_entry,
                join,
                ..
            } => {
                out.push(*handler_entry);
                out.push(*join);
            }
            _ => {}
        });
        out
    }

    /// Number of nodes in the subtree (used by encoding statistics).
    pub fn node_count(&self) -> usize {
        let mut n = 0;
        self.walk(&mut |_| n += 1);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_seq() {
        assert!(Cst::empty().is_empty_seq());
        assert!(!Cst::Basic(BlockId(0)).is_empty_seq());
    }

    #[test]
    fn walk_visits_all() {
        let tree = Cst::Seq(vec![
            Cst::Basic(BlockId(0)),
            Cst::If {
                cond: ValueId(0),
                then_br: Box::new(Cst::Basic(BlockId(1))),
                else_br: Box::new(Cst::empty()),
                join: BlockId(2),
            },
        ]);
        assert_eq!(tree.node_count(), 5);
        assert_eq!(tree.blocks(), vec![BlockId(0), BlockId(2), BlockId(1)]);
    }

    #[test]
    fn loop_blocks() {
        let tree = Cst::Labeled {
            body: Box::new(Cst::Loop {
                header: BlockId(1),
                body: Box::new(Cst::Seq(vec![Cst::Basic(BlockId(2)), Cst::Break(0)])),
            }),
            join: BlockId(3),
        };
        assert_eq!(tree.blocks(), vec![BlockId(3), BlockId(1), BlockId(2)]);
    }
}
