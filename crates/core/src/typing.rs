//! The typing rules of the SafeTSA instruction set.
//!
//! These rules are shared by the function builder (to compute implicit
//! result planes) and by the verifier (to re-check decoded programs).
//! They implement the "type separation" discipline of §3–§4: every
//! operand's plane is dictated by the opcode and its type parameters,
//! memory operations only accept `safe` operands, and `downcast` is
//! restricted to statically safe coercions.

use crate::instr::Instr;
use crate::primops;
use crate::types::{MethodKind, TypeId, TypeKind, TypeTable};
use crate::value::ValueId;
use std::fmt;

/// A typing violation.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeError {
    /// An operand was on the wrong plane.
    PlaneMismatch {
        /// What the instruction is.
        what: &'static str,
        /// Plane required by the rule.
        expected: TypeId,
        /// Plane the operand actually lives on.
        found: TypeId,
    },
    /// A type parameter had the wrong kind (e.g. `nullcheck` on `int`).
    BadTypeKind {
        /// What the instruction is.
        what: &'static str,
        /// Offending type.
        ty: TypeId,
    },
    /// A symbolic member reference did not resolve.
    BadMember(&'static str),
    /// Wrong number of operands for the operation or method.
    ArityMismatch {
        /// What the instruction is.
        what: &'static str,
        /// Expected arity.
        expected: usize,
        /// Actual arity.
        found: usize,
    },
    /// `primitive` used with an exceptional operation, or `xprimitive`
    /// with a non-exceptional one.
    ExceptionalityMismatch {
        /// Name of the operation.
        op: &'static str,
        /// Whether the operation itself is exceptional.
        op_exceptional: bool,
    },
    /// A `downcast` that is not statically safe.
    UnsafeDowncast {
        /// Source plane.
        from: TypeId,
        /// Target plane.
        to: TypeId,
    },
    /// A required derived plane (safe-ref/safe-index) was never interned
    /// in the type table.
    MissingPlane(&'static str, TypeId),
    /// A `getelt`/`setelt` whose index is not bound to its array value.
    ProvenanceMismatch {
        /// The array operand.
        array: ValueId,
        /// The provenance recorded on the index value.
        index_provenance: Option<ValueId>,
    },
    /// A primitive operation id out of range for its base type.
    UnknownPrimOp,
    /// `xdispatch` on a non-virtual method, or receiver rules violated.
    DispatchKind(&'static str),
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::PlaneMismatch {
                what,
                expected,
                found,
            } => write!(
                f,
                "{what}: operand on plane {found} but rule requires {expected}"
            ),
            TypeError::BadTypeKind { what, ty } => {
                write!(f, "{what}: type parameter {ty} has the wrong kind")
            }
            TypeError::BadMember(what) => write!(f, "{what}: unresolved member reference"),
            TypeError::ArityMismatch {
                what,
                expected,
                found,
            } => write!(f, "{what}: expected {expected} operands, found {found}"),
            TypeError::ExceptionalityMismatch { op, op_exceptional } => {
                if *op_exceptional {
                    write!(f, "operation {op} is exceptional and requires xprimitive")
                } else {
                    write!(f, "operation {op} is not exceptional; use primitive")
                }
            }
            TypeError::UnsafeDowncast { from, to } => {
                write!(f, "downcast from {from} to {to} is not statically safe")
            }
            TypeError::MissingPlane(what, ty) => {
                write!(f, "{what}: derived plane of {ty} not in type table")
            }
            TypeError::ProvenanceMismatch {
                array,
                index_provenance,
            } => write!(
                f,
                "element access on array {array} with index bound to {index_provenance:?}"
            ),
            TypeError::UnknownPrimOp => write!(f, "unknown primitive operation"),
            TypeError::DispatchKind(what) => write!(f, "invocation kind violation: {what}"),
        }
    }
}

impl std::error::Error for TypeError {}

/// The outcome of typing one instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Typed {
    /// Result plane, or `None` for result-less instructions.
    pub result: Option<TypeId>,
    /// For safe-index results: the array value the index is bound to.
    pub provenance: Option<ValueId>,
}

/// Access to operand metadata, abstracting over `Function` so the
/// decoder can type-check incrementally.
pub trait ValueCtx {
    /// Plane of `v`.
    fn value_ty(&self, v: ValueId) -> TypeId;
    /// Safe-index provenance of `v`, if any.
    fn value_provenance(&self, v: ValueId) -> Option<ValueId>;
}

fn expect_plane(
    what: &'static str,
    ctx: &impl ValueCtx,
    v: ValueId,
    expected: TypeId,
) -> Result<(), TypeError> {
    let found = ctx.value_ty(v);
    if found == expected {
        Ok(())
    } else {
        Err(TypeError::PlaneMismatch {
            what,
            expected,
            found,
        })
    }
}

/// Whether `downcast from → to` is statically safe (§4): forgetting a
/// null-check (`safe-ref T → T`), widening to a superclass on either
/// the `ref` or the `safe-ref` plane, or widening an array reference to
/// the root class.
pub fn downcast_is_safe(types: &TypeTable, from: TypeId, to: TypeId) -> bool {
    if from == to {
        return true;
    }
    let widens = |a: TypeId, b: TypeId| -> bool {
        match (types.kind(a), types.kind(b)) {
            (TypeKind::Class(x), TypeKind::Class(y)) => types.is_subclass(x, y),
            (TypeKind::Array(_), TypeKind::Class(y)) => {
                // arrays widen to the root class only
                types.class(y).superclass.is_none()
            }
            _ => false,
        }
    };
    match (types.kind(from), types.kind(to)) {
        // safe-ref T → T (forget the null check)
        (TypeKind::SafeRef(of), _) if of == to => true,
        // safe-ref A → safe-ref B where A widens to B
        (TypeKind::SafeRef(a), TypeKind::SafeRef(b)) => widens(a, b),
        // safe-ref A → B where A widens to B (forget + widen)
        (TypeKind::SafeRef(a), _) if widens(a, to) => true,
        // A → B where A widens to B
        _ => widens(from, to),
    }
}

/// Types `instr`, returning its result plane (and provenance), or a
/// [`TypeError`] describing the violation.
///
/// # Errors
///
/// Returns a [`TypeError`] if any operand is on the wrong plane, a
/// member reference fails to resolve, an arity is wrong, a `downcast`
/// is not statically safe, or element access violates safe-index
/// provenance.
pub fn type_instr(
    types: &TypeTable,
    ctx: &impl ValueCtx,
    instr: &Instr,
) -> Result<Typed, TypeError> {
    let ok = |result: Option<TypeId>| {
        Ok(Typed {
            result,
            provenance: None,
        })
    };
    match instr {
        Instr::Primitive { ty, op, args } | Instr::XPrimitive { ty, op, args } => {
            let kind = match types.kind(*ty) {
                TypeKind::Prim(k) => k,
                _ => {
                    return Err(TypeError::BadTypeKind {
                        what: "primitive",
                        ty: *ty,
                    })
                }
            };
            let desc = primops::resolve(kind, *op).ok_or(TypeError::UnknownPrimOp)?;
            let wants_x = matches!(instr, Instr::XPrimitive { .. });
            if desc.exceptional != wants_x {
                return Err(TypeError::ExceptionalityMismatch {
                    op: desc.name,
                    op_exceptional: desc.exceptional,
                });
            }
            if args.len() != desc.params.len() {
                return Err(TypeError::ArityMismatch {
                    what: "primitive",
                    expected: desc.params.len(),
                    found: args.len(),
                });
            }
            for (a, p) in args.iter().zip(desc.params) {
                expect_plane("primitive", ctx, *a, types.prim(*p))?;
            }
            ok(Some(types.prim(desc.result)))
        }
        Instr::NullCheck { ty, value } => {
            if !types.is_ref(*ty) {
                return Err(TypeError::BadTypeKind {
                    what: "nullcheck",
                    ty: *ty,
                });
            }
            expect_plane("nullcheck", ctx, *value, *ty)?;
            let safe = types
                .find_safe_ref(*ty)
                .ok_or(TypeError::MissingPlane("nullcheck", *ty))?;
            ok(Some(safe))
        }
        Instr::IndexCheck {
            arr_ty,
            array,
            index,
        } => {
            if !matches!(types.kind(*arr_ty), TypeKind::Array(_)) {
                return Err(TypeError::BadTypeKind {
                    what: "indexcheck",
                    ty: *arr_ty,
                });
            }
            let safe_arr = types
                .find_safe_ref(*arr_ty)
                .ok_or(TypeError::MissingPlane("indexcheck", *arr_ty))?;
            expect_plane("indexcheck", ctx, *array, safe_arr)?;
            expect_plane("indexcheck", ctx, *index, types.int_ty())?;
            let si = types
                .find_safe_index(*arr_ty)
                .ok_or(TypeError::MissingPlane("indexcheck", *arr_ty))?;
            Ok(Typed {
                result: Some(si),
                provenance: Some(*array),
            })
        }
        Instr::Upcast { from, to, value } => {
            if !types.is_ref(*from) {
                return Err(TypeError::BadTypeKind {
                    what: "upcast",
                    ty: *from,
                });
            }
            if !types.is_ref(*to) {
                return Err(TypeError::BadTypeKind {
                    what: "upcast",
                    ty: *to,
                });
            }
            expect_plane("upcast", ctx, *value, *from)?;
            ok(Some(*to))
        }
        Instr::Downcast { from, to, value } => {
            expect_plane("downcast", ctx, *value, *from)?;
            if !downcast_is_safe(types, *from, *to) {
                return Err(TypeError::UnsafeDowncast {
                    from: *from,
                    to: *to,
                });
            }
            ok(Some(*to))
        }
        Instr::GetField { ty, object, field } => {
            let class = match types.kind(*ty) {
                TypeKind::Class(c) => c,
                _ => {
                    return Err(TypeError::BadTypeKind {
                        what: "getfield",
                        ty: *ty,
                    })
                }
            };
            let info = types
                .field(*field)
                .ok_or(TypeError::BadMember("getfield"))?;
            if info.is_static || !types.is_subclass(class, field.class) {
                return Err(TypeError::BadMember("getfield"));
            }
            let safe = types
                .find_safe_ref(*ty)
                .ok_or(TypeError::MissingPlane("getfield", *ty))?;
            expect_plane("getfield", ctx, *object, safe)?;
            ok(Some(info.ty))
        }
        Instr::SetField {
            ty,
            object,
            field,
            value,
        } => {
            let class = match types.kind(*ty) {
                TypeKind::Class(c) => c,
                _ => {
                    return Err(TypeError::BadTypeKind {
                        what: "setfield",
                        ty: *ty,
                    })
                }
            };
            let info = types
                .field(*field)
                .ok_or(TypeError::BadMember("setfield"))?;
            if info.is_static || !types.is_subclass(class, field.class) {
                return Err(TypeError::BadMember("setfield"));
            }
            let safe = types
                .find_safe_ref(*ty)
                .ok_or(TypeError::MissingPlane("setfield", *ty))?;
            expect_plane("setfield", ctx, *object, safe)?;
            expect_plane("setfield", ctx, *value, info.ty)?;
            ok(None)
        }
        Instr::GetStatic { field } => {
            let info = types
                .field(*field)
                .ok_or(TypeError::BadMember("getstatic"))?;
            if !info.is_static {
                return Err(TypeError::BadMember("getstatic"));
            }
            ok(Some(info.ty))
        }
        Instr::SetStatic { field, value } => {
            let info = types
                .field(*field)
                .ok_or(TypeError::BadMember("setstatic"))?;
            if !info.is_static {
                return Err(TypeError::BadMember("setstatic"));
            }
            expect_plane("setstatic", ctx, *value, info.ty)?;
            ok(None)
        }
        Instr::GetElt {
            arr_ty,
            array,
            index,
        }
        | Instr::SetElt {
            arr_ty,
            array,
            index,
            ..
        } => {
            let elem = types.array_elem(*arr_ty).ok_or(TypeError::BadTypeKind {
                what: "getelt/setelt",
                ty: *arr_ty,
            })?;
            let safe = types
                .find_safe_ref(*arr_ty)
                .ok_or(TypeError::MissingPlane("getelt/setelt", *arr_ty))?;
            expect_plane("getelt/setelt", ctx, *array, safe)?;
            let si = types
                .find_safe_index(*arr_ty)
                .ok_or(TypeError::MissingPlane("getelt/setelt", *arr_ty))?;
            expect_plane("getelt/setelt", ctx, *index, si)?;
            // Appendix A: safe-index values are bound to array values.
            if ctx.value_provenance(*index) != Some(*array) {
                return Err(TypeError::ProvenanceMismatch {
                    array: *array,
                    index_provenance: ctx.value_provenance(*index),
                });
            }
            match instr {
                Instr::GetElt { .. } => ok(Some(elem)),
                Instr::SetElt { value, .. } => {
                    expect_plane("setelt", ctx, *value, elem)?;
                    ok(None)
                }
                _ => unreachable!(),
            }
        }
        Instr::ArrayLength { arr_ty, array } => {
            if !matches!(types.kind(*arr_ty), TypeKind::Array(_)) {
                return Err(TypeError::BadTypeKind {
                    what: "arraylength",
                    ty: *arr_ty,
                });
            }
            let safe = types
                .find_safe_ref(*arr_ty)
                .ok_or(TypeError::MissingPlane("arraylength", *arr_ty))?;
            expect_plane("arraylength", ctx, *array, safe)?;
            ok(Some(types.int_ty()))
        }
        Instr::New { class_ty } => {
            if !matches!(types.kind(*class_ty), TypeKind::Class(_)) {
                return Err(TypeError::BadTypeKind {
                    what: "new",
                    ty: *class_ty,
                });
            }
            // Allocation never yields null, so the result lands directly
            // on the safe-ref plane (no spurious null check needed).
            let safe = types
                .find_safe_ref(*class_ty)
                .ok_or(TypeError::MissingPlane("new", *class_ty))?;
            ok(Some(safe))
        }
        Instr::NewArray { arr_ty, length } => {
            if !matches!(types.kind(*arr_ty), TypeKind::Array(_)) {
                return Err(TypeError::BadTypeKind {
                    what: "newarray",
                    ty: *arr_ty,
                });
            }
            expect_plane("newarray", ctx, *length, types.int_ty())?;
            let safe = types
                .find_safe_ref(*arr_ty)
                .ok_or(TypeError::MissingPlane("newarray", *arr_ty))?;
            ok(Some(safe))
        }
        Instr::XCall {
            base_ty,
            method,
            receiver,
            args,
        } => {
            let info = types.method(*method).ok_or(TypeError::BadMember("xcall"))?;
            match (info.kind, receiver) {
                (MethodKind::Static, Some(_)) => {
                    return Err(TypeError::DispatchKind("static method with receiver"))
                }
                (MethodKind::Static, None) => {}
                (_, None) => {
                    return Err(TypeError::DispatchKind("instance method without receiver"))
                }
                (_, Some(r)) => {
                    let class = match types.kind(*base_ty) {
                        TypeKind::Class(c) => c,
                        _ => {
                            return Err(TypeError::BadTypeKind {
                                what: "xcall",
                                ty: *base_ty,
                            })
                        }
                    };
                    if !types.is_subclass(class, method.class) {
                        return Err(TypeError::BadMember("xcall"));
                    }
                    let safe = types
                        .find_safe_ref(*base_ty)
                        .ok_or(TypeError::MissingPlane("xcall", *base_ty))?;
                    expect_plane("xcall", ctx, *r, safe)?;
                }
            }
            if args.len() != info.params.len() {
                return Err(TypeError::ArityMismatch {
                    what: "xcall",
                    expected: info.params.len(),
                    found: args.len(),
                });
            }
            for (a, p) in args.iter().zip(&info.params) {
                expect_plane("xcall", ctx, *a, *p)?;
            }
            ok(info.ret)
        }
        Instr::XDispatch {
            base_ty,
            method,
            receiver,
            args,
        } => {
            let info = types
                .method(*method)
                .ok_or(TypeError::BadMember("xdispatch"))?;
            if info.kind != MethodKind::Virtual {
                return Err(TypeError::DispatchKind("xdispatch on non-virtual method"));
            }
            let class = match types.kind(*base_ty) {
                TypeKind::Class(c) => c,
                _ => {
                    return Err(TypeError::BadTypeKind {
                        what: "xdispatch",
                        ty: *base_ty,
                    })
                }
            };
            if !types.is_subclass(class, method.class) {
                return Err(TypeError::BadMember("xdispatch"));
            }
            let safe = types
                .find_safe_ref(*base_ty)
                .ok_or(TypeError::MissingPlane("xdispatch", *base_ty))?;
            expect_plane("xdispatch", ctx, *receiver, safe)?;
            if args.len() != info.params.len() {
                return Err(TypeError::ArityMismatch {
                    what: "xdispatch",
                    expected: info.params.len(),
                    found: args.len(),
                });
            }
            for (a, p) in args.iter().zip(&info.params) {
                expect_plane("xdispatch", ctx, *a, *p)?;
            }
            ok(info.ret)
        }
        Instr::RefEq { ty, a, b } => {
            let plane_ok = types.is_ref(*ty) || types.is_safe_ref(*ty);
            if !plane_ok {
                return Err(TypeError::BadTypeKind {
                    what: "refeq",
                    ty: *ty,
                });
            }
            expect_plane("refeq", ctx, *a, *ty)?;
            expect_plane("refeq", ctx, *b, *ty)?;
            ok(Some(types.bool_ty()))
        }
        Instr::InstanceOf {
            from,
            target,
            value,
        } => {
            let from_ok = types.is_ref(*from) || types.is_safe_ref(*from);
            if !from_ok {
                return Err(TypeError::BadTypeKind {
                    what: "instanceof",
                    ty: *from,
                });
            }
            if !types.is_ref(*target) {
                return Err(TypeError::BadTypeKind {
                    what: "instanceof",
                    ty: *target,
                });
            }
            expect_plane("instanceof", ctx, *value, *from)?;
            ok(Some(types.bool_ty()))
        }
        Instr::Catch { ty } => {
            if !matches!(types.kind(*ty), TypeKind::Class(_)) {
                return Err(TypeError::BadTypeKind {
                    what: "catch",
                    ty: *ty,
                });
            }
            ok(Some(*ty))
        }
    }
}

/// The planes the type table must contain before `instr` can be typed;
/// the builder interns these eagerly.
pub fn intern_planes(types: &mut TypeTable, instr: &Instr) {
    match instr {
        Instr::NullCheck { ty, .. } => {
            types.safe_ref_of(*ty);
        }
        Instr::IndexCheck { arr_ty, .. }
        | Instr::GetElt { arr_ty, .. }
        | Instr::SetElt { arr_ty, .. } => {
            types.safe_ref_of(*arr_ty);
            types.safe_index_of(*arr_ty);
        }
        Instr::ArrayLength { arr_ty, .. } => {
            types.safe_ref_of(*arr_ty);
        }
        Instr::GetField { ty, .. } | Instr::SetField { ty, .. } => {
            types.safe_ref_of(*ty);
        }
        Instr::New { class_ty } => {
            types.safe_ref_of(*class_ty);
        }
        Instr::NewArray { arr_ty, .. } => {
            types.safe_ref_of(*arr_ty);
        }
        Instr::XCall {
            base_ty,
            receiver: Some(_),
            ..
        } => {
            types.safe_ref_of(*base_ty);
        }
        Instr::XDispatch { base_ty, .. } => {
            types.safe_ref_of(*base_ty);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ClassInfo, PrimKind};

    fn hierarchy() -> (TypeTable, TypeId, TypeId, TypeId, TypeId) {
        let mut t = TypeTable::new();
        let (obj, obj_ty) = t.declare_class(ClassInfo {
            name: "Object".into(),
            superclass: None,
            fields: vec![],
            methods: vec![],
            imported: true,
        });
        let (a, a_ty) = t.declare_class(ClassInfo {
            name: "A".into(),
            superclass: Some(obj),
            fields: vec![],
            methods: vec![],
            imported: false,
        });
        let (_b, b_ty) = t.declare_class(ClassInfo {
            name: "B".into(),
            superclass: Some(a),
            fields: vec![],
            methods: vec![],
            imported: false,
        });
        let int = t.prim(PrimKind::Int);
        let arr = t.array_of(int);
        (t, obj_ty, a_ty, b_ty, arr)
    }

    #[test]
    fn downcast_safety_matrix() {
        let (mut t, obj_ty, a_ty, b_ty, arr) = hierarchy();
        let sa = t.safe_ref_of(a_ty);
        let sb = t.safe_ref_of(b_ty);
        let sobj = t.safe_ref_of(obj_ty);
        // Reflexive.
        assert!(downcast_is_safe(&t, a_ty, a_ty));
        // safe-ref T → T (forget the null check).
        assert!(downcast_is_safe(&t, sa, a_ty));
        // Widening on the ref plane.
        assert!(downcast_is_safe(&t, b_ty, a_ty));
        assert!(downcast_is_safe(&t, b_ty, obj_ty));
        // Widening on the safe-ref plane.
        assert!(downcast_is_safe(&t, sb, sa));
        assert!(downcast_is_safe(&t, sb, sobj));
        // Forget + widen in one step.
        assert!(downcast_is_safe(&t, sb, a_ty));
        // Arrays widen to the root class only.
        assert!(downcast_is_safe(&t, arr, obj_ty));
        assert!(!downcast_is_safe(&t, arr, a_ty));
        // NARROWING is never a safe downcast.
        assert!(!downcast_is_safe(&t, a_ty, b_ty));
        assert!(!downcast_is_safe(&t, obj_ty, a_ty));
        assert!(!downcast_is_safe(&t, sa, sb));
        // ref → safe-ref would forge a null check.
        assert!(!downcast_is_safe(&t, a_ty, sa));
        // primitive cross-plane is nonsense.
        let int = t.prim(PrimKind::Int);
        let long = t.prim(PrimKind::Long);
        assert!(!downcast_is_safe(&t, int, long));
        assert!(!downcast_is_safe(&t, int, a_ty));
    }

    struct Vals(Vec<(TypeId, Option<ValueId>)>);
    impl ValueCtx for Vals {
        fn value_ty(&self, v: ValueId) -> TypeId {
            self.0[v.index()].0
        }
        fn value_provenance(&self, v: ValueId) -> Option<ValueId> {
            self.0[v.index()].1
        }
    }

    #[test]
    fn forged_downcast_rejected() {
        let (t, obj_ty, a_ty, _, _) = hierarchy();
        let ctx = Vals(vec![(obj_ty, None)]);
        let err = type_instr(
            &t,
            &ctx,
            &Instr::Downcast {
                from: obj_ty,
                to: a_ty,
                value: ValueId(0),
            },
        )
        .unwrap_err();
        assert!(matches!(err, TypeError::UnsafeDowncast { .. }));
    }

    #[test]
    fn xdispatch_requires_virtual() {
        let (mut t, _, a_ty, _, _) = hierarchy();
        use crate::types::{MethodInfo, MethodKind, MethodRef};
        let a = match t.kind(a_ty) {
            crate::types::TypeKind::Class(c) => c,
            _ => unreachable!(),
        };
        t.class_mut(a).methods.push(MethodInfo {
            name: "s".into(),
            params: vec![],
            ret: None,
            kind: MethodKind::Static,
            vtable_slot: None,
            body: None,
        });
        let sa = t.safe_ref_of(a_ty);
        let ctx = Vals(vec![(sa, None)]);
        let err = type_instr(
            &t,
            &ctx,
            &Instr::XDispatch {
                base_ty: a_ty,
                method: MethodRef { class: a, index: 0 },
                receiver: ValueId(0),
                args: vec![],
            },
        )
        .unwrap_err();
        assert!(matches!(err, TypeError::DispatchKind(_)));
    }

    #[test]
    fn memory_ops_reject_unsafe_operands() {
        let (mut t, _, a_ty, _, arr) = hierarchy();
        use crate::types::{FieldInfo, FieldRef};
        let a = match t.kind(a_ty) {
            crate::types::TypeKind::Class(c) => c,
            _ => unreachable!(),
        };
        let int = t.prim(PrimKind::Int);
        t.class_mut(a).fields.push(FieldInfo {
            name: "x".into(),
            ty: int,
            is_static: false,
        });
        t.safe_ref_of(a_ty);
        // getfield with an UNSAFE ref operand must be rejected.
        let ctx = Vals(vec![(a_ty, None)]);
        let err = type_instr(
            &t,
            &ctx,
            &Instr::GetField {
                ty: a_ty,
                object: ValueId(0),
                field: FieldRef { class: a, index: 0 },
            },
        )
        .unwrap_err();
        assert!(matches!(err, TypeError::PlaneMismatch { .. }));
        // getelt with a plain int as index must be rejected.
        t.safe_ref_of(arr);
        t.safe_index_of(arr);
        let sarr = t.find_safe_ref(arr).unwrap();
        let ctx = Vals(vec![(sarr, None), (int, None)]);
        let err = type_instr(
            &t,
            &ctx,
            &Instr::GetElt {
                arr_ty: arr,
                array: ValueId(0),
                index: ValueId(1),
            },
        )
        .unwrap_err();
        assert!(matches!(err, TypeError::PlaneMismatch { .. }));
    }
}
