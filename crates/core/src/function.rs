//! Functions (method bodies) and the low-level construction API.
//!
//! A [`Function`] owns its basic blocks, its SSA value table, its
//! constant pool, and the [`Cst`] describing its structured control
//! flow. Parameters and constants are *pre-loaded* values of the entry
//! block (§5); they occupy the leading register numbers of their planes
//! and are never represented as instructions.

use crate::cst::Cst;
use crate::instr::{Instr, Phi};
use crate::types::{ClassId, TypeId, TypeTable};
use crate::typing::{self, TypeError, ValueCtx};
use crate::value::{BlockId, Const, Def, ValueId, ValueInfo};

/// A basic block: phis first, then straight-line instructions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Block {
    /// The block's phi nodes (results precede all instruction results
    /// on their planes).
    pub phis: Vec<Phi>,
    /// The block's instructions in execution order.
    pub instrs: Vec<Instr>,
}

/// Results of phis/instructions, cached per block so register numbers
/// can be recomputed cheaply.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BlockResults {
    /// Value produced by each phi (parallel to `Block::phis`).
    pub phi_results: Vec<ValueId>,
    /// Value produced by each instruction, `None` for result-less ones
    /// (parallel to `Block::instrs`).
    pub instr_results: Vec<Option<ValueId>>,
}

/// A SafeTSA function body.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Diagnostic name (`Class.method`).
    pub name: String,
    /// Owning class, if the function is a method body.
    pub class: Option<ClassId>,
    /// Parameter planes. For instance methods, parameter 0 is the
    /// receiver on the *safe-ref* plane of the class (the caller's
    /// dispatch already null-checked it).
    pub params: Vec<TypeId>,
    /// Result plane; `None` for `void`.
    pub ret: Option<TypeId>,
    /// The constant pool, pre-loaded after the parameters.
    pub consts: Vec<Const>,
    /// Value ids of the constant pre-loads (parallel to `consts`;
    /// constants are created lazily, so their ids need not be dense).
    pub const_values: Vec<ValueId>,
    /// Basic blocks; `BlockId(0)` is the entry block.
    pub blocks: Vec<Block>,
    /// Per-block result caches (parallel to `blocks`).
    pub results: Vec<BlockResults>,
    /// The SSA value table.
    pub values: Vec<ValueInfo>,
    /// The control structure tree.
    pub body: Cst,
}

/// The entry block id (`b0` by construction).
pub const ENTRY: BlockId = BlockId(0);

impl Function {
    /// Creates a function with an empty entry block; parameters are
    /// pre-loaded immediately.
    pub fn new(
        name: impl Into<String>,
        class: Option<ClassId>,
        params: Vec<TypeId>,
        ret: Option<TypeId>,
    ) -> Self {
        let mut f = Function {
            name: name.into(),
            class,
            params: params.clone(),
            ret,
            consts: Vec::new(),
            const_values: Vec::new(),
            blocks: vec![Block::default()],
            results: vec![BlockResults::default()],
            values: Vec::new(),
            body: Cst::empty(),
        };
        for (i, ty) in params.iter().enumerate() {
            f.values.push(ValueInfo {
                ty: *ty,
                def: Def::Param(i as u32),
                block: ENTRY,
                provenance: None,
            });
        }
        f
    }

    /// The value pre-loaded for parameter `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn param_value(&self, i: usize) -> ValueId {
        assert!(i < self.params.len(), "parameter index out of range");
        ValueId(i as u32)
    }

    /// Adds (or reuses) a constant-pool entry and returns its pre-loaded
    /// value.
    pub fn add_const(&mut self, c: Const) -> ValueId {
        if let Some(i) = self
            .consts
            .iter()
            .position(|e| e.ty == c.ty && e.lit.bit_eq(&c.lit))
        {
            return self.const_values[i];
        }
        let idx = self.consts.len();
        self.consts.push(c.clone());
        let id = ValueId(self.values.len() as u32);
        self.values.push(ValueInfo {
            ty: c.ty,
            def: Def::Const(idx as u32),
            block: ENTRY,
            provenance: None,
        });
        self.const_values.push(id);
        id
    }

    /// The pre-loaded value of constant-pool entry `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn const_value(&self, i: usize) -> ValueId {
        self.const_values[i]
    }

    /// Number of pre-loaded values (parameters + constants).
    pub fn preload_count(&self) -> usize {
        self.params.len() + self.consts.len()
    }

    /// Appends a fresh, empty basic block.
    pub fn add_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block::default());
        self.results.push(BlockResults::default());
        id
    }

    /// Number of basic blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// The block data for `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn block(&self, b: BlockId) -> &Block {
        &self.blocks[b.index()]
    }

    /// The value metadata for `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn value(&self, v: ValueId) -> &ValueInfo {
        &self.values[v.index()]
    }

    /// The plane of `v`.
    pub fn value_ty(&self, v: ValueId) -> TypeId {
        self.values[v.index()].ty
    }

    /// Appends `instr` to block `b`, typing it against `types` (interning
    /// any derived planes it needs) and creating its result value.
    ///
    /// Returns the result value, or `None` for result-less instructions.
    ///
    /// # Errors
    ///
    /// Returns a [`TypeError`] if the instruction violates the typing
    /// rules; the function is left unchanged in that case.
    pub fn add_instr(
        &mut self,
        types: &mut TypeTable,
        b: BlockId,
        instr: Instr,
    ) -> Result<Option<ValueId>, TypeError> {
        typing::intern_planes(types, &instr);
        let typed = typing::type_instr(types, self, &instr)?;
        let idx = self.blocks[b.index()].instrs.len() as u32;
        let result = typed.result.map(|ty| {
            let id = ValueId(self.values.len() as u32);
            self.values.push(ValueInfo {
                ty,
                def: Def::Instr(b, idx),
                block: b,
                provenance: typed.provenance,
            });
            id
        });
        self.blocks[b.index()].instrs.push(instr);
        self.results[b.index()].instr_results.push(result);
        Ok(result)
    }

    /// Appends `instr` to block `b` WITHOUT type-checking, creating a
    /// result value on `result_ty` (if given). Used by streaming
    /// decoders that learn operands in a later phase; the caller must
    /// run the verifier before trusting the function.
    pub fn add_instr_unchecked(
        &mut self,
        b: BlockId,
        instr: Instr,
        result_ty: Option<TypeId>,
    ) -> Option<ValueId> {
        let idx = self.blocks[b.index()].instrs.len() as u32;
        let result = result_ty.map(|ty| {
            let id = ValueId(self.values.len() as u32);
            self.values.push(ValueInfo {
                ty,
                def: Def::Instr(b, idx),
                block: b,
                provenance: None,
            });
            id
        });
        self.blocks[b.index()].instrs.push(instr);
        self.results[b.index()].instr_results.push(result);
        result
    }

    /// Appends a phi of plane `ty` to block `b` with empty operands
    /// (filled in later via [`Function::set_phi_args`]); returns its
    /// result value.
    pub fn add_phi(&mut self, b: BlockId, ty: TypeId) -> ValueId {
        let idx = self.blocks[b.index()].phis.len() as u32;
        let id = ValueId(self.values.len() as u32);
        self.values.push(ValueInfo {
            ty,
            def: Def::Phi(b, idx),
            block: b,
            provenance: None,
        });
        self.blocks[b.index()].phis.push(Phi {
            ty,
            args: Vec::new(),
        });
        self.results[b.index()].phi_results.push(id);
        id
    }

    /// Replaces the operand list of phi `idx` of block `b`.
    ///
    /// # Panics
    ///
    /// Panics if the phi does not exist.
    pub fn set_phi_args(&mut self, b: BlockId, idx: usize, args: Vec<(BlockId, ValueId)>) {
        self.blocks[b.index()].phis[idx].args = args;
    }

    /// Sets the safe-index provenance of a (phi) value; the SSA builder
    /// uses this when all operands of a safe-index phi share an array.
    pub fn set_provenance(&mut self, v: ValueId, prov: Option<ValueId>) {
        self.values[v.index()].provenance = prov;
    }

    /// The result value of instruction `idx` in block `b`, if any.
    pub fn instr_result(&self, b: BlockId, idx: usize) -> Option<ValueId> {
        self.results[b.index()]
            .instr_results
            .get(idx)
            .copied()
            .flatten()
    }

    /// The result value of phi `idx` in block `b`.
    ///
    /// # Panics
    ///
    /// Panics if the phi does not exist.
    pub fn phi_result(&self, b: BlockId, idx: usize) -> ValueId {
        self.results[b.index()].phi_results[idx]
    }

    /// All values defined in block `b`, phis first, then instruction
    /// results in order; for the entry block, pre-loads come first.
    pub fn block_values(&self, b: BlockId) -> Vec<ValueId> {
        let mut out = Vec::new();
        if b == ENTRY {
            out.extend((0..self.params.len()).map(|i| ValueId(i as u32)));
            out.extend(self.const_values.iter().copied());
        }
        out.extend(self.results[b.index()].phi_results.iter().copied());
        out.extend(
            self.results[b.index()]
                .instr_results
                .iter()
                .copied()
                .flatten(),
        );
        out
    }

    /// Recomputes the `results` caches and value `def`/`block` fields
    /// from `blocks` — used after optimization passes that rebuild
    /// blocks wholesale.
    ///
    /// `value_of` must map each (block, phi index) and (block, instr
    /// index) to the pre-existing value ids. Most passes instead
    /// construct a fresh `Function`; this helper is for in-place edits
    /// that only *remove* instructions.
    pub fn rebuild_results(&mut self) {
        // Re-derive def sites from the value table by scanning.
        for r in &mut self.results {
            r.phi_results.clear();
            r.instr_results.clear();
        }
        let mut by_site: std::collections::HashMap<(BlockId, bool, u32), ValueId> =
            std::collections::HashMap::new();
        for (i, v) in self.values.iter().enumerate() {
            match v.def {
                Def::Phi(b, k) => {
                    by_site.insert((b, true, k), ValueId(i as u32));
                }
                Def::Instr(b, k) => {
                    by_site.insert((b, false, k), ValueId(i as u32));
                }
                _ => {}
            }
        }
        for (bi, block) in self.blocks.iter().enumerate() {
            let b = BlockId(bi as u32);
            let res = &mut self.results[bi];
            for k in 0..block.phis.len() {
                res.phi_results.push(by_site[&(b, true, k as u32)]);
            }
            for k in 0..block.instrs.len() {
                res.instr_results
                    .push(by_site.get(&(b, false, k as u32)).copied());
            }
        }
    }

    /// Total number of instructions (excluding phis).
    pub fn instr_count(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }

    /// Total number of phi nodes.
    pub fn phi_count(&self) -> usize {
        self.blocks.iter().map(|b| b.phis.len()).sum()
    }

    /// Counts instructions for which `pred` holds.
    pub fn count_instrs(&self, mut pred: impl FnMut(&Instr) -> bool) -> usize {
        self.blocks
            .iter()
            .flat_map(|b| b.instrs.iter())
            .filter(|i| pred(i))
            .count()
    }
}

impl ValueCtx for Function {
    fn value_ty(&self, v: ValueId) -> TypeId {
        self.values[v.index()].ty
    }

    fn value_provenance(&self, v: ValueId) -> Option<ValueId> {
        self.values[v.index()].provenance
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primops;
    use crate::types::PrimKind;
    use crate::value::Literal;

    fn int_add(types: &TypeTable) -> (TypeId, crate::primops::PrimOpId) {
        (
            types.prim(PrimKind::Int),
            primops::find(PrimKind::Int, "add").unwrap(),
        )
    }

    #[test]
    fn params_are_preloaded() {
        let types = TypeTable::new();
        let int = types.prim(PrimKind::Int);
        let f = Function::new("f", None, vec![int, int], Some(int));
        assert_eq!(f.param_value(0), ValueId(0));
        assert_eq!(f.param_value(1), ValueId(1));
        assert_eq!(f.value_ty(ValueId(0)), int);
        assert_eq!(f.value(ValueId(1)).def, Def::Param(1));
        assert_eq!(f.preload_count(), 2);
    }

    #[test]
    fn consts_dedupe() {
        let types = TypeTable::new();
        let int = types.prim(PrimKind::Int);
        let mut f = Function::new("f", None, vec![], None);
        let a = f.add_const(Const {
            ty: int,
            lit: Literal::Int(7),
        });
        let b = f.add_const(Const {
            ty: int,
            lit: Literal::Int(7),
        });
        let c = f.add_const(Const {
            ty: int,
            lit: Literal::Int(8),
        });
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(f.consts.len(), 2);
    }

    #[test]
    fn add_instr_assigns_result_plane() {
        let mut types = TypeTable::new();
        let int = types.prim(PrimKind::Int);
        let mut f = Function::new("f", None, vec![int, int], Some(int));
        let (ty, op) = int_add(&types);
        let r = f
            .add_instr(
                &mut types,
                ENTRY,
                Instr::Primitive {
                    ty,
                    op,
                    args: vec![f.param_value(0), f.param_value(1)],
                },
            )
            .unwrap()
            .unwrap();
        assert_eq!(f.value_ty(r), int);
        assert_eq!(f.value(r).def, Def::Instr(ENTRY, 0));
        assert_eq!(f.instr_result(ENTRY, 0), Some(r));
    }

    #[test]
    fn add_instr_rejects_bad_planes() {
        let mut types = TypeTable::new();
        let int = types.prim(PrimKind::Int);
        let dbl = types.prim(PrimKind::Double);
        let mut f = Function::new("f", None, vec![int, dbl], None);
        let (ty, op) = int_add(&types);
        let err = f
            .add_instr(
                &mut types,
                ENTRY,
                Instr::Primitive {
                    ty,
                    op,
                    args: vec![f.param_value(0), f.param_value(1)],
                },
            )
            .unwrap_err();
        assert!(matches!(err, TypeError::PlaneMismatch { .. }));
        assert_eq!(f.instr_count(), 0, "function unchanged after error");
    }

    #[test]
    fn block_values_order() {
        let mut types = TypeTable::new();
        let int = types.prim(PrimKind::Int);
        let mut f = Function::new("f", None, vec![int], None);
        let c = f.add_const(Const {
            ty: int,
            lit: Literal::Int(1),
        });
        let (ty, op) = int_add(&types);
        let r = f
            .add_instr(
                &mut types,
                ENTRY,
                Instr::Primitive {
                    ty,
                    op,
                    args: vec![f.param_value(0), c],
                },
            )
            .unwrap()
            .unwrap();
        assert_eq!(f.block_values(ENTRY), vec![f.param_value(0), c, r]);
    }

    #[test]
    fn phis_precede_instrs_in_block_values() {
        let mut types = TypeTable::new();
        let int = types.prim(PrimKind::Int);
        let mut f = Function::new("f", None, vec![int], None);
        let b = f.add_block();
        let p = f.add_phi(b, int);
        let (ty, op) = int_add(&types);
        let r = f
            .add_instr(
                &mut types,
                b,
                Instr::Primitive {
                    ty,
                    op,
                    args: vec![p, p],
                },
            )
            .unwrap()
            .unwrap();
        assert_eq!(f.block_values(b), vec![p, r]);
        assert_eq!(f.phi_count(), 1);
    }

    #[test]
    fn indexcheck_sets_provenance() {
        let mut types = TypeTable::new();
        let int = types.prim(PrimKind::Int);
        let arr = types.array_of(int);
        let safe_arr = types.safe_ref_of(arr);
        let mut f = Function::new("f", None, vec![safe_arr, int], None);
        let r = f
            .add_instr(
                &mut types,
                ENTRY,
                Instr::IndexCheck {
                    arr_ty: arr,
                    array: f.param_value(0),
                    index: f.param_value(1),
                },
            )
            .unwrap()
            .unwrap();
        assert_eq!(f.value(r).provenance, Some(f.param_value(0)));
        let elem = f
            .add_instr(
                &mut types,
                ENTRY,
                Instr::GetElt {
                    arr_ty: arr,
                    array: f.param_value(0),
                    index: r,
                },
            )
            .unwrap()
            .unwrap();
        assert_eq!(f.value_ty(elem), int);
    }

    #[test]
    fn getelt_wrong_provenance_rejected() {
        let mut types = TypeTable::new();
        let int = types.prim(PrimKind::Int);
        let arr = types.array_of(int);
        let safe_arr = types.safe_ref_of(arr);
        let mut f = Function::new("f", None, vec![safe_arr, safe_arr, int], None);
        let idx = f
            .add_instr(
                &mut types,
                ENTRY,
                Instr::IndexCheck {
                    arr_ty: arr,
                    array: f.param_value(0),
                    index: f.param_value(2),
                },
            )
            .unwrap()
            .unwrap();
        // Using the index checked against array 0 with array 1 must fail.
        let err = f
            .add_instr(
                &mut types,
                ENTRY,
                Instr::GetElt {
                    arr_ty: arr,
                    array: f.param_value(1),
                    index: idx,
                },
            )
            .unwrap_err();
        assert!(matches!(err, TypeError::ProvenanceMismatch { .. }));
    }
}
