//! # safetsa-core
//!
//! The SafeTSA intermediate representation: a type-safe, referentially
//! secure mobile-code format based on static single assignment form,
//! reproducing the system of Amme, Dalton, von Ronne & Franz (PLDI
//! 2001).
//!
//! The crate provides:
//!
//! * the type table and register-plane universe ([`types`], §3),
//! * the primitive-operation machine model ([`primops`], §5),
//! * SSA values, instructions and phis ([`value`], [`instr`]),
//! * the Control Structure Tree ([`cst`], §7) with CFG and dominator
//!   derivation ([`mod@cfg`], [`dom`], §2),
//! * the typing rules of type separation ([`typing`], §3–§4),
//! * function/module containers ([`function`], [`module`]),
//! * the verifier ([`verify`]) — linear-time, no dataflow analysis,
//! * the paper's textual program views ([`pretty`], Figures 1–4, 7–9).
//!
//! The wire format lives in `safetsa-codec`; SSA construction from Java
//! sources in `safetsa-ssa`; producer-side optimization in
//! `safetsa-opt`; execution in `safetsa-vm`.
//!
//! # Examples
//!
//! Building and verifying `f(a, b) = a + b` by hand:
//!
//! ```
//! use safetsa_core::cst::Cst;
//! use safetsa_core::function::{Function, ENTRY};
//! use safetsa_core::instr::Instr;
//! use safetsa_core::primops;
//! use safetsa_core::types::{ClassInfo, PrimKind, TypeTable};
//! use safetsa_core::verify::verify_function;
//!
//! let mut types = TypeTable::new();
//! let (throwable, _) = types.declare_class(ClassInfo {
//!     name: "Throwable".into(),
//!     superclass: None,
//!     fields: vec![],
//!     methods: vec![],
//!     imported: true,
//! });
//! let int = types.prim(PrimKind::Int);
//! let mut f = Function::new("add", None, vec![int, int], Some(int));
//! let add = primops::find(PrimKind::Int, "add").unwrap();
//! let sum = f
//!     .add_instr(&mut types, ENTRY, Instr::Primitive {
//!         ty: int,
//!         op: add,
//!         args: vec![f.param_value(0), f.param_value(1)],
//!     })?
//!     .unwrap();
//! f.body = Cst::Seq(vec![Cst::Basic(ENTRY), Cst::Return(Some(sum))]);
//! verify_function(&types, throwable, &f)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod cfg;
pub mod cst;
pub mod dom;
pub mod function;
pub mod instr;
pub mod module;
pub mod pretty;
pub mod primops;
pub mod rewrite;
pub mod types;
pub mod typing;
pub mod value;
pub mod verify;

pub use function::Function;
pub use module::Module;
pub use types::TypeTable;
