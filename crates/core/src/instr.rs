//! The SafeTSA instruction set.
//!
//! Every instruction implicitly selects the register planes of its
//! operands and of its result from its opcode and type parameters (§3);
//! the operand fields only carry register *numbers* on those planes.
//! The result register is always the next free register on the result
//! plane of the current block, so results are never named explicitly.

use crate::primops::PrimOpId;
use crate::types::{FieldRef, MethodRef, TypeId};
use crate::value::ValueId;

/// One SafeTSA instruction.
///
/// Operands are absolute [`ValueId`]s in memory; the encoder turns them
/// into dominator-relative `(l, r)` pairs on the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `primitive base-type operation operand…` (§5). Never traps.
    Primitive {
        /// Base primitive type (a `Prim` plane).
        ty: TypeId,
        /// Operation within that type's table.
        op: PrimOpId,
        /// Operands on the planes dictated by the operation signature.
        args: Vec<ValueId>,
    },
    /// `xprimitive base-type operation operand…` (§5). May trap; adds an
    /// incoming exception edge when inside a `try` region.
    XPrimitive {
        /// Base primitive type.
        ty: TypeId,
        /// Operation within that type's table (must be exceptional).
        op: PrimOpId,
        /// Operands.
        args: Vec<ValueId>,
    },
    /// Null check (§4): coerces a `ref` value onto the `safe-ref` plane,
    /// trapping if it is `null`.
    NullCheck {
        /// The unsafe reference type being checked.
        ty: TypeId,
        /// Operand on the `ty` plane.
        value: ValueId,
    },
    /// Index check (§4): coerces an `int` onto the `safe-index` plane of
    /// `array`'s type, trapping if out of bounds. The resulting value is
    /// bound to the particular `array` value (Appendix A).
    IndexCheck {
        /// The array type whose safe-index plane receives the result.
        arr_ty: TypeId,
        /// The array, on the `safe-ref(arr_ty)` plane.
        array: ValueId,
        /// The candidate index, on the `int` plane.
        index: ValueId,
    },
    /// Dynamically checked cast (§4 "upcast"): traps if the value's
    /// runtime type is not assignable to `to`.
    Upcast {
        /// Static plane of the operand.
        from: TypeId,
        /// Target reference plane.
        to: TypeId,
        /// Operand on the `from` plane.
        value: ValueId,
    },
    /// Statically safe cast (§4 "downcast"): e.g. `safe-ref → ref` or
    /// `ref → superclass ref`. Generates no target-machine code; the
    /// verifier insists the cast is provably safe.
    Downcast {
        /// Static plane of the operand.
        from: TypeId,
        /// Target plane, which `from` must be statically assignable to.
        to: TypeId,
        /// Operand on the `from` plane.
        value: ValueId,
    },
    /// `getfield ref-type object field` (§4).
    GetField {
        /// Declared reference type of the object.
        ty: TypeId,
        /// Object on the `safe-ref(ty)` plane.
        object: ValueId,
        /// Symbolic member reference.
        field: FieldRef,
    },
    /// `setfield ref-type object field value` (§4).
    SetField {
        /// Declared reference type of the object.
        ty: TypeId,
        /// Object on the `safe-ref(ty)` plane.
        object: ValueId,
        /// Symbolic member reference.
        field: FieldRef,
        /// Value on the field's plane.
        value: ValueId,
    },
    /// Static-field read; the storage designator is the class itself, so
    /// no null check is involved.
    GetStatic {
        /// Symbolic member reference (the class is `field.class`).
        field: FieldRef,
    },
    /// Static-field write.
    SetStatic {
        /// Symbolic member reference.
        field: FieldRef,
        /// Value on the field's plane.
        value: ValueId,
    },
    /// `getelt array-type object index` (§4).
    GetElt {
        /// The array type.
        arr_ty: TypeId,
        /// Array on the `safe-ref(arr_ty)` plane.
        array: ValueId,
        /// Index on the `safe-index(arr_ty)` plane, bound to `array`.
        index: ValueId,
    },
    /// `setelt array-type object index value` (§4).
    SetElt {
        /// The array type.
        arr_ty: TypeId,
        /// Array on the `safe-ref(arr_ty)` plane.
        array: ValueId,
        /// Index on the `safe-index(arr_ty)` plane, bound to `array`.
        index: ValueId,
        /// Value on the element plane.
        value: ValueId,
    },
    /// Reads an array's length onto the `int` plane.
    ArrayLength {
        /// The array type.
        arr_ty: TypeId,
        /// Array on the `safe-ref(arr_ty)` plane.
        array: ValueId,
    },
    /// Allocates an instance of a class; result on the class's
    /// `safe-ref` plane — a fresh allocation is never null (fields
    /// zero-initialized, constructor called separately).
    New {
        /// The class reference plane.
        class_ty: TypeId,
    },
    /// Allocates an array; traps on negative length. Result on the
    /// array type's `safe-ref` plane (never null).
    NewArray {
        /// The array type.
        arr_ty: TypeId,
        /// Length on the `int` plane.
        length: ValueId,
    },
    /// `xcall base-type receiver method operand…` (§6): statically bound
    /// invocation (static methods, constructors, `super` calls).
    XCall {
        /// Static type of the receiver (ignored for static methods).
        base_ty: TypeId,
        /// Symbolic method reference.
        method: MethodRef,
        /// Receiver on the `safe-ref(base_ty)` plane; `None` for statics.
        receiver: Option<ValueId>,
        /// Arguments on the parameter planes.
        args: Vec<ValueId>,
    },
    /// `xdispatch base-type receiver method operand…` (§6): dynamic
    /// dispatch through the vtable slot determined by the static type.
    XDispatch {
        /// Static type of the receiver.
        base_ty: TypeId,
        /// Symbolic method reference (must be virtual).
        method: MethodRef,
        /// Receiver on the `safe-ref(base_ty)` plane.
        receiver: ValueId,
        /// Arguments on the parameter planes.
        args: Vec<ValueId>,
    },
    /// Reference identity comparison (`==` on references, including
    /// `null` tests); both operands on the same plane, result on the
    /// `boolean` plane. Reference planes are type-separated, so this
    /// cannot be expressed as a primitive operation.
    RefEq {
        /// The common reference plane of both operands.
        ty: TypeId,
        /// Left operand.
        a: ValueId,
        /// Right operand.
        b: ValueId,
    },
    /// Runtime type test; result on the `boolean` plane.
    InstanceOf {
        /// Static plane of the operand (a `ref` or `safe-ref` plane).
        from: TypeId,
        /// The reference type tested against.
        target: TypeId,
        /// Operand.
        value: ValueId,
    },
    /// Materializes the in-flight exception at the entry of a handler
    /// block; result on the plane of the root throwable class.
    Catch {
        /// The throwable reference plane.
        ty: TypeId,
    },
}

impl Instr {
    /// Whether this instruction can raise an exception and therefore
    /// contributes an exception edge when it occurs inside a `try`
    /// region (§7: "at any point where an exception may occur").
    pub fn is_exceptional(&self) -> bool {
        matches!(
            self,
            Instr::XPrimitive { .. }
                | Instr::NullCheck { .. }
                | Instr::IndexCheck { .. }
                | Instr::Upcast { .. }
                | Instr::NewArray { .. }
                | Instr::XCall { .. }
                | Instr::XDispatch { .. }
        )
    }

    /// Whether this instruction reads or writes the heap (used by the
    /// optimizer's `Mem` dependence machinery, §8).
    pub fn touches_memory(&self) -> bool {
        matches!(
            self,
            Instr::GetField { .. }
                | Instr::SetField { .. }
                | Instr::GetStatic { .. }
                | Instr::SetStatic { .. }
                | Instr::GetElt { .. }
                | Instr::SetElt { .. }
                | Instr::XCall { .. }
                | Instr::XDispatch { .. }
        )
    }

    /// Whether the instruction may *write* memory (defines a new `Mem`).
    pub fn writes_memory(&self) -> bool {
        matches!(
            self,
            Instr::SetField { .. }
                | Instr::SetStatic { .. }
                | Instr::SetElt { .. }
                | Instr::XCall { .. }
                | Instr::XDispatch { .. }
        )
    }

    /// Iterates over the operand values, in signature order.
    pub fn operands(&self) -> Vec<ValueId> {
        match self {
            Instr::Primitive { args, .. } | Instr::XPrimitive { args, .. } => args.clone(),
            Instr::NullCheck { value, .. }
            | Instr::Upcast { value, .. }
            | Instr::Downcast { value, .. }
            | Instr::InstanceOf { value, .. }
            | Instr::SetStatic { value, .. } => vec![*value],
            Instr::IndexCheck { array, index, .. } => vec![*array, *index],
            Instr::RefEq { a, b, .. } => vec![*a, *b],
            Instr::GetField { object, .. } => vec![*object],
            Instr::SetField { object, value, .. } => vec![*object, *value],
            Instr::GetStatic { .. } | Instr::New { .. } | Instr::Catch { .. } => vec![],
            Instr::GetElt { array, index, .. } => vec![*array, *index],
            Instr::SetElt {
                array,
                index,
                value,
                ..
            } => vec![*array, *index, *value],
            Instr::ArrayLength { array, .. } => vec![*array],
            Instr::NewArray { length, .. } => vec![*length],
            Instr::XCall { receiver, args, .. } => {
                let mut v: Vec<ValueId> = receiver.iter().copied().collect();
                v.extend_from_slice(args);
                v
            }
            Instr::XDispatch { receiver, args, .. } => {
                let mut v = vec![*receiver];
                v.extend_from_slice(args);
                v
            }
        }
    }

    /// Rewrites every operand through `f` (used by optimization passes).
    pub fn map_operands(&mut self, mut f: impl FnMut(ValueId) -> ValueId) {
        match self {
            Instr::Primitive { args, .. } | Instr::XPrimitive { args, .. } => {
                for a in args {
                    *a = f(*a);
                }
            }
            Instr::NullCheck { value, .. }
            | Instr::Upcast { value, .. }
            | Instr::Downcast { value, .. }
            | Instr::InstanceOf { value, .. }
            | Instr::SetStatic { value, .. } => *value = f(*value),
            Instr::IndexCheck { array, index, .. } => {
                *array = f(*array);
                *index = f(*index);
            }
            Instr::RefEq { a, b, .. } => {
                *a = f(*a);
                *b = f(*b);
            }
            Instr::GetField { object, .. } => *object = f(*object),
            Instr::SetField { object, value, .. } => {
                *object = f(*object);
                *value = f(*value);
            }
            Instr::GetStatic { .. } | Instr::New { .. } | Instr::Catch { .. } => {}
            Instr::GetElt { array, index, .. } => {
                *array = f(*array);
                *index = f(*index);
            }
            Instr::SetElt {
                array,
                index,
                value,
                ..
            } => {
                *array = f(*array);
                *index = f(*index);
                *value = f(*value);
            }
            Instr::ArrayLength { array, .. } => *array = f(*array),
            Instr::NewArray { length, .. } => *length = f(*length),
            Instr::XCall { receiver, args, .. } => {
                if let Some(r) = receiver {
                    *r = f(*r);
                }
                for a in args {
                    *a = f(*a);
                }
            }
            Instr::XDispatch { receiver, args, .. } => {
                *receiver = f(*receiver);
                for a in args {
                    *a = f(*a);
                }
            }
        }
    }

    /// A short mnemonic for statistics and pretty printing.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Instr::Primitive { .. } => "primitive",
            Instr::XPrimitive { .. } => "xprimitive",
            Instr::NullCheck { .. } => "nullcheck",
            Instr::IndexCheck { .. } => "indexcheck",
            Instr::Upcast { .. } => "upcast",
            Instr::Downcast { .. } => "downcast",
            Instr::GetField { .. } => "getfield",
            Instr::SetField { .. } => "setfield",
            Instr::GetStatic { .. } => "getstatic",
            Instr::SetStatic { .. } => "setstatic",
            Instr::GetElt { .. } => "getelt",
            Instr::SetElt { .. } => "setelt",
            Instr::ArrayLength { .. } => "arraylength",
            Instr::New { .. } => "new",
            Instr::NewArray { .. } => "newarray",
            Instr::XCall { .. } => "xcall",
            Instr::XDispatch { .. } => "xdispatch",
            Instr::RefEq { .. } => "refeq",
            Instr::InstanceOf { .. } => "instanceof",
            Instr::Catch { .. } => "catch",
        }
    }
}

/// A phi node. Phis are strictly type-separated: all operands and the
/// result live on the same plane (§4).
#[derive(Debug, Clone, PartialEq)]
pub struct Phi {
    /// The plane of the phi and all of its operands.
    pub ty: TypeId,
    /// One operand per incoming CFG edge, keyed by predecessor block.
    /// The encoder linearizes these into the canonical edge order of the
    /// join block.
    pub args: Vec<(crate::value::BlockId, ValueId)>,
}

impl Phi {
    /// The operand arriving from `pred`, if any.
    pub fn arg_from(&self, pred: crate::value::BlockId) -> Option<ValueId> {
        self.args.iter().find(|(b, _)| *b == pred).map(|(_, v)| *v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ClassId;

    #[test]
    fn exceptional_classification() {
        let nc = Instr::NullCheck {
            ty: TypeId(0),
            value: ValueId(0),
        };
        assert!(nc.is_exceptional());
        let prim = Instr::Primitive {
            ty: TypeId(2),
            op: PrimOpId(0),
            args: vec![ValueId(0), ValueId(1)],
        };
        assert!(!prim.is_exceptional());
        let xprim = Instr::XPrimitive {
            ty: TypeId(2),
            op: PrimOpId(3),
            args: vec![ValueId(0), ValueId(1)],
        };
        assert!(xprim.is_exceptional());
    }

    #[test]
    fn operand_listing_and_mapping() {
        let mut i = Instr::SetElt {
            arr_ty: TypeId(9),
            array: ValueId(1),
            index: ValueId(2),
            value: ValueId(3),
        };
        assert_eq!(i.operands(), vec![ValueId(1), ValueId(2), ValueId(3)]);
        i.map_operands(|v| ValueId(v.0 + 10));
        assert_eq!(i.operands(), vec![ValueId(11), ValueId(12), ValueId(13)]);
    }

    #[test]
    fn call_operands_include_receiver() {
        let call = Instr::XCall {
            base_ty: TypeId(7),
            method: MethodRef {
                class: ClassId(0),
                index: 0,
            },
            receiver: Some(ValueId(5)),
            args: vec![ValueId(6)],
        };
        assert_eq!(call.operands(), vec![ValueId(5), ValueId(6)]);
        let stat = Instr::XCall {
            base_ty: TypeId(7),
            method: MethodRef {
                class: ClassId(0),
                index: 0,
            },
            receiver: None,
            args: vec![ValueId(6)],
        };
        assert_eq!(stat.operands(), vec![ValueId(6)]);
    }

    #[test]
    fn memory_classification() {
        let gf = Instr::GetField {
            ty: TypeId(8),
            object: ValueId(0),
            field: FieldRef {
                class: ClassId(0),
                index: 0,
            },
        };
        assert!(gf.touches_memory());
        assert!(!gf.writes_memory());
        let sf = Instr::SetField {
            ty: TypeId(8),
            object: ValueId(0),
            field: FieldRef {
                class: ClassId(0),
                index: 0,
            },
            value: ValueId(1),
        };
        assert!(sf.writes_memory());
    }
}
