//! Control-flow graph derivation from the Control Structure Tree.
//!
//! The CFG is never transmitted: both producer and consumer derive it
//! deterministically from the CST (§7), including the canonical
//! ordering of each join block's incoming edges — which is what gives
//! phi operands their positional meaning ("the n-th argument of the phi
//! function corresponds to the n-th incoming branch", §2).
//!
//! Exception edges: every exceptional instruction inside a `try` region
//! adds an edge from its block to the innermost handler entry; the edge
//! records how many instruction results of the source block are visible
//! along it (§7's sub-block splitting expressed as an edge attribute).

use crate::cst::Cst;
use crate::function::{Function, ENTRY};
use crate::value::BlockId;
use std::fmt;

/// How control reaches a block along one edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Ordinary control transfer (fall-through, branch, back edge,
    /// break, continue).
    Normal,
    /// Exceptional transfer raised by instruction `upto` of the source
    /// block (or by a `throw` terminator when `upto` equals the
    /// instruction count). Exactly the first `upto` instruction results
    /// of the source block are visible along this edge.
    Exception {
        /// Number of leading instruction results visible on this edge.
        upto: u32,
    },
}

/// One incoming CFG edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Source block.
    pub from: BlockId,
    /// Kind of transfer.
    pub kind: EdgeKind,
}

/// A structural error found while deriving the CFG.
#[derive(Debug, Clone, PartialEq)]
pub enum CfgError {
    /// `Break(n)` with fewer than `n + 1` enclosing labeled regions.
    BadBreakDepth(u32),
    /// `Continue(n)` with fewer than `n + 1` enclosing loops.
    BadContinueDepth(u32),
    /// A block id out of range for the function.
    BadBlock(BlockId),
    /// The first executed block must be the entry block (pre-loads live
    /// there).
    EntryNotFirst,
    /// The same block appears at two different CST positions.
    DuplicateBlock(BlockId),
}

impl fmt::Display for CfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfgError::BadBreakDepth(n) => write!(f, "break depth {n} exceeds labeled nesting"),
            CfgError::BadContinueDepth(n) => {
                write!(f, "continue depth {n} exceeds loop nesting")
            }
            CfgError::BadBlock(b) => write!(f, "block {b} out of range"),
            CfgError::EntryNotFirst => write!(f, "entry block is not the first executed block"),
            CfgError::DuplicateBlock(b) => write!(f, "block {b} used twice in the CST"),
        }
    }
}

impl std::error::Error for CfgError {}

/// The control-flow graph derived from a function's CST.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Incoming edges per block, in canonical order.
    pub preds: Vec<Vec<Edge>>,
    /// Successor block ids per block (derived, unordered semantics).
    pub succs: Vec<Vec<BlockId>>,
    /// Whether each block is reachable from the entry.
    pub reachable: Vec<bool>,
    /// Blocks in the deterministic traversal order the CST visits them.
    pub traversal: Vec<BlockId>,
    /// `(branching block, condition value)` for every reachable `If`.
    pub cond_uses: Vec<(BlockId, crate::value::ValueId)>,
    /// `(returning block, value)` for every reachable `Return`.
    pub return_uses: Vec<(BlockId, Option<crate::value::ValueId>)>,
    /// `(throwing block, value)` for every reachable `Throw`.
    pub throw_uses: Vec<(BlockId, crate::value::ValueId)>,
    /// Whether control can fall off the end of the function body.
    pub falls_through: bool,
}

impl Cfg {
    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Whether the CFG has no blocks (never true for a built CFG).
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// The canonical incoming edges of `b`.
    pub fn preds_of(&self, b: BlockId) -> &[Edge] {
        &self.preds[b.index()]
    }

    /// Derives the CFG of `f`.
    ///
    /// # Errors
    ///
    /// Returns a [`CfgError`] if the CST is structurally malformed.
    pub fn build(f: &Function) -> Result<Cfg, CfgError> {
        let n = f.block_count();
        let mut b = Builder {
            f,
            preds: vec![Vec::new(); n],
            labels: Vec::new(),
            loops: Vec::new(),
            handlers: Vec::new(),
            seen: vec![false; n],
            traversal: Vec::new(),
            first: true,
            cond_uses: Vec::new(),
            return_uses: Vec::new(),
            throw_uses: Vec::new(),
        };
        let final_frontier = b.walk(&f.body, Frontier::Start)?;
        let falls_through = !matches!(final_frontier, Frontier::Dead);
        let b2 = (b.cond_uses, b.return_uses, b.throw_uses);
        let preds = b.preds;
        let traversal = b.traversal;
        let mut succs = vec![Vec::new(); n];
        for (to, edges) in preds.iter().enumerate() {
            for e in edges {
                succs[e.from.index()].push(BlockId(to as u32));
            }
        }
        // Reachability from the entry block.
        let mut reachable = vec![false; n];
        if n > 0 {
            let mut stack = vec![ENTRY];
            reachable[ENTRY.index()] = true;
            while let Some(x) = stack.pop() {
                for &s in &succs[x.index()] {
                    if !reachable[s.index()] {
                        reachable[s.index()] = true;
                        stack.push(s);
                    }
                }
            }
        }
        Ok(Cfg {
            preds,
            succs,
            reachable,
            traversal,
            cond_uses: b2.0,
            return_uses: b2.1,
            throw_uses: b2.2,
            falls_through,
        })
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Frontier {
    /// Function entry: the next executed block must be `ENTRY`.
    Start,
    /// Control falls through from this block.
    At(BlockId),
    /// Control cannot reach this point.
    Dead,
}

struct Builder<'a> {
    f: &'a Function,
    preds: Vec<Vec<Edge>>,
    labels: Vec<BlockId>,
    loops: Vec<BlockId>,
    handlers: Vec<BlockId>,
    seen: Vec<bool>,
    traversal: Vec<BlockId>,
    first: bool,
    cond_uses: Vec<(BlockId, crate::value::ValueId)>,
    return_uses: Vec<(BlockId, Option<crate::value::ValueId>)>,
    throw_uses: Vec<(BlockId, crate::value::ValueId)>,
}

impl<'a> Builder<'a> {
    fn check_block(&mut self, b: BlockId) -> Result<(), CfgError> {
        if b.index() >= self.preds.len() {
            return Err(CfgError::BadBlock(b));
        }
        if self.seen[b.index()] {
            return Err(CfgError::DuplicateBlock(b));
        }
        self.seen[b.index()] = true;
        self.traversal.push(b);
        Ok(())
    }

    fn edge(&mut self, from: BlockId, to: BlockId, kind: EdgeKind) {
        self.preds[to.index()].push(Edge { from, kind });
    }

    /// Connects `frontier` to `to`; returns whether `to` is live.
    fn connect(&mut self, frontier: Frontier, to: BlockId) -> Result<bool, CfgError> {
        match frontier {
            Frontier::Start => {
                if to != ENTRY {
                    return Err(CfgError::EntryNotFirst);
                }
                self.first = false;
                Ok(true)
            }
            Frontier::At(from) => {
                self.edge(from, to, EdgeKind::Normal);
                Ok(true)
            }
            Frontier::Dead => Ok(false),
        }
    }

    /// Adds the exception edges of block `b` to the innermost handler.
    fn exception_edges(&mut self, b: BlockId) {
        if let Some(&h) = self.handlers.last() {
            let instrs = &self.f.block(b).instrs;
            for (k, i) in instrs.iter().enumerate() {
                if i.is_exceptional() {
                    self.edge(b, h, EdgeKind::Exception { upto: k as u32 });
                }
            }
        }
    }

    fn walk(&mut self, cst: &Cst, frontier: Frontier) -> Result<Frontier, CfgError> {
        match cst {
            Cst::Basic(b) => {
                self.check_block(*b)?;
                let live = self.connect(frontier, *b)?;
                if live {
                    self.exception_edges(*b);
                    Ok(Frontier::At(*b))
                } else {
                    Ok(Frontier::Dead)
                }
            }
            Cst::Seq(items) => {
                let mut fr = frontier;
                for c in items {
                    fr = self.walk(c, fr)?;
                }
                Ok(fr)
            }
            Cst::If {
                cond,
                then_br,
                else_br,
                join,
            } => {
                self.check_block(*join)?;
                if let Frontier::At(b) = frontier {
                    self.cond_uses.push((b, *cond));
                }
                let t = self.walk(then_br, frontier)?;
                if let Frontier::At(b) = t {
                    self.edge(b, *join, EdgeKind::Normal);
                }
                let e = self.walk(else_br, frontier)?;
                if let Frontier::At(b) = e {
                    self.edge(b, *join, EdgeKind::Normal);
                }
                let join_dead =
                    self.preds[join.index()].is_empty() && !matches!(frontier, Frontier::Start);
                if join_dead || matches!(frontier, Frontier::Dead) {
                    Ok(Frontier::Dead)
                } else {
                    // Control continues in the join block; code placed
                    // there can raise too.
                    self.exception_edges(*join);
                    Ok(Frontier::At(*join))
                }
            }
            Cst::Loop { header, body } => {
                self.check_block(*header)?;
                let live = self.connect(frontier, *header)?;
                if live {
                    self.exception_edges(*header);
                }
                self.loops.push(*header);
                let body_fr = self.walk(
                    body,
                    if live {
                        Frontier::At(*header)
                    } else {
                        Frontier::Dead
                    },
                )?;
                self.loops.pop();
                if let Frontier::At(b) = body_fr {
                    self.edge(b, *header, EdgeKind::Normal);
                }
                // A loop only exits through break/return/throw.
                Ok(Frontier::Dead)
            }
            Cst::Labeled { body, join } => {
                self.check_block(*join)?;
                self.labels.push(*join);
                let fr = self.walk(body, frontier)?;
                self.labels.pop();
                if let Frontier::At(b) = fr {
                    self.edge(b, *join, EdgeKind::Normal);
                }
                if self.preds[join.index()].is_empty() {
                    Ok(Frontier::Dead)
                } else {
                    self.exception_edges(*join);
                    Ok(Frontier::At(*join))
                }
            }
            Cst::Break(n) => {
                if let Frontier::At(b) = frontier {
                    let depth = self.labels.len();
                    let target = depth
                        .checked_sub(1 + *n as usize)
                        .map(|i| self.labels[i])
                        .ok_or(CfgError::BadBreakDepth(*n))?;
                    self.edge(b, target, EdgeKind::Normal);
                }
                Ok(Frontier::Dead)
            }
            Cst::Continue(n) => {
                if let Frontier::At(b) = frontier {
                    let depth = self.loops.len();
                    let target = depth
                        .checked_sub(1 + *n as usize)
                        .map(|i| self.loops[i])
                        .ok_or(CfgError::BadContinueDepth(*n))?;
                    self.edge(b, target, EdgeKind::Normal);
                }
                Ok(Frontier::Dead)
            }
            Cst::Return(v) => {
                if let Frontier::At(b) = frontier {
                    self.return_uses.push((b, *v));
                }
                Ok(Frontier::Dead)
            }
            Cst::Throw(v) => {
                // A throw inside a try region is caught by the innermost
                // handler; all instruction results of the block are
                // visible along the edge.
                if let Frontier::At(b) = frontier {
                    self.throw_uses.push((b, *v));
                    if let Some(&h) = self.handlers.last() {
                        let upto = self.f.block(b).instrs.len() as u32;
                        self.edge(b, h, EdgeKind::Exception { upto });
                    }
                }
                Ok(Frontier::Dead)
            }
            Cst::Try {
                body,
                handler_entry,
                handler,
                join,
            } => {
                // The handler and join are traversed *after* the body, so
                // a streaming decoder knows every exception edge into the
                // handler before the handler's own blocks arrive.
                self.handlers.push(*handler_entry);
                let body_fr = self.walk(body, frontier)?;
                self.handlers.pop();
                self.check_block(*handler_entry)?;
                if let Frontier::At(b) = body_fr {
                    self.edge(b, *join, EdgeKind::Normal);
                }
                let handler_live = !self.preds[handler_entry.index()].is_empty();
                if handler_live {
                    self.exception_edges(*handler_entry);
                }
                let h_fr = self.walk(
                    handler,
                    if handler_live {
                        Frontier::At(*handler_entry)
                    } else {
                        Frontier::Dead
                    },
                )?;
                self.check_block(*join)?;
                if let Frontier::At(b) = h_fr {
                    self.edge(b, *join, EdgeKind::Normal);
                }
                if self.preds[join.index()].is_empty() {
                    Ok(Frontier::Dead)
                } else {
                    self.exception_edges(*join);
                    Ok(Frontier::At(*join))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{PrimKind, TypeTable};
    use crate::value::ValueId;

    fn two_block_if() -> (Function, TypeTable) {
        let types = TypeTable::new();
        let b = types.prim(PrimKind::Bool);
        let mut f = Function::new("t", None, vec![b], None);
        let then_b = f.add_block();
        let join = f.add_block();
        f.body = Cst::Seq(vec![
            Cst::Basic(ENTRY),
            Cst::If {
                cond: ValueId(0),
                then_br: Box::new(Cst::Basic(then_b)),
                else_br: Box::new(Cst::empty()),
                join,
            },
        ]);
        (f, types)
    }

    #[test]
    fn if_join_pred_order_is_then_else() {
        let (f, _) = two_block_if();
        let cfg = Cfg::build(&f).unwrap();
        let join = BlockId(2);
        let preds = cfg.preds_of(join);
        assert_eq!(preds.len(), 2);
        assert_eq!(preds[0].from, BlockId(1), "then edge first");
        assert_eq!(preds[1].from, ENTRY, "empty else edge second");
        assert!(cfg.reachable.iter().all(|&r| r));
    }

    #[test]
    fn loop_header_preds_entry_then_back() {
        let types = TypeTable::new();
        let b = types.prim(PrimKind::Bool);
        let mut f = Function::new("t", None, vec![b], None);
        let header = f.add_block();
        let body_b = f.add_block();
        let exit = f.add_block();
        f.body = Cst::Seq(vec![
            Cst::Basic(ENTRY),
            Cst::Labeled {
                body: Box::new(Cst::Loop {
                    header,
                    body: Box::new(Cst::Seq(vec![Cst::If {
                        cond: ValueId(0),
                        then_br: Box::new(Cst::Basic(body_b)),
                        else_br: Box::new(Cst::Break(0)),
                        join: f.add_block(),
                    }])),
                }),
                join: exit,
            },
        ]);
        let cfg = Cfg::build(&f).unwrap();
        let hp = cfg.preds_of(header);
        assert_eq!(hp.len(), 2);
        assert_eq!(hp[0].from, ENTRY);
        // back edge comes from the if-join block
        assert_eq!(hp[1].from, BlockId(4));
        let ep = cfg.preds_of(exit);
        assert_eq!(ep.len(), 1);
        assert_eq!(ep[0].from, header, "break edge from header block");
    }

    #[test]
    fn unreachable_join_when_both_branches_return() {
        let types = TypeTable::new();
        let b = types.prim(PrimKind::Bool);
        let mut f = Function::new("t", None, vec![b], None);
        let join = f.add_block();
        f.body = Cst::Seq(vec![
            Cst::Basic(ENTRY),
            Cst::If {
                cond: ValueId(0),
                then_br: Box::new(Cst::Return(None)),
                else_br: Box::new(Cst::Return(None)),
                join,
            },
        ]);
        let cfg = Cfg::build(&f).unwrap();
        assert!(!cfg.reachable[join.index()]);
        assert!(cfg.preds_of(join).is_empty());
    }

    #[test]
    fn bad_break_depth_is_error() {
        let types = TypeTable::new();
        let _ = types;
        let mut f = Function::new("t", None, vec![], None);
        let _ = &mut f;
        f.body = Cst::Seq(vec![Cst::Basic(ENTRY), Cst::Break(0)]);
        assert_eq!(Cfg::build(&f).unwrap_err(), CfgError::BadBreakDepth(0));
    }

    #[test]
    fn duplicate_block_is_error() {
        let mut f = Function::new("t", None, vec![], None);
        f.body = Cst::Seq(vec![Cst::Basic(ENTRY), Cst::Basic(ENTRY)]);
        assert_eq!(Cfg::build(&f).unwrap_err(), CfgError::DuplicateBlock(ENTRY));
    }

    #[test]
    fn entry_must_be_first() {
        let mut f = Function::new("t", None, vec![], None);
        let b1 = f.add_block();
        f.body = Cst::Seq(vec![Cst::Basic(b1), Cst::Basic(ENTRY)]);
        assert_eq!(Cfg::build(&f).unwrap_err(), CfgError::EntryNotFirst);
    }

    #[test]
    fn exception_edges_reach_handler() {
        use crate::instr::Instr;
        use crate::primops;
        let mut types = TypeTable::new();
        let int = types.prim(PrimKind::Int);
        let mut f = Function::new("t", None, vec![int, int], None);
        let body_b = f.add_block();
        let handler_entry = f.add_block();
        let join = f.add_block();
        let div = primops::find(PrimKind::Int, "div").unwrap();
        f.add_instr(
            &mut types,
            body_b,
            Instr::XPrimitive {
                ty: int,
                op: div,
                args: vec![f.param_value(0), f.param_value(1)],
            },
        )
        .unwrap();
        f.body = Cst::Seq(vec![
            Cst::Basic(ENTRY),
            Cst::Try {
                body: Box::new(Cst::Basic(body_b)),
                handler_entry,
                handler: Box::new(Cst::empty()),
                join,
            },
        ]);
        let cfg = Cfg::build(&f).unwrap();
        let hp = cfg.preds_of(handler_entry);
        assert_eq!(hp.len(), 1);
        assert_eq!(hp[0].from, body_b);
        assert_eq!(hp[0].kind, EdgeKind::Exception { upto: 0 });
        // join has two preds: body fall-through and handler fall-through
        assert_eq!(cfg.preds_of(join).len(), 2);
    }

    #[test]
    fn throw_inside_try_goes_to_handler() {
        let mut types = TypeTable::new();
        let _ = &mut types;
        let mut f = Function::new("t", None, vec![], None);
        let body_b = f.add_block();
        let handler_entry = f.add_block();
        let join = f.add_block();
        f.body = Cst::Seq(vec![
            Cst::Basic(ENTRY),
            Cst::Try {
                body: Box::new(Cst::Seq(vec![Cst::Basic(body_b), Cst::Throw(ValueId(0))])),
                handler_entry,
                handler: Box::new(Cst::empty()),
                join,
            },
        ]);
        let cfg = Cfg::build(&f).unwrap();
        let hp = cfg.preds_of(handler_entry);
        assert_eq!(hp.len(), 1);
        assert!(matches!(hp[0].kind, EdgeKind::Exception { .. }));
        // join reachable only through the handler
        assert_eq!(cfg.preds_of(join).len(), 1);
        assert_eq!(cfg.preds_of(join)[0].from, handler_entry);
    }
}
