//! The primitive-operation tables of the SafeTSA machine model.
//!
//! Per §5 of the paper, primitive operations are *subordinate to types*:
//! the instruction set contains only the generic `primitive` and
//! `xprimitive` instructions, and each primitive type brings its own
//! table of named operations. Operations that can raise an exception
//! (e.g. integer division) are marked *exceptional* and may only be
//! referenced through `xprimitive`.
//!
//! These tables are part of the trusted machine model: they are never
//! transmitted and can therefore not be corrupted by a code producer.

use crate::types::PrimKind;

/// Index of an operation inside the table of its base type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PrimOpId(pub u16);

impl PrimOpId {
    /// Raw index into the per-type operation table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Signature and exception behaviour of one primitive operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrimOp {
    /// Symbolic name, e.g. `"add"`, `"to_double"`.
    pub name: &'static str,
    /// Parameter planes.
    pub params: &'static [PrimKind],
    /// Result plane.
    pub result: PrimKind,
    /// Whether the operation may raise an exception; if so it must be
    /// invoked through `xprimitive` (§5).
    pub exceptional: bool,
}

macro_rules! ops {
    ($($name:literal ($($p:ident),*) -> $r:ident $($x:ident)?;)*) => {
        &[$(PrimOp {
            name: $name,
            params: &[$(PrimKind::$p),*],
            result: PrimKind::$r,
            exceptional: ops!(@x $($x)?),
        }),*]
    };
    (@x) => { false };
    (@x x) => { true };
}

/// Operations on `boolean`.
pub const BOOL_OPS: &[PrimOp] = ops! {
    "and" (Bool, Bool) -> Bool;
    "or"  (Bool, Bool) -> Bool;
    "xor" (Bool, Bool) -> Bool;
    "not" (Bool) -> Bool;
    "eq"  (Bool, Bool) -> Bool;
    "ne"  (Bool, Bool) -> Bool;
};

/// Operations on `char`.
pub const CHAR_OPS: &[PrimOp] = ops! {
    "eq" (Char, Char) -> Bool;
    "ne" (Char, Char) -> Bool;
    "lt" (Char, Char) -> Bool;
    "le" (Char, Char) -> Bool;
    "gt" (Char, Char) -> Bool;
    "ge" (Char, Char) -> Bool;
    "to_int" (Char) -> Int;
};

/// Operations on `int`. Division and remainder are exceptional
/// (division by zero), exactly as the paper's example notes.
pub const INT_OPS: &[PrimOp] = ops! {
    "add" (Int, Int) -> Int;
    "sub" (Int, Int) -> Int;
    "mul" (Int, Int) -> Int;
    "div" (Int, Int) -> Int x;
    "rem" (Int, Int) -> Int x;
    "neg" (Int) -> Int;
    "and" (Int, Int) -> Int;
    "or"  (Int, Int) -> Int;
    "xor" (Int, Int) -> Int;
    "not" (Int) -> Int;
    "shl" (Int, Int) -> Int;
    "shr" (Int, Int) -> Int;
    "ushr" (Int, Int) -> Int;
    "eq" (Int, Int) -> Bool;
    "ne" (Int, Int) -> Bool;
    "lt" (Int, Int) -> Bool;
    "le" (Int, Int) -> Bool;
    "gt" (Int, Int) -> Bool;
    "ge" (Int, Int) -> Bool;
    "to_char" (Int) -> Char;
    "to_long" (Int) -> Long;
    "to_float" (Int) -> Float;
    "to_double" (Int) -> Double;
};

/// Operations on `long`.
pub const LONG_OPS: &[PrimOp] = ops! {
    "add" (Long, Long) -> Long;
    "sub" (Long, Long) -> Long;
    "mul" (Long, Long) -> Long;
    "div" (Long, Long) -> Long x;
    "rem" (Long, Long) -> Long x;
    "neg" (Long) -> Long;
    "and" (Long, Long) -> Long;
    "or"  (Long, Long) -> Long;
    "xor" (Long, Long) -> Long;
    "not" (Long) -> Long;
    "shl" (Long, Int) -> Long;
    "shr" (Long, Int) -> Long;
    "ushr" (Long, Int) -> Long;
    "eq" (Long, Long) -> Bool;
    "ne" (Long, Long) -> Bool;
    "lt" (Long, Long) -> Bool;
    "le" (Long, Long) -> Bool;
    "gt" (Long, Long) -> Bool;
    "ge" (Long, Long) -> Bool;
    "to_int" (Long) -> Int;
    "to_float" (Long) -> Float;
    "to_double" (Long) -> Double;
};

/// Operations on `float`. Floating-point division never traps in Java,
/// so all operations are plain primitives.
pub const FLOAT_OPS: &[PrimOp] = ops! {
    "add" (Float, Float) -> Float;
    "sub" (Float, Float) -> Float;
    "mul" (Float, Float) -> Float;
    "div" (Float, Float) -> Float;
    "rem" (Float, Float) -> Float;
    "neg" (Float) -> Float;
    "eq" (Float, Float) -> Bool;
    "ne" (Float, Float) -> Bool;
    "lt" (Float, Float) -> Bool;
    "le" (Float, Float) -> Bool;
    "gt" (Float, Float) -> Bool;
    "ge" (Float, Float) -> Bool;
    "to_int" (Float) -> Int;
    "to_long" (Float) -> Long;
    "to_double" (Float) -> Double;
};

/// Operations on `double`.
pub const DOUBLE_OPS: &[PrimOp] = ops! {
    "add" (Double, Double) -> Double;
    "sub" (Double, Double) -> Double;
    "mul" (Double, Double) -> Double;
    "div" (Double, Double) -> Double;
    "rem" (Double, Double) -> Double;
    "neg" (Double) -> Double;
    "eq" (Double, Double) -> Bool;
    "ne" (Double, Double) -> Bool;
    "lt" (Double, Double) -> Bool;
    "le" (Double, Double) -> Bool;
    "gt" (Double, Double) -> Bool;
    "ge" (Double, Double) -> Bool;
    "to_int" (Double) -> Int;
    "to_long" (Double) -> Long;
    "to_float" (Double) -> Float;
};

/// The operation table for `kind`.
pub fn ops_of(kind: PrimKind) -> &'static [PrimOp] {
    match kind {
        PrimKind::Bool => BOOL_OPS,
        PrimKind::Char => CHAR_OPS,
        PrimKind::Int => INT_OPS,
        PrimKind::Long => LONG_OPS,
        PrimKind::Float => FLOAT_OPS,
        PrimKind::Double => DOUBLE_OPS,
    }
}

/// Resolves `(kind, op)` to the operation descriptor, checking bounds.
pub fn resolve(kind: PrimKind, op: PrimOpId) -> Option<&'static PrimOp> {
    ops_of(kind).get(op.index())
}

/// Finds an operation of `kind` by name (used by front-ends and tests).
pub fn find(kind: PrimKind, name: &str) -> Option<PrimOpId> {
    ops_of(kind)
        .iter()
        .position(|o| o.name == name)
        .map(|i| PrimOpId(i as u16))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_div_is_exceptional() {
        let id = find(PrimKind::Int, "div").unwrap();
        assert!(resolve(PrimKind::Int, id).unwrap().exceptional);
        let add = find(PrimKind::Int, "add").unwrap();
        assert!(!resolve(PrimKind::Int, add).unwrap().exceptional);
    }

    #[test]
    fn float_div_is_not_exceptional() {
        for kind in [PrimKind::Float, PrimKind::Double] {
            let id = find(kind, "div").unwrap();
            assert!(!resolve(kind, id).unwrap().exceptional);
        }
    }

    #[test]
    fn comparisons_produce_bool() {
        for kind in [
            PrimKind::Int,
            PrimKind::Long,
            PrimKind::Float,
            PrimKind::Double,
            PrimKind::Char,
        ] {
            for name in ["eq", "ne", "lt", "le", "gt", "ge"] {
                let id = find(kind, name).unwrap();
                assert_eq!(resolve(kind, id).unwrap().result, PrimKind::Bool);
            }
        }
    }

    #[test]
    fn shifts_take_int_amounts() {
        let id = find(PrimKind::Long, "shl").unwrap();
        let op = resolve(PrimKind::Long, id).unwrap();
        assert_eq!(op.params, &[PrimKind::Long, PrimKind::Int]);
    }

    #[test]
    fn unknown_ops_are_none() {
        assert!(find(PrimKind::Bool, "add").is_none());
        assert!(resolve(PrimKind::Bool, PrimOpId(999)).is_none());
    }

    #[test]
    fn names_unique_within_table() {
        for &kind in &PrimKind::ALL {
            let ops = ops_of(kind);
            for (i, a) in ops.iter().enumerate() {
                for b in &ops[i + 1..] {
                    assert_ne!(a.name, b.name, "duplicate op in {kind:?}");
                }
            }
        }
    }
}
