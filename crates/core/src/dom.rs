//! Dominator trees.
//!
//! SafeTSA's `(l, r)` value references are interpreted against the
//! dominator tree (§2): `l` counts levels up the dominator hierarchy.
//! Both producer and consumer derive the tree from the CFG (itself
//! derived from the CST), so the tree is never transmitted.
//!
//! Two classic algorithms are implemented and cross-checked by the test
//! suite: the iterative algorithm of Cooper–Harvey–Kennedy (the default)
//! and Lengauer–Tarjan (the paper's citation \[21\]); `benches/dom.rs`
//! compares them.

use crate::cfg::Cfg;
use crate::function::ENTRY;
use crate::value::BlockId;

/// A computed dominator tree.
#[derive(Debug, Clone, PartialEq)]
pub struct DomTree {
    /// Immediate dominator per block; `None` for the entry block and
    /// for unreachable blocks.
    pub idom: Vec<Option<BlockId>>,
    /// Depth in the dominator tree (entry = 0; unreachable blocks = 0).
    pub depth: Vec<u32>,
    /// Children lists (ordered by block id).
    pub children: Vec<Vec<BlockId>>,
    /// Reachable blocks in dominator-tree pre-order (children visited
    /// in block-id order); this is the canonical transmission order of
    /// SafeTSA blocks (§7).
    pub preorder: Vec<BlockId>,
}

impl DomTree {
    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = Some(b);
        while let Some(c) = cur {
            if c == a {
                return true;
            }
            cur = self.idom[c.index()];
        }
        false
    }

    /// The ancestor of `b` that is `l` levels up the dominator tree
    /// (`l = 0` is `b` itself).
    pub fn ancestor(&self, b: BlockId, l: u32) -> Option<BlockId> {
        let mut cur = b;
        for _ in 0..l {
            cur = self.idom[cur.index()]?;
        }
        Some(cur)
    }

    /// The number of dominator-tree levels from `b` up to (and
    /// including) `a`, if `a` dominates `b`.
    pub fn level_distance(&self, a: BlockId, b: BlockId) -> Option<u32> {
        let mut cur = b;
        let mut l = 0;
        loop {
            if cur == a {
                return Some(l);
            }
            cur = self.idom[cur.index()]?;
            l += 1;
        }
    }

    /// Computes the dominator tree of `cfg` with the iterative
    /// Cooper–Harvey–Kennedy algorithm.
    pub fn build(cfg: &Cfg) -> DomTree {
        let n = cfg.len();
        if n == 0 {
            return DomTree {
                idom: vec![],
                depth: vec![],
                children: vec![],
                preorder: vec![],
            };
        }
        // Reverse postorder over reachable blocks.
        let rpo = reverse_postorder(cfg);
        let mut rpo_num = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_num[b.index()] = i;
        }
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[ENTRY.index()] = Some(ENTRY); // sentinel self-loop during iteration
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for e in cfg.preds_of(b) {
                    let p = e.from;
                    if !cfg.reachable[p.index()] || idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_num, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        idom[ENTRY.index()] = None;
        finish(cfg, idom)
    }

    /// Computes the dominator tree with the Lengauer–Tarjan algorithm
    /// (simple eval/link with path compression).
    pub fn build_lengauer_tarjan(cfg: &Cfg) -> DomTree {
        let n = cfg.len();
        if n == 0 {
            return DomTree::build(cfg);
        }
        let mut lt = Lt {
            cfg,
            dfnum: vec![usize::MAX; n],
            vertex: Vec::with_capacity(n),
            parent: vec![None; n],
            semi: vec![usize::MAX; n],
            ancestor: vec![None; n],
            label: (0..n).collect(),
            idom: vec![None; n],
            samedom: vec![None; n],
            bucket: vec![Vec::new(); n],
        };
        lt.dfs(ENTRY.index());
        for i in (1..lt.vertex.len()).rev() {
            let w = lt.vertex[i];
            let p = lt.parent[w].expect("non-root has dfs parent");
            let mut s = p;
            for e in cfg.preds_of(BlockId(w as u32)) {
                let v = e.from.index();
                if lt.dfnum[v] == usize::MAX {
                    continue; // unreachable pred
                }
                let s2 = if lt.dfnum[v] <= lt.dfnum[w] {
                    v
                } else {
                    let u = lt.eval(v);
                    lt.semi_of(u)
                };
                if lt.dfnum[s2] < lt.dfnum[s] {
                    s = s2;
                }
            }
            lt.semi[w] = lt.dfnum[s];
            lt.bucket[s].push(w);
            lt.ancestor[w] = Some(p);
            let drained: Vec<usize> = std::mem::take(&mut lt.bucket[p]);
            for v in drained {
                let y = lt.eval(v);
                if lt.semi[y] == lt.semi[v] {
                    lt.idom[v] = Some(p);
                } else {
                    lt.samedom[v] = Some(y);
                }
            }
        }
        for i in 1..lt.vertex.len() {
            let w = lt.vertex[i];
            if let Some(y) = lt.samedom[w] {
                lt.idom[w] = lt.idom[y];
            }
        }
        let idom = lt
            .idom
            .iter()
            .map(|o| o.map(|i| BlockId(i as u32)))
            .collect();
        finish(cfg, idom)
    }
}

fn reverse_postorder(cfg: &Cfg) -> Vec<BlockId> {
    let n = cfg.len();
    let mut visited = vec![false; n];
    let mut post = Vec::with_capacity(n);
    // Iterative DFS with explicit stack of (block, next-succ-index).
    let mut stack = vec![(ENTRY, 0usize)];
    visited[ENTRY.index()] = true;
    while let Some(&mut (b, ref mut i)) = stack.last_mut() {
        let succs = &cfg.succs[b.index()];
        if *i < succs.len() {
            let s = succs[*i];
            *i += 1;
            if !visited[s.index()] {
                visited[s.index()] = true;
                stack.push((s, 0));
            }
        } else {
            post.push(b);
            stack.pop();
        }
    }
    post.reverse();
    post
}

fn intersect(
    idom: &[Option<BlockId>],
    rpo_num: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_num[a.index()] > rpo_num[b.index()] {
            a = idom[a.index()].expect("processed block has idom");
        }
        while rpo_num[b.index()] > rpo_num[a.index()] {
            b = idom[b.index()].expect("processed block has idom");
        }
    }
    a
}

fn finish(cfg: &Cfg, idom: Vec<Option<BlockId>>) -> DomTree {
    let n = idom.len();
    let mut children = vec![Vec::new(); n];
    for (b, d) in idom.iter().enumerate() {
        if let Some(d) = d {
            children[d.index()].push(BlockId(b as u32));
        }
    }
    // Depth by walking from the entry.
    let mut depth = vec![0u32; n];
    let mut preorder = Vec::with_capacity(n);
    if n > 0 && cfg.reachable[ENTRY.index()] {
        let mut stack = vec![ENTRY];
        while let Some(b) = stack.pop() {
            preorder.push(b);
            for &c in children[b.index()].iter().rev() {
                depth[c.index()] = depth[b.index()] + 1;
                stack.push(c);
            }
        }
    }
    DomTree {
        idom,
        depth,
        children,
        preorder,
    }
}

struct Lt<'a> {
    cfg: &'a Cfg,
    dfnum: Vec<usize>,
    vertex: Vec<usize>,
    parent: Vec<Option<usize>>,
    semi: Vec<usize>,
    ancestor: Vec<Option<usize>>,
    label: Vec<usize>,
    idom: Vec<Option<usize>>,
    samedom: Vec<Option<usize>>,
    bucket: Vec<Vec<usize>>,
}

impl<'a> Lt<'a> {
    fn dfs(&mut self, root: usize) {
        let mut stack = vec![(root, None::<usize>)];
        while let Some((w, p)) = stack.pop() {
            if self.dfnum[w] != usize::MAX {
                continue;
            }
            self.dfnum[w] = self.vertex.len();
            self.vertex.push(w);
            self.parent[w] = p;
            for &s in self.cfg.succs[w].iter().rev() {
                if self.dfnum[s.index()] == usize::MAX {
                    stack.push((s.index(), Some(w)));
                }
            }
        }
    }

    fn semi_of(&self, v: usize) -> usize {
        // semi[] stores dfnums; map back to the vertex carrying it.
        self.vertex[self.semi[v]]
    }

    fn eval(&mut self, v: usize) -> usize {
        self.compress(v);
        self.label[v]
    }

    fn compress(&mut self, v: usize) {
        // Iterative path compression.
        let mut path = Vec::new();
        let mut cur = v;
        while let Some(a) = self.ancestor[cur] {
            if self.ancestor[a].is_some() {
                path.push(cur);
                cur = a;
            } else {
                break;
            }
        }
        for &u in path.iter().rev() {
            let a = self.ancestor[u].unwrap();
            if self.semi[self.label[a]] < self.semi[self.label[u]] {
                self.label[u] = self.label[a];
            }
            self.ancestor[u] = self.ancestor[a];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cst::Cst;
    use crate::function::Function;
    use crate::types::{PrimKind, TypeTable};
    use crate::value::ValueId;

    /// Builds a diamond: entry → (then | dead-empty-else) → join.
    fn diamond() -> Function {
        let types = TypeTable::new();
        let b = types.prim(PrimKind::Bool);
        let mut f = Function::new("d", None, vec![b], None);
        let t = f.add_block();
        let e = f.add_block();
        let j = f.add_block();
        f.body = Cst::Seq(vec![
            Cst::Basic(crate::function::ENTRY),
            Cst::If {
                cond: ValueId(0),
                then_br: Box::new(Cst::Basic(t)),
                else_br: Box::new(Cst::Basic(e)),
                join: j,
            },
        ]);
        f
    }

    #[test]
    fn diamond_idoms() {
        let f = diamond();
        let cfg = Cfg::build(&f).unwrap();
        let dom = DomTree::build(&cfg);
        assert_eq!(dom.idom[0], None);
        assert_eq!(dom.idom[1], Some(ENTRY));
        assert_eq!(dom.idom[2], Some(ENTRY));
        assert_eq!(
            dom.idom[3],
            Some(ENTRY),
            "join dominated by entry, not a branch"
        );
        assert_eq!(dom.depth, vec![0, 1, 1, 1]);
        assert!(dom.dominates(ENTRY, BlockId(3)));
        assert!(!dom.dominates(BlockId(1), BlockId(3)));
    }

    #[test]
    fn lt_matches_chk_on_diamond() {
        let f = diamond();
        let cfg = Cfg::build(&f).unwrap();
        assert_eq!(
            DomTree::build(&cfg).idom,
            DomTree::build_lengauer_tarjan(&cfg).idom
        );
    }

    #[test]
    fn loop_dominators() {
        let types = TypeTable::new();
        let bty = types.prim(PrimKind::Bool);
        let mut f = Function::new("l", None, vec![bty], None);
        let header = f.add_block();
        let body_b = f.add_block();
        let ifj = f.add_block();
        let exit = f.add_block();
        f.body = Cst::Seq(vec![
            Cst::Basic(ENTRY),
            Cst::Labeled {
                body: Box::new(Cst::Loop {
                    header,
                    body: Box::new(Cst::If {
                        cond: ValueId(0),
                        then_br: Box::new(Cst::Basic(body_b)),
                        else_br: Box::new(Cst::Break(0)),
                        join: ifj,
                    }),
                }),
                join: exit,
            },
        ]);
        let cfg = Cfg::build(&f).unwrap();
        let dom = DomTree::build(&cfg);
        assert_eq!(dom.idom[header.index()], Some(ENTRY));
        assert_eq!(dom.idom[body_b.index()], Some(header));
        assert_eq!(dom.idom[ifj.index()], Some(body_b));
        assert_eq!(dom.idom[exit.index()], Some(header));
        assert_eq!(
            dom.idom,
            DomTree::build_lengauer_tarjan(&cfg).idom,
            "CHK and LT agree"
        );
        assert_eq!(dom.level_distance(ENTRY, ifj), Some(3));
        assert_eq!(dom.ancestor(ifj, 2), Some(header));
        assert_eq!(dom.level_distance(body_b, header), None);
    }

    #[test]
    fn preorder_starts_at_entry_and_covers_reachable() {
        let f = diamond();
        let cfg = Cfg::build(&f).unwrap();
        let dom = DomTree::build(&cfg);
        assert_eq!(dom.preorder[0], ENTRY);
        assert_eq!(dom.preorder.len(), 4);
    }

    #[test]
    fn unreachable_blocks_have_no_idom() {
        let types = TypeTable::new();
        let bty = types.prim(PrimKind::Bool);
        let mut f = Function::new("u", None, vec![bty], None);
        let join = f.add_block();
        f.body = Cst::Seq(vec![
            Cst::Basic(ENTRY),
            Cst::If {
                cond: ValueId(0),
                then_br: Box::new(Cst::Return(None)),
                else_br: Box::new(Cst::Return(None)),
                join,
            },
        ]);
        let cfg = Cfg::build(&f).unwrap();
        let dom = DomTree::build(&cfg);
        assert_eq!(dom.idom[join.index()], None);
        assert_eq!(dom.preorder, vec![ENTRY]);
    }
}
