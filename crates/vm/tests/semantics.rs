//! Java-semantics contract tests for the SafeTSA interpreter: exact
//! wrapping, masking, saturation, and NaN behaviour (these are also
//! covered differentially against the baseline; here they are pinned
//! to the Java-specified values).

use safetsa_frontend::compile;
use safetsa_rt::Value;
use safetsa_ssa::lower_program;
use safetsa_vm::Vm;

fn eval(expr_src: &str, ret_ty: &str) -> Value {
    let src = format!("class E {{ static {ret_ty} main() {{ return {expr_src}; }} }}");
    let prog = compile(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
    let lowered = lower_program(&prog).unwrap();
    safetsa_core::verify::verify_module(&lowered.module).unwrap();
    let mut vm = Vm::load(&lowered.module).unwrap();
    vm.run_entry("E.main").unwrap().unwrap()
}

#[test]
fn int_wrapping() {
    assert_eq!(eval("2147483647 + 1", "int"), Value::I(i32::MIN));
    assert_eq!(eval("-2147483648 - 1", "int"), Value::I(i32::MAX));
    assert_eq!(
        eval("65535 * 65537", "int"),
        Value::I(65535i64.wrapping_mul(65537) as i32)
    );
    assert_eq!(eval("(-2147483648) / (-1)", "int"), Value::I(i32::MIN));
    assert_eq!(eval("(-2147483648) % (-1)", "int"), Value::I(0));
}

#[test]
fn shift_masking() {
    assert_eq!(eval("1 << 33", "int"), Value::I(2)); // 33 & 31 == 1
    assert_eq!(eval("1 << -1", "int"), Value::I(i32::MIN)); // -1 & 31 == 31
    assert_eq!(eval("1L << 65", "long"), Value::J(2)); // 65 & 63 == 1
    assert_eq!(eval("-8 >> 1", "int"), Value::I(-4)); // arithmetic
    assert_eq!(eval("-8 >>> 1", "int"), Value::I(0x7FFF_FFFC)); // logical
    assert_eq!(
        eval("-8L >>> 1", "long"),
        Value::J(0x7FFF_FFFF_FFFF_FFFCu64 as i64)
    );
}

#[test]
fn float_to_int_saturation() {
    assert_eq!(eval("(int) 1e99", "int"), Value::I(i32::MAX));
    assert_eq!(eval("(int) -1e99", "int"), Value::I(i32::MIN));
    assert_eq!(eval("(int) (0.0 / 0.0)", "int"), Value::I(0)); // NaN -> 0
    assert_eq!(eval("(long) 1e99", "long"), Value::J(i64::MAX));
    assert_eq!(eval("(long) (0.0 / 0.0)", "long"), Value::J(0));
}

#[test]
fn char_conversions_wrap_mod_2_16() {
    assert_eq!(eval("(int) (char) 65536", "int"), Value::I(0));
    assert_eq!(eval("(int) (char) 65601", "int"), Value::I(65));
    assert_eq!(eval("(int) (char) -1", "int"), Value::I(65535));
}

#[test]
fn nan_comparison_semantics() {
    assert_eq!(
        eval("(0.0 / 0.0) == (0.0 / 0.0)", "boolean"),
        Value::Z(false)
    );
    assert_eq!(
        eval("(0.0 / 0.0) != (0.0 / 0.0)", "boolean"),
        Value::Z(true)
    );
    assert_eq!(eval("(0.0 / 0.0) < 1.0", "boolean"), Value::Z(false));
    assert_eq!(eval("(0.0 / 0.0) >= 1.0", "boolean"), Value::Z(false));
    assert_eq!(eval("1.0 / 0.0 > 1e308", "boolean"), Value::Z(true));
}

#[test]
fn integer_remainder_signs() {
    assert_eq!(eval("7 % 3", "int"), Value::I(1));
    assert_eq!(eval("-7 % 3", "int"), Value::I(-1)); // sign of dividend
    assert_eq!(eval("7 % -3", "int"), Value::I(1));
    assert_eq!(eval("-7 % -3", "int"), Value::I(-1));
}

#[test]
fn double_remainder_ieee() {
    assert_eq!(eval("5.5 % 2.0", "double"), Value::D(1.5));
    assert_eq!(eval("-5.5 % 2.0", "double"), Value::D(-1.5));
}

#[test]
fn widening_precision() {
    // long -> double may lose precision (Java allows it implicitly).
    assert_eq!(
        eval("(long) (double) 9007199254740993L", "long"),
        Value::J(9007199254740992)
    );
    // int -> float similar.
    assert_eq!(eval("(int) (float) 16777217", "int"), Value::I(16777216));
}
