//! End-to-end execution tests: Java source → SafeTSA → verify → run.

use safetsa_core::verify::verify_module;
use safetsa_frontend::compile;
use safetsa_rt::Value;
use safetsa_ssa::lower_program;
use safetsa_vm::Vm;

fn run(src: &str, entry: &str) -> (Option<Value>, String) {
    let prog = compile(src).expect("compiles");
    let lowered = lower_program(&prog).expect("lowers");
    verify_module(&lowered.module).expect("verifies");
    let mut vm = Vm::load(&lowered.module).expect("loads");
    vm.set_fuel(50_000_000);
    let r = vm.run_entry(entry).expect("runs");
    (r, vm.output.text().to_string())
}

fn run_int(src: &str, entry: &str) -> i32 {
    match run(src, entry).0 {
        Some(Value::I(v)) => v,
        other => panic!("expected int result, got {other:?}"),
    }
}

#[test]
fn arithmetic() {
    assert_eq!(
        run_int(
            "class A { static int main() { return 2 + 3 * 4 - 5 / 2; } }",
            "A.main"
        ),
        12
    );
}

#[test]
fn branches_and_loops() {
    assert_eq!(
        run_int(
            "class A { static int main() {
                 int s = 0;
                 for (int i = 1; i <= 10; i++) if (i % 2 == 0) s += i;
                 return s;
             } }",
            "A.main"
        ),
        30
    );
}

#[test]
fn while_and_do_while() {
    assert_eq!(
        run_int(
            "class A { static int main() {
                 int i = 0; int s = 0;
                 while (i < 5) { s += i; i++; }
                 do { s *= 2; } while (s < 50);
                 return s;
             } }",
            "A.main"
        ),
        80
    );
}

#[test]
fn nested_break_continue() {
    assert_eq!(
        run_int(
            "class A { static int main() {
                 int s = 0;
                 for (int i = 0; i < 5; i++) {
                     for (int j = 0; j < 5; j++) {
                         if (j == 3) break;
                         if (j == 1) continue;
                         s += 10 * i + j;
                     }
                 }
                 return s;
             } }",
            "A.main"
        ),
        // j in {0, 2}: sum over i of (10i+0 + 10i+2) = sum(20i+2) = 20*10+10 = 210
        210
    );
}

#[test]
fn fibonacci_recursion() {
    assert_eq!(
        run_int(
            "class A { static int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
                      static int main() { return fib(15); } }",
            "A.main"
        ),
        610
    );
}

#[test]
fn objects_fields_dispatch() {
    assert_eq!(
        run_int(
            "class Shape { int area() { return 0; } }
             class Sq extends Shape { int s; Sq(int s) { this.s = s; } int area() { return s * s; } }
             class Rect extends Shape { int w; int h; Rect(int w, int h) { this.w = w; this.h = h; }
                 int area() { return w * h; } }
             class Main { static int main() {
                 Shape a = new Sq(3);
                 Shape b = new Rect(4, 5);
                 return a.area() + b.area();
             } }",
            "Main.main"
        ),
        29
    );
}

#[test]
fn arrays() {
    assert_eq!(
        run_int(
            "class A { static int main() {
                 int[] a = new int[10];
                 for (int i = 0; i < a.length; i++) a[i] = i * i;
                 int s = 0;
                 for (int i = 0; i < a.length; i++) s += a[i];
                 return s;
             } }",
            "A.main"
        ),
        285
    );
}

#[test]
fn array_literals_and_2d() {
    assert_eq!(
        run_int(
            "class A { static int main() {
                 int[][] m = new int[2][];
                 m[0] = new int[] {1, 2, 3};
                 m[1] = new int[] {4, 5};
                 return m[0][2] + m[1][1];
             } }",
            "A.main"
        ),
        8
    );
}

#[test]
fn statics_and_clinit() {
    assert_eq!(
        run_int(
            "class C { static int X = 6; static int[] T = {10, 20, 30};
                      static int main() { return X + T[2]; } }",
            "C.main"
        ),
        36
    );
}

#[test]
fn exception_div_by_zero_caught() {
    assert_eq!(
        run_int(
            "class A { static int main() {
                 int r;
                 try { r = 10 / 0; } catch (ArithmeticException e) { r = -1; }
                 return r;
             } }",
            "A.main"
        ),
        -1
    );
}

#[test]
fn exception_bounds_caught() {
    assert_eq!(
        run_int(
            "class A { static int main() {
                 int[] a = new int[3];
                 try { return a[5]; }
                 catch (IndexOutOfBoundsException e) { return -2; }
             } }",
            "A.main"
        ),
        -2
    );
}

#[test]
fn exception_null_caught() {
    assert_eq!(
        run_int(
            "class Box { int v; }
             class A { static int main() {
                 Box b = null;
                 try { return b.v; } catch (NullPointerException e) { return -3; }
             } }",
            "A.main"
        ),
        -3
    );
}

#[test]
fn user_exceptions_and_getmessage() {
    let (r, out) = run(
        r#"class MyErr extends Exception { int code; MyErr(int c) { super("custom"); code = c; } }
           class A { static int main() {
               try { throw new MyErr(7); }
               catch (MyErr e) { Sys.println(e.getMessage()); return e.code; }
           } }"#,
        "A.main",
    );
    assert_eq!(r, Some(Value::I(7)));
    assert_eq!(out, "custom\n");
}

#[test]
fn catch_ordering_and_rethrow() {
    assert_eq!(
        run_int(
            "class A { static int f(int x) {
                 try {
                     try { return 10 / x; }
                     catch (NullPointerException e) { return -99; }
                 } catch (ArithmeticException e) { return -1; }
             }
             static int main() { return f(0); } }",
            "A.main"
        ),
        -1
    );
}

#[test]
fn finally_runs_on_both_paths() {
    let (_, out) = run(
        r#"class A {
             static int f(int x) {
                 int r = 0;
                 try { r = 10 / x; } catch (ArithmeticException e) { r = -1; } finally { Sys.println("fin"); }
                 return r;
             }
             static int main() {
                 Sys.println(f(2));
                 Sys.println(f(0));
                 return 0;
             }
           }"#,
        "A.main",
    );
    assert_eq!(out, "fin\n5\nfin\n-1\n");
}

#[test]
fn cast_success_and_failure() {
    assert_eq!(
        run_int(
            "class Animal { }
             class Dog extends Animal { int bark() { return 5; } }
             class Cat extends Animal { }
             class Main {
                 static int main() {
                     Animal a = new Dog();
                     Animal c = new Cat();
                     int s = ((Dog) a).bark();
                     try { Dog d = (Dog) c; s += d.bark(); }
                     catch (ClassCastException e) { s += 100; }
                     return s;
                 }
             }",
            "Main.main"
        ),
        105
    );
}

#[test]
fn instanceof_checks() {
    assert_eq!(
        run_int(
            "class X { }
             class Y extends X { }
             class Main { static int main() {
                 X x = new Y();
                 X p = new X();
                 int s = 0;
                 if (x instanceof Y) s += 1;
                 if (x instanceof X) s += 2;
                 if (p instanceof Y) s += 4;
                 X q = null;
                 if (q instanceof X) s += 8;
                 return s;
             } }",
            "Main.main"
        ),
        3
    );
}

#[test]
fn strings_and_output() {
    let (_, out) = run(
        r#"class A { static int main() {
               String h = "hello";
               String w = "world";
               String m = h + " " + w + "!";
               Sys.println(m);
               Sys.println(m.length());
               Sys.println(m.charAt(4));
               Sys.println(m.substring(6, 11));
               Sys.println("abc".equals("abc"));
               Sys.println("count: " + 3 + ", pi-ish " + 3.5);
               return 0;
           } }"#,
        "A.main",
    );
    assert_eq!(
        out,
        "hello world!\n12\no\nworld\ntrue\ncount: 3, pi-ish 3.5\n"
    );
}

#[test]
fn long_double_math() {
    let (_, out) = run(
        r#"class A { static int main() {
               long big = 1L << 40;
               Sys.println(big);
               double d = Math.sqrt(2.0);
               Sys.println(d * d > 1.999 && d * d < 2.001);
               Sys.println(Math.max(3, 9) + Math.min(2, 5));
               Sys.println((int) 3.99);
               Sys.println((char) 66);
               Sys.println(-7 % 3);
               Sys.println(-7 / 2);
               Sys.println(7 >>> 1);
               Sys.println(-8 >> 1);
               return 0;
           } }"#,
        "A.main",
    );
    assert_eq!(out, "1099511627776\ntrue\n11\n3\nB\n-1\n-3\n3\n-4\n");
}

#[test]
fn integer_overflow_wraps() {
    assert_eq!(
        run_int(
            "class A { static int main() { int x = 2147483647; return x + 1; } }",
            "A.main"
        ),
        i32::MIN
    );
    assert_eq!(
        run_int(
            "class A { static int main() { return (-2147483648) / (-1); } }",
            "A.main"
        ),
        i32::MIN
    );
}

#[test]
fn short_circuit_side_effects() {
    let (_, out) = run(
        r#"class A {
               static int calls = 0;
               static boolean t() { calls++; return true; }
               static boolean f() { calls++; return false; }
               static int main() {
                   boolean a = f() && t(); // t not called
                   boolean b = t() || f(); // f not called
                   Sys.println(calls);
                   Sys.println(a);
                   Sys.println(b);
                   return 0;
               }
           }"#,
        "A.main",
    );
    assert_eq!(out, "2\nfalse\ntrue\n");
}

#[test]
fn ternary_and_postfix() {
    assert_eq!(
        run_int(
            "class A { static int main() {
                 int x = 5;
                 int y = x++;          // y=5, x=6
                 int z = ++x;          // z=7, x=7
                 int m = x > y ? x - y : y - x; // 2
                 return y * 100 + z * 10 + m;
             } }",
            "A.main"
        ),
        572
    );
}

#[test]
fn linked_list_null_termination() {
    assert_eq!(
        run_int(
            "class Node { int v; Node next; Node(int v, Node next) { this.v = v; this.next = next; } }
             class Main { static int main() {
                 Node head = new Node(1, new Node(2, new Node(3, null)));
                 int s = 0;
                 Node cur = head;
                 while (cur != null) { s += cur.v; cur = cur.next; }
                 return s;
             } }",
            "Main.main"
        ),
        6
    );
}

#[test]
fn exceptions_propagate_across_calls() {
    assert_eq!(
        run_int(
            "class A {
                 static int boom(int x) { return 100 / x; }
                 static int mid(int x) { return boom(x) + 1; }
                 static int main() {
                     try { return mid(0); } catch (ArithmeticException e) { return -5; }
                 }
             }",
            "A.main"
        ),
        -5
    );
}

#[test]
fn uncaught_exception_reported() {
    let prog = compile("class A { static int main() { return 1 / 0; } }").unwrap();
    let lowered = lower_program(&prog).unwrap();
    verify_module(&lowered.module).unwrap();
    let mut vm = Vm::load(&lowered.module).unwrap();
    let err = vm.run_entry("A.main").unwrap_err();
    assert!(matches!(err, safetsa_vm::VmError::Uncaught(_)));
}

#[test]
fn fuel_limit_stops_infinite_loop() {
    let prog = compile("class A { static int main() { int x = 0; while (true) { x++; } } }");
    // `while(true)` with no break: function cannot fall through, but it
    // also never returns — sema accepts since no missing return…
    let prog = match prog {
        Ok(p) => p,
        Err(_) => return, // if sema rejects, nothing to test
    };
    let lowered = lower_program(&prog).unwrap();
    let mut vm = Vm::load(&lowered.module).unwrap();
    vm.set_fuel(10_000);
    let err = vm.run_entry("A.main").unwrap_err();
    assert!(matches!(err, safetsa_vm::VmError::FuelExhausted));
}

// ------------------------------------------------------------------
// Resource governance: heap budgets, call-depth caps, and the
// reusable-after-trap invariant.

fn load_governed(src: &str, limits: safetsa_vm::ResourceLimits) -> Vm<'static> {
    let prog = compile(src).expect("compiles");
    let lowered = lower_program(&prog).expect("lowers");
    verify_module(&lowered.module).expect("verifies");
    // Tests keep one module per VM alive for the test's duration.
    let module = Box::leak(Box::new(lowered.module));
    let mut vm = Vm::load(module).expect("loads");
    vm.set_limits(limits);
    vm
}

#[test]
fn oom_is_catchable_like_java() {
    let mut vm = load_governed(
        "class A { static int main() {
             try {
                 int[] big = new int[1000000];
                 return big.length;
             } catch (OutOfMemoryError e) {
                 return -1;
             }
         } }",
        safetsa_vm::ResourceLimits {
            fuel: Some(1_000_000),
            max_heap_bytes: Some(4096),
            max_call_depth: None,
        },
    );
    assert_eq!(vm.run_entry("A.main").unwrap(), Some(Value::I(-1)));
}

#[test]
fn oom_rejects_huge_array_before_host_allocation() {
    // 1 << 28 ints would be a gigabyte of host memory: the projected
    // size must be rejected against the budget before the elements are
    // ever materialised.
    let mut vm = load_governed(
        "class A { static int main() {
             try {
                 int[] big = new int[268435456];
                 return big.length;
             } catch (OutOfMemoryError e) {
                 return -1;
             }
         } }",
        safetsa_vm::ResourceLimits {
            fuel: Some(1_000_000),
            max_heap_bytes: Some(1 << 16),
            max_call_depth: None,
        },
    );
    assert_eq!(vm.run_entry("A.main").unwrap(), Some(Value::I(-1)));
    assert!(vm.heap.bytes_allocated() < (1 << 16));
}

#[test]
fn uncaught_oom_is_structured_not_a_panic() {
    let mut vm = load_governed(
        "class A { static int main() { int[] b = new int[100000]; return b.length; } }",
        safetsa_vm::ResourceLimits {
            fuel: Some(1_000_000),
            max_heap_bytes: Some(1024),
            max_call_depth: None,
        },
    );
    let err = vm.run_entry("A.main").unwrap_err();
    assert!(matches!(
        err,
        safetsa_vm::VmError::Uncaught(safetsa_rt::Trap::OutOfMemory)
    ));
    // The VM survives the trap: raising the budget and re-running the
    // same entry point succeeds.
    vm.set_limits(safetsa_vm::ResourceLimits {
        fuel: Some(1_000_000),
        max_heap_bytes: None,
        max_call_depth: None,
    });
    assert_eq!(vm.run_entry("A.main").unwrap(), Some(Value::I(100000)));
}

#[test]
fn stack_overflow_is_catchable_like_java() {
    let mut vm = load_governed(
        "class A {
             static int rec(int n) { return rec(n + 1); }
             static int main() {
                 try { return rec(0); } catch (StackOverflowError e) { return -2; }
             }
         }",
        safetsa_vm::ResourceLimits {
            fuel: Some(10_000_000),
            max_heap_bytes: None,
            max_call_depth: Some(64),
        },
    );
    assert_eq!(vm.run_entry("A.main").unwrap(), Some(Value::I(-2)));
}

#[test]
fn depth_is_restored_after_stack_overflow() {
    let mut vm = load_governed(
        "class A {
             static int rec(int n) { if (n == 0) return 0; return 1 + rec(n - 1); }
             static int deep() { return rec(1000); }
             static int shallow() { return rec(3); }
         }",
        safetsa_vm::ResourceLimits {
            fuel: Some(10_000_000),
            max_heap_bytes: None,
            max_call_depth: Some(16),
        },
    );
    let err = vm.run_entry("A.deep").unwrap_err();
    assert!(matches!(
        err,
        safetsa_vm::VmError::Uncaught(safetsa_rt::Trap::StackOverflow)
    ));
    // Depth bookkeeping unwound correctly: a shallow entry still fits.
    assert_eq!(vm.run_entry("A.shallow").unwrap(), Some(Value::I(3)));
    assert!(vm.peak_depth() >= 16);
}

#[test]
fn error_is_outside_the_exception_hierarchy() {
    // `catch (Exception e)` must NOT swallow resource-exhaustion
    // errors, exactly like Java.
    let mut vm = load_governed(
        "class A { static int main() {
             try {
                 int[] big = new int[1000000];
                 return big.length;
             } catch (Exception e) {
                 return -3;
             }
         } }",
        safetsa_vm::ResourceLimits {
            fuel: Some(1_000_000),
            max_heap_bytes: Some(4096),
            max_call_depth: None,
        },
    );
    let err = vm.run_entry("A.main").unwrap_err();
    // The handler re-throws the non-matching OutOfMemoryError object.
    assert!(matches!(
        err,
        safetsa_vm::VmError::Uncaught(safetsa_rt::Trap::User(_))
            | safetsa_vm::VmError::Uncaught(safetsa_rt::Trap::OutOfMemory)
    ));
}

#[test]
fn profiler_samples_hot_functions_deterministically() {
    let src = "class A {
         static int hot() { int s = 0; for (int i = 0; i < 20000; i++) s += i; return s; }
         static int main() { return hot(); }
     }";
    let profile_of = || {
        let prog = compile(src).expect("compiles");
        let lowered = lower_program(&prog).expect("lowers");
        verify_module(&lowered.module).expect("verifies");
        let mut vm = Vm::load(&lowered.module).expect("loads");
        vm.enable_profiler(1);
        vm.run_entry("A.main").expect("runs");
        let p = vm.take_profile();
        assert!(vm.profile().is_empty(), "take_profile leaves an empty one");
        p
    };
    let p = profile_of();
    assert!(p.samples > 10, "loop body must cross many slices: {p:?}");
    assert_eq!(p.top_function().unwrap().0, "A.hot");
    assert!(!p.pairs.is_empty(), "opcode window must yield pairs");
    // Samples land at instruction-count boundaries, not timer ticks, so
    // a deterministic program profiles identically on every run.
    assert_eq!(p, profile_of());
}

#[test]
fn profiler_off_means_no_samples_and_no_slice_cost() {
    let (_, _) = run(
        "class A { static int main() {
             int s = 0; for (int i = 0; i < 5000; i++) s += i; return s;
         } }",
        "A.main",
    );
    let prog = compile("class A { static int main() { return 1; } }").unwrap();
    let lowered = lower_program(&prog).unwrap();
    verify_module(&lowered.module).unwrap();
    let mut vm = Vm::load(&lowered.module).unwrap();
    vm.run_entry("A.main").unwrap();
    assert!(vm.profile().is_empty());
}

#[test]
fn profiler_survives_a_deadline_kill() {
    // The at-kill-time sample: a spin killed by the deadline must still
    // carry hot-function evidence, because sampling happens at the
    // slice boundary *before* the deadline check.
    let prog = compile(
        "class A { static int main() { int i = 0; while (true) { i = i + 1; } } }",
    )
    .expect("compiles");
    let lowered = lower_program(&prog).expect("lowers");
    verify_module(&lowered.module).expect("verifies");
    let mut vm = Vm::load(&lowered.module).expect("loads");
    vm.enable_profiler(1);
    vm.set_deadline(std::time::Instant::now() + std::time::Duration::from_millis(20));
    let err = vm.run_entry("A.main").unwrap_err();
    assert!(matches!(err, safetsa_vm::VmError::DeadlineExceeded));
    let p = vm.profile();
    assert!(p.samples > 0, "kill-time sample missing: {p:?}");
    assert_eq!(p.top_function().unwrap().0, "A.main");
}

#[test]
fn profiles_merge_additively() {
    let mut a = safetsa_vm::VmProfile::default();
    a.every_slices = 4;
    a.samples = 3;
    a.hot.insert("A.f".into(), 3);
    a.pairs.insert("add>mul".into(), 2);
    let mut b = safetsa_vm::VmProfile::default();
    b.every_slices = 4;
    b.samples = 5;
    b.hot.insert("A.f".into(), 1);
    b.hot.insert("B.g".into(), 5);
    a.merge(&b);
    assert_eq!(a.samples, 8);
    assert_eq!(a.hot["A.f"], 4);
    assert_eq!(a.top_function().unwrap(), ("B.g", 5));
}
