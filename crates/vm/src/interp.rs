//! The SafeTSA interpreter.

use safetsa_core::cst::Cst;
use safetsa_core::function::{Function, ENTRY};
use safetsa_core::instr::Instr;
use safetsa_core::module::{FuncId, Module};
use safetsa_core::primops;
use safetsa_core::types::{ClassId, MethodKind, MethodRef, PrimKind, TypeId, TypeKind};
use safetsa_core::value::{BlockId, Literal, ValueId};
use safetsa_rt::heap::{ArrData, Obj};
use safetsa_rt::layout::{ClassShape, Layout, Statics};
use safetsa_rt::{intrinsics, Heap, HeapRef, Output, Trap, Value};
use safetsa_telemetry::{Json, Telemetry};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::time::Instant;

/// A VM-level failure: loading problems, uncaught traps, or an
/// exhausted non-catchable budget.
#[derive(Debug, Clone, PartialEq)]
pub enum VmError {
    /// The module referenced a host class/method the VM does not know.
    Load(String),
    /// Execution trapped and no handler caught it.
    Uncaught(Trap),
    /// The instruction budget ran out. Unlike the heap and depth
    /// budgets, fuel exhaustion is not catchable by governed code (a
    /// handler would itself need fuel), so it surfaces as its own
    /// variant rather than an exception object.
    FuelExhausted,
    /// Execution ran past the wall-clock deadline set with
    /// [`Vm::set_deadline`]. Like fuel exhaustion this is an engine
    /// abort, never a catchable guest exception.
    DeadlineExceeded,
    /// The VM detected an internal inconsistency — never expected for
    /// verified modules; reported instead of panicking so embedders
    /// stay in control.
    Internal(String),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Load(s) => write!(f, "load error: {s}"),
            VmError::Uncaught(t) => write!(f, "uncaught exception: {t}"),
            VmError::FuelExhausted => write!(f, "fuel exhausted"),
            VmError::DeadlineExceeded => write!(f, "deadline exceeded"),
            VmError::Internal(s) => write!(f, "internal error: {s}"),
        }
    }
}

impl std::error::Error for VmError {}

fn vm_err(t: Trap) -> VmError {
    match t {
        Trap::OutOfFuel => VmError::FuelExhausted,
        Trap::DeadlineExceeded => VmError::DeadlineExceeded,
        Trap::Internal(s) => VmError::Internal(s),
        t => VmError::Uncaught(t),
    }
}

/// Resource budgets governing one VM. `None`/`Default` means
/// unlimited. Heap and depth exhaustion become catchable
/// `OutOfMemoryError`/`StackOverflowError` exceptions inside governed
/// code; fuel exhaustion aborts the entry point with
/// [`VmError::FuelExhausted`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceLimits {
    /// Instruction budget; each executed instruction costs one unit.
    pub fuel: Option<u64>,
    /// Heap budget in modelled bytes (see `safetsa_rt::heap`'s size
    /// model: 16-byte headers, 8 bytes per field/reference).
    pub max_heap_bytes: Option<u64>,
    /// Maximum guest call depth (each active `call` counts one).
    pub max_call_depth: Option<u32>,
}

impl ResourceLimits {
    /// Unlimited budgets.
    pub fn unlimited() -> Self {
        Self::default()
    }
}

/// Instructions executed between wall-clock deadline checks (the fuel
/// slice). Small enough that a 50ms deadline is enforced within a few
/// hundred microseconds of interpreter work, large enough that the
/// clock read never shows in profiles.
pub const DEADLINE_SLICE: u32 = 1024;

/// Which execution core runs guest code.
///
/// Both engines implement identical guest semantics (outputs, traps,
/// heap effects); they differ in dispatch strategy and in the
/// granularity of fuel/deadline accounting (see DESIGN.md "Interpreter
/// architecture").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Engine {
    /// The original match-on-`Instr` tree-walking interpreter, kept as
    /// the differential oracle. Per-instruction fuel accounting.
    Switch,
    /// The pre-decoded direct-threaded core: flat decoded-op arrays,
    /// superinstruction fusion, xdispatch inline caches, and
    /// block-granularity fuel accounting.
    #[default]
    Threaded,
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Engine::Switch => write!(f, "switch"),
            Engine::Threaded => write!(f, "threaded"),
        }
    }
}

impl std::str::FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "switch" => Ok(Engine::Switch),
            "threaded" => Ok(Engine::Threaded),
            other => Err(format!("unknown engine `{other}` (expected `switch` or `threaded`)")),
        }
    }
}

/// Dynamic execution statistics, collected only after
/// [`Vm::enable_stats`] — the interpreter's dispatch loop pays one
/// predictable branch otherwise. These are the *dynamic* counterparts
/// of the producer's static counters: how many checks actually
/// executed, which opcodes dominated, where allocation went.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VmStats {
    /// Executed-instruction histogram keyed by opcode mnemonic. A
    /// `BTreeMap` so exports are deterministically ordered.
    pub opcodes: BTreeMap<&'static str, u64>,
    /// `nullcheck` instructions executed (the paper's dynamic
    /// check-elimination quantity).
    pub null_checks: u64,
    /// `indexcheck` instructions executed.
    pub index_checks: u64,
    /// Guest calls performed (static, virtual, and intrinsic targets).
    pub calls: u64,
    /// Class instances allocated by guest `new`.
    pub objects_allocated: u64,
    /// Arrays allocated by guest `newarray`.
    pub arrays_allocated: u64,
    /// Traps materialized into exception objects (throws included).
    pub exceptions: u64,
    /// Superinstruction executions keyed by fused pair (`"a>b"`) —
    /// populated only by the threaded engine, which is the only engine
    /// with fused ops. Each fused execution also counts both
    /// constituents in `opcodes`, so the opcode histogram stays
    /// engine-invariant.
    pub fused: BTreeMap<&'static str, u64>,
}

/// How many instructions around the sample point feed the opcode-pair
/// histogram (the "opcode window").
pub(crate) const PROFILE_WINDOW: usize = 8;

/// A statistical execution profile collected by sampling at fuel-slice
/// boundaries (see [`Vm::enable_profiler`]). Every `every_slices`
/// slices — i.e. every `every_slices × DEADLINE_SLICE` executed
/// instructions — the profiler records the currently executing function
/// into the hot-function table and the window of instructions ending at
/// the sample point into the opcode-pair histogram. Sampling soundness:
/// the sample sites are a deterministic function of the instruction
/// stream (not of wall-clock timers), so a function's share of samples
/// converges on its share of executed instructions, and profiles from
/// repeated runs of deterministic programs are identical.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VmProfile {
    /// Fuel slices between samples (0 when the profiler is off).
    pub every_slices: u32,
    /// Samples taken.
    pub samples: u64,
    /// Samples per function name (the hot-function table). A `BTreeMap`
    /// so exports are deterministically ordered.
    pub hot: BTreeMap<String, u64>,
    /// Consecutive opcode pairs (`"a>b"`) seen in sample windows — the
    /// superinstruction-selection signal.
    pub pairs: BTreeMap<String, u64>,
}

impl VmProfile {
    /// Whether any samples were taken.
    pub fn is_empty(&self) -> bool {
        self.samples == 0
    }

    /// The most-sampled function, with its sample count.
    pub fn top_function(&self) -> Option<(&str, u64)> {
        self.hot
            .iter()
            .max_by_key(|(name, n)| (*n, std::cmp::Reverse(name.as_str())))
            .map(|(name, n)| (name.as_str(), *n))
    }

    /// Merges another profile into this one (sample counts add). Used
    /// for the serve daemon's per-tenant accumulation.
    pub fn merge(&mut self, other: &VmProfile) {
        if other.every_slices != 0 {
            self.every_slices = other.every_slices;
        }
        self.samples += other.samples;
        for (name, n) in &other.hot {
            *self.hot.entry(name.clone()).or_insert(0) += n;
        }
        for (pair, n) in &other.pairs {
            *self.pairs.entry(pair.clone()).or_insert(0) += n;
        }
    }

    /// Exports the profile as JSON:
    /// `{every_slices, samples, hot: {fn: n}, pairs: {"a>b": n}}`.
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("every_slices", Json::U64(u64::from(self.every_slices)));
        o.set("samples", Json::U64(self.samples));
        let mut hot = Json::obj();
        for (name, n) in &self.hot {
            hot.set(name, Json::U64(*n));
        }
        o.set("hot", hot);
        let mut pairs = Json::obj();
        for (pair, n) in &self.pairs {
            pairs.set(pair, Json::U64(*n));
        }
        o.set("pairs", pairs);
        o
    }

    /// Records one sample: the executing function plus the opcode pairs
    /// in `window` — the dynamically executed opcode sequence ending at
    /// the sample point (it crosses block and call boundaries, unlike a
    /// static window, so the pairs reflect real dispatch adjacency).
    pub(crate) fn sample(&mut self, name: &str, window: &[&'static str]) {
        self.samples += 1;
        match self.hot.get_mut(name) {
            Some(n) => *n += 1,
            None => {
                self.hot.insert(name.to_string(), 1);
            }
        }
        for w in window.windows(2) {
            let key = format!("{}>{}", w[0], w[1]);
            *self.pairs.entry(key).or_insert(0) += 1;
        }
    }
}

/// Built-in exception classes resolved at load time.
#[derive(Debug, Clone, Copy)]
struct ExcClasses {
    arithmetic: ClassId,
    null_pointer: ClassId,
    index: ClassId,
    cast: ClassId,
    negative: ClassId,
    oom: ClassId,
    stack_overflow: ClassId,
}

/// The SafeTSA virtual machine.
pub struct Vm<'m> {
    pub(crate) module: &'m Module,
    pub(crate) layout: Layout,
    pub(crate) statics: Statics,
    /// Per-class vtable: slot → (class, method index) — derived by the
    /// consumer from the slot assignments in the type table.
    pub(crate) vtables: Vec<Vec<(ClassId, u32)>>,
    /// Per-class flattened instance-field default values.
    field_defaults: Vec<Vec<Value>>,
    exc: ExcClasses,
    pub(crate) string_class: ClassId,
    /// Interned string literals.
    str_pool: HashMap<String, HeapRef>,
    /// The heap.
    pub heap: Heap,
    /// Captured program output.
    pub output: Output,
    /// Remaining execution budget (instructions).
    pub fuel: u64,
    /// Instructions executed (for benchmarks).
    pub steps: u64,
    /// Current guest call depth.
    pub(crate) depth: u32,
    /// Deepest guest call depth observed (for the resource report).
    pub(crate) peak_depth: u32,
    /// Call-depth budget, if any.
    pub(crate) max_depth: Option<u32>,
    /// Wall-clock deadline, checked every [`DEADLINE_SLICE`] executed
    /// instructions (the "fuel slice"): the dispatch loop stays free of
    /// clock reads except at slice boundaries, so an unset deadline
    /// costs one predictable branch per instruction.
    pub(crate) deadline: Option<Instant>,
    /// Whether the dispatch loop counts down fuel slices at all — true
    /// when a deadline is set or the profiler is on. Both piggyback on
    /// the same slice countdown, so their combined per-instruction cost
    /// is still one predictable branch.
    pub(crate) slice_active: bool,
    /// Instructions remaining in the current deadline slice.
    pub(crate) slice_left: u32,
    /// Slice-boundary clock reads performed (resource-report quantity).
    pub(crate) deadline_checks: u64,
    /// Fuel slices between profiler samples (0 = profiler off).
    pub(crate) profile_every: u32,
    /// Slices remaining until the next profiler sample.
    pub(crate) profile_countdown: u32,
    /// Ring of the most recently executed opcode mnemonics (the
    /// profiler's opcode window), maintained only while profiling.
    pub(crate) profile_ring: [&'static str; PROFILE_WINDOW],
    /// Valid entries in `profile_ring` (saturates at the window size).
    pub(crate) profile_ring_len: u8,
    /// Next write position in `profile_ring`.
    pub(crate) profile_ring_idx: u8,
    /// The sampling profile (empty until [`Vm::enable_profiler`]).
    pub(crate) profile: VmProfile,
    /// Whether the dispatch loop updates [`VmStats`].
    pub(crate) collect_stats: bool,
    /// Dynamic counters (empty until [`Vm::enable_stats`]).
    pub(crate) stats: VmStats,
    /// Which execution core `call` dispatches into.
    pub(crate) engine: Engine,
    /// Lazily decoded direct-threaded code, one slot per function
    /// (`Rc` so the executing loop can hold the code while ops mutate
    /// the VM).
    pub(crate) tcode: Vec<Option<std::rc::Rc<crate::threaded::TFunc>>>,
    /// `xdispatch` inline-cache guard hits (threaded engine only).
    pub(crate) icache_hits: u64,
    /// `xdispatch` inline-cache guard misses, i.e. vtable walks
    /// (threaded engine only).
    pub(crate) icache_misses: u64,
    /// Reusable staging buffer for the threaded engine's parallel phi
    /// copies.
    pub(crate) moves_scratch: Vec<Value>,
}

struct Frame {
    values: Vec<Option<Value>>,
    last_block: BlockId,
    pending_exc: Option<HeapRef>,
}

enum Flow {
    Normal,
    Break(u32),
    Continue(u32),
    Return(Option<Value>),
}

impl<'m> Vm<'m> {
    /// Loads a module: derives vtables, layouts, statics, and resolves
    /// the built-in exception classes. Call
    /// [`safetsa_core::verify::verify_module`] first; the VM assumes a
    /// verified module.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::Load`] if a required host class is missing.
    pub fn load(module: &'m Module) -> Result<Self, VmError> {
        let types = &module.types;
        let n = types.class_count();
        let find = |name: &str| -> Result<ClassId, VmError> {
            types
                .classes()
                .find(|(_, c)| c.name == name)
                .map(|(id, _)| id)
                .ok_or_else(|| VmError::Load(format!("missing host class {name}")))
        };
        let exc = ExcClasses {
            arithmetic: find("ArithmeticException")?,
            null_pointer: find("NullPointerException")?,
            index: find("IndexOutOfBoundsException")?,
            cast: find("ClassCastException")?,
            negative: find("NegativeArraySizeException")?,
            oom: find("OutOfMemoryError")?,
            stack_overflow: find("StackOverflowError")?,
        };
        // Layout.
        let shapes: Vec<ClassShape> = (0..n)
            .map(|i| {
                let c = types.class(ClassId(i as u32));
                ClassShape {
                    superclass: c.superclass.map(|s| s.index()),
                    instance_fields: c.fields.iter().filter(|f| !f.is_static).count(),
                    static_fields: c.fields.len(),
                }
            })
            .collect();
        let layout = Layout::build(&shapes);
        let statics = Statics::build(&shapes);
        // Vtables: parents before children via recursion.
        let mut vtables: Vec<Option<Vec<(ClassId, u32)>>> = vec![None; n];
        fn build_vtable(
            i: usize,
            types: &safetsa_core::TypeTable,
            vtables: &mut Vec<Option<Vec<(ClassId, u32)>>>,
        ) -> Vec<(ClassId, u32)> {
            if let Some(v) = &vtables[i] {
                return v.clone();
            }
            let c = types.class(ClassId(i as u32));
            let mut table = match c.superclass {
                Some(s) => build_vtable(s.index(), types, vtables),
                None => Vec::new(),
            };
            for (mi, m) in c.methods.iter().enumerate() {
                if let Some(slot) = m.vtable_slot {
                    let slot = slot as usize;
                    if table.len() <= slot {
                        table.resize(slot + 1, (ClassId(i as u32), mi as u32));
                    }
                    table[slot] = (ClassId(i as u32), mi as u32);
                }
            }
            vtables[i] = Some(table.clone());
            table
        }
        for i in 0..n {
            build_vtable(i, types, &mut vtables);
        }
        let vtables: Vec<Vec<(ClassId, u32)>> =
            vtables.into_iter().map(|v| v.expect("built")).collect();
        // Flattened field defaults.
        let mut field_defaults = Vec::with_capacity(n);
        for i in 0..n {
            let mut flat: Vec<Value> = Vec::new();
            let mut chain = Vec::new();
            let mut cur = Some(ClassId(i as u32));
            while let Some(c) = cur {
                chain.push(c);
                cur = types.class(c).superclass;
            }
            for c in chain.into_iter().rev() {
                for f in &types.class(c).fields {
                    if !f.is_static {
                        flat.push(default_value(types, f.ty));
                    }
                }
            }
            field_defaults.push(flat);
        }
        let mut vm = Vm {
            module,
            layout,
            statics,
            vtables,
            field_defaults,
            exc,
            string_class: module.well_known.string,
            str_pool: HashMap::new(),
            heap: Heap::new(),
            output: Output::new(),
            fuel: u64::MAX,
            steps: 0,
            depth: 0,
            peak_depth: 0,
            max_depth: None,
            deadline: None,
            slice_active: false,
            slice_left: 0,
            deadline_checks: 0,
            profile_every: 0,
            profile_countdown: 0,
            profile_ring: [""; PROFILE_WINDOW],
            profile_ring_len: 0,
            profile_ring_idx: 0,
            profile: VmProfile::default(),
            collect_stats: false,
            stats: VmStats::default(),
            engine: Engine::default(),
            tcode: vec![None; module.functions.len()],
            icache_hits: 0,
            icache_misses: 0,
            moves_scratch: Vec::new(),
        };
        // Typed defaults for statics, then run the static initializers.
        for i in 0..n {
            let c = types.class(ClassId(i as u32));
            for (k, f) in c.fields.iter().enumerate() {
                if f.is_static {
                    let d = default_value(types, f.ty);
                    vm.statics.init_default(i, k, d);
                }
            }
        }
        Ok(vm)
    }

    /// Runs every `<clinit>` in class declaration order (done lazily so
    /// callers can set a fuel budget first).
    ///
    /// # Errors
    ///
    /// Propagates uncaught traps from initializers.
    pub fn run_clinits(&mut self) -> Result<(), VmError> {
        for (id, class) in self.module.types.classes() {
            let _ = id;
            for m in &class.methods {
                if m.name == "<clinit>" {
                    if let Some(body) = m.body {
                        self.call(FuncId(body), vec![]).map_err(vm_err)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Sets the execution budget in instructions.
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// Sets a wall-clock deadline. The dispatch loop checks the clock
    /// once per [`DEADLINE_SLICE`] executed instructions; when the
    /// deadline has passed, execution aborts with
    /// [`VmError::DeadlineExceeded`] — uncatchable by governed code,
    /// exactly like fuel exhaustion. Bounded staleness: the abort
    /// happens at most one slice of instructions past the deadline.
    pub fn set_deadline(&mut self, deadline: Instant) {
        self.deadline = Some(deadline);
        self.slice_active = true;
        self.slice_left = DEADLINE_SLICE;
    }

    /// Clears any wall-clock deadline (the slice countdown stays on if
    /// the profiler still needs it).
    pub fn clear_deadline(&mut self) {
        self.deadline = None;
        self.slice_active = self.profile_every != 0;
    }

    /// Turns on the sampling profiler: every `every_slices` fuel slices
    /// (of [`DEADLINE_SLICE`] instructions each) the dispatch loop
    /// records the current function and opcode window into a
    /// [`VmProfile`]. `every_slices` of 0 disables sampling.
    pub fn enable_profiler(&mut self, every_slices: u32) {
        self.profile_every = every_slices;
        self.profile_countdown = every_slices;
        self.profile.every_slices = every_slices;
        if every_slices != 0 {
            self.slice_active = true;
            if self.slice_left == 0 {
                self.slice_left = DEADLINE_SLICE;
            }
        } else {
            self.slice_active = self.deadline.is_some();
        }
    }

    /// The sampling profile collected so far.
    pub fn profile(&self) -> &VmProfile {
        &self.profile
    }

    /// Takes the sampling profile, leaving an empty one behind.
    pub fn take_profile(&mut self) -> VmProfile {
        std::mem::take(&mut self.profile)
    }

    /// Applies a full set of resource budgets (fuel, heap bytes, call
    /// depth). Unset budgets are unlimited.
    pub fn set_limits(&mut self, limits: ResourceLimits) {
        self.fuel = limits.fuel.unwrap_or(u64::MAX);
        self.heap.set_budget(limits.max_heap_bytes);
        self.max_depth = limits.max_call_depth;
    }

    /// The deepest guest call depth observed so far.
    pub fn peak_depth(&self) -> u32 {
        self.peak_depth
    }

    /// Selects the execution core for subsequent calls. Both engines
    /// implement identical guest semantics; [`Engine::Threaded`] is the
    /// default, [`Engine::Switch`] is the differential oracle.
    pub fn set_engine(&mut self, engine: Engine) {
        self.engine = engine;
    }

    /// The currently selected execution core.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// `xdispatch` inline-cache guard hits so far (threaded engine;
    /// always zero under the switch oracle).
    pub fn icache_hits(&self) -> u64 {
        self.icache_hits
    }

    /// `xdispatch` inline-cache guard misses (vtable walks) so far.
    pub fn icache_misses(&self) -> u64 {
        self.icache_misses
    }

    /// Turns on dynamic statistics collection (opcode histogram, check
    /// and allocation counters). Off by default so uninstrumented runs
    /// pay only one branch per instruction.
    pub fn enable_stats(&mut self) {
        self.collect_stats = true;
    }

    /// The dynamic counters collected so far (all zero unless
    /// [`Vm::enable_stats`] was called before running).
    pub fn stats(&self) -> &VmStats {
        &self.stats
    }

    /// Exports the VM plane into a telemetry registry: resource-report
    /// quantities (`vm.steps`, `vm.fuel_remaining`, `vm.peak_depth`,
    /// `vm.heap.bytes_allocated`, `vm.heap.objects`) plus — when stats
    /// collection was enabled — the opcode execution histogram
    /// (`vm.opcodes.*`) and the dynamic check/allocation/call counters.
    pub fn export_metrics(&self, tm: &Telemetry) {
        if !tm.is_enabled() {
            return;
        }
        tm.set("vm.steps", self.steps);
        tm.set("vm.fuel_remaining", self.fuel);
        tm.set("vm.peak_depth", u64::from(self.peak_depth));
        if self.deadline.is_some() {
            tm.set("vm.deadline.slice_checks", self.deadline_checks);
        }
        if self.profile_every != 0 {
            tm.set("vm.profile.samples", self.profile.samples);
        }
        tm.set("vm.heap.bytes_allocated", self.heap.bytes_allocated());
        tm.set("vm.heap.objects", self.heap.len() as u64);
        if self.engine == Engine::Threaded {
            tm.set("vm.icache.hits", self.icache_hits);
            tm.set("vm.icache.misses", self.icache_misses);
        }
        if self.collect_stats {
            tm.set("vm.calls", self.stats.calls);
            tm.set("vm.dynamic_checks.null", self.stats.null_checks);
            tm.set("vm.dynamic_checks.index", self.stats.index_checks);
            tm.set("vm.alloc.objects", self.stats.objects_allocated);
            tm.set("vm.alloc.arrays", self.stats.arrays_allocated);
            tm.set("vm.exceptions", self.stats.exceptions);
            for (op, n) in &self.stats.opcodes {
                tm.set(&format!("vm.opcodes.{op}"), *n);
            }
            for (pair, n) in &self.stats.fused {
                tm.set(&format!("vm.dispatch.fused.{pair}"), *n);
            }
        }
    }

    /// Runs static initializers and then the named function
    /// (`"Class.method"`), returning its result.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::Load`] for unknown entry points and
    /// [`VmError::Uncaught`] for escaping exceptions.
    pub fn run_entry(&mut self, name: &str) -> Result<Option<Value>, VmError> {
        self.run_clinits()?;
        let f = self
            .module
            .find_function(name)
            .ok_or_else(|| VmError::Load(format!("no function named {name}")))?;
        self.call(f, vec![]).map_err(vm_err)
    }

    /// Calls a function with already-evaluated arguments. Counts one
    /// unit of guest call depth against the stack budget; the depth is
    /// restored on every exit path, so a trapped VM stays consistent
    /// and can run another entry point.
    ///
    /// # Errors
    ///
    /// Returns the trap if execution traps (caught by enclosing
    /// handlers when called from inside `exec`).
    pub fn call(&mut self, fid: FuncId, args: Vec<Value>) -> Result<Option<Value>, Trap> {
        if let Some(max) = self.max_depth {
            if self.depth >= max {
                return Err(Trap::StackOverflow);
            }
        }
        if self.collect_stats {
            self.stats.calls += 1;
        }
        self.depth += 1;
        self.peak_depth = self.peak_depth.max(self.depth);
        let r = self.call_inner(fid, args);
        self.depth -= 1;
        r
    }

    fn call_inner(&mut self, fid: FuncId, args: Vec<Value>) -> Result<Option<Value>, Trap> {
        if self.engine == Engine::Threaded {
            return self.call_threaded(fid, args);
        }
        let module: &'m Module = self.module;
        let f = module.function(fid);
        let mut frame = Frame {
            values: vec![None; f.values.len()],
            last_block: ENTRY,
            pending_exc: None,
        };
        debug_assert_eq!(args.len(), f.params.len());
        for (i, a) in args.into_iter().enumerate() {
            frame.values[i] = Some(a);
        }
        for (i, c) in f.consts.iter().enumerate() {
            let v = self.literal(&c.lit)?;
            frame.values[f.const_value(i).index()] = Some(v);
        }
        match self.exec(f, &mut frame, &f.body)? {
            Flow::Return(v) => Ok(v),
            Flow::Normal => Ok(None), // void fall-through (verified)
            _ => Err(Trap::Internal("break/continue escaped function".into())),
        }
    }

    pub(crate) fn literal(&mut self, lit: &Literal) -> Result<Value, Trap> {
        Ok(match lit {
            Literal::Bool(b) => Value::Z(*b),
            Literal::Char(c) => Value::C(*c),
            Literal::Int(v) => Value::I(*v),
            Literal::Long(v) => Value::J(*v),
            Literal::Float(v) => Value::F(*v),
            Literal::Double(v) => Value::D(*v),
            Literal::Null => Value::NULL,
            Literal::Str(s) => {
                if let Some(&r) = self.str_pool.get(s) {
                    return Ok(Value::Ref(Some(r)));
                }
                let r = self.heap.try_alloc_str(s.clone())?;
                self.str_pool.insert(s.clone(), r);
                Value::Ref(Some(r))
            }
        })
    }

    fn exec(&mut self, f: &Function, frame: &mut Frame, cst: &Cst) -> Result<Flow, Trap> {
        match cst {
            Cst::Basic(b) => {
                self.enter_block(f, frame, *b)?;
                Ok(Flow::Normal)
            }
            Cst::Seq(items) => {
                for c in items {
                    match self.exec(f, frame, c)? {
                        Flow::Normal => {}
                        other => return Ok(other),
                    }
                }
                Ok(Flow::Normal)
            }
            Cst::If {
                cond,
                then_br,
                else_br,
                join,
            } => {
                let c = frame_get(frame, *cond)?.as_z();
                let flow = if c {
                    self.exec(f, frame, then_br)?
                } else {
                    self.exec(f, frame, else_br)?
                };
                match flow {
                    Flow::Normal => {
                        self.enter_block(f, frame, *join)?;
                        Ok(Flow::Normal)
                    }
                    other => Ok(other),
                }
            }
            Cst::Loop { header, body } => loop {
                self.enter_block(f, frame, *header)?;
                match self.exec(f, frame, body)? {
                    Flow::Normal => continue,
                    Flow::Continue(0) => continue,
                    Flow::Continue(n) => return Ok(Flow::Continue(n - 1)),
                    Flow::Break(n) => return Ok(Flow::Break(n)),
                    ret @ Flow::Return(_) => return Ok(ret),
                }
            },
            Cst::Labeled { body, join } => match self.exec(f, frame, body)? {
                Flow::Normal | Flow::Break(0) => {
                    self.enter_block(f, frame, *join)?;
                    Ok(Flow::Normal)
                }
                Flow::Break(n) => Ok(Flow::Break(n - 1)),
                other => Ok(other),
            },
            Cst::Break(n) => Ok(Flow::Break(*n)),
            Cst::Continue(n) => Ok(Flow::Continue(*n)),
            Cst::Return(v) => Ok(Flow::Return(v.map(|v| frame_get(frame, v)).transpose()?)),
            Cst::Throw(v) => match frame_get(frame, v_copy(*v))?.as_ref() {
                None => Err(Trap::NullPointer),
                Some(r) => Err(Trap::User(r)),
            },
            Cst::Try {
                body,
                handler_entry,
                handler,
                join,
            } => match self.exec(f, frame, body) {
                Ok(Flow::Normal) => {
                    self.enter_block(f, frame, *join)?;
                    Ok(Flow::Normal)
                }
                Ok(other) => Ok(other),
                Err(trap) => {
                    let exc = self.trap_to_object(trap)?;
                    frame.pending_exc = Some(exc);
                    self.enter_block(f, frame, *handler_entry)?;
                    match self.exec(f, frame, handler)? {
                        Flow::Normal => {
                            self.enter_block(f, frame, *join)?;
                            Ok(Flow::Normal)
                        }
                        other => Ok(other),
                    }
                }
            },
        }
    }

    /// Turns a trap into an exception object (allocating the implicit
    /// runtime exception instances); internal/fuel traps propagate.
    /// The exception instance itself is allocated on the host-reserved
    /// path — in particular, materialising an `OutOfMemoryError` must
    /// not itself run out of memory.
    pub(crate) fn trap_to_object(&mut self, trap: Trap) -> Result<HeapRef, Trap> {
        if self.collect_stats {
            self.stats.exceptions += 1;
        }
        let class = match trap {
            Trap::User(r) => return Ok(r),
            Trap::DivByZero => self.exc.arithmetic,
            Trap::NullPointer => self.exc.null_pointer,
            Trap::IndexOutOfBounds => self.exc.index,
            Trap::ClassCast => self.exc.cast,
            Trap::NegativeArraySize => self.exc.negative,
            Trap::OutOfMemory => self.exc.oom,
            Trap::StackOverflow => self.exc.stack_overflow,
            t @ (Trap::Internal(_) | Trap::OutOfFuel | Trap::DeadlineExceeded) => return Err(t),
        };
        Ok(self.alloc_trap_instance(class))
    }

    /// Budget-governed instance allocation (`new` in guest code).
    pub(crate) fn alloc_instance(&mut self, class: ClassId) -> Result<HeapRef, Trap> {
        if self.collect_stats {
            self.stats.objects_allocated += 1;
        }
        let fields = self.field_defaults[class.index()].clone();
        self.heap.try_alloc(Obj::Instance {
            class: class.index(),
            fields,
            msg: None,
        })
    }

    /// Host-reserved instance allocation for trap exception objects:
    /// bypasses the budget (bytes are still accounted).
    fn alloc_trap_instance(&mut self, class: ClassId) -> HeapRef {
        let fields = self.field_defaults[class.index()].clone();
        self.heap.alloc(Obj::Instance {
            class: class.index(),
            fields,
            msg: None,
        })
    }

    /// Enters a block: parallel phi copies keyed by the dynamic
    /// predecessor, then the straight-line instructions.
    fn enter_block(&mut self, f: &Function, frame: &mut Frame, b: BlockId) -> Result<(), Trap> {
        let pred = frame.last_block;
        let block = f.block(b);
        if !block.phis.is_empty() {
            let mut staged = Vec::with_capacity(block.phis.len());
            for phi in &block.phis {
                let arg = phi
                    .arg_from(pred)
                    .ok_or_else(|| Trap::Internal(format!("phi in {b} has no arg from {pred}")))?;
                staged.push(frame_get(frame, arg)?);
            }
            for (k, v) in staged.into_iter().enumerate() {
                let result = f.phi_result(b, k);
                frame.values[result.index()] = Some(v);
            }
        }
        frame.last_block = b;
        for (k, instr) in block.instrs.iter().enumerate() {
            if self.fuel == 0 {
                return Err(Trap::OutOfFuel);
            }
            self.fuel -= 1;
            self.steps += 1;
            if self.slice_active {
                if self.profile_every != 0 {
                    self.profile_ring[self.profile_ring_idx as usize] = instr.mnemonic();
                    self.profile_ring_idx =
                        (self.profile_ring_idx + 1) % PROFILE_WINDOW as u8;
                    if (self.profile_ring_len as usize) < PROFILE_WINDOW {
                        self.profile_ring_len += 1;
                    }
                }
                self.slice_left -= 1;
                if self.slice_left == 0 {
                    self.slice_left = DEADLINE_SLICE;
                    // Sample before the deadline check so a request
                    // killed at this boundary still carries its
                    // at-kill-time hot-function sample.
                    if self.profile_every != 0 {
                        self.profile_countdown -= 1;
                        if self.profile_countdown == 0 {
                            self.profile_countdown = self.profile_every;
                            let mut window = [""; PROFILE_WINDOW];
                            let n = self.profile_ring_len as usize;
                            for (i, slot) in window[..n].iter_mut().enumerate() {
                                let src = (self.profile_ring_idx as usize
                                    + PROFILE_WINDOW
                                    - n
                                    + i)
                                    % PROFILE_WINDOW;
                                *slot = self.profile_ring[src];
                            }
                            self.profile.sample(&f.name, &window[..n]);
                        }
                    }
                    if let Some(deadline) = self.deadline {
                        self.deadline_checks += 1;
                        if Instant::now() >= deadline {
                            return Err(Trap::DeadlineExceeded);
                        }
                    }
                }
            }
            if self.collect_stats {
                // The check counters (`null_checks`/`index_checks`) are
                // attributed inside `step`'s match arms — one walk over
                // the instruction, not two.
                *self.stats.opcodes.entry(instr.mnemonic()).or_insert(0) += 1;
            }
            let result = self.step(frame, instr)?;
            if let Some(v) = result {
                let rv = f
                    .instr_result(b, k)
                    .ok_or_else(|| Trap::Internal("result for result-less instr".into()))?;
                frame.values[rv.index()] = Some(v);
            }
        }
        Ok(())
    }

    fn step(&mut self, frame: &mut Frame, instr: &Instr) -> Result<Option<Value>, Trap> {
        let types = &self.module.types;
        match instr {
            Instr::Primitive { ty, op, args } | Instr::XPrimitive { ty, op, args } => {
                let kind = match types.kind(*ty) {
                    TypeKind::Prim(k) => k,
                    _ => return Err(Trap::Internal("primitive on non-prim".into())),
                };
                let desc = primops::resolve(kind, *op)
                    .ok_or_else(|| Trap::Internal("unknown primop".into()))?;
                let a = frame_get_all(frame, args)?;
                prim_eval(kind, desc.name, &a).map(Some)
            }
            Instr::NullCheck { value, .. } => {
                if self.collect_stats {
                    self.stats.null_checks += 1;
                }
                let v = frame_get(frame, *value)?;
                match v.as_ref() {
                    None => Err(Trap::NullPointer),
                    Some(_) => Ok(Some(v)),
                }
            }
            Instr::IndexCheck { array, index, .. } => {
                if self.collect_stats {
                    self.stats.index_checks += 1;
                }
                let arr = frame_get(frame, *array)?.as_ref().ok_or(Trap::NullPointer)?;
                let i = frame_get(frame, *index)?.as_i();
                let len = match self.heap.get(arr) {
                    Obj::Array { data, .. } => data.len(),
                    _ => return Err(Trap::Internal("indexcheck on non-array".into())),
                };
                if i < 0 || i as usize >= len {
                    return Err(Trap::IndexOutOfBounds);
                }
                Ok(Some(Value::I(i)))
            }
            Instr::Upcast { to, value, .. } => {
                let v = frame_get(frame, *value)?;
                match v.as_ref() {
                    None => Ok(Some(v)), // null casts succeed
                    Some(r) => {
                        if self.ref_is_instance_of(r, *to) {
                            Ok(Some(v))
                        } else {
                            Err(Trap::ClassCast)
                        }
                    }
                }
            }
            Instr::Downcast { value, .. } => Ok(Some(frame_get(frame, *value)?)),
            Instr::GetField { object, field, .. } => {
                let r = frame_get(frame, *object)?
                    .as_ref()
                    .ok_or(Trap::NullPointer)?;
                let slot = self.instance_field_slot(field)?;
                match self.heap.get(r) {
                    Obj::Instance { fields, .. } => Ok(Some(fields[slot])),
                    _ => Err(Trap::Internal("getfield on non-instance".into())),
                }
            }
            Instr::SetField {
                object,
                field,
                value,
                ..
            } => {
                let r = frame_get(frame, *object)?
                    .as_ref()
                    .ok_or(Trap::NullPointer)?;
                let slot = self.instance_field_slot(field)?;
                let v = frame_get(frame, *value)?;
                match self.heap.get_mut(r) {
                    Obj::Instance { fields, .. } => {
                        fields[slot] = v;
                        Ok(None)
                    }
                    _ => Err(Trap::Internal("setfield on non-instance".into())),
                }
            }
            Instr::GetStatic { field } => Ok(Some(
                self.statics.get(field.class.index(), field.index as usize),
            )),
            Instr::SetStatic { field, value } => {
                let v = frame_get(frame, *value)?;
                self.statics
                    .set(field.class.index(), field.index as usize, v);
                Ok(None)
            }
            Instr::GetElt { array, index, .. } => {
                let r = frame_get(frame, *array)?.as_ref().ok_or(Trap::NullPointer)?;
                let i = frame_get(frame, *index)?.as_i() as usize;
                match self.heap.get(r) {
                    Obj::Array { data, .. } => data.get(i).map(Some),
                    _ => Err(Trap::Internal("getelt on non-array".into())),
                }
            }
            Instr::SetElt {
                array,
                index,
                value,
                ..
            } => {
                let r = frame_get(frame, *array)?.as_ref().ok_or(Trap::NullPointer)?;
                let i = frame_get(frame, *index)?.as_i() as usize;
                let v = frame_get(frame, *value)?;
                match self.heap.get_mut(r) {
                    Obj::Array { data, .. } => {
                        data.set(i, v)?;
                        Ok(None)
                    }
                    _ => Err(Trap::Internal("setelt on non-array".into())),
                }
            }
            Instr::ArrayLength { array, .. } => {
                let r = frame_get(frame, *array)?.as_ref().ok_or(Trap::NullPointer)?;
                match self.heap.get(r) {
                    Obj::Array { data, .. } => Ok(Some(Value::I(data.len() as i32))),
                    _ => Err(Trap::Internal("arraylength on non-array".into())),
                }
            }
            Instr::New { class_ty } => {
                let class = match types.kind(*class_ty) {
                    TypeKind::Class(c) => c,
                    _ => return Err(Trap::Internal("new on non-class".into())),
                };
                let r = self.alloc_instance(class)?;
                Ok(Some(Value::Ref(Some(r))))
            }
            Instr::NewArray { arr_ty, length } => {
                let len = frame_get(frame, *length)?.as_i();
                if len < 0 {
                    return Err(Trap::NegativeArraySize);
                }
                // Reserve against the budget from the projected size
                // BEFORE building the element vector, so a hostile
                // `new int[1 << 30]` is rejected without the host ever
                // committing gigabytes.
                let width = self.array_elem_width(*arr_ty)?;
                self.heap
                    .try_reserve(safetsa_rt::heap::array_size_bytes(width, len as u64))?;
                if self.collect_stats {
                    self.stats.arrays_allocated += 1;
                }
                let data = self.fresh_array_data(*arr_ty, len as usize)?;
                let r = self.heap.alloc(Obj::Array {
                    type_tag: arr_ty.0 as u64,
                    data,
                });
                Ok(Some(Value::Ref(Some(r))))
            }
            Instr::XCall {
                method,
                receiver,
                args,
                ..
            } => {
                let recv = receiver.map(|r| frame_get(frame, r)).transpose()?;
                let argv = frame_get_all(frame, args)?;
                self.invoke_static_target(*method, recv, argv)
            }
            Instr::XDispatch {
                method,
                receiver,
                args,
                ..
            } => {
                let recv = frame_get(frame, *receiver)?;
                let argv = frame_get_all(frame, args)?;
                self.invoke_virtual(*method, recv, argv)
            }
            Instr::RefEq { a, b, .. } => {
                let x = frame_get(frame, *a)?.as_ref();
                let y = frame_get(frame, *b)?.as_ref();
                Ok(Some(Value::Z(x == y)))
            }
            Instr::InstanceOf { target, value, .. } => {
                let v = frame_get(frame, *value)?;
                let res = match v.as_ref() {
                    None => false,
                    Some(r) => self.ref_is_instance_of(r, *target),
                };
                Ok(Some(Value::Z(res)))
            }
            Instr::Catch { .. } => {
                let exc = frame
                    .pending_exc
                    .take()
                    .ok_or_else(|| Trap::Internal("catch without pending exception".into()))?;
                Ok(Some(Value::Ref(Some(exc))))
            }
        }
    }

    pub(crate) fn instance_field_slot(&self, field: &safetsa_core::types::FieldRef) -> Result<usize, Trap> {
        // Flattened slot: base of declaring class + index among its
        // instance fields.
        let class = field.class;
        let c = self.module.types.class(class);
        let before: usize = c.fields[..field.index as usize]
            .iter()
            .filter(|f| !f.is_static)
            .count();
        Ok(self.layout.field_slot(class.index(), before))
    }

    /// The element storage width in bytes of an array type, used to
    /// project allocation size before the elements exist.
    pub(crate) fn array_elem_width(&self, arr_ty: TypeId) -> Result<u64, Trap> {
        let elem = self
            .module
            .types
            .array_elem(arr_ty)
            .ok_or_else(|| Trap::Internal("newarray on non-array type".into()))?;
        Ok(match self.module.types.kind(elem) {
            TypeKind::Prim(PrimKind::Bool) => 1,
            TypeKind::Prim(PrimKind::Char) => 2,
            TypeKind::Prim(PrimKind::Int) | TypeKind::Prim(PrimKind::Float) => 4,
            _ => 8,
        })
    }

    pub(crate) fn fresh_array_data(&self, arr_ty: TypeId, len: usize) -> Result<ArrData, Trap> {
        let elem = self
            .module
            .types
            .array_elem(arr_ty)
            .ok_or_else(|| Trap::Internal("newarray on non-array type".into()))?;
        Ok(match self.module.types.kind(elem) {
            TypeKind::Prim(PrimKind::Bool) => ArrData::Z(vec![false; len]),
            TypeKind::Prim(PrimKind::Char) => ArrData::C(vec![0; len]),
            TypeKind::Prim(PrimKind::Int) => ArrData::I(vec![0; len]),
            TypeKind::Prim(PrimKind::Long) => ArrData::J(vec![0; len]),
            TypeKind::Prim(PrimKind::Float) => ArrData::F(vec![0.0; len]),
            TypeKind::Prim(PrimKind::Double) => ArrData::D(vec![0.0; len]),
            _ => ArrData::R(vec![None; len]),
        })
    }

    /// `instanceof`/cast test for a heap reference against a reference
    /// type (class or array).
    pub(crate) fn ref_is_instance_of(&self, r: HeapRef, target: TypeId) -> bool {
        let types = &self.module.types;
        match (self.heap.get(r), types.kind(target)) {
            (Obj::Instance { class, .. }, TypeKind::Class(t)) => {
                types.is_subclass(ClassId(*class as u32), t)
            }
            (Obj::Str(_), TypeKind::Class(t)) => types.is_subclass(self.string_class, t),
            (Obj::Array { .. }, TypeKind::Class(t)) => types.class(t).superclass.is_none(),
            (Obj::Array { type_tag, .. }, TypeKind::Array(_)) => *type_tag == target.0 as u64,
            _ => false,
        }
    }

    pub(crate) fn invoke_static_target(
        &mut self,
        method: MethodRef,
        recv: Option<Value>,
        args: Vec<Value>,
    ) -> Result<Option<Value>, Trap> {
        let info = self
            .module
            .types
            .method(method)
            .ok_or_else(|| Trap::Internal("bad method ref".into()))?;
        if let Some(body) = info.body {
            let mut all = Vec::with_capacity(args.len() + 1);
            if let Some(r) = recv {
                all.push(r);
            }
            all.extend(args);
            return self.call(FuncId(body), all);
        }
        self.invoke_intrinsic(method.class, method, recv, &args)
    }

    pub(crate) fn invoke_virtual(
        &mut self,
        method: MethodRef,
        recv: Value,
        args: Vec<Value>,
    ) -> Result<Option<Value>, Trap> {
        let info = self
            .module
            .types
            .method(method)
            .ok_or_else(|| Trap::Internal("bad method ref".into()))?;
        let slot = info
            .vtable_slot
            .ok_or_else(|| Trap::Internal("xdispatch without slot".into()))?
            as usize;
        let r = recv.as_ref().ok_or(Trap::NullPointer)?;
        let runtime_class = match self.heap.get(r) {
            Obj::Instance { class, .. } => ClassId(*class as u32),
            Obj::Str(_) => self.string_class,
            Obj::Array { .. } => self.module.well_known.object,
        };
        let (impl_class, impl_idx) = self.vtables[runtime_class.index()][slot];
        let target = MethodRef {
            class: impl_class,
            index: impl_idx,
        };
        let impl_info = self
            .module
            .types
            .method(target)
            .ok_or_else(|| Trap::Internal("bad vtable entry".into()))?;
        if let Some(body) = impl_info.body {
            let mut all = Vec::with_capacity(args.len() + 1);
            all.push(recv);
            all.extend(args);
            return self.call(FuncId(body), all);
        }
        self.invoke_intrinsic(impl_class, target, Some(recv), &args)
    }

    pub(crate) fn invoke_intrinsic(
        &mut self,
        class: ClassId,
        method: MethodRef,
        recv: Option<Value>,
        args: &[Value],
    ) -> Result<Option<Value>, Trap> {
        let types = &self.module.types;
        let cinfo = types.class(class);
        let minfo = types
            .method(method)
            .ok_or_else(|| Trap::Internal("bad method ref".into()))?;
        let sig: String = minfo.params.iter().map(|p| sig_letter(types, *p)).collect();
        let kind_is_static = minfo.kind == MethodKind::Static;
        let i = intrinsics::resolve(&cinfo.name, &minfo.name, &sig).ok_or_else(|| {
            Trap::Internal(format!(
                "no intrinsic for {}.{}({sig})",
                cinfo.name, minfo.name
            ))
        })?;
        let recv = if kind_is_static { None } else { recv };
        intrinsics::invoke(i, &mut self.heap, &mut self.output, recv, args)
    }
}

pub(crate) fn sig_letter(types: &safetsa_core::TypeTable, ty: TypeId) -> char {
    match types.kind(ty) {
        TypeKind::Prim(PrimKind::Bool) => 'Z',
        TypeKind::Prim(PrimKind::Char) => 'C',
        TypeKind::Prim(PrimKind::Int) => 'I',
        TypeKind::Prim(PrimKind::Long) => 'J',
        TypeKind::Prim(PrimKind::Float) => 'F',
        TypeKind::Prim(PrimKind::Double) => 'D',
        _ => 'L',
    }
}

fn default_value(types: &safetsa_core::TypeTable, ty: TypeId) -> Value {
    match types.kind(ty) {
        TypeKind::Prim(PrimKind::Bool) => Value::Z(false),
        TypeKind::Prim(PrimKind::Char) => Value::C(0),
        TypeKind::Prim(PrimKind::Int) => Value::I(0),
        TypeKind::Prim(PrimKind::Long) => Value::J(0),
        TypeKind::Prim(PrimKind::Float) => Value::F(0.0),
        TypeKind::Prim(PrimKind::Double) => Value::D(0.0),
        _ => Value::NULL,
    }
}

fn frame_get(frame: &Frame, v: ValueId) -> Result<Value, Trap> {
    // The verifier guarantees every operand dominates its use, so a
    // missing value can only mean a VM bug — report it as a structured
    // internal trap instead of panicking, so embedders keep control.
    frame.values[v.index()]
        .ok_or_else(|| Trap::Internal(format!("operand {v:?} read before definition")))
}

fn frame_get_all(frame: &Frame, vs: &[ValueId]) -> Result<Vec<Value>, Trap> {
    vs.iter().map(|v| frame_get(frame, *v)).collect()
}

fn v_copy(v: ValueId) -> ValueId {
    v
}

/// Evaluates a primitive operation with Java semantics.
fn prim_eval(kind: PrimKind, name: &str, a: &[Value]) -> Result<Value, Trap> {
    use PrimKind::*;
    Ok(match kind {
        Bool => {
            let x = a[0].as_z();
            match name {
                "not" => Value::Z(!x),
                _ => {
                    let y = a[1].as_z();
                    match name {
                        "and" => Value::Z(x & y),
                        "or" => Value::Z(x | y),
                        "xor" => Value::Z(x ^ y),
                        "eq" => Value::Z(x == y),
                        "ne" => Value::Z(x != y),
                        _ => return Err(Trap::Internal(format!("bool op {name}"))),
                    }
                }
            }
        }
        Char => {
            let x = a[0].as_c();
            match name {
                "to_int" => Value::I(x as i32),
                _ => {
                    let y = a[1].as_c();
                    match name {
                        "eq" => Value::Z(x == y),
                        "ne" => Value::Z(x != y),
                        "lt" => Value::Z(x < y),
                        "le" => Value::Z(x <= y),
                        "gt" => Value::Z(x > y),
                        "ge" => Value::Z(x >= y),
                        _ => return Err(Trap::Internal(format!("char op {name}"))),
                    }
                }
            }
        }
        Int => {
            let x = a[0].as_i();
            match name {
                "neg" => Value::I(x.wrapping_neg()),
                "not" => Value::I(!x),
                "to_char" => Value::C(x as u16),
                "to_long" => Value::J(x as i64),
                "to_float" => Value::F(x as f32),
                "to_double" => Value::D(x as f64),
                _ => {
                    let y = a[1].as_i();
                    match name {
                        "add" => Value::I(x.wrapping_add(y)),
                        "sub" => Value::I(x.wrapping_sub(y)),
                        "mul" => Value::I(x.wrapping_mul(y)),
                        "div" => {
                            if y == 0 {
                                return Err(Trap::DivByZero);
                            }
                            Value::I(x.wrapping_div(y))
                        }
                        "rem" => {
                            if y == 0 {
                                return Err(Trap::DivByZero);
                            }
                            Value::I(x.wrapping_rem(y))
                        }
                        "and" => Value::I(x & y),
                        "or" => Value::I(x | y),
                        "xor" => Value::I(x ^ y),
                        "shl" => Value::I(x.wrapping_shl(y as u32 & 31)),
                        "shr" => Value::I(x.wrapping_shr(y as u32 & 31)),
                        "ushr" => Value::I(((x as u32) >> (y as u32 & 31)) as i32),
                        "eq" => Value::Z(x == y),
                        "ne" => Value::Z(x != y),
                        "lt" => Value::Z(x < y),
                        "le" => Value::Z(x <= y),
                        "gt" => Value::Z(x > y),
                        "ge" => Value::Z(x >= y),
                        _ => return Err(Trap::Internal(format!("int op {name}"))),
                    }
                }
            }
        }
        Long => {
            let x = a[0].as_j();
            match name {
                "neg" => Value::J(x.wrapping_neg()),
                "not" => Value::J(!x),
                "to_int" => Value::I(x as i32),
                "to_float" => Value::F(x as f32),
                "to_double" => Value::D(x as f64),
                "shl" | "shr" | "ushr" => {
                    let s = a[1].as_i() as u32 & 63;
                    match name {
                        "shl" => Value::J(x.wrapping_shl(s)),
                        "shr" => Value::J(x.wrapping_shr(s)),
                        _ => Value::J(((x as u64) >> s) as i64),
                    }
                }
                _ => {
                    let y = a[1].as_j();
                    match name {
                        "add" => Value::J(x.wrapping_add(y)),
                        "sub" => Value::J(x.wrapping_sub(y)),
                        "mul" => Value::J(x.wrapping_mul(y)),
                        "div" => {
                            if y == 0 {
                                return Err(Trap::DivByZero);
                            }
                            Value::J(x.wrapping_div(y))
                        }
                        "rem" => {
                            if y == 0 {
                                return Err(Trap::DivByZero);
                            }
                            Value::J(x.wrapping_rem(y))
                        }
                        "and" => Value::J(x & y),
                        "or" => Value::J(x | y),
                        "xor" => Value::J(x ^ y),
                        "eq" => Value::Z(x == y),
                        "ne" => Value::Z(x != y),
                        "lt" => Value::Z(x < y),
                        "le" => Value::Z(x <= y),
                        "gt" => Value::Z(x > y),
                        "ge" => Value::Z(x >= y),
                        _ => return Err(Trap::Internal(format!("long op {name}"))),
                    }
                }
            }
        }
        Float => {
            let x = a[0].as_f();
            match name {
                "neg" => Value::F(-x),
                "to_int" => Value::I(x as i32),
                "to_long" => Value::J(x as i64),
                "to_double" => Value::D(x as f64),
                _ => {
                    let y = a[1].as_f();
                    match name {
                        "add" => Value::F(x + y),
                        "sub" => Value::F(x - y),
                        "mul" => Value::F(x * y),
                        "div" => Value::F(x / y),
                        "rem" => Value::F(x % y),
                        "eq" => Value::Z(x == y),
                        "ne" => Value::Z(x != y),
                        "lt" => Value::Z(x < y),
                        "le" => Value::Z(x <= y),
                        "gt" => Value::Z(x > y),
                        "ge" => Value::Z(x >= y),
                        _ => return Err(Trap::Internal(format!("float op {name}"))),
                    }
                }
            }
        }
        Double => {
            let x = a[0].as_d();
            match name {
                "neg" => Value::D(-x),
                "to_int" => Value::I(x as i32),
                "to_long" => Value::J(x as i64),
                "to_float" => Value::F(x as f32),
                _ => {
                    let y = a[1].as_d();
                    match name {
                        "add" => Value::D(x + y),
                        "sub" => Value::D(x - y),
                        "mul" => Value::D(x * y),
                        "div" => Value::D(x / y),
                        "rem" => Value::D(x % y),
                        "eq" => Value::Z(x == y),
                        "ne" => Value::Z(x != y),
                        "lt" => Value::Z(x < y),
                        "le" => Value::Z(x <= y),
                        "gt" => Value::Z(x > y),
                        "ge" => Value::Z(x >= y),
                        _ => return Err(Trap::Internal(format!("double op {name}"))),
                    }
                }
            }
        }
    })
}
