//! # safetsa-vm
//!
//! The SafeTSA code consumer: loads a verified module and executes it.
//! The paper's consumer performs decode → verify → native code
//! generation; this reproduction's consumer interprets the SafeTSA
//! graph directly (the evaluation in the paper contains no JIT numbers,
//! and interpretation suffices for the differential-correctness and
//! representation-size experiments).
//!
//! The interpreter walks the Control Structure Tree; phi nodes are
//! given parallel-copy semantics on block entry keyed by the dynamic
//! predecessor block, exceptions follow the implicit edges to the
//! innermost handler, and dynamic dispatch uses vtables derived (by the
//! consumer, tamper-proof) from the type table's slot assignments.
//!
//! # Examples
//!
//! ```
//! let prog = safetsa_frontend::compile(
//!     "class Main { static int main() { return 6 * 7; } }",
//! )?;
//! let lowered = safetsa_ssa::lower_program(&prog)?;
//! let mut vm = safetsa_vm::Vm::load(&lowered.module)?;
//! let result = vm.run_entry("Main.main")?;
//! assert_eq!(result, Some(safetsa_rt::Value::I(42)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod interp;
mod threaded;

pub use interp::{Engine, ResourceLimits, Vm, VmError, VmProfile, VmStats, DEADLINE_SLICE};
