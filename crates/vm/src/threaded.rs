//! The direct-threaded execution core.
//!
//! At first call, each function's verified SSA stream is *decoded*:
//! the Control Structure Tree is flattened into a linear array of
//! [`Op`]s with branch targets as array indices, operands resolved to
//! dense frame slots, phi parallel-copies pre-resolved per static edge
//! into explicit [`Op::Moves`], and field/method references resolved to
//! layout slots and call targets. The dispatch loop is a single match
//! over a dense op enum (a jump table), instead of the tree-walking
//! `match` over [`safetsa_core::instr::Instr`] in `interp.rs`.
//!
//! Three optimizations ride on the decoded form (see DESIGN.md
//! "Interpreter architecture"):
//!
//! * **Superinstruction fusion** — the top opcode pairs from the corpus
//!   profiler histogram (nullcheck+getfield, indexcheck+getelt, cmp+
//!   branch, …) are fused at decode time into single ops that do both
//!   steps with one dispatch and, for the check fusions, one heap
//!   lookup instead of two. A fused op still writes the check's SSA
//!   result (later instructions may use it) and still counts both
//!   constituents in the opcode histogram.
//! * **Monomorphic inline caches** — each decoded `xdispatch` site
//!   caches (runtime class → resolved target). The guard compares the
//!   receiver's runtime class id; vtables and intrinsic bindings are
//!   immutable after load, so the cache never needs invalidation and a
//!   hit is always sound. Misses fall back to the vtable walk and
//!   re-fill the cache (always-replace, so megamorphic sites degrade to
//!   the old path plus one compare).
//! * **Block-granularity fuel** — fuel is charged once per basic block
//!   (its charged-op count) at block entry instead of per instruction.
//!   A run completes iff fuel ≥ total charged steps, exactly as the
//!   switch engine observes on its own accounting; on trap paths the
//!   threaded engine may charge up to blocklen−1 instructions that the
//!   switch engine would not have reached (the documented bounded
//!   overshoot — never the other direction, so fuel remains a hard
//!   ceiling).

use crate::interp::{Engine, Vm, DEADLINE_SLICE, PROFILE_WINDOW};
use safetsa_core::cst::Cst;
use safetsa_core::function::{Function, ENTRY};
use safetsa_core::instr::Instr;
use safetsa_core::module::FuncId;
use safetsa_core::primops;
use safetsa_core::types::{ClassId, MethodKind, MethodRef, PrimKind, TypeId, TypeKind};
use safetsa_core::value::{BlockId, Literal};
use safetsa_rt::heap::Obj;
use safetsa_rt::{intrinsics, HeapRef, Trap, Value};
use std::cell::Cell;
use std::rc::Rc;
use std::time::Instant;

/// A dense frame-slot index (the raw `ValueId`).
type Slot = u32;

/// Sentinel slot for "no receiver" / "no result".
const NO_SLOT: Slot = u32::MAX;

/// Unary primitive operation, pre-resolved to a function pointer.
type PrimFn1 = fn(Value) -> Result<Value, Trap>;

/// Binary primitive operation, pre-resolved to a function pointer.
type PrimFn2 = fn(Value, Value) -> Result<Value, Trap>;

/// `int` comparison predicate (the cmp half of the fused cmp+branch).
#[derive(Debug, Clone, Copy)]
pub(crate) enum CmpPred {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

fn cmp_pred(name: &str) -> Option<CmpPred> {
    Some(match name {
        "eq" => CmpPred::Eq,
        "ne" => CmpPred::Ne,
        "lt" => CmpPred::Lt,
        "le" => CmpPred::Le,
        "gt" => CmpPred::Gt,
        "ge" => CmpPred::Ge,
        _ => return None,
    })
}

#[inline]
fn cmp_eval(pred: CmpPred, x: i32, y: i32) -> bool {
    match pred {
        CmpPred::Eq => x == y,
        CmpPred::Ne => x != y,
        CmpPred::Lt => x < y,
        CmpPred::Le => x <= y,
        CmpPred::Gt => x > y,
        CmpPred::Ge => x >= y,
    }
}

/// Unary primitive decode table. Mirrors `interp::prim_eval` exactly
/// (wrapping integer arithmetic, `as`-conversions); the op names come
/// from the trusted `primops` tables, so the fallback arm is
/// unreachable for verified modules.
fn un_fn(kind: PrimKind, name: &'static str) -> PrimFn1 {
    use PrimKind::*;
    match (kind, name) {
        (Bool, "not") => |a| Ok(Value::Z(!a.as_z())),
        (Char, "to_int") => |a| Ok(Value::I(a.as_c() as i32)),
        (Int, "neg") => |a| Ok(Value::I(a.as_i().wrapping_neg())),
        (Int, "not") => |a| Ok(Value::I(!a.as_i())),
        (Int, "to_char") => |a| Ok(Value::C(a.as_i() as u16)),
        (Int, "to_long") => |a| Ok(Value::J(a.as_i() as i64)),
        (Int, "to_float") => |a| Ok(Value::F(a.as_i() as f32)),
        (Int, "to_double") => |a| Ok(Value::D(a.as_i() as f64)),
        (Long, "neg") => |a| Ok(Value::J(a.as_j().wrapping_neg())),
        (Long, "not") => |a| Ok(Value::J(!a.as_j())),
        (Long, "to_int") => |a| Ok(Value::I(a.as_j() as i32)),
        (Long, "to_float") => |a| Ok(Value::F(a.as_j() as f32)),
        (Long, "to_double") => |a| Ok(Value::D(a.as_j() as f64)),
        (Float, "neg") => |a| Ok(Value::F(-a.as_f())),
        (Float, "to_int") => |a| Ok(Value::I(a.as_f() as i32)),
        (Float, "to_long") => |a| Ok(Value::J(a.as_f() as i64)),
        (Float, "to_double") => |a| Ok(Value::D(a.as_f() as f64)),
        (Double, "neg") => |a| Ok(Value::D(-a.as_d())),
        (Double, "to_int") => |a| Ok(Value::I(a.as_d() as i32)),
        (Double, "to_long") => |a| Ok(Value::J(a.as_d() as i64)),
        (Double, "to_float") => |a| Ok(Value::F(a.as_d() as f32)),
        _ => |_| Err(Trap::Internal("unknown unary primop".into())),
    }
}

/// Binary primitive decode table; same semantics as `interp::prim_eval`
/// (div/rem trap DivByZero, int shifts mask to 5 bits, long shifts take
/// an `int` amount masked to 6 bits).
fn bin_fn(kind: PrimKind, name: &'static str) -> PrimFn2 {
    use PrimKind::*;
    match (kind, name) {
        (Bool, "and") => |a, b| Ok(Value::Z(a.as_z() & b.as_z())),
        (Bool, "or") => |a, b| Ok(Value::Z(a.as_z() | b.as_z())),
        (Bool, "xor") => |a, b| Ok(Value::Z(a.as_z() ^ b.as_z())),
        (Bool, "eq") => |a, b| Ok(Value::Z(a.as_z() == b.as_z())),
        (Bool, "ne") => |a, b| Ok(Value::Z(a.as_z() != b.as_z())),
        (Char, "eq") => |a, b| Ok(Value::Z(a.as_c() == b.as_c())),
        (Char, "ne") => |a, b| Ok(Value::Z(a.as_c() != b.as_c())),
        (Char, "lt") => |a, b| Ok(Value::Z(a.as_c() < b.as_c())),
        (Char, "le") => |a, b| Ok(Value::Z(a.as_c() <= b.as_c())),
        (Char, "gt") => |a, b| Ok(Value::Z(a.as_c() > b.as_c())),
        (Char, "ge") => |a, b| Ok(Value::Z(a.as_c() >= b.as_c())),
        (Int, "add") => |a, b| Ok(Value::I(a.as_i().wrapping_add(b.as_i()))),
        (Int, "sub") => |a, b| Ok(Value::I(a.as_i().wrapping_sub(b.as_i()))),
        (Int, "mul") => |a, b| Ok(Value::I(a.as_i().wrapping_mul(b.as_i()))),
        (Int, "div") => |a, b| {
            let y = b.as_i();
            if y == 0 {
                return Err(Trap::DivByZero);
            }
            Ok(Value::I(a.as_i().wrapping_div(y)))
        },
        (Int, "rem") => |a, b| {
            let y = b.as_i();
            if y == 0 {
                return Err(Trap::DivByZero);
            }
            Ok(Value::I(a.as_i().wrapping_rem(y)))
        },
        (Int, "and") => |a, b| Ok(Value::I(a.as_i() & b.as_i())),
        (Int, "or") => |a, b| Ok(Value::I(a.as_i() | b.as_i())),
        (Int, "xor") => |a, b| Ok(Value::I(a.as_i() ^ b.as_i())),
        (Int, "shl") => |a, b| Ok(Value::I(a.as_i().wrapping_shl(b.as_i() as u32 & 31))),
        (Int, "shr") => |a, b| Ok(Value::I(a.as_i().wrapping_shr(b.as_i() as u32 & 31))),
        (Int, "ushr") => {
            |a, b| Ok(Value::I(((a.as_i() as u32) >> (b.as_i() as u32 & 31)) as i32))
        }
        (Int, "eq") => |a, b| Ok(Value::Z(a.as_i() == b.as_i())),
        (Int, "ne") => |a, b| Ok(Value::Z(a.as_i() != b.as_i())),
        (Int, "lt") => |a, b| Ok(Value::Z(a.as_i() < b.as_i())),
        (Int, "le") => |a, b| Ok(Value::Z(a.as_i() <= b.as_i())),
        (Int, "gt") => |a, b| Ok(Value::Z(a.as_i() > b.as_i())),
        (Int, "ge") => |a, b| Ok(Value::Z(a.as_i() >= b.as_i())),
        (Long, "add") => |a, b| Ok(Value::J(a.as_j().wrapping_add(b.as_j()))),
        (Long, "sub") => |a, b| Ok(Value::J(a.as_j().wrapping_sub(b.as_j()))),
        (Long, "mul") => |a, b| Ok(Value::J(a.as_j().wrapping_mul(b.as_j()))),
        (Long, "div") => |a, b| {
            let y = b.as_j();
            if y == 0 {
                return Err(Trap::DivByZero);
            }
            Ok(Value::J(a.as_j().wrapping_div(y)))
        },
        (Long, "rem") => |a, b| {
            let y = b.as_j();
            if y == 0 {
                return Err(Trap::DivByZero);
            }
            Ok(Value::J(a.as_j().wrapping_rem(y)))
        },
        (Long, "and") => |a, b| Ok(Value::J(a.as_j() & b.as_j())),
        (Long, "or") => |a, b| Ok(Value::J(a.as_j() | b.as_j())),
        (Long, "xor") => |a, b| Ok(Value::J(a.as_j() ^ b.as_j())),
        (Long, "shl") => |a, b| Ok(Value::J(a.as_j().wrapping_shl(b.as_i() as u32 & 63))),
        (Long, "shr") => |a, b| Ok(Value::J(a.as_j().wrapping_shr(b.as_i() as u32 & 63))),
        (Long, "ushr") => {
            |a, b| Ok(Value::J(((a.as_j() as u64) >> (b.as_i() as u32 & 63)) as i64))
        }
        (Long, "eq") => |a, b| Ok(Value::Z(a.as_j() == b.as_j())),
        (Long, "ne") => |a, b| Ok(Value::Z(a.as_j() != b.as_j())),
        (Long, "lt") => |a, b| Ok(Value::Z(a.as_j() < b.as_j())),
        (Long, "le") => |a, b| Ok(Value::Z(a.as_j() <= b.as_j())),
        (Long, "gt") => |a, b| Ok(Value::Z(a.as_j() > b.as_j())),
        (Long, "ge") => |a, b| Ok(Value::Z(a.as_j() >= b.as_j())),
        (Float, "add") => |a, b| Ok(Value::F(a.as_f() + b.as_f())),
        (Float, "sub") => |a, b| Ok(Value::F(a.as_f() - b.as_f())),
        (Float, "mul") => |a, b| Ok(Value::F(a.as_f() * b.as_f())),
        (Float, "div") => |a, b| Ok(Value::F(a.as_f() / b.as_f())),
        (Float, "rem") => |a, b| Ok(Value::F(a.as_f() % b.as_f())),
        (Float, "eq") => |a, b| Ok(Value::Z(a.as_f() == b.as_f())),
        (Float, "ne") => |a, b| Ok(Value::Z(a.as_f() != b.as_f())),
        (Float, "lt") => |a, b| Ok(Value::Z(a.as_f() < b.as_f())),
        (Float, "le") => |a, b| Ok(Value::Z(a.as_f() <= b.as_f())),
        (Float, "gt") => |a, b| Ok(Value::Z(a.as_f() > b.as_f())),
        (Float, "ge") => |a, b| Ok(Value::Z(a.as_f() >= b.as_f())),
        (Double, "add") => |a, b| Ok(Value::D(a.as_d() + b.as_d())),
        (Double, "sub") => |a, b| Ok(Value::D(a.as_d() - b.as_d())),
        (Double, "mul") => |a, b| Ok(Value::D(a.as_d() * b.as_d())),
        (Double, "div") => |a, b| Ok(Value::D(a.as_d() / b.as_d())),
        (Double, "rem") => |a, b| Ok(Value::D(a.as_d() % b.as_d())),
        (Double, "eq") => |a, b| Ok(Value::Z(a.as_d() == b.as_d())),
        (Double, "ne") => |a, b| Ok(Value::Z(a.as_d() != b.as_d())),
        (Double, "lt") => |a, b| Ok(Value::Z(a.as_d() < b.as_d())),
        (Double, "le") => |a, b| Ok(Value::Z(a.as_d() <= b.as_d())),
        (Double, "gt") => |a, b| Ok(Value::Z(a.as_d() > b.as_d())),
        (Double, "ge") => |a, b| Ok(Value::Z(a.as_d() >= b.as_d())),
        _ => |_, _| Err(Trap::Internal("unknown binary primop".into())),
    }
}

/// A resolved call target: a guest function body or a host intrinsic.
#[derive(Debug, Clone, Copy)]
pub(crate) enum CallTarget {
    /// Guest function body.
    Func(FuncId),
    /// Host intrinsic; `is_static` drops the receiver before invoke.
    Intrinsic {
        /// The resolved intrinsic.
        id: intrinsics::Intrinsic,
        /// Whether the target method is static.
        is_static: bool,
    },
}

/// Array element representation, pre-resolved from the element type.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ElemKind {
    Z,
    C,
    I,
    J,
    F,
    D,
    R,
}

/// Per-block metadata: the *original* (pre-fusion) instruction
/// mnemonics in execution order, both as a list (fed to the profiler
/// ring so pair histograms stay engine-comparable) and aggregated (for
/// the stats opcode histogram).
pub(crate) struct BlockMeta {
    /// Original mnemonics in order.
    pub(crate) mnems: Box<[&'static str]>,
    /// Aggregated mnemonic counts.
    pub(crate) counts: Box<[(&'static str, u32)]>,
}

/// The `(dst, src)` parallel copies for one static predecessor block.
type PredMoves = (u32, Box<[(Slot, Slot)]>);

/// One exception-handler region: where to resume, and the handler-entry
/// phi moves keyed by static predecessor block.
#[derive(Default)]
pub(crate) struct HandlerInfo {
    /// Op index of the handler-entry block.
    pub(crate) entry_pc: u32,
    /// Whether the handler entry has phis at all (a faulting block with
    /// no move entry is then an internal error, matching the switch
    /// engine's missing-phi-arg trap).
    pub(crate) has_phis: bool,
    /// Per-predecessor `(dst, src)` parallel copies.
    pub(crate) moves: Vec<PredMoves>,
}

/// One decoded direct-threaded op.
pub(crate) enum Op {
    /// Basic-block prologue: charges `cost` fuel (the block's charged-op
    /// count), runs the slice/profiler countdown, applies stats.
    Block { cost: u32, bi: u32 },
    /// Unconditional jump.
    Jump { t: u32 },
    /// Fall through when the slot holds `true`, jump to `t` otherwise.
    BranchFalse { cond: Slot, t: u32 },
    /// Fused int-compare + branch: writes the compare result (it is an
    /// SSA value later ops may read), then branches on it.
    CmpBranchFalse {
        pred: CmpPred,
        a: Slot,
        b: Slot,
        dst: Slot,
        t: u32,
    },
    /// Parallel phi copies for one static CFG edge.
    Moves { pairs: Box<[(Slot, Slot)]> },
    /// Return (`NO_SLOT` = void).
    Ret { src: Slot },
    /// `throw`: null receiver traps NullPointer, else a user trap.
    Throw { src: Slot },
    /// Enter a `try` region.
    PushHandler { h: u32 },
    /// Leave a `try` region on the normal path.
    PopHandler,
    /// Statically safe cast (downcast): a slot copy.
    Copy { src: Slot, dst: Slot },
    /// Unary primitive.
    Prim1 { f: PrimFn1, a: Slot, dst: Slot },
    /// Binary primitive.
    Prim2 {
        f: PrimFn2,
        a: Slot,
        b: Slot,
        dst: Slot,
    },
    /// Fused pair of binary primitives (sequential: the first result is
    /// written before the second op's operands are read).
    Prim2Pair {
        f1: PrimFn2,
        a1: Slot,
        b1: Slot,
        d1: Slot,
        f2: PrimFn2,
        a2: Slot,
        b2: Slot,
        d2: Slot,
    },
    /// `int` comparison (kept separate so the If flattener can fuse it
    /// into [`Op::CmpBranchFalse`]).
    IntCmp {
        pred: CmpPred,
        a: Slot,
        b: Slot,
        dst: Slot,
    },
    /// Null check.
    NullCheck { v: Slot, dst: Slot },
    /// Field read through a pre-resolved layout slot.
    GetField { obj: Slot, slot: u32, dst: Slot },
    /// Fused nullcheck + getfield: one null test, one heap lookup.
    NullGetField {
        obj: Slot,
        slot: u32,
        chk: Slot,
        dst: Slot,
    },
    /// Field write.
    SetField { obj: Slot, slot: u32, val: Slot },
    /// Fused nullcheck + setfield.
    NullSetField {
        obj: Slot,
        slot: u32,
        val: Slot,
        chk: Slot,
    },
    /// Static-field read.
    GetStatic { class: u32, idx: u32, dst: Slot },
    /// Static-field write.
    SetStatic { class: u32, idx: u32, val: Slot },
    /// Bounds check.
    IndexCheck { arr: Slot, idx: Slot, dst: Slot },
    /// Array element read.
    GetElt { arr: Slot, idx: Slot, dst: Slot },
    /// Fused indexcheck + getelt: one heap lookup serves both the
    /// bounds test and the element read.
    IdxGetElt {
        arr: Slot,
        idx: Slot,
        chk: Slot,
        dst: Slot,
    },
    /// Array element write.
    SetElt { arr: Slot, idx: Slot, val: Slot },
    /// Fused indexcheck + setelt.
    IdxSetElt {
        arr: Slot,
        idx: Slot,
        val: Slot,
        chk: Slot,
    },
    /// Array length read.
    ArrayLength { arr: Slot, dst: Slot },
    /// Class-instance allocation.
    New { class: ClassId, dst: Slot },
    /// Array allocation with pre-resolved element width and kind.
    NewArray {
        elem: ElemKind,
        width: u64,
        type_tag: u64,
        len: Slot,
        dst: Slot,
    },
    /// Dynamically checked cast.
    Upcast { to: TypeId, v: Slot, dst: Slot },
    /// Runtime type test.
    InstanceOf { target: TypeId, v: Slot, dst: Slot },
    /// Reference identity.
    RefEq { a: Slot, b: Slot, dst: Slot },
    /// Materialize the in-flight exception.
    Catch { dst: Slot },
    /// Statically bound call (`xcall`), target resolved at decode time.
    Call {
        target: CallTarget,
        recv: Slot,
        args: Box<[Slot]>,
        dst: Slot,
    },
    /// Dynamic dispatch (`xdispatch`) with a monomorphic inline cache
    /// keyed by the receiver's runtime class id.
    Dispatch {
        vslot: u32,
        ic: Cell<Option<(u32, CallTarget)>>,
        recv: Slot,
        args: Box<[Slot]>,
        dst: Slot,
    },
    /// Decode-time-unresolvable instruction: traps Internal when (if
    /// ever) executed, matching the switch engine's runtime error.
    Fail { msg: Box<str> },
}

/// A fully decoded function.
pub(crate) struct TFunc {
    /// Diagnostic name (for the profiler's hot-function table).
    pub(crate) name: String,
    /// Frame size in slots (the SSA value-table length).
    pub(crate) nvals: usize,
    /// Constant preloads: `(slot, literal)`.
    pub(crate) consts: Vec<(Slot, Literal)>,
    /// The decoded op array.
    pub(crate) code: Vec<Op>,
    /// Per-block metadata, indexed by the `bi` field of [`Op::Block`].
    pub(crate) blocks: Vec<BlockMeta>,
    /// `(op index, BlockId.0)` of every emitted block, sorted by op
    /// index — binary-searched during unwinding to find the faulting
    /// block (the dynamic predecessor of the handler entry).
    pub(crate) block_starts: Vec<(u32, u32)>,
    /// Exception-handler regions, indexed by [`Op::PushHandler`].
    pub(crate) handlers: Vec<HandlerInfo>,
}

// ---------------------------------------------------------------------
// Decoding: CST flattening + instruction decode + peephole fusion.
// ---------------------------------------------------------------------

enum Ctx {
    Labeled { join: BlockId, patches: Vec<usize> },
    Loop { header_pc: u32, header: BlockId },
    Try,
}

struct Flattener<'a, 'm> {
    vm: &'a Vm<'m>,
    f: &'m Function,
    code: Vec<Op>,
    blocks: Vec<BlockMeta>,
    block_starts: Vec<(u32, u32)>,
    handlers: Vec<HandlerInfo>,
    ctx: Vec<Ctx>,
    cur: BlockId,
}

impl<'m> Vm<'m> {
    /// The decoded form of `fid`, decoding (and caching) on first use.
    pub(crate) fn tfunc(&mut self, fid: FuncId) -> Rc<TFunc> {
        if let Some(tf) = &self.tcode[fid.index()] {
            return tf.clone();
        }
        let f = self.module.function(fid);
        let tf = Rc::new(decode_function(self, f));
        self.tcode[fid.index()] = Some(tf.clone());
        tf
    }
}

fn decode_function<'m>(vm: &Vm<'m>, f: &'m Function) -> TFunc {
    let mut fl = Flattener {
        vm,
        f,
        code: Vec::new(),
        blocks: Vec::new(),
        block_starts: Vec::new(),
        handlers: Vec::new(),
        ctx: Vec::new(),
        cur: ENTRY,
    };
    if fl.emit(&f.body) {
        fl.code.push(Op::Ret { src: NO_SLOT });
    }
    let consts = f
        .consts
        .iter()
        .enumerate()
        .map(|(i, c)| (f.const_value(i).0, c.lit.clone()))
        .collect();
    TFunc {
        name: f.name.clone(),
        nvals: f.values.len(),
        consts,
        code: fl.code,
        blocks: fl.blocks,
        block_starts: fl.block_starts,
        handlers: fl.handlers,
    }
}

impl<'a, 'm> Flattener<'a, 'm> {
    fn push_jump(&mut self) -> usize {
        self.code.push(Op::Jump { t: 0 });
        self.code.len() - 1
    }

    fn patch(&mut self, at: usize, target: u32) {
        match &mut self.code[at] {
            Op::Jump { t } | Op::BranchFalse { t, .. } | Op::CmpBranchFalse { t, .. } => {
                *t = target;
            }
            _ => unreachable!("patch target is not a branch"),
        }
    }

    /// Emits the phi parallel copies for the static edge `from → to`.
    fn emit_moves(&mut self, from: BlockId, to: BlockId) {
        let block = self.f.block(to);
        if block.phis.is_empty() {
            return;
        }
        let mut pairs = Vec::with_capacity(block.phis.len());
        for (k, phi) in block.phis.iter().enumerate() {
            match phi.arg_from(from) {
                Some(a) => pairs.push((self.f.phi_result(to, k).0, a.0)),
                None => {
                    self.code.push(Op::Fail {
                        msg: format!("phi in {to} has no arg from {from}").into(),
                    });
                    return;
                }
            }
        }
        self.code.push(Op::Moves {
            pairs: pairs.into_boxed_slice(),
        });
    }

    /// Emits a block: the [`Op::Block`] prologue, then the decoded
    /// instructions with peephole superinstruction fusion. The block's
    /// fuel cost is its *charged* op count — each fusion folds two
    /// charges into one, which is exactly the vm_steps reduction the
    /// bench gate tracks.
    fn emit_block_body(&mut self, b: BlockId) {
        self.block_starts.push((self.code.len() as u32, b.0));
        let bi = self.blocks.len() as u32;
        let block_op_at = self.code.len();
        self.code.push(Op::Block { cost: 0, bi });
        let block = self.f.block(b);
        let mut charged: u32 = 0;
        for (k, instr) in block.instrs.iter().enumerate() {
            let dst = self
                .f
                .instr_result(b, k)
                .map(|v| v.0)
                .unwrap_or(NO_SLOT);
            let op = self.decode(instr, dst);
            charged += 1;
            if charged >= 2 {
                if let Some(fused) = try_fuse(self.code.last().expect("nonempty"), &op) {
                    self.code.pop();
                    self.code.push(fused);
                    charged -= 1;
                    continue;
                }
            }
            self.code.push(op);
        }
        let mnems: Box<[&'static str]> = block.instrs.iter().map(|i| i.mnemonic()).collect();
        let mut counts: Vec<(&'static str, u32)> = Vec::new();
        for &m in mnems.iter() {
            match counts.iter_mut().find(|(n, _)| *n == m) {
                Some((_, c)) => *c += 1,
                None => counts.push((m, 1)),
            }
        }
        self.blocks.push(BlockMeta {
            mnems,
            counts: counts.into_boxed_slice(),
        });
        if let Op::Block { cost, .. } = &mut self.code[block_op_at] {
            *cost = charged;
        }
        self.cur = b;
    }

    /// Emits a CST node; returns whether control falls through it.
    fn emit(&mut self, cst: &'m Cst) -> bool {
        match cst {
            Cst::Basic(b) => {
                self.emit_moves(self.cur, *b);
                self.emit_block_body(*b);
                true
            }
            Cst::Seq(items) => {
                for c in items {
                    if !self.emit(c) {
                        return false;
                    }
                }
                true
            }
            Cst::If {
                cond,
                then_br,
                else_br,
                join,
            } => {
                // cmp+branch fusion: if the preceding op is the int
                // compare producing this condition, merge them. The
                // compare stays charged in its block's cost and still
                // writes its SSA result.
                if let Some(Op::IntCmp { dst, .. }) = self.code.last() {
                    if *dst == cond.0 {
                        let Some(Op::IntCmp { pred, a, b, dst }) = self.code.pop() else {
                            unreachable!()
                        };
                        self.code.push(Op::CmpBranchFalse {
                            pred,
                            a,
                            b,
                            dst,
                            t: 0,
                        });
                    } else {
                        self.code.push(Op::BranchFalse { cond: cond.0, t: 0 });
                    }
                } else {
                    self.code.push(Op::BranchFalse { cond: cond.0, t: 0 });
                }
                let branch_at = self.code.len() - 1;
                let saved = self.cur;
                let ft_then = self.emit(then_br);
                let mut then_jump = None;
                if ft_then {
                    self.emit_moves(self.cur, *join);
                    then_jump = Some(self.push_jump());
                }
                let else_start = self.code.len() as u32;
                self.patch(branch_at, else_start);
                self.cur = saved;
                let ft_else = self.emit(else_br);
                if ft_else {
                    self.emit_moves(self.cur, *join);
                }
                if ft_then || ft_else {
                    if let Some(j) = then_jump {
                        let here = self.code.len() as u32;
                        self.patch(j, here);
                    }
                    self.emit_block_body(*join);
                    true
                } else {
                    false
                }
            }
            Cst::Loop { header, body } => {
                self.emit_moves(self.cur, *header);
                let header_pc = self.code.len() as u32;
                self.emit_block_body(*header);
                self.ctx.push(Ctx::Loop {
                    header_pc,
                    header: *header,
                });
                if self.emit(body) {
                    self.emit_moves(self.cur, *header);
                    self.code.push(Op::Jump { t: header_pc });
                }
                self.ctx.pop();
                false
            }
            Cst::Labeled { body, join } => {
                self.ctx.push(Ctx::Labeled {
                    join: *join,
                    patches: Vec::new(),
                });
                let ft = self.emit(body);
                if ft {
                    self.emit_moves(self.cur, *join);
                }
                let Some(Ctx::Labeled { patches, .. }) = self.ctx.pop() else {
                    unreachable!()
                };
                if ft || !patches.is_empty() {
                    let here = self.code.len() as u32;
                    for p in patches {
                        self.patch(p, here);
                    }
                    self.emit_block_body(*join);
                    true
                } else {
                    false
                }
            }
            Cst::Break(n) => {
                let mut seen = 0u32;
                let mut target = None;
                for (i, c) in self.ctx.iter().enumerate().rev() {
                    if matches!(c, Ctx::Labeled { .. }) {
                        if seen == *n {
                            target = Some(i);
                            break;
                        }
                        seen += 1;
                    }
                }
                let Some(ti) = target else {
                    self.code.push(Op::Fail {
                        msg: "break without target".into(),
                    });
                    return false;
                };
                // Leaving any try region between here and the target
                // deactivates its handler.
                let pops = self.ctx[ti + 1..]
                    .iter()
                    .filter(|c| matches!(c, Ctx::Try))
                    .count();
                for _ in 0..pops {
                    self.code.push(Op::PopHandler);
                }
                let Ctx::Labeled { join, .. } = self.ctx[ti] else {
                    unreachable!()
                };
                self.emit_moves(self.cur, join);
                let j = self.push_jump();
                let Ctx::Labeled { patches, .. } = &mut self.ctx[ti] else {
                    unreachable!()
                };
                patches.push(j);
                false
            }
            Cst::Continue(n) => {
                let mut seen = 0u32;
                let mut target = None;
                for (i, c) in self.ctx.iter().enumerate().rev() {
                    if matches!(c, Ctx::Loop { .. }) {
                        if seen == *n {
                            target = Some(i);
                            break;
                        }
                        seen += 1;
                    }
                }
                let Some(ti) = target else {
                    self.code.push(Op::Fail {
                        msg: "continue without target".into(),
                    });
                    return false;
                };
                let pops = self.ctx[ti + 1..]
                    .iter()
                    .filter(|c| matches!(c, Ctx::Try))
                    .count();
                for _ in 0..pops {
                    self.code.push(Op::PopHandler);
                }
                let Ctx::Loop { header_pc, header } = self.ctx[ti] else {
                    unreachable!()
                };
                self.emit_moves(self.cur, header);
                self.code.push(Op::Jump { t: header_pc });
                false
            }
            Cst::Return(v) => {
                self.code.push(Op::Ret {
                    src: v.map(|v| v.0).unwrap_or(NO_SLOT),
                });
                false
            }
            Cst::Throw(v) => {
                self.code.push(Op::Throw { src: v.0 });
                false
            }
            Cst::Try {
                body,
                handler_entry,
                handler,
                join,
            } => {
                let h = self.handlers.len() as u32;
                self.handlers.push(HandlerInfo::default());
                self.code.push(Op::PushHandler { h });
                self.ctx.push(Ctx::Try);
                let ft_body = self.emit(body);
                self.ctx.pop();
                let mut body_jump = None;
                if ft_body {
                    self.code.push(Op::PopHandler);
                    self.emit_moves(self.cur, *join);
                    body_jump = Some(self.push_jump());
                }
                // Handler entry: control arrives only via unwinding,
                // which applies the phi moves for the faulting block
                // before jumping here.
                let entry_pc = self.code.len() as u32;
                let hb = self.f.block(*handler_entry);
                let mut preds: Vec<BlockId> = Vec::new();
                for phi in &hb.phis {
                    for (p, _) in &phi.args {
                        if !preds.contains(p) {
                            preds.push(*p);
                        }
                    }
                }
                let mut moves = Vec::new();
                for p in preds {
                    let mut pairs = Vec::with_capacity(hb.phis.len());
                    let mut complete = true;
                    for (k, phi) in hb.phis.iter().enumerate() {
                        match phi.arg_from(p) {
                            Some(a) => {
                                pairs.push((self.f.phi_result(*handler_entry, k).0, a.0));
                            }
                            None => {
                                complete = false;
                                break;
                            }
                        }
                    }
                    if complete {
                        moves.push((p.0, pairs.into_boxed_slice()));
                    }
                }
                self.handlers[h as usize] = HandlerInfo {
                    entry_pc,
                    has_phis: !hb.phis.is_empty(),
                    moves,
                };
                self.emit_block_body(*handler_entry);
                let ft_h = self.emit(handler);
                if ft_h {
                    self.emit_moves(self.cur, *join);
                }
                if ft_body || ft_h {
                    if let Some(j) = body_jump {
                        let here = self.code.len() as u32;
                        self.patch(j, here);
                    }
                    self.emit_block_body(*join);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Decodes one SSA instruction into a threaded op.
    fn decode(&self, instr: &Instr, dst: Slot) -> Op {
        let types = &self.vm.module.types;
        let fail = |msg: &str| Op::Fail { msg: msg.into() };
        match instr {
            Instr::Primitive { ty, op, args } | Instr::XPrimitive { ty, op, args } => {
                let kind = match types.kind(*ty) {
                    TypeKind::Prim(k) => k,
                    _ => return fail("primitive on non-prim"),
                };
                let Some(desc) = primops::resolve(kind, *op) else {
                    return fail("unknown primop");
                };
                if kind == PrimKind::Int {
                    if let Some(pred) = cmp_pred(desc.name) {
                        return Op::IntCmp {
                            pred,
                            a: args[0].0,
                            b: args[1].0,
                            dst,
                        };
                    }
                }
                if desc.params.len() == 1 {
                    Op::Prim1 {
                        f: un_fn(kind, desc.name),
                        a: args[0].0,
                        dst,
                    }
                } else {
                    Op::Prim2 {
                        f: bin_fn(kind, desc.name),
                        a: args[0].0,
                        b: args[1].0,
                        dst,
                    }
                }
            }
            Instr::NullCheck { value, .. } => Op::NullCheck { v: value.0, dst },
            Instr::IndexCheck { array, index, .. } => Op::IndexCheck {
                arr: array.0,
                idx: index.0,
                dst,
            },
            Instr::Upcast { to, value, .. } => Op::Upcast {
                to: *to,
                v: value.0,
                dst,
            },
            Instr::Downcast { value, .. } => Op::Copy { src: value.0, dst },
            Instr::GetField { object, field, .. } => match self.vm.instance_field_slot(field) {
                Ok(slot) => Op::GetField {
                    obj: object.0,
                    slot: slot as u32,
                    dst,
                },
                Err(_) => fail("bad field ref"),
            },
            Instr::SetField {
                object,
                field,
                value,
                ..
            } => match self.vm.instance_field_slot(field) {
                Ok(slot) => Op::SetField {
                    obj: object.0,
                    slot: slot as u32,
                    val: value.0,
                },
                Err(_) => fail("bad field ref"),
            },
            Instr::GetStatic { field } => Op::GetStatic {
                class: field.class.0,
                idx: field.index,
                dst,
            },
            Instr::SetStatic { field, value } => Op::SetStatic {
                class: field.class.0,
                idx: field.index,
                val: value.0,
            },
            Instr::GetElt { array, index, .. } => Op::GetElt {
                arr: array.0,
                idx: index.0,
                dst,
            },
            Instr::SetElt {
                array,
                index,
                value,
                ..
            } => Op::SetElt {
                arr: array.0,
                idx: index.0,
                val: value.0,
            },
            Instr::ArrayLength { array, .. } => Op::ArrayLength { arr: array.0, dst },
            Instr::New { class_ty } => match types.kind(*class_ty) {
                TypeKind::Class(c) => Op::New { class: c, dst },
                _ => fail("new on non-class"),
            },
            Instr::NewArray { arr_ty, length } => {
                let Ok(width) = self.vm.array_elem_width(*arr_ty) else {
                    return fail("newarray on non-array type");
                };
                let elem = types.array_elem(*arr_ty).expect("checked above");
                let elem = match types.kind(elem) {
                    TypeKind::Prim(PrimKind::Bool) => ElemKind::Z,
                    TypeKind::Prim(PrimKind::Char) => ElemKind::C,
                    TypeKind::Prim(PrimKind::Int) => ElemKind::I,
                    TypeKind::Prim(PrimKind::Long) => ElemKind::J,
                    TypeKind::Prim(PrimKind::Float) => ElemKind::F,
                    TypeKind::Prim(PrimKind::Double) => ElemKind::D,
                    _ => ElemKind::R,
                };
                Op::NewArray {
                    elem,
                    width,
                    type_tag: arr_ty.0 as u64,
                    len: length.0,
                    dst,
                }
            }
            Instr::XCall {
                method,
                receiver,
                args,
                ..
            } => {
                let Some(info) = types.method(*method) else {
                    return fail("bad method ref");
                };
                let target = match info.body {
                    Some(body) => CallTarget::Func(FuncId(body)),
                    None => match self.resolve_intrinsic(method.class, *method) {
                        Ok(t) => t,
                        Err(msg) => return Op::Fail { msg: msg.into() },
                    },
                };
                Op::Call {
                    target,
                    recv: receiver.map(|r| r.0).unwrap_or(NO_SLOT),
                    args: args.iter().map(|a| a.0).collect(),
                    dst,
                }
            }
            Instr::XDispatch {
                method,
                receiver,
                args,
                ..
            } => {
                let Some(info) = types.method(*method) else {
                    return fail("bad method ref");
                };
                let Some(vslot) = info.vtable_slot else {
                    return fail("xdispatch without slot");
                };
                Op::Dispatch {
                    vslot,
                    ic: Cell::new(None),
                    recv: receiver.0,
                    args: args.iter().map(|a| a.0).collect(),
                    dst,
                }
            }
            Instr::RefEq { a, b, .. } => Op::RefEq {
                a: a.0,
                b: b.0,
                dst,
            },
            Instr::InstanceOf { target, value, .. } => Op::InstanceOf {
                target: *target,
                v: value.0,
                dst,
            },
            Instr::Catch { .. } => Op::Catch { dst },
        }
    }

    /// Resolves a body-less method to its host intrinsic at decode time
    /// (same resolution the switch engine performs per call).
    fn resolve_intrinsic(&self, class: ClassId, method: MethodRef) -> Result<CallTarget, String> {
        let types = &self.vm.module.types;
        let cinfo = types.class(class);
        let Some(minfo) = types.method(method) else {
            return Err("bad method ref".into());
        };
        let sig: String = minfo
            .params
            .iter()
            .map(|p| crate::interp::sig_letter(types, *p))
            .collect();
        let id = intrinsics::resolve(&cinfo.name, &minfo.name, &sig).ok_or_else(|| {
            format!("no intrinsic for {}.{}({sig})", cinfo.name, minfo.name)
        })?;
        Ok(CallTarget::Intrinsic {
            id,
            is_static: minfo.kind == MethodKind::Static,
        })
    }
}

/// Peephole superinstruction fusion over adjacent decoded ops within a
/// block. The pair set was chosen from the corpus opcode-pair histogram
/// (`bench_report --pairs`; see DESIGN.md for the measured table):
/// check+access pairs and primitive chains dominate dynamic dispatch
/// adjacency corpus-wide.
fn try_fuse(prev: &Op, cur: &Op) -> Option<Op> {
    match (prev, cur) {
        // nullcheck → getfield on the checked ref.
        (
            &Op::NullCheck { v, dst: chk },
            &Op::GetField { obj, slot, dst },
        ) if obj == chk => Some(Op::NullGetField {
            obj: v,
            slot,
            chk,
            dst,
        }),
        // nullcheck → setfield on the checked ref.
        (
            &Op::NullCheck { v, dst: chk },
            &Op::SetField { obj, slot, val },
        ) if obj == chk && val != chk => Some(Op::NullSetField {
            obj: v,
            slot,
            val,
            chk,
        }),
        // indexcheck → getelt with the checked index on the same array.
        (
            &Op::IndexCheck { arr, idx, dst: chk },
            &Op::GetElt {
                arr: a2,
                idx: i2,
                dst,
            },
        ) if a2 == arr && i2 == chk => Some(Op::IdxGetElt { arr, idx, chk, dst }),
        // indexcheck → setelt.
        (
            &Op::IndexCheck { arr, idx, dst: chk },
            &Op::SetElt {
                arr: a2,
                idx: i2,
                val,
            },
        ) if a2 == arr && i2 == chk && val != chk => Some(Op::IdxSetElt { arr, idx, val, chk }),
        // primitive → primitive chains (sequential evaluation keeps
        // dataflow and trap order identical to the unfused pair).
        (
            &Op::Prim2 {
                f: f1,
                a: a1,
                b: b1,
                dst: d1,
            },
            &Op::Prim2 {
                f: f2,
                a: a2,
                b: b2,
                dst: d2,
            },
        ) => Some(Op::Prim2Pair {
            f1,
            a1,
            b1,
            d1,
            f2,
            a2,
            b2,
            d2,
        }),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Execution.
// ---------------------------------------------------------------------

impl<'m> Vm<'m> {
    /// Runs one call in the threaded engine. Mirrors
    /// `Vm::call_inner`'s switch path: argument and constant preloads,
    /// then the dispatch loop, with traps unwinding to the innermost
    /// active handler.
    pub(crate) fn call_threaded(
        &mut self,
        fid: FuncId,
        args: Vec<Value>,
    ) -> Result<Option<Value>, Trap> {
        let tf = self.tfunc(fid);
        // The verifier guarantees def-before-use, so slots can be plain
        // values (zero-initialized) instead of the switch engine's
        // Option-per-slot.
        let mut vals = vec![Value::I(0); tf.nvals];
        for (i, a) in args.into_iter().enumerate() {
            vals[i] = a;
        }
        for (slot, lit) in &tf.consts {
            vals[*slot as usize] = self.literal(lit)?;
        }
        let mut pc: usize = 0;
        let mut handlers: Vec<u32> = Vec::new();
        let mut pending: Option<HeapRef> = None;
        'l: loop {
            let trap: Trap = 'op: {
                match &tf.code[pc] {
                    Op::Block { cost, bi } => {
                        let cost = *cost;
                        if self.fuel < u64::from(cost) {
                            break 'op Trap::OutOfFuel;
                        }
                        self.fuel -= u64::from(cost);
                        self.steps += u64::from(cost);
                        if self.slice_active {
                            if let Err(t) = self.slice_tick(&tf, *bi, cost) {
                                break 'op t;
                            }
                        }
                        if self.collect_stats {
                            for &(m, n) in tf.blocks[*bi as usize].counts.iter() {
                                *self.stats.opcodes.entry(m).or_insert(0) += u64::from(n);
                            }
                        }
                        pc += 1;
                        continue 'l;
                    }
                    Op::Jump { t } => {
                        pc = *t as usize;
                        continue 'l;
                    }
                    Op::BranchFalse { cond, t } => {
                        if vals[*cond as usize].as_z() {
                            pc += 1;
                        } else {
                            pc = *t as usize;
                        }
                        continue 'l;
                    }
                    Op::CmpBranchFalse { pred, a, b, dst, t } => {
                        let r =
                            cmp_eval(*pred, vals[*a as usize].as_i(), vals[*b as usize].as_i());
                        vals[*dst as usize] = Value::Z(r);
                        if self.collect_stats {
                            *self.stats.fused.entry("primitive>branch").or_insert(0) += 1;
                        }
                        if r {
                            pc += 1;
                        } else {
                            pc = *t as usize;
                        }
                        continue 'l;
                    }
                    Op::Moves { pairs } => {
                        let mut scratch = std::mem::take(&mut self.moves_scratch);
                        scratch.clear();
                        scratch.extend(pairs.iter().map(|&(_, src)| vals[src as usize]));
                        for (&(dst, _), v) in pairs.iter().zip(&scratch) {
                            vals[dst as usize] = *v;
                        }
                        self.moves_scratch = scratch;
                        pc += 1;
                        continue 'l;
                    }
                    Op::Ret { src } => {
                        return Ok(if *src == NO_SLOT {
                            None
                        } else {
                            Some(vals[*src as usize])
                        });
                    }
                    Op::Throw { src } => match vals[*src as usize].as_ref() {
                        None => break 'op Trap::NullPointer,
                        Some(r) => break 'op Trap::User(r),
                    },
                    Op::PushHandler { h } => {
                        handlers.push(*h);
                        pc += 1;
                        continue 'l;
                    }
                    Op::PopHandler => {
                        handlers.pop();
                        pc += 1;
                        continue 'l;
                    }
                    Op::Copy { src, dst } => {
                        vals[*dst as usize] = vals[*src as usize];
                        pc += 1;
                        continue 'l;
                    }
                    Op::Prim1 { f, a, dst } => match f(vals[*a as usize]) {
                        Ok(v) => {
                            vals[*dst as usize] = v;
                            pc += 1;
                            continue 'l;
                        }
                        Err(t) => break 'op t,
                    },
                    Op::Prim2 { f, a, b, dst } => {
                        match f(vals[*a as usize], vals[*b as usize]) {
                            Ok(v) => {
                                vals[*dst as usize] = v;
                                pc += 1;
                                continue 'l;
                            }
                            Err(t) => break 'op t,
                        }
                    }
                    Op::Prim2Pair {
                        f1,
                        a1,
                        b1,
                        d1,
                        f2,
                        a2,
                        b2,
                        d2,
                    } => {
                        match f1(vals[*a1 as usize], vals[*b1 as usize]) {
                            Ok(v) => vals[*d1 as usize] = v,
                            Err(t) => break 'op t,
                        }
                        match f2(vals[*a2 as usize], vals[*b2 as usize]) {
                            Ok(v) => vals[*d2 as usize] = v,
                            Err(t) => break 'op t,
                        }
                        if self.collect_stats {
                            *self
                                .stats
                                .fused
                                .entry("primitive>primitive")
                                .or_insert(0) += 1;
                        }
                        pc += 1;
                        continue 'l;
                    }
                    Op::IntCmp { pred, a, b, dst } => {
                        vals[*dst as usize] = Value::Z(cmp_eval(
                            *pred,
                            vals[*a as usize].as_i(),
                            vals[*b as usize].as_i(),
                        ));
                        pc += 1;
                        continue 'l;
                    }
                    Op::NullCheck { v, dst } => {
                        if self.collect_stats {
                            self.stats.null_checks += 1;
                        }
                        let val = vals[*v as usize];
                        if val.as_ref().is_none() {
                            break 'op Trap::NullPointer;
                        }
                        vals[*dst as usize] = val;
                        pc += 1;
                        continue 'l;
                    }
                    Op::GetField { obj, slot, dst } => {
                        let Some(r) = vals[*obj as usize].as_ref() else {
                            break 'op Trap::NullPointer;
                        };
                        match self.heap.get(r) {
                            Obj::Instance { fields, .. } => {
                                vals[*dst as usize] = fields[*slot as usize];
                                pc += 1;
                                continue 'l;
                            }
                            _ => break 'op Trap::Internal("getfield on non-instance".into()),
                        }
                    }
                    Op::NullGetField {
                        obj,
                        slot,
                        chk,
                        dst,
                    } => {
                        if self.collect_stats {
                            self.stats.null_checks += 1;
                            *self.stats.fused.entry("nullcheck>getfield").or_insert(0) += 1;
                        }
                        let val = vals[*obj as usize];
                        let Some(r) = val.as_ref() else {
                            break 'op Trap::NullPointer;
                        };
                        vals[*chk as usize] = val;
                        match self.heap.get(r) {
                            Obj::Instance { fields, .. } => {
                                vals[*dst as usize] = fields[*slot as usize];
                                pc += 1;
                                continue 'l;
                            }
                            _ => break 'op Trap::Internal("getfield on non-instance".into()),
                        }
                    }
                    Op::SetField { obj, slot, val } => {
                        let Some(r) = vals[*obj as usize].as_ref() else {
                            break 'op Trap::NullPointer;
                        };
                        let v = vals[*val as usize];
                        match self.heap.get_mut(r) {
                            Obj::Instance { fields, .. } => {
                                fields[*slot as usize] = v;
                                pc += 1;
                                continue 'l;
                            }
                            _ => break 'op Trap::Internal("setfield on non-instance".into()),
                        }
                    }
                    Op::NullSetField {
                        obj,
                        slot,
                        val,
                        chk,
                    } => {
                        if self.collect_stats {
                            self.stats.null_checks += 1;
                            *self.stats.fused.entry("nullcheck>setfield").or_insert(0) += 1;
                        }
                        let ov = vals[*obj as usize];
                        let Some(r) = ov.as_ref() else {
                            break 'op Trap::NullPointer;
                        };
                        vals[*chk as usize] = ov;
                        let v = vals[*val as usize];
                        match self.heap.get_mut(r) {
                            Obj::Instance { fields, .. } => {
                                fields[*slot as usize] = v;
                                pc += 1;
                                continue 'l;
                            }
                            _ => break 'op Trap::Internal("setfield on non-instance".into()),
                        }
                    }
                    Op::GetStatic { class, idx, dst } => {
                        vals[*dst as usize] =
                            self.statics.get(*class as usize, *idx as usize);
                        pc += 1;
                        continue 'l;
                    }
                    Op::SetStatic { class, idx, val } => {
                        self.statics
                            .set(*class as usize, *idx as usize, vals[*val as usize]);
                        pc += 1;
                        continue 'l;
                    }
                    Op::IndexCheck { arr, idx, dst } => {
                        if self.collect_stats {
                            self.stats.index_checks += 1;
                        }
                        let Some(r) = vals[*arr as usize].as_ref() else {
                            break 'op Trap::NullPointer;
                        };
                        let i = vals[*idx as usize].as_i();
                        let len = match self.heap.get(r) {
                            Obj::Array { data, .. } => data.len(),
                            _ => {
                                break 'op Trap::Internal("indexcheck on non-array".into());
                            }
                        };
                        if i < 0 || i as usize >= len {
                            break 'op Trap::IndexOutOfBounds;
                        }
                        vals[*dst as usize] = Value::I(i);
                        pc += 1;
                        continue 'l;
                    }
                    Op::GetElt { arr, idx, dst } => {
                        let Some(r) = vals[*arr as usize].as_ref() else {
                            break 'op Trap::NullPointer;
                        };
                        let i = vals[*idx as usize].as_i() as usize;
                        match self.heap.get(r) {
                            Obj::Array { data, .. } => match data.get(i) {
                                Ok(v) => {
                                    vals[*dst as usize] = v;
                                    pc += 1;
                                    continue 'l;
                                }
                                Err(t) => break 'op t,
                            },
                            _ => break 'op Trap::Internal("getelt on non-array".into()),
                        }
                    }
                    Op::IdxGetElt { arr, idx, chk, dst } => {
                        if self.collect_stats {
                            self.stats.index_checks += 1;
                            *self.stats.fused.entry("indexcheck>getelt").or_insert(0) += 1;
                        }
                        let Some(r) = vals[*arr as usize].as_ref() else {
                            break 'op Trap::NullPointer;
                        };
                        let i = vals[*idx as usize].as_i();
                        match self.heap.get(r) {
                            Obj::Array { data, .. } => {
                                if i < 0 || i as usize >= data.len() {
                                    break 'op Trap::IndexOutOfBounds;
                                }
                                vals[*chk as usize] = Value::I(i);
                                match data.get(i as usize) {
                                    Ok(v) => {
                                        vals[*dst as usize] = v;
                                        pc += 1;
                                        continue 'l;
                                    }
                                    Err(t) => break 'op t,
                                }
                            }
                            _ => {
                                break 'op Trap::Internal("indexcheck on non-array".into());
                            }
                        }
                    }
                    Op::SetElt { arr, idx, val } => {
                        let Some(r) = vals[*arr as usize].as_ref() else {
                            break 'op Trap::NullPointer;
                        };
                        let i = vals[*idx as usize].as_i() as usize;
                        let v = vals[*val as usize];
                        match self.heap.get_mut(r) {
                            Obj::Array { data, .. } => match data.set(i, v) {
                                Ok(()) => {
                                    pc += 1;
                                    continue 'l;
                                }
                                Err(t) => break 'op t,
                            },
                            _ => break 'op Trap::Internal("setelt on non-array".into()),
                        }
                    }
                    Op::IdxSetElt { arr, idx, val, chk } => {
                        if self.collect_stats {
                            self.stats.index_checks += 1;
                            *self.stats.fused.entry("indexcheck>setelt").or_insert(0) += 1;
                        }
                        let Some(r) = vals[*arr as usize].as_ref() else {
                            break 'op Trap::NullPointer;
                        };
                        let i = vals[*idx as usize].as_i();
                        let v = vals[*val as usize];
                        match self.heap.get_mut(r) {
                            Obj::Array { data, .. } => {
                                if i < 0 || i as usize >= data.len() {
                                    break 'op Trap::IndexOutOfBounds;
                                }
                                match data.set(i as usize, v) {
                                    Ok(()) => {
                                        vals[*chk as usize] = Value::I(i);
                                        pc += 1;
                                        continue 'l;
                                    }
                                    Err(t) => break 'op t,
                                }
                            }
                            _ => {
                                break 'op Trap::Internal("indexcheck on non-array".into());
                            }
                        }
                    }
                    Op::ArrayLength { arr, dst } => {
                        let Some(r) = vals[*arr as usize].as_ref() else {
                            break 'op Trap::NullPointer;
                        };
                        match self.heap.get(r) {
                            Obj::Array { data, .. } => {
                                vals[*dst as usize] = Value::I(data.len() as i32);
                                pc += 1;
                                continue 'l;
                            }
                            _ => break 'op Trap::Internal("arraylength on non-array".into()),
                        }
                    }
                    Op::New { class, dst } => match self.alloc_instance(*class) {
                        Ok(r) => {
                            vals[*dst as usize] = Value::Ref(Some(r));
                            pc += 1;
                            continue 'l;
                        }
                        Err(t) => break 'op t,
                    },
                    Op::NewArray {
                        elem,
                        width,
                        type_tag,
                        len,
                        dst,
                    } => {
                        let n = vals[*len as usize].as_i();
                        if n < 0 {
                            break 'op Trap::NegativeArraySize;
                        }
                        // Reserve the projected size before building
                        // the elements, same as the switch engine.
                        if let Err(t) = self
                            .heap
                            .try_reserve(safetsa_rt::heap::array_size_bytes(*width, n as u64))
                        {
                            break 'op t;
                        }
                        if self.collect_stats {
                            self.stats.arrays_allocated += 1;
                        }
                        let n = n as usize;
                        let data = match elem {
                            ElemKind::Z => safetsa_rt::heap::ArrData::Z(vec![false; n]),
                            ElemKind::C => safetsa_rt::heap::ArrData::C(vec![0; n]),
                            ElemKind::I => safetsa_rt::heap::ArrData::I(vec![0; n]),
                            ElemKind::J => safetsa_rt::heap::ArrData::J(vec![0; n]),
                            ElemKind::F => safetsa_rt::heap::ArrData::F(vec![0.0; n]),
                            ElemKind::D => safetsa_rt::heap::ArrData::D(vec![0.0; n]),
                            ElemKind::R => safetsa_rt::heap::ArrData::R(vec![None; n]),
                        };
                        let r = self.heap.alloc(Obj::Array {
                            type_tag: *type_tag,
                            data,
                        });
                        vals[*dst as usize] = Value::Ref(Some(r));
                        pc += 1;
                        continue 'l;
                    }
                    Op::Upcast { to, v, dst } => {
                        let val = vals[*v as usize];
                        match val.as_ref() {
                            None => {
                                vals[*dst as usize] = val;
                                pc += 1;
                                continue 'l;
                            }
                            Some(r) => {
                                if self.ref_is_instance_of(r, *to) {
                                    vals[*dst as usize] = val;
                                    pc += 1;
                                    continue 'l;
                                }
                                break 'op Trap::ClassCast;
                            }
                        }
                    }
                    Op::InstanceOf { target, v, dst } => {
                        let res = match vals[*v as usize].as_ref() {
                            None => false,
                            Some(r) => self.ref_is_instance_of(r, *target),
                        };
                        vals[*dst as usize] = Value::Z(res);
                        pc += 1;
                        continue 'l;
                    }
                    Op::RefEq { a, b, dst } => {
                        vals[*dst as usize] = Value::Z(
                            vals[*a as usize].as_ref() == vals[*b as usize].as_ref(),
                        );
                        pc += 1;
                        continue 'l;
                    }
                    Op::Catch { dst } => match pending.take() {
                        Some(exc) => {
                            vals[*dst as usize] = Value::Ref(Some(exc));
                            pc += 1;
                            continue 'l;
                        }
                        None => {
                            break 'op Trap::Internal("catch without pending exception".into());
                        }
                    },
                    Op::Call {
                        target,
                        recv,
                        args,
                        dst,
                    } => {
                        let argv: Vec<Value> =
                            args.iter().map(|&s| vals[s as usize]).collect();
                        let res = match *target {
                            CallTarget::Func(f2) => {
                                let mut all = Vec::with_capacity(argv.len() + 1);
                                if *recv != NO_SLOT {
                                    all.push(vals[*recv as usize]);
                                }
                                all.extend(argv);
                                self.call(f2, all)
                            }
                            CallTarget::Intrinsic { id, is_static } => {
                                let rv = if is_static || *recv == NO_SLOT {
                                    None
                                } else {
                                    Some(vals[*recv as usize])
                                };
                                intrinsics::invoke(
                                    id,
                                    &mut self.heap,
                                    &mut self.output,
                                    rv,
                                    &argv,
                                )
                            }
                        };
                        match res {
                            Ok(Some(v)) => {
                                if *dst == NO_SLOT {
                                    break 'op Trap::Internal(
                                        "result for result-less instr".into(),
                                    );
                                }
                                vals[*dst as usize] = v;
                            }
                            Ok(None) => {}
                            Err(t) => break 'op t,
                        }
                        pc += 1;
                        continue 'l;
                    }
                    Op::Dispatch {
                        vslot,
                        ic,
                        recv,
                        args,
                        dst,
                    } => {
                        let rv = vals[*recv as usize];
                        let Some(r) = rv.as_ref() else {
                            break 'op Trap::NullPointer;
                        };
                        let rc = match self.heap.get(r) {
                            Obj::Instance { class, .. } => *class as u32,
                            Obj::Str(_) => self.string_class.0,
                            Obj::Array { .. } => self.module.well_known.object.0,
                        };
                        let target = match ic.get() {
                            Some((c, t)) if c == rc => {
                                self.icache_hits += 1;
                                t
                            }
                            _ => {
                                self.icache_misses += 1;
                                match self.resolve_virtual(rc, *vslot) {
                                    Ok(t) => {
                                        ic.set(Some((rc, t)));
                                        t
                                    }
                                    Err(t) => break 'op t,
                                }
                            }
                        };
                        let argv: Vec<Value> =
                            args.iter().map(|&s| vals[s as usize]).collect();
                        let res = match target {
                            CallTarget::Func(f2) => {
                                let mut all = Vec::with_capacity(argv.len() + 1);
                                all.push(rv);
                                all.extend(argv);
                                self.call(f2, all)
                            }
                            CallTarget::Intrinsic { id, is_static } => {
                                let rv = if is_static { None } else { Some(rv) };
                                intrinsics::invoke(
                                    id,
                                    &mut self.heap,
                                    &mut self.output,
                                    rv,
                                    &argv,
                                )
                            }
                        };
                        match res {
                            Ok(Some(v)) => {
                                if *dst == NO_SLOT {
                                    break 'op Trap::Internal(
                                        "result for result-less instr".into(),
                                    );
                                }
                                vals[*dst as usize] = v;
                            }
                            Ok(None) => {}
                            Err(t) => break 'op t,
                        }
                        pc += 1;
                        continue 'l;
                    }
                    Op::Fail { msg } => break 'op Trap::Internal(msg.to_string()),
                }
            };
            match self.unwind_threaded(&tf, &mut handlers, trap, pc, &mut vals, &mut pending) {
                Ok(npc) => pc = npc,
                Err(t) => return Err(t),
            }
        }
    }

    /// Slice countdown for one block. While profiling, the countdown
    /// runs per original instruction (feeding the opcode ring exactly
    /// like the switch engine); otherwise the whole block cost is
    /// debited at once, with one boundary action per slice crossed.
    fn slice_tick(&mut self, tf: &TFunc, bi: u32, cost: u32) -> Result<(), Trap> {
        if self.profile_every != 0 {
            // Split borrow: the ring push needs &mut self while `tf` is
            // a separate Rc, so this is fine.
            let meta = &tf.blocks[bi as usize];
            for &m in meta.mnems.iter() {
                self.profile_ring[self.profile_ring_idx as usize] = m;
                self.profile_ring_idx = (self.profile_ring_idx + 1) % PROFILE_WINDOW as u8;
                if (self.profile_ring_len as usize) < PROFILE_WINDOW {
                    self.profile_ring_len += 1;
                }
                self.slice_left -= 1;
                if self.slice_left == 0 {
                    self.slice_left = DEADLINE_SLICE;
                    self.slice_boundary(&tf.name)?;
                }
            }
        } else {
            let mut c = cost;
            while c >= self.slice_left {
                c -= self.slice_left;
                self.slice_left = DEADLINE_SLICE;
                self.slice_boundary(&tf.name)?;
            }
            self.slice_left -= c;
        }
        Ok(())
    }

    /// One slice boundary: profiler sample first (so a deadline kill at
    /// this boundary still carries its at-kill-time sample), then the
    /// deadline clock read.
    fn slice_boundary(&mut self, name: &str) -> Result<(), Trap> {
        if self.profile_every != 0 {
            self.profile_countdown -= 1;
            if self.profile_countdown == 0 {
                self.profile_countdown = self.profile_every;
                let mut window = [""; PROFILE_WINDOW];
                let n = self.profile_ring_len as usize;
                for (i, slot) in window[..n].iter_mut().enumerate() {
                    let src =
                        (self.profile_ring_idx as usize + PROFILE_WINDOW - n + i) % PROFILE_WINDOW;
                    *slot = self.profile_ring[src];
                }
                self.profile.sample(name, &window[..n]);
            }
        }
        if let Some(deadline) = self.deadline {
            self.deadline_checks += 1;
            if Instant::now() >= deadline {
                return Err(Trap::DeadlineExceeded);
            }
        }
        Ok(())
    }

    /// Unwinds a trap to the innermost active handler: materializes the
    /// exception object, applies the handler-entry phi moves for the
    /// faulting block, and returns the handler-entry pc. Uncatchable
    /// traps (fuel, deadline, internal) propagate out.
    fn unwind_threaded(
        &mut self,
        tf: &TFunc,
        handlers: &mut Vec<u32>,
        trap: Trap,
        pc: usize,
        vals: &mut [Value],
        pending: &mut Option<HeapRef>,
    ) -> Result<usize, Trap> {
        let Some(h) = handlers.pop() else {
            return Err(trap);
        };
        let exc = self.trap_to_object(trap)?;
        let hi = &tf.handlers[h as usize];
        if hi.has_phis {
            // The dynamic predecessor is the block containing the
            // faulting op: the greatest block start at or before pc.
            let bid = match tf
                .block_starts
                .binary_search_by(|&(p, _)| p.cmp(&(pc as u32)))
            {
                Ok(i) => tf.block_starts[i].1,
                Err(0) => {
                    return Err(Trap::Internal("trap outside any block".into()));
                }
                Err(i) => tf.block_starts[i - 1].1,
            };
            match hi.moves.iter().find(|(p, _)| *p == bid) {
                Some((_, pairs)) => {
                    let mut scratch = std::mem::take(&mut self.moves_scratch);
                    scratch.clear();
                    scratch.extend(pairs.iter().map(|&(_, src)| vals[src as usize]));
                    for (&(dst, _), v) in pairs.iter().zip(&scratch) {
                        vals[dst as usize] = *v;
                    }
                    self.moves_scratch = scratch;
                }
                None => {
                    return Err(Trap::Internal(format!(
                        "phi in handler has no arg from b{bid}"
                    )));
                }
            }
        }
        *pending = Some(exc);
        Ok(hi.entry_pc as usize)
    }

    /// The vtable walk behind an inline-cache miss: resolves
    /// `(runtime class, vtable slot)` to a call target. Deterministic
    /// over the immutable vtables, so caching the result is sound.
    fn resolve_virtual(&self, rc: u32, vslot: u32) -> Result<CallTarget, Trap> {
        let (impl_class, impl_idx) = self.vtables[rc as usize][vslot as usize];
        let target = MethodRef {
            class: impl_class,
            index: impl_idx,
        };
        let info = self
            .module
            .types
            .method(target)
            .ok_or_else(|| Trap::Internal("bad vtable entry".into()))?;
        if let Some(body) = info.body {
            return Ok(CallTarget::Func(FuncId(body)));
        }
        let types = &self.module.types;
        let cinfo = types.class(impl_class);
        let sig: String = info
            .params
            .iter()
            .map(|p| crate::interp::sig_letter(types, *p))
            .collect();
        let id = intrinsics::resolve(&cinfo.name, &info.name, &sig).ok_or_else(|| {
            Trap::Internal(format!(
                "no intrinsic for {}.{}({sig})",
                cinfo.name, info.name
            ))
        })?;
        Ok(CallTarget::Intrinsic {
            id,
            is_static: info.kind == MethodKind::Static,
        })
    }

    /// Decoded-code statistics for `safetsa stats`: per function, the
    /// fused-op count and total charged ops (static, not dynamic).
    pub fn fused_static_counts(&mut self) -> (u64, u64) {
        let mut fused = 0u64;
        let mut total = 0u64;
        for i in 0..self.module.functions.len() {
            let tf = self.tfunc(FuncId(i as u32));
            for op in &tf.code {
                match op {
                    Op::Block { cost, .. } => total += u64::from(*cost),
                    Op::NullGetField { .. }
                    | Op::NullSetField { .. }
                    | Op::IdxGetElt { .. }
                    | Op::IdxSetElt { .. }
                    | Op::Prim2Pair { .. }
                    | Op::CmpBranchFalse { .. } => fused += 1,
                    _ => {}
                }
            }
        }
        (fused, total)
    }

    /// The engine's `Engine::Threaded` discriminant re-exported for
    /// convenience in integration code.
    pub fn is_threaded(&self) -> bool {
        self.engine() == Engine::Threaded
    }
}
