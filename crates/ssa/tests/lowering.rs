//! End-to-end producer tests: Java source → HIR → SafeTSA → verifier.
//!
//! Every lowered module must pass the full SafeTSA verifier: these
//! tests pin the central property that construction only ever produces
//! well-formed, dominance-respecting, type-separated programs.

use safetsa_core::verify::verify_module;
use safetsa_frontend::compile;
use safetsa_ssa::lower_program;

fn check(src: &str) -> safetsa_ssa::Lowered {
    let prog = compile(src).expect("front-end accepts");
    let lowered = lower_program(&prog).expect("lowering succeeds");
    if let Err(e) = verify_module(&lowered.module) {
        panic!("verification failed: {e}\nsource: {src}");
    }
    lowered
}

#[test]
fn straight_line() {
    let l = check("class A { static int f(int a, int b) { return a + b * 2 - a / (b + 1); } }");
    assert!(l.module.find_function("A.f").is_some());
}

#[test]
fn if_else_phi() {
    let l = check(
        "class A { static int max(int a, int b) { int m; if (a > b) m = a; else m = b; return m; } }",
    );
    let f = l.module.function(l.module.find_function("A.max").unwrap());
    assert!(f.phi_count() >= 1, "join phi expected");
}

#[test]
fn while_loop_sums() {
    let l = check(
        "class A { static int sum(int n) { int s = 0; int i = 0; while (i < n) { s = s + i; i = i + 1; } return s; } }",
    );
    let f = l.module.function(l.module.find_function("A.sum").unwrap());
    assert!(f.phi_count() >= 2, "loop phis for s and i");
}

#[test]
fn for_loop_with_continue_and_break() {
    check(
        "class A { static int f(int n) {
             int s = 0;
             for (int i = 0; i < n; i++) {
                 if (i % 3 == 0) continue;
                 if (s > 100) break;
                 s += i;
             }
             return s;
         } }",
    );
}

#[test]
fn do_while() {
    check("class A { static int f(int n) { int i = 0; do { i++; } while (i < n); return i; } }");
}

#[test]
fn nested_loops() {
    check(
        "class A { static int f(int n) {
             int s = 0;
             for (int i = 0; i < n; i++) {
                 for (int j = i; j < n; j++) {
                     if (j == 7) continue;
                     s += i * j;
                     if (s > 10000) break;
                 }
             }
             return s;
         } }",
    );
}

#[test]
fn infinite_loop_with_break() {
    check(
        "class A { static int f() { int i = 0; while (true) { i++; if (i > 5) break; } return i; } }",
    );
}

#[test]
fn short_circuit_conditions() {
    check(
        "class A { static boolean f(int a, int b) {
             return a > 0 && (b > 0 || a > 10) && !(a == b);
         } }",
    );
}

#[test]
fn ternary() {
    check("class A { static int f(int a, int b) { return a > b ? a : b; } }");
}

#[test]
fn fields_and_methods() {
    let l = check(
        "class Point {
             int x; int y;
             Point(int x, int y) { this.x = x; this.y = y; }
             int dist2() { return x * x + y * y; }
             static int use2() { Point p = new Point(3, 4); return p.dist2(); }
         }",
    );
    // `this.x` uses need no null checks and the constructor call on the
    // fresh allocation needs none; only `p.dist2()` checks, because the
    // local `p` lives on the unsafe ref plane.
    let t = l.totals();
    assert_eq!(t.null_checks, 1, "exactly one null check: {t:?}");
}

#[test]
fn null_checks_on_parameters() {
    let l = check("class A { int v; static int get(A a) { return a.v; } }");
    assert_eq!(l.totals().null_checks, 1);
}

#[test]
fn arrays_and_index_checks() {
    let l = check(
        "class A { static int sum(int[] a) {
             int s = 0;
             for (int i = 0; i < a.length; i++) s += a[i];
             return s;
         } }",
    );
    let t = l.totals();
    assert!(t.index_checks >= 1);
    assert!(t.null_checks >= 1, "a.length and a[i] null-check the array");
}

#[test]
fn array_literals() {
    check(
        "class A { static int f() { int[] a = {1, 2, 3}; int[][] m = new int[2][]; m[0] = a; return a[1] + m[0][2]; } }",
    );
}

#[test]
fn virtual_dispatch_and_override() {
    check(
        "class Shape { int area() { return 0; } }
         class Square extends Shape { int s; Square(int s) { this.s = s; } int area() { return s * s; } }
         class Main { static int f() { Shape x = new Square(4); return x.area(); } }",
    );
}

#[test]
fn static_fields_and_clinit() {
    let l = check(
        "class C { static int COUNT = 10; static int[] T = {1,2,3};
           static int f() { return COUNT + T[0]; } }",
    );
    assert!(l.module.find_function("C.<clinit>").is_some());
}

#[test]
fn string_operations() {
    check(
        r#"class A { static String f(int x) { return "x=" + x + ", twice=" + (x * 2); }
             static int g(String s) { return s.length() + s.charAt(0); } }"#,
    );
}

#[test]
fn casts_and_instanceof() {
    check(
        "class Animal { }
         class Dog extends Animal { int bark() { return 1; } }
         class Main {
             static int f(Animal a) {
                 if (a instanceof Dog) { Dog d = (Dog) a; return d.bark(); }
                 return 0;
             }
         }",
    );
}

#[test]
fn try_catch_divide() {
    let l = check(
        "class A { static int f(int x) {
             int r;
             try { r = 10 / x; } catch (ArithmeticException e) { r = -1; }
             return r;
         } }",
    );
    let f = l.module.function(l.module.find_function("A.f").unwrap());
    // A catch instruction must be present.
    assert!(f.count_instrs(|i| matches!(i, safetsa_core::instr::Instr::Catch { .. })) == 1);
}

#[test]
fn try_catch_multiple_arms() {
    check(
        "class A { static int f(int[] a, int i) {
             try {
                 return a[i];
             } catch (IndexOutOfBoundsException e) {
                 return -1;
             } catch (NullPointerException e) {
                 return -2;
             }
         } }",
    );
}

#[test]
fn nested_try() {
    check(
        "class A { static int f(int x, int y) {
             int r = 0;
             try {
                 r = 10 / x;
                 try { r += 10 / y; } catch (ArithmeticException e) { r += 1000; }
             } catch (ArithmeticException e) { r = -1; }
             return r;
         } }",
    );
}

#[test]
fn throw_user_exception() {
    check(
        "class MyError extends Exception { int code; MyError(int c) { super(); code = c; } }
         class A {
             static int f(int x) {
                 try { if (x < 0) throw new MyError(x); return x; }
                 catch (MyError e) { return -e.code; }
             }
         }",
    );
}

#[test]
fn try_finally() {
    check(
        "class A { static int f(int x) {
             int r = 0;
             try { r = 10 / x; } catch (ArithmeticException e) { r = -1; } finally { r = r + 100; }
             return r;
         } }",
    );
}

#[test]
fn loop_carried_dependencies() {
    check(
        "class A { static int fib(int n) {
             int a = 0; int b = 1;
             for (int i = 0; i < n; i++) { int t = a + b; a = b; b = t; }
             return a;
         } }",
    );
}

#[test]
fn calls_inside_loops_in_try() {
    check(
        "class A {
             static int g(int x) { return x * 2; }
             static int f(int n) {
                 int s = 0;
                 try {
                     for (int i = 0; i < n; i++) s += g(i) / (n - i);
                 } catch (ArithmeticException e) { s = -s; }
                 return s;
             }
         }",
    );
}

#[test]
fn long_and_double_arithmetic() {
    check(
        "class A {
             static long lcg(long seed) { return seed * 6364136223846793005L + 1442695040888963407L; }
             static double norm(double x, double y) { return Math.sqrt(x * x + y * y); }
             static int mix(int a, long b, double c) { return (int)(a + b + (long) c); }
         }",
    );
}

#[test]
fn char_handling() {
    check(
        "class A {
             static boolean isDigit(char c) { return c >= '0' && c <= '9'; }
             static int value(char c) { return c - '0'; }
         }",
    );
}

#[test]
fn phi_avoidance_on_abrupt_paths() {
    // The paper's §7 improvement: no phi where fewer than two feasible
    // paths converge (here the else branch returns, so `r` needs none).
    let l = check(
        "class A { static int f(boolean c, int x) {
             int r = 0;
             if (c) { r = x * 2; } else { return -1; }
             return r;
         } }",
    );
    let t = l.totals();
    assert_eq!(t.phis_inserted, 0, "{t:?}");
    assert!(
        t.phis_candidate > t.phis_inserted,
        "naive construction would have placed a phi: {t:?}"
    );
}

#[test]
fn recursion() {
    check("class A { static int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); } }");
}

#[test]
fn null_comparisons_lower() {
    check(
        "class Node { Node next; int v; }
         class A { static int len(Node n) { int k = 0; while (n != null) { k++; n = n.next; } return k; } }",
    );
}

#[test]
fn postfix_semantics_shape() {
    check("class A { static int f(int x) { int y = x++; int z = ++x; return y + z + x; } }");
}

#[test]
fn compound_assign_on_array() {
    check("class A { static void f(int[] a, int i) { a[i] += 5; a[i + 1] *= 2; a[i] <<= 1; } }");
}

#[test]
fn ref_equality_with_hierarchy() {
    check(
        "class A { }
         class B extends A { }
         class M { static boolean same(A a, B b) { return a == b; } }",
    );
}

#[test]
fn everything_verifies_in_one_program() {
    // A larger composite exercising most features at once.
    check(
        r#"
class Vec {
    double[] data;
    Vec(int n) { data = new double[n]; }
    double get(int i) { return data[i]; }
    void set(int i, double v) { data[i] = v; }
    double dot(Vec o) {
        double s = 0.0;
        for (int i = 0; i < data.length; i++) s += data[i] * o.data[i];
        return s;
    }
}
class Main {
    static int N = 8;
    static double run() {
        Vec a = new Vec(N);
        Vec b = new Vec(N);
        for (int i = 0; i < N; i++) { a.set(i, i * 1.5); b.set(i, i - 3.0); }
        double d = a.dot(b);
        try { d += 1 / (N - 8); } catch (ArithmeticException e) { d += 0.5; }
        return d;
    }
}
"#,
    );
}
