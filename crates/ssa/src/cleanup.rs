//! Phi cleanup after construction: trivial-phi elimination and
//! liveness-based dead-phi removal (Briggs et al., the paper's §7 —
//! "leading to a reduction of 31% on average in the number of phi
//! instructions").

pub use safetsa_core::rewrite::prune_phis;

#[cfg(test)]
mod tests {
    use super::*;
    use safetsa_core::cst::Cst;
    use safetsa_core::function::ENTRY;
    use safetsa_core::instr::Instr;
    use safetsa_core::primops;
    use safetsa_core::types::{PrimKind, TypeTable};
    use safetsa_core::Function;

    /// Builds: if (p0) { t = a+a } else {} ; phi; return a (phi dead).
    #[test]
    fn dead_phi_removed() {
        let mut types = TypeTable::new();
        let int = types.prim(PrimKind::Int);
        let boolean = types.bool_ty();
        let mut f = Function::new("t", None, vec![boolean, int], Some(int));
        let add = primops::find(PrimKind::Int, "add").unwrap();
        let then_b = f.add_block();
        let join = f.add_block();
        let tv = f
            .add_instr(
                &mut types,
                then_b,
                Instr::Primitive {
                    ty: int,
                    op: add,
                    args: vec![f.param_value(1), f.param_value(1)],
                },
            )
            .unwrap()
            .unwrap();
        let phi = f.add_phi(join, int);
        f.set_phi_args(join, 0, vec![(then_b, tv), (ENTRY, f.param_value(1))]);
        let _ = phi;
        f.body = Cst::Seq(vec![
            Cst::Basic(ENTRY),
            Cst::If {
                cond: f.param_value(0),
                then_br: Box::new(Cst::Basic(then_b)),
                else_br: Box::new(Cst::empty()),
                join,
            },
            Cst::Return(Some(f.param_value(1))),
        ]);
        let (g, removed) = prune_phis(&f);
        assert_eq!(removed, 1);
        assert_eq!(g.phi_count(), 0);
        // The add instruction survives (it is not a phi) even though it
        // is now dead — DCE proper lives in safetsa-opt.
        assert_eq!(g.instr_count(), 1);
    }

    #[test]
    fn live_phi_kept() {
        let mut types = TypeTable::new();
        let int = types.prim(PrimKind::Int);
        let boolean = types.bool_ty();
        let mut f = Function::new("t", None, vec![boolean, int], Some(int));
        let add = primops::find(PrimKind::Int, "add").unwrap();
        let then_b = f.add_block();
        let join = f.add_block();
        let tv = f
            .add_instr(
                &mut types,
                then_b,
                Instr::Primitive {
                    ty: int,
                    op: add,
                    args: vec![f.param_value(1), f.param_value(1)],
                },
            )
            .unwrap()
            .unwrap();
        let phi = f.add_phi(join, int);
        f.set_phi_args(join, 0, vec![(then_b, tv), (ENTRY, f.param_value(1))]);
        f.body = Cst::Seq(vec![
            Cst::Basic(ENTRY),
            Cst::If {
                cond: f.param_value(0),
                then_br: Box::new(Cst::Basic(then_b)),
                else_br: Box::new(Cst::empty()),
                join,
            },
            Cst::Return(Some(phi)),
        ]);
        let (g, removed) = prune_phis(&f);
        assert_eq!(removed, 0);
        assert_eq!(g.phi_count(), 1);
    }

    #[test]
    fn trivial_phi_substituted() {
        let mut types = TypeTable::new();
        let int = types.prim(PrimKind::Int);
        let boolean = types.bool_ty();
        let _ = &mut types;
        let mut f = Function::new("t", None, vec![boolean, int], Some(int));
        let then_b = f.add_block();
        let join = f.add_block();
        // Both edges carry the same value → trivial.
        let phi = f.add_phi(join, int);
        f.set_phi_args(
            join,
            0,
            vec![(then_b, f.param_value(1)), (ENTRY, f.param_value(1))],
        );
        f.body = Cst::Seq(vec![
            Cst::Basic(ENTRY),
            Cst::If {
                cond: f.param_value(0),
                then_br: Box::new(Cst::Basic(then_b)),
                else_br: Box::new(Cst::empty()),
                join,
            },
            Cst::Return(Some(phi)),
        ]);
        let (g, removed) = prune_phis(&f);
        assert_eq!(removed, 1);
        assert_eq!(g.phi_count(), 0);
        match &g.body {
            Cst::Seq(items) => match items.last().unwrap() {
                Cst::Return(Some(v)) => assert_eq!(*v, g.param_value(1)),
                _ => panic!("bad CST"),
            },
            _ => panic!("bad CST"),
        }
    }
}
