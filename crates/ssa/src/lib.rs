//! # safetsa-ssa
//!
//! The SafeTSA *producer*: translates the front-end's typed HIR into
//! the SafeTSA representation using the single-pass Brandis–Mössenböck
//! SSA construction the paper describes in §7. The construction avoids
//! placing phis that a naive join-everywhere constructor would insert
//! (the paper reports ~31% of phis avoided/pruned); the remaining dead
//! phis are removed by producer-side DCE (`safetsa-opt`).
//!
//! # Examples
//!
//! ```
//! let prog = safetsa_frontend::compile(
//!     "class A { static int inc(int x) { return x + 1; } }",
//! )?;
//! let lowered = safetsa_ssa::lower_program(&prog)?;
//! safetsa_core::verify::verify_module(&lowered.module)?;
//! assert!(lowered.module.find_function("A.inc").is_some());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod cleanup;
pub mod lower;
pub mod typemap;

pub use lower::{FnStats, LowerError};

use safetsa_core::module::{Module, WellKnown};
use safetsa_frontend::hir::Program;
use safetsa_telemetry::Telemetry;

/// The result of lowering a whole program.
#[derive(Debug)]
pub struct Lowered {
    /// The SafeTSA distribution unit.
    pub module: Module,
    /// Per-function construction statistics, parallel to
    /// `module.functions`.
    pub stats: Vec<FnStats>,
}

impl Lowered {
    /// Aggregate statistics across all functions.
    pub fn totals(&self) -> FnStats {
        let mut t = FnStats::default();
        for s in &self.stats {
            t.phis_candidate += s.phis_candidate;
            t.phis_inserted += s.phis_inserted;
            t.null_checks += s.null_checks;
            t.index_checks += s.index_checks;
        }
        t
    }
}

/// Lowers a resolved program to a SafeTSA module.
///
/// Every user-defined method body is translated; built-in (imported)
/// methods keep `body: None` and are provided by the host at run time.
///
/// # Errors
///
/// Returns a [`LowerError`] if the HIR violates an invariant the
/// lowering relies on (indicative of a front-end bug).
pub fn lower_program(prog: &Program) -> Result<Lowered, LowerError> {
    construct(prog, &Telemetry::disabled())
}

/// The canonical instrumented entry point: [`lower_program`] recording
/// the construction wall time (`ssa.lower_ns`), the §7 construction
/// counters (`ssa.phis_candidate` / `ssa.phis_inserted` /
/// `ssa.phis_avoided`, `ssa.null_checks_inserted` /
/// `ssa.index_checks_inserted`), totals (`ssa.functions`, `ssa.instrs`,
/// `ssa.phis`), and a per-function instruction-count histogram
/// (`ssa.fn_instrs`).
///
/// # Errors
///
/// Returns a [`LowerError`] if the HIR violates an invariant the
/// lowering relies on (indicative of a front-end bug).
pub fn construct(prog: &Program, tm: &Telemetry) -> Result<Lowered, LowerError> {
    let lowered = tm.time("ssa.lower_ns", || lower_program_inner(prog))?;
    if tm.is_enabled() {
        let totals = lowered.totals();
        tm.add("ssa.phis_candidate", totals.phis_candidate as u64);
        tm.add("ssa.phis_inserted", totals.phis_inserted as u64);
        tm.add(
            "ssa.phis_avoided",
            totals.phis_candidate.saturating_sub(totals.phis_inserted) as u64,
        );
        tm.add("ssa.null_checks_inserted", totals.null_checks as u64);
        tm.add("ssa.index_checks_inserted", totals.index_checks as u64);
        tm.add("ssa.functions", lowered.module.functions.len() as u64);
        tm.add("ssa.instrs", lowered.module.instr_count() as u64);
        tm.add("ssa.phis", lowered.module.phi_count() as u64);
        for f in &lowered.module.functions {
            tm.observe("ssa.fn_instrs", f.instr_count() as u64);
        }
    }
    Ok(lowered)
}

fn lower_program_inner(prog: &Program) -> Result<Lowered, LowerError> {
    let (mut types, map) = typemap::build(prog);
    let mut functions = Vec::new();
    let mut stats = Vec::new();
    for (ci, class) in prog.classes.iter().enumerate() {
        for (mi, method) in class.methods.iter().enumerate() {
            if method.body.is_none() {
                continue;
            }
            let lower = lower::Lower::new(prog, &mut types, &map, ci, mi)?;
            let (f, fstats) = lower.run(ci, mi)?;
            let func_id = functions.len() as u32;
            types.class_mut(map.class_id(ci)).methods[mi].body = Some(func_id);
            functions.push(f);
            stats.push(fstats);
        }
    }
    let module = Module {
        name: "program".into(),
        types,
        well_known: WellKnown {
            object: map.class_id(prog.object),
            throwable: map.class_id(prog.throwable),
            string: map.class_id(prog.string),
        },
        functions,
    };
    Ok(Lowered { module, stats })
}
