//! Mapping from the front-end's semantic types to the SafeTSA type
//! table (register planes).
//!
//! HIR class indices map 1:1 onto core [`ClassId`]s, and field/method
//! indices are preserved, so symbolic member references can be built
//! without lookup tables.

use safetsa_core::types::{
    ClassId, ClassInfo, FieldInfo, MethodInfo, MethodKind as CoreMethodKind, TypeId, TypeTable,
};
use safetsa_frontend::hir::{self, MethodKind, PrimTy, Program, Ty};

/// The realized mapping.
#[derive(Debug)]
pub struct TypeMap {
    /// `ref` plane per HIR class index.
    pub class_ty: Vec<TypeId>,
}

impl TypeMap {
    /// The core class id for a HIR class index.
    pub fn class_id(&self, idx: hir::ClassIdx) -> ClassId {
        ClassId(idx as u32)
    }

    /// Maps a semantic type to its plane. `Ty::Null` and `Ty::Void` have
    /// no plane and panic (the lowering handles them contextually).
    pub fn ty(&self, types: &mut TypeTable, t: &Ty) -> TypeId {
        match t {
            Ty::Prim(p) => types.prim(prim(*p)),
            Ty::Ref(c) => self.class_ty[*c],
            Ty::Array(e) => {
                let inner = self.ty(types, e);
                types.array_of(inner)
            }
            Ty::Null => panic!("null has no plane; coerce to a reference type first"),
            Ty::Void => panic!("void has no plane"),
        }
    }

    /// Optional mapping for return types (`Void` → `None`).
    pub fn ret_ty(&self, types: &mut TypeTable, t: &Ty) -> Option<TypeId> {
        match t {
            Ty::Void => None,
            other => Some(self.ty(types, other)),
        }
    }
}

/// Maps a HIR primitive to the machine-model primitive.
pub fn prim(p: PrimTy) -> safetsa_core::types::PrimKind {
    use safetsa_core::types::PrimKind as K;
    match p {
        PrimTy::Bool => K::Bool,
        PrimTy::Char => K::Char,
        PrimTy::Int => K::Int,
        PrimTy::Long => K::Long,
        PrimTy::Float => K::Float,
        PrimTy::Double => K::Double,
    }
}

/// Builds the type table for `prog` (classes only; function bodies are
/// attached by the lowering driver).
pub fn build(prog: &Program) -> (TypeTable, TypeMap) {
    let mut types = TypeTable::new();
    // Pre-declare every class so forward superclass references resolve.
    let mut class_ty = Vec::with_capacity(prog.classes.len());
    for c in &prog.classes {
        let (_, ty) = types.declare_class(ClassInfo {
            name: c.name.clone(),
            superclass: None,
            fields: vec![],
            methods: vec![],
            imported: c.is_builtin,
        });
        class_ty.push(ty);
    }
    let map = TypeMap { class_ty };
    // Fill superclasses and members.
    for (idx, c) in prog.classes.iter().enumerate() {
        let superclass = c.superclass.map(|s| map.class_id(s));
        let fields: Vec<FieldInfo> = c
            .fields
            .iter()
            .map(|f| {
                let ty = map.ty(&mut types, &f.ty);
                FieldInfo {
                    name: f.name.clone(),
                    ty,
                    is_static: f.is_static,
                }
            })
            .collect();
        let methods: Vec<MethodInfo> = c
            .methods
            .iter()
            .map(|m| {
                let params = m.params.iter().map(|p| map.ty(&mut types, p)).collect();
                let ret = map.ret_ty(&mut types, &m.ret);
                MethodInfo {
                    name: m.name.clone(),
                    params,
                    ret,
                    kind: match m.kind {
                        MethodKind::Static => CoreMethodKind::Static,
                        MethodKind::Virtual => CoreMethodKind::Virtual,
                        MethodKind::Special => CoreMethodKind::Special,
                    },
                    vtable_slot: m.vtable_slot.map(|s| s as u32),
                    body: None,
                }
            })
            .collect();
        let id = map.class_id(idx);
        let info = types.class_mut(id);
        info.superclass = superclass;
        info.fields = fields;
        info.methods = methods;
    }
    // Every class gets a safe-ref plane eagerly: receivers live there.
    for idx in 0..prog.classes.len() {
        let ty = map.class_ty[idx];
        types.safe_ref_of(ty);
    }
    (types, map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use safetsa_frontend::compile;

    #[test]
    fn classes_map_one_to_one() {
        let prog = compile("class A { int x; } class B extends A { }").unwrap();
        let (types, map) = build(&prog);
        let a = prog.find_class("A").unwrap();
        let b = prog.find_class("B").unwrap();
        assert_eq!(types.class(map.class_id(a)).name, "A");
        assert_eq!(types.class(map.class_id(b)).name, "B");
        assert_eq!(
            types.class(map.class_id(b)).superclass,
            Some(map.class_id(a))
        );
        assert_eq!(types.class(map.class_id(a)).fields[0].name, "x");
        assert!(types.is_subclass(map.class_id(b), map.class_id(prog.object)));
    }

    #[test]
    fn array_types_intern() {
        let prog = compile("class A { int[][] m; }").unwrap();
        let (mut types, map) = build(&prog);
        let t1 = map.ty(
            &mut types,
            &Ty::Array(Box::new(Ty::Array(Box::new(Ty::INT)))),
        );
        let a = prog.find_class("A").unwrap();
        let field_ty = types.class(map.class_id(a)).fields[0].ty;
        assert_eq!(t1, field_ty);
    }

    #[test]
    fn builtins_marked_imported() {
        let prog = compile("class A { }").unwrap();
        let (types, map) = build(&prog);
        assert!(types.class(map.class_id(prog.object)).imported);
        let a = prog.find_class("A").unwrap();
        assert!(!types.class(map.class_id(a)).imported);
    }
}
