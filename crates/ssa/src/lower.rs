//! Single-pass SSA construction from the structured HIR, following the
//! method of Brandis & Mössenböck (the paper's §7): definitions are
//! tracked per local slot while walking the structured statements, phi
//! nodes are placed at the structural merge points (if-joins, loop
//! headers, break/continue targets, exception handler entries), and the
//! Control Structure Tree is produced alongside the instruction stream.
//!
//! Null checks and index checks are inserted at every use site, as the
//! format requires (`getfield`/`getelt`/… only accept `safe` operands);
//! producer-side optimization (`safetsa-opt`) later removes the
//! redundant ones and transports the result safely.
//!
//! Frontier discipline: `cur` is the block that control currently falls
//! through (`None` right after entering a branch, before any code was
//! emitted there), and `live` records whether the current point is
//! reachable. Inside a `try` region, every exceptional instruction ends
//! its block (the paper's sub-block splitting) and a fresh continuation
//! block is opened immediately, so `cur` always names the true frontier.

use crate::typemap::{prim, TypeMap};
use safetsa_core::cst::Cst;
use safetsa_core::function::{Function, ENTRY};
use safetsa_core::instr::Instr;
use safetsa_core::primops::{self, PrimOpId};
use safetsa_core::types::{FieldRef, MethodRef, PrimKind, TypeId, TypeKind, TypeTable};
use safetsa_core::typing::TypeError;
use safetsa_core::value::{BlockId, Const, Literal, ValueId};
use safetsa_frontend::hir::{
    self, BinOp, Catch, Expr, ExprKind, Lit, LocalId, PrimTy, Program, Stmt, Ty, UnOp,
};
use std::collections::HashSet;
use std::fmt;

/// An SSA-construction failure (indicates a front-end bug; surfaced as
/// an error rather than a panic for robustness).
#[derive(Debug, Clone)]
pub struct LowerError(pub String);

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ssa lowering: {}", self.0)
    }
}

impl std::error::Error for LowerError {}

impl From<TypeError> for LowerError {
    fn from(e: TypeError) -> Self {
        LowerError(e.to_string())
    }
}

/// Construction statistics (feeds the Figure 6 "before" columns and the
/// §7 phi-pruning claim).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FnStats {
    /// Phis a naive constructor would place: one per live variable at
    /// every join. The single-pass construction avoids most of them
    /// (the paper's §7 improvement for return/continue/break paths and
    /// Briggs-style pruning, reported as ~31% together).
    pub phis_candidate: usize,
    /// Phis actually placed by the structural construction.
    pub phis_inserted: usize,
    /// `nullcheck` instructions emitted.
    pub null_checks: usize,
    /// `indexcheck` instructions emitted.
    pub index_checks: usize,
}

type Defs = Vec<Option<ValueId>>;

#[derive(Debug, Clone, Copy)]
enum ContinueKind {
    /// `continue` jumps straight to the loop header (while loops).
    Header,
    /// `continue` breaks to an inner label (for/do-while: the update or
    /// condition section), identified by its absolute label depth.
    InnerLabel(u32),
}

struct LoopCtx {
    /// `(slot, phi index)` of the header phis.
    phis: Vec<(LocalId, usize)>,
    /// Absolute label depth of the loop's break target.
    break_label_depth: u32,
    /// Absolute loop depth of this loop.
    loop_depth: u32,
    continue_kind: ContinueKind,
    breaks: Vec<(BlockId, Defs)>,
    /// Back-edge sources (while-style continues and body fall-through).
    back_edges: Vec<(BlockId, Defs)>,
    /// Continue edges routed to an inner label (for/do-while).
    inner_continues: Vec<(BlockId, Defs)>,
}

struct TryCtx {
    handler_entry: Option<BlockId>,
    snapshots: Vec<(BlockId, Defs)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LoopShape {
    While,
    DoWhile,
    For,
}

pub(crate) struct Lower<'a> {
    prog: &'a Program,
    types: &'a mut TypeTable,
    map: &'a TypeMap,
    pub f: Function,
    cur: Option<BlockId>,
    live: bool,
    defs: Defs,
    local_planes: Vec<TypeId>,
    loops: Vec<LoopCtx>,
    tries: Vec<TryCtx>,
    label_depth: u32,
    loop_depth: u32,
    pub stats: FnStats,
}

impl<'a> Lower<'a> {
    pub fn new(
        prog: &'a Program,
        types: &'a mut TypeTable,
        map: &'a TypeMap,
        class: hir::ClassIdx,
        method: hir::MethodIdx,
    ) -> Result<Self, LowerError> {
        let meta = prog.method(class, method);
        let body = meta
            .body
            .as_ref()
            .ok_or_else(|| LowerError("method has no body".into()))?;
        let is_static = meta.kind == hir::MethodKind::Static;
        let mut params = Vec::new();
        let mut local_planes = Vec::new();
        let n_params = meta.params.len() + usize::from(!is_static);
        for (i, local) in body.locals.iter().enumerate() {
            let plane = if i == 0 && !is_static {
                // The receiver arrives null-checked by the dispatch.
                let c = map.class_ty[class];
                types.safe_ref_of(c)
            } else {
                map.ty(types, &local.ty)
            };
            local_planes.push(plane);
            if i < n_params {
                params.push(plane);
            }
        }
        let ret = map.ret_ty(types, &meta.ret);
        let name = format!("{}.{}", prog.class(class).name, meta.name);
        let f = Function::new(name, Some(map.class_id(class)), params, ret);
        let mut defs: Defs = vec![None; body.locals.len()];
        for (i, d) in defs.iter_mut().enumerate().take(n_params) {
            *d = Some(ValueId(i as u32));
        }
        Ok(Lower {
            prog,
            types,
            map,
            f,
            cur: Some(ENTRY),
            live: true,
            defs,
            local_planes,
            loops: Vec::new(),
            tries: Vec::new(),
            label_depth: 0,
            loop_depth: 0,
            stats: FnStats::default(),
        })
    }

    pub fn run(
        mut self,
        class: hir::ClassIdx,
        method: hir::MethodIdx,
    ) -> Result<(Function, FnStats), LowerError> {
        let body = self
            .prog
            .method(class, method)
            .body
            .as_ref()
            .expect("checked in new")
            .clone();
        let mut out = vec![Cst::Basic(ENTRY)];
        self.stmts(&body.stmts, &mut out)?;
        if self.live && self.f.ret.is_none() {
            out.push(Cst::Return(None));
        }
        self.f.body = Cst::Seq(out);
        let stats = self.stats;
        Ok((self.f, stats))
    }

    // ------------------------------------------------------- plumbing

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, LowerError> {
        Err(LowerError(format!("{}: {}", self.f.name, msg.into())))
    }

    fn ensure_block(&mut self, out: &mut Vec<Cst>) -> BlockId {
        debug_assert!(self.live, "emitting into dead code");
        match self.cur {
            Some(b) => b,
            None => {
                let b = self.f.add_block();
                out.push(Cst::Basic(b));
                self.cur = Some(b);
                b
            }
        }
    }

    /// Emits an instruction. Inside a `try`, an exceptional instruction
    /// records a definition snapshot for the handler phis and splits the
    /// block (opening a fresh continuation block immediately).
    fn emit(&mut self, out: &mut Vec<Cst>, instr: Instr) -> Result<Option<ValueId>, LowerError> {
        let exceptional = instr.is_exceptional();
        let b = self.ensure_block(out);
        if exceptional && !self.tries.is_empty() {
            let snap = (b, self.defs.clone());
            self.try_handler()?;
            self.tries
                .last_mut()
                .expect("inside try")
                .snapshots
                .push(snap);
        }
        let r = self.f.add_instr(self.types, b, instr)?;
        if exceptional && !self.tries.is_empty() {
            let nb = self.f.add_block();
            out.push(Cst::Basic(nb));
            self.cur = Some(nb);
        }
        Ok(r)
    }

    /// Lazily allocates the innermost try's handler-entry block with its
    /// `catch` instruction.
    fn try_handler(&mut self) -> Result<BlockId, LowerError> {
        let throwable_ty = self.map.class_ty[self.prog.throwable];
        if let Some(h) = self.tries.last().expect("inside try").handler_entry {
            return Ok(h);
        }
        let h = self.f.add_block();
        self.f
            .add_instr(self.types, h, Instr::Catch { ty: throwable_ty })?;
        self.tries.last_mut().unwrap().handler_entry = Some(h);
        Ok(h)
    }

    fn const_val(&mut self, ty: TypeId, lit: Literal) -> ValueId {
        self.f.add_const(Const { ty, lit })
    }

    fn plane(&self, v: ValueId) -> TypeId {
        self.f.value_ty(v)
    }

    fn op(&self, kind: PrimKind, name: &str) -> PrimOpId {
        primops::find(kind, name).unwrap_or_else(|| panic!("primop {kind:?}.{name}"))
    }

    /// Statically safe plane change (downcast); no-op when already there.
    fn coerce(
        &mut self,
        out: &mut Vec<Cst>,
        v: ValueId,
        want: TypeId,
    ) -> Result<ValueId, LowerError> {
        let from = self.plane(v);
        if from == want {
            return Ok(v);
        }
        let r = self.emit(
            out,
            Instr::Downcast {
                from,
                to: want,
                value: v,
            },
        )?;
        Ok(r.expect("downcast has a result"))
    }

    /// Produces `v` on the safe-ref plane of reference type `target`,
    /// inserting a null check only when the value is not already known
    /// non-null (`this`, fresh allocations, previous checks).
    fn as_safe(
        &mut self,
        out: &mut Vec<Cst>,
        v: ValueId,
        target: TypeId,
    ) -> Result<ValueId, LowerError> {
        let want = self.types.safe_ref_of(target);
        let from = self.plane(v);
        if from == want {
            return Ok(v);
        }
        if self.types.is_safe_ref(from) {
            return self.coerce(out, v, want);
        }
        let at = self.coerce(out, v, target)?;
        self.stats.null_checks += 1;
        let r = self.emit(
            out,
            Instr::NullCheck {
                ty: target,
                value: at,
            },
        )?;
        Ok(r.expect("nullcheck has a result"))
    }

    fn checked_index(
        &mut self,
        out: &mut Vec<Cst>,
        arr_ty: TypeId,
        safe_arr: ValueId,
        idx: ValueId,
    ) -> Result<ValueId, LowerError> {
        self.stats.index_checks += 1;
        let r = self.emit(
            out,
            Instr::IndexCheck {
                arr_ty,
                array: safe_arr,
                index: idx,
            },
        )?;
        Ok(r.expect("indexcheck has a result"))
    }

    // ------------------------------------------------------ merging

    /// Merges definition maps at `join`. `entry` (the defs at the
    /// region entry, when the caller has them) feeds the phi-avoidance
    /// statistic: a construction without the paper's abrupt-path
    /// improvement and without Briggs pruning would place a phi for
    /// every slot assigned on *any* converging path.
    fn merge_defs(&mut self, join: BlockId, incoming: &[(BlockId, Defs)], entry: Option<&Defs>) {
        debug_assert!(!incoming.is_empty());
        if let Some(e) = entry {
            for slot in 0..self.defs.len() {
                let assigned_somewhere = incoming
                    .iter()
                    .any(|(_, d)| d[slot].is_some() && d[slot] != e[slot]);
                if assigned_somewhere {
                    self.stats.phis_candidate += 1;
                }
            }
        }
        if incoming.len() == 1 {
            self.defs = incoming[0].1.clone();
            return;
        }
        let n = self.defs.len();
        let mut merged: Defs = vec![None; n];
        for (slot, m) in merged.iter_mut().enumerate() {
            let vals: Vec<Option<ValueId>> = incoming.iter().map(|(_, d)| d[slot]).collect();
            if vals.iter().any(|v| v.is_none()) {
                continue;
            }
            if entry.is_none() {
                // No entry snapshot: approximate the naive count by the
                // slots that actually differ.
                let f0 = vals[0];
                if !vals.iter().all(|v| *v == f0) {
                    self.stats.phis_candidate += 1;
                }
            }
            let first = vals[0].unwrap();
            if vals.iter().all(|v| *v == Some(first)) {
                *m = Some(first);
            } else {
                let ty = self.local_planes[slot];
                let phi = self.f.add_phi(join, ty);
                self.stats.phis_inserted += 1;
                let idx = self.f.block(join).phis.len() - 1;
                let args = incoming
                    .iter()
                    .map(|(b, d)| (*b, d[slot].unwrap()))
                    .collect();
                self.f.set_phi_args(join, idx, args);
                *m = Some(phi);
            }
        }
        self.defs = merged;
    }

    fn merge_value(&mut self, join: BlockId, incoming: &[(BlockId, ValueId)]) -> ValueId {
        debug_assert!(!incoming.is_empty());
        self.stats.phis_candidate += 1;
        let first = incoming[0].1;
        if incoming.iter().all(|(_, v)| *v == first) {
            return first;
        }
        let ty = self.plane(first);
        let phi = self.f.add_phi(join, ty);
        self.stats.phis_inserted += 1;
        let idx = self.f.block(join).phis.len() - 1;
        self.f.set_phi_args(join, idx, incoming.to_vec());
        phi
    }

    // ---------------------------------------------------- statements

    fn stmts(&mut self, list: &[Stmt], out: &mut Vec<Cst>) -> Result<(), LowerError> {
        for s in list {
            if !self.live {
                return self.err("statement after terminator (front-end bug)");
            }
            self.stmt(s, out)?;
        }
        Ok(())
    }

    fn kill(&mut self) {
        self.cur = None;
        self.live = false;
    }

    fn stmt(&mut self, s: &Stmt, out: &mut Vec<Cst>) -> Result<(), LowerError> {
        match s {
            Stmt::Expr(e) => {
                self.expr(e, out)?;
            }
            Stmt::Return(v) => {
                let val = match v {
                    None => None,
                    Some(e) => {
                        let raw = self.expr_value(e, out)?;
                        let want = self.f.ret.expect("non-void return");
                        Some(self.coerce(out, raw, want)?)
                    }
                };
                self.ensure_block(out);
                out.push(Cst::Return(val));
                self.kill();
            }
            Stmt::Throw(e) => {
                let raw = self.expr_value(e, out)?;
                let v = match self.types.kind(self.plane(raw)) {
                    TypeKind::SafeRef(of) => self.coerce(out, raw, of)?,
                    _ => raw,
                };
                let b = self.ensure_block(out);
                if !self.tries.is_empty() {
                    let snap = (b, self.defs.clone());
                    self.try_handler()?;
                    self.tries.last_mut().unwrap().snapshots.push(snap);
                }
                out.push(Cst::Throw(v));
                self.kill();
            }
            Stmt::Break { depth } => {
                let b = self.ensure_block(out);
                let idx = self
                    .loops
                    .len()
                    .checked_sub(1 + depth)
                    .expect("sema-checked loop depth");
                let cst_depth = {
                    let ctx = &self.loops[idx];
                    self.label_depth - ctx.break_label_depth
                };
                self.loops[idx].breaks.push((b, self.defs.clone()));
                out.push(Cst::Break(cst_depth));
                self.kill();
            }
            Stmt::Continue { depth } => {
                let b = self.ensure_block(out);
                let snap = (b, self.defs.clone());
                let idx = self
                    .loops
                    .len()
                    .checked_sub(1 + depth)
                    .expect("sema-checked loop depth");
                let (label_depth, loop_depth) = (self.label_depth, self.loop_depth);
                let ctx = &mut self.loops[idx];
                let node = match ctx.continue_kind {
                    ContinueKind::Header => {
                        ctx.back_edges.push(snap);
                        Cst::Continue(loop_depth - ctx.loop_depth)
                    }
                    ContinueKind::InnerLabel(target) => {
                        ctx.inner_continues.push(snap);
                        Cst::Break(label_depth - target)
                    }
                };
                out.push(node);
                self.kill();
            }
            Stmt::If { cond, then, els } => {
                let (cond_v, branch_block) = self.cond_value(cond, out)?;
                let saved = self.defs.clone();
                // Then branch.
                self.cur = None;
                self.live = true;
                let mut then_vec = Vec::new();
                self.stmts(then, &mut then_vec)?;
                let then_end = self.branch_end(branch_block);
                let then_defs = self.defs.clone();
                // Else branch.
                self.cur = None;
                self.live = true;
                self.defs = saved.clone();
                let mut else_vec = Vec::new();
                self.stmts(els, &mut else_vec)?;
                let else_end = self.branch_end(branch_block);
                let else_defs = self.defs.clone();
                // Degenerate: both branches empty, alive, and without
                // definition changes → drop the If entirely.
                if then_vec.is_empty()
                    && else_vec.is_empty()
                    && then_end.is_some()
                    && else_end.is_some()
                    && then_defs == saved
                    && else_defs == saved
                {
                    self.cur = Some(branch_block);
                    self.live = true;
                    self.defs = saved;
                    return Ok(());
                }
                let mut incoming = Vec::new();
                if let Some(b) = then_end {
                    incoming.push((b, then_defs));
                }
                if let Some(b) = else_end {
                    incoming.push((b, else_defs));
                }
                // Distinct-predecessor guarantee.
                if incoming.len() == 2 && incoming[0].0 == incoming[1].0 {
                    let b = self.f.add_block();
                    then_vec.push(Cst::Basic(b));
                    incoming[0].0 = b;
                }
                let join = self.f.add_block();
                out.push(Cst::If {
                    cond: cond_v,
                    then_br: Box::new(Cst::Seq(then_vec)),
                    else_br: Box::new(Cst::Seq(else_vec)),
                    join,
                });
                if incoming.is_empty() {
                    self.kill();
                } else {
                    self.merge_defs(join, &incoming, Some(&saved));
                    self.cur = Some(join);
                    self.live = true;
                }
            }
            Stmt::While { cond, body } => {
                self.lower_loop(out, Some(cond), body, &[], LoopShape::While)?;
            }
            Stmt::DoWhile { body, cond } => {
                self.lower_loop(out, Some(cond), body, &[], LoopShape::DoWhile)?;
            }
            Stmt::For { cond, update, body } => {
                self.lower_loop(out, cond.as_ref(), body, update, LoopShape::For)?;
            }
            Stmt::Try {
                body,
                catches,
                finally,
            } => {
                if finally.is_some() {
                    return self.err("finally must be desugared by the front-end");
                }
                self.lower_try(out, body, catches)?;
            }
        }
        Ok(())
    }

    /// Evaluates a branch condition, returning the value and the block
    /// the branch departs from.
    fn cond_value(
        &mut self,
        cond: &Expr,
        out: &mut Vec<Cst>,
    ) -> Result<(ValueId, BlockId), LowerError> {
        let v = self.expr_value(cond, out)?;
        let b = self.ensure_block(out);
        Ok((v, b))
    }

    /// End block of a branch: the last live block, or the branch block
    /// itself when the branch emitted nothing; `None` if terminated.
    fn branch_end(&self, branch_block: BlockId) -> Option<BlockId> {
        if !self.live {
            return None;
        }
        Some(self.cur.unwrap_or(branch_block))
    }

    // --------------------------------------------------------- loops

    fn lower_loop(
        &mut self,
        out: &mut Vec<Cst>,
        cond: Option<&Expr>,
        body: &[Stmt],
        update: &[Expr],
        shape: LoopShape,
    ) -> Result<(), LowerError> {
        let entry_block = self.ensure_block(out);
        let entry_defs = self.defs.clone();
        // Pre-scan: slots assigned anywhere in the loop get header phis.
        let mut assigned = HashSet::new();
        if let Some(c) = cond {
            collect_assigned_expr(c, &mut assigned);
        }
        for s in body {
            collect_assigned_stmt(s, &mut assigned);
        }
        for u in update {
            collect_assigned_expr(u, &mut assigned);
        }
        let header = self.f.add_block();
        let mut phis = Vec::new();
        for slot in 0..self.defs.len() {
            if !assigned.contains(&slot) || self.defs[slot].is_none() {
                continue;
            }
            self.stats.phis_candidate += 1;
            let ty = self.local_planes[slot];
            let phi = self.f.add_phi(header, ty);
            self.stats.phis_inserted += 1;
            let idx = self.f.block(header).phis.len() - 1;
            phis.push((slot, idx));
            self.defs[slot] = Some(phi);
        }
        self.label_depth += 1; // the wrapping Labeled (break target)
        self.loop_depth += 1;
        let break_label_depth = self.label_depth;
        let continue_kind = match shape {
            LoopShape::While => ContinueKind::Header,
            LoopShape::For | LoopShape::DoWhile => ContinueKind::InnerLabel(break_label_depth + 1),
        };
        self.loops.push(LoopCtx {
            phis,
            break_label_depth,
            loop_depth: self.loop_depth,
            continue_kind,
            breaks: Vec::new(),
            back_edges: Vec::new(),
            inner_continues: Vec::new(),
        });
        self.cur = Some(header);
        self.live = true;

        let mut loop_vec: Vec<Cst> = Vec::new();
        match shape {
            LoopShape::While if is_const_true(cond.expect("while has a condition")) => {
                // `while (true)`: sema admits a missing return after this
                // loop because it can only exit through `break`, so no
                // guard is lowered — a synthetic `If`/`Break` would make
                // the exit edge reachable again and the verifier would
                // (rightly) report control falling off the end.
                let mut body_vec = Vec::new();
                self.stmts(body, &mut body_vec)?;
                if let Some(b) = self.branch_end(header) {
                    let snap = (b, self.defs.clone());
                    self.loops.last_mut().unwrap().back_edges.push(snap);
                }
                loop_vec.extend(body_vec);
            }
            LoopShape::While => {
                let cond = cond.expect("while has a condition");
                let (cv, branch_block) = self.cond_value(cond, &mut loop_vec)?;
                let after_cond_defs = self.defs.clone();
                // then: body (falls through the if-join into the back edge)
                self.cur = None;
                self.live = true;
                let mut then_vec = Vec::new();
                self.stmts(body, &mut then_vec)?;
                let then_end = self.branch_end(branch_block);
                let then_defs = self.defs.clone();
                // else: leave the loop
                self.loops
                    .last_mut()
                    .unwrap()
                    .breaks
                    .push((branch_block, after_cond_defs));
                let join = self.f.add_block();
                loop_vec.push(Cst::If {
                    cond: cv,
                    then_br: Box::new(Cst::Seq(then_vec)),
                    else_br: Box::new(Cst::Seq(vec![Cst::Break(0)])),
                    join,
                });
                if let Some(b) = then_end {
                    self.merge_defs(join, &[(b, then_defs)], None);
                    let snap = (join, self.defs.clone());
                    self.loops.last_mut().unwrap().back_edges.push(snap);
                }
            }
            LoopShape::For => {
                let inner_join = self.f.add_block();
                // Condition (optional — `for(;;)` loops forever, and a
                // constant-true guard is the same loop spelled longer).
                let guard = match cond {
                    Some(c) if !is_const_true(c) => {
                        let (cv, bb) = self.cond_value(c, &mut loop_vec)?;
                        Some((cv, bb, self.defs.clone()))
                    }
                    _ => None,
                };
                // Body inside the inner Labeled (continue target).
                self.label_depth += 1;
                self.cur = None;
                self.live = true;
                let mut body_vec = Vec::new();
                self.stmts(body, &mut body_vec)?;
                let body_end = match (self.live, self.cur, &guard) {
                    (false, _, _) => None,
                    (true, Some(b), _) => Some(b),
                    (true, None, Some((_, bb, _))) => Some(*bb),
                    (true, None, None) => Some(header),
                };
                let body_defs = self.defs.clone();
                self.label_depth -= 1;
                // Merge at the inner label join: fall-through + continues.
                let mut inner_incoming: Vec<(BlockId, Defs)> = Vec::new();
                if let Some(b) = body_end {
                    inner_incoming.push((b, body_defs));
                }
                inner_incoming.extend(std::mem::take(
                    &mut self.loops.last_mut().unwrap().inner_continues,
                ));
                let labeled = Cst::Labeled {
                    body: Box::new(Cst::Seq(body_vec)),
                    join: inner_join,
                };
                let mut then_vec = vec![labeled];
                let then_end;
                let then_defs;
                if inner_incoming.is_empty() {
                    self.kill();
                    then_end = None;
                    then_defs = Vec::new();
                } else {
                    self.merge_defs(inner_join, &inner_incoming, None);
                    self.cur = Some(inner_join);
                    self.live = true;
                    for u in update {
                        self.expr(u, &mut then_vec)?;
                    }
                    then_end = Some(self.cur.unwrap_or(inner_join));
                    then_defs = self.defs.clone();
                }
                match guard {
                    Some((cv, bb, after_cond_defs)) => {
                        self.loops
                            .last_mut()
                            .unwrap()
                            .breaks
                            .push((bb, after_cond_defs));
                        let join = self.f.add_block();
                        loop_vec.push(Cst::If {
                            cond: cv,
                            then_br: Box::new(Cst::Seq(then_vec)),
                            else_br: Box::new(Cst::Seq(vec![Cst::Break(0)])),
                            join,
                        });
                        if let Some(b) = then_end {
                            self.merge_defs(join, &[(b, then_defs)], None);
                            let snap = (join, self.defs.clone());
                            self.loops.last_mut().unwrap().back_edges.push(snap);
                        }
                    }
                    None => {
                        // No guard: the body sequence itself is the loop
                        // body; fall-through is the back edge.
                        loop_vec.extend(then_vec);
                        if let Some(b) = then_end {
                            let snap = (b, then_defs);
                            self.loops.last_mut().unwrap().back_edges.push(snap);
                        }
                    }
                }
            }
            LoopShape::DoWhile => {
                let inner_join = self.f.add_block();
                // Body starts right in the header block.
                self.label_depth += 1;
                self.cur = Some(header);
                self.live = true;
                let mut body_vec = Vec::new();
                self.stmts(body, &mut body_vec)?;
                let body_end = self.branch_end(header);
                let body_defs = self.defs.clone();
                self.label_depth -= 1;
                let mut inner_incoming: Vec<(BlockId, Defs)> = Vec::new();
                if let Some(b) = body_end {
                    inner_incoming.push((b, body_defs));
                }
                inner_incoming.extend(std::mem::take(
                    &mut self.loops.last_mut().unwrap().inner_continues,
                ));
                loop_vec.push(Cst::Labeled {
                    body: Box::new(Cst::Seq(body_vec)),
                    join: inner_join,
                });
                if inner_incoming.is_empty() {
                    self.kill();
                } else {
                    self.merge_defs(inner_join, &inner_incoming, None);
                    self.cur = Some(inner_join);
                    self.live = true;
                    let cond = cond.expect("do-while has a condition");
                    if is_const_true(cond) {
                        // `do … while (true);` exits only through
                        // `break` (sema's reachability rule): the back
                        // edge is unconditional, no guarded exit.
                        let snap = (inner_join, self.defs.clone());
                        self.loops.last_mut().unwrap().back_edges.push(snap);
                        loop_vec.push(Cst::Continue(0));
                        self.kill();
                    } else {
                        let (cv, bb) = self.cond_value(cond, &mut loop_vec)?;
                        let after_cond_defs = self.defs.clone();
                        // then: continue (back edge); else: break.
                        {
                            let ctx = self.loops.last_mut().unwrap();
                            ctx.back_edges.push((bb, after_cond_defs.clone()));
                            ctx.breaks.push((bb, after_cond_defs));
                        }
                        let join = self.f.add_block();
                        loop_vec.push(Cst::If {
                            cond: cv,
                            then_br: Box::new(Cst::Seq(vec![Cst::Continue(0)])),
                            else_br: Box::new(Cst::Seq(vec![Cst::Break(0)])),
                            join,
                        });
                        self.kill();
                    }
                }
            }
        }

        // Close the loop: fill header phi args.
        let ctx = self.loops.pop().expect("loop ctx");
        self.label_depth -= 1;
        self.loop_depth -= 1;
        let mut header_incoming: Vec<(BlockId, Defs)> = vec![(entry_block, entry_defs.clone())];
        header_incoming.extend(ctx.back_edges);
        for &(slot, idx) in &ctx.phis {
            let args: Vec<(BlockId, ValueId)> = header_incoming
                .iter()
                .map(|(b, d)| (*b, d[slot].expect("slot live around loop")))
                .collect();
            self.f.set_phi_args(header, idx, args);
        }
        // Exit via the Labeled join.
        let exit = self.f.add_block();
        out.push(Cst::Labeled {
            body: Box::new(Cst::Loop {
                header,
                body: Box::new(Cst::Seq(loop_vec)),
            }),
            join: exit,
        });
        if ctx.breaks.is_empty() {
            self.kill();
        } else {
            self.merge_defs(exit, &ctx.breaks, Some(&entry_defs));
            self.cur = Some(exit);
            self.live = true;
        }
        Ok(())
    }

    // ----------------------------------------------------------- try

    fn lower_try(
        &mut self,
        out: &mut Vec<Cst>,
        body: &[Stmt],
        catches: &[Catch],
    ) -> Result<(), LowerError> {
        let outer = self.ensure_block(out);
        let entry_defs = self.defs.clone();
        self.tries.push(TryCtx {
            handler_entry: None,
            snapshots: Vec::new(),
        });
        // The protected region starts in its own block so that every
        // exception edge originates inside the Try subtree.
        self.cur = None;
        self.live = true;
        let mut body_vec = Vec::new();
        self.stmts(body, &mut body_vec)?;
        let body_end = if self.live {
            Some(self.cur.unwrap_or(outer))
        } else {
            None
        };
        let body_defs = self.defs.clone();
        let ctx = self.tries.pop().expect("pushed above");
        if ctx.snapshots.is_empty() {
            // Nothing can throw: splice the body, drop the try node.
            out.extend(body_vec);
            if body_end.is_some() {
                self.cur = body_end;
                self.live = true;
            }
            return Ok(());
        }
        // But wait: if body_end == outer (empty body) the snapshots are
        // non-empty only if something threw — contradiction; body_vec is
        // non-empty here.
        let handler_entry = ctx.handler_entry.expect("snapshots imply handler");
        self.merge_defs(handler_entry, &ctx.snapshots, Some(&entry_defs));
        let exc_value = self
            .f
            .instr_result(handler_entry, 0)
            .expect("catch instruction result");
        self.cur = Some(handler_entry);
        self.live = true;
        let mut handler_vec = Vec::new();
        let handler_ends = self.lower_catch_chain(&mut handler_vec, exc_value, catches, 0)?;
        let mut incoming = Vec::new();
        if let Some(b) = body_end {
            incoming.push((b, body_defs));
        }
        incoming.extend(handler_ends);
        let join = self.f.add_block();
        out.push(Cst::Try {
            body: Box::new(Cst::Seq(body_vec)),
            handler_entry,
            handler: Box::new(Cst::Seq(handler_vec)),
            join,
        });
        if incoming.is_empty() {
            self.defs = entry_defs;
            self.kill();
        } else {
            self.merge_defs(join, &incoming, Some(&entry_defs));
            self.cur = Some(join);
            self.live = true;
        }
        Ok(())
    }

    /// Lowers catch arms as nested `if (e instanceof C)` tests; the
    /// default arm rethrows. Returns the `(block, defs)` of every path
    /// that completes normally.
    fn lower_catch_chain(
        &mut self,
        out: &mut Vec<Cst>,
        exc: ValueId,
        catches: &[Catch],
        i: usize,
    ) -> Result<Vec<(BlockId, Defs)>, LowerError> {
        if i >= catches.len() {
            // Default arm: rethrow to the enclosing handler (if any).
            let b = self.ensure_block(out);
            if !self.tries.is_empty() {
                let snap = (b, self.defs.clone());
                self.try_handler()?;
                self.tries.last_mut().unwrap().snapshots.push(snap);
            }
            out.push(Cst::Throw(exc));
            self.kill();
            return Ok(vec![]);
        }
        let arm = &catches[i];
        let target_ty = self.map.class_ty[arm.class];
        let from = self.plane(exc);
        let test = self
            .emit(
                out,
                Instr::InstanceOf {
                    from,
                    target: target_ty,
                    value: exc,
                },
            )?
            .expect("instanceof result");
        let branch_block = self.ensure_block(out);
        let saved = self.defs.clone();
        // Then: bind the exception to the arm local and run its body.
        self.cur = None;
        self.live = true;
        let mut then_vec = Vec::new();
        let bound = self
            .emit(
                &mut then_vec,
                Instr::Upcast {
                    from,
                    to: target_ty,
                    value: exc,
                },
            )?
            .expect("upcast result");
        self.defs[arm.local] = Some(bound);
        self.stmts(&arm.body, &mut then_vec)?;
        let then_end = self.branch_end(branch_block);
        let then_defs = self.defs.clone();
        // Else: the next arm. Its normal completions are exactly the
        // `(block, defs)` pairs the recursion returns (its own join);
        // adding the frontier again would double-count it.
        self.cur = None;
        self.live = true;
        self.defs = saved.clone();
        let mut else_vec = Vec::new();
        let mut ends = self.lower_catch_chain(&mut else_vec, exc, catches, i + 1)?;
        if let Some(b) = then_end {
            ends.push((b, then_defs));
        }
        let join = self.f.add_block();
        out.push(Cst::If {
            cond: test,
            then_br: Box::new(Cst::Seq(then_vec)),
            else_br: Box::new(Cst::Seq(else_vec)),
            join,
        });
        if ends.is_empty() {
            self.kill();
            Ok(vec![])
        } else {
            self.merge_defs(join, &ends, Some(&saved));
            self.cur = Some(join);
            self.live = true;
            Ok(vec![(join, self.defs.clone())])
        }
    }

    // --------------------------------------------------- expressions

    fn expr_value(&mut self, e: &Expr, out: &mut Vec<Cst>) -> Result<ValueId, LowerError> {
        match self.expr(e, out)? {
            Some(v) => Ok(v),
            None => self.err("value expected from void expression"),
        }
    }

    fn expr(&mut self, e: &Expr, out: &mut Vec<Cst>) -> Result<Option<ValueId>, LowerError> {
        match &e.kind {
            ExprKind::Lit(lit) => Ok(Some(self.lower_lit(lit, &e.ty)?)),
            ExprKind::Local(l) => match self.defs[*l] {
                Some(v) => Ok(Some(v)),
                None => self.err(format!("read of unassigned local {l}")),
            },
            ExprKind::AssignLocal { local, value } => {
                let raw = self.expr_value(value, out)?;
                let v = self.coerce(out, raw, self.local_planes[*local])?;
                self.defs[*local] = Some(v);
                Ok(Some(v))
            }
            ExprKind::GetField { obj, class, field } => {
                let ov = self.expr_value(obj, out)?;
                let class_ty = self.map.class_ty[*class];
                let safe = self.as_safe(out, ov, class_ty)?;
                self.emit(
                    out,
                    Instr::GetField {
                        ty: class_ty,
                        object: safe,
                        field: FieldRef {
                            class: self.map.class_id(*class),
                            index: *field as u32,
                        },
                    },
                )
            }
            ExprKind::SetField {
                obj,
                class,
                field,
                value,
            } => {
                let ov = self.expr_value(obj, out)?;
                let class_ty = self.map.class_ty[*class];
                let safe = self.as_safe(out, ov, class_ty)?;
                let fr = FieldRef {
                    class: self.map.class_id(*class),
                    index: *field as u32,
                };
                let field_plane = self.types.field(fr).expect("field exists").ty;
                let vv = self.expr_value(value, out)?;
                let vv = self.coerce(out, vv, field_plane)?;
                self.emit(
                    out,
                    Instr::SetField {
                        ty: class_ty,
                        object: safe,
                        field: fr,
                        value: vv,
                    },
                )?;
                Ok(Some(vv))
            }
            ExprKind::GetStatic { class, field } => self.emit(
                out,
                Instr::GetStatic {
                    field: FieldRef {
                        class: self.map.class_id(*class),
                        index: *field as u32,
                    },
                },
            ),
            ExprKind::SetStatic {
                class,
                field,
                value,
            } => {
                let fr = FieldRef {
                    class: self.map.class_id(*class),
                    index: *field as u32,
                };
                let field_plane = self.types.field(fr).expect("field exists").ty;
                let vv = self.expr_value(value, out)?;
                let vv = self.coerce(out, vv, field_plane)?;
                self.emit(
                    out,
                    Instr::SetStatic {
                        field: fr,
                        value: vv,
                    },
                )?;
                Ok(Some(vv))
            }
            ExprKind::GetElem { arr, idx } => {
                let (arr_ty, safe, six) = self.element_access(arr, idx, out)?;
                self.emit(
                    out,
                    Instr::GetElt {
                        arr_ty,
                        array: safe,
                        index: six,
                    },
                )
            }
            ExprKind::SetElem { arr, idx, value } => {
                let (arr_ty, safe, six) = self.element_access(arr, idx, out)?;
                let elem = self.types.array_elem(arr_ty).expect("array type");
                let vv = self.expr_value(value, out)?;
                let vv = self.coerce(out, vv, elem)?;
                self.emit(
                    out,
                    Instr::SetElt {
                        arr_ty,
                        array: safe,
                        index: six,
                        value: vv,
                    },
                )?;
                Ok(Some(vv))
            }
            ExprKind::ArrayLen { arr } => {
                let av = self.expr_value(arr, out)?;
                let arr_ty = self.unsafe_ref_plane(av);
                let safe = self.as_safe(out, av, arr_ty)?;
                self.emit(
                    out,
                    Instr::ArrayLength {
                        arr_ty,
                        array: safe,
                    },
                )
            }
            ExprKind::Unary { op, prim: p, expr } => {
                let v = self.expr_value(expr, out)?;
                let kind = prim(*p);
                let name = match op {
                    UnOp::Neg => "neg",
                    UnOp::Not | UnOp::BitNot => "not",
                };
                self.emit(
                    out,
                    Instr::Primitive {
                        ty: self.types.prim(kind),
                        op: self.op(kind, name),
                        args: vec![v],
                    },
                )
            }
            ExprKind::Binary { op, prim: p, l, r } => {
                let lv = self.expr_value(l, out)?;
                let rv = self.expr_value(r, out)?;
                let kind = prim(*p);
                let opid = self.op(kind, binop_name(*op));
                let desc = primops::resolve(kind, opid).expect("op resolved");
                let instr = if desc.exceptional {
                    Instr::XPrimitive {
                        ty: self.types.prim(kind),
                        op: opid,
                        args: vec![lv, rv],
                    }
                } else {
                    Instr::Primitive {
                        ty: self.types.prim(kind),
                        op: opid,
                        args: vec![lv, rv],
                    }
                };
                self.emit(out, instr)
            }
            ExprKind::RefCmp { l, r, eq } => {
                let lv = self.expr_value(l, out)?;
                let rv = self.expr_value(r, out)?;
                let (lv, rv) = self.common_ref_plane(out, lv, rv)?;
                let ty = self.plane(lv);
                let mut v = self
                    .emit(out, Instr::RefEq { ty, a: lv, b: rv })?
                    .expect("refeq result");
                if !eq {
                    v = self
                        .emit(
                            out,
                            Instr::Primitive {
                                ty: self.types.prim(PrimKind::Bool),
                                op: self.op(PrimKind::Bool, "not"),
                                args: vec![v],
                            },
                        )?
                        .expect("not result");
                }
                Ok(Some(v))
            }
            ExprKind::And { l, r } => Ok(Some(self.short_circuit(out, l, r, true)?)),
            ExprKind::Or { l, r } => Ok(Some(self.short_circuit(out, l, r, false)?)),
            ExprKind::Cond { cond, then, els } => {
                Ok(Some(self.value_if(out, cond, then, els, &e.ty)?))
            }
            ExprKind::Conv { from, to, expr } => {
                let v = self.expr_value(expr, out)?;
                let kind = prim(*from);
                let name = format!("to_{}", prim_name(*to));
                self.emit(
                    out,
                    Instr::Primitive {
                        ty: self.types.prim(kind),
                        op: self.op(kind, &name),
                        args: vec![v],
                    },
                )
            }
            ExprKind::CallStatic {
                class,
                method,
                args,
            } => {
                let argv = self.call_args(args, *class, *method, out)?;
                self.emit(
                    out,
                    Instr::XCall {
                        base_ty: self.map.class_ty[*class],
                        method: MethodRef {
                            class: self.map.class_id(*class),
                            index: *method as u32,
                        },
                        receiver: None,
                        args: argv,
                    },
                )
            }
            ExprKind::CallVirtual {
                class,
                method,
                recv,
                args,
            } => {
                let rv = self.expr_value(recv, out)?;
                let base_ty = self.map.class_ty[*class];
                let safe = self.as_safe(out, rv, base_ty)?;
                let argv = self.call_args(args, *class, *method, out)?;
                self.emit(
                    out,
                    Instr::XDispatch {
                        base_ty,
                        method: MethodRef {
                            class: self.map.class_id(*class),
                            index: *method as u32,
                        },
                        receiver: safe,
                        args: argv,
                    },
                )
            }
            ExprKind::CallSpecial {
                class,
                method,
                recv,
                args,
            } => {
                let rv = self.expr_value(recv, out)?;
                let base_ty = self.map.class_ty[*class];
                let safe = self.as_safe(out, rv, base_ty)?;
                let argv = self.call_args(args, *class, *method, out)?;
                self.emit(
                    out,
                    Instr::XCall {
                        base_ty,
                        method: MethodRef {
                            class: self.map.class_id(*class),
                            index: *method as u32,
                        },
                        receiver: Some(safe),
                        args: argv,
                    },
                )
            }
            ExprKind::New { class, ctor, args } => {
                let class_ty = self.map.class_ty[*class];
                let obj = self
                    .emit(out, Instr::New { class_ty })?
                    .expect("new result");
                let argv = self.call_args(args, *class, *ctor, out)?;
                self.emit(
                    out,
                    Instr::XCall {
                        base_ty: class_ty,
                        method: MethodRef {
                            class: self.map.class_id(*class),
                            index: *ctor as u32,
                        },
                        receiver: Some(obj),
                        args: argv,
                    },
                )?;
                Ok(Some(obj))
            }
            ExprKind::NewArray { elem, len } => {
                let elem_ty = self.map.ty(self.types, elem);
                let arr_ty = self.types.array_of(elem_ty);
                let lv = self.expr_value(len, out)?;
                self.emit(out, Instr::NewArray { arr_ty, length: lv })
            }
            ExprKind::ArrayLit { elem, elems } => {
                let elem_ty = self.map.ty(self.types, elem);
                let arr_ty = self.types.array_of(elem_ty);
                let int = self.types.prim(PrimKind::Int);
                let lenv = self.const_val(int, Literal::Int(elems.len() as i32));
                let arr = self
                    .emit(
                        out,
                        Instr::NewArray {
                            arr_ty,
                            length: lenv,
                        },
                    )?
                    .expect("newarray result");
                for (i, el) in elems.iter().enumerate() {
                    let iv = self.const_val(int, Literal::Int(i as i32));
                    let six = self.checked_index(out, arr_ty, arr, iv)?;
                    let ev = self.expr_value(el, out)?;
                    let ev = self.coerce(out, ev, elem_ty)?;
                    self.emit(
                        out,
                        Instr::SetElt {
                            arr_ty,
                            array: arr,
                            index: six,
                            value: ev,
                        },
                    )?;
                }
                Ok(Some(arr))
            }
            ExprKind::CastRef {
                target,
                expr,
                checked,
            } => {
                if let ExprKind::Lit(Lit::Null) = &expr.kind {
                    let plane = self.map.ty(self.types, target);
                    return Ok(Some(self.const_val(plane, Literal::Null)));
                }
                let v = self.expr_value(expr, out)?;
                let want = self.map.ty(self.types, target);
                if *checked {
                    let from = self.unsafe_ref_plane(v);
                    let v = self.coerce(out, v, from)?;
                    self.emit(
                        out,
                        Instr::Upcast {
                            from,
                            to: want,
                            value: v,
                        },
                    )
                } else {
                    Ok(Some(self.coerce(out, v, want)?))
                }
            }
            ExprKind::InstanceOf { expr, target } => {
                let v = self.expr_value(expr, out)?;
                let from = self.plane(v);
                let target_ty = self.map.ty(self.types, target);
                self.emit(
                    out,
                    Instr::InstanceOf {
                        from,
                        target: target_ty,
                        value: v,
                    },
                )
            }
            ExprKind::Seq { effects, result } => {
                for eff in effects {
                    self.expr(eff, out)?;
                }
                self.expr(result, out)
            }
        }
    }

    fn element_access(
        &mut self,
        arr: &Expr,
        idx: &Expr,
        out: &mut Vec<Cst>,
    ) -> Result<(TypeId, ValueId, ValueId), LowerError> {
        let av = self.expr_value(arr, out)?;
        let arr_ty = self.unsafe_ref_plane(av);
        debug_assert!(matches!(self.types.kind(arr_ty), TypeKind::Array(_)));
        let safe = self.as_safe(out, av, arr_ty)?;
        let iv = self.expr_value(idx, out)?;
        let six = self.checked_index(out, arr_ty, safe, iv)?;
        Ok((arr_ty, safe, six))
    }

    /// The unsafe reference plane underlying `v`'s plane.
    fn unsafe_ref_plane(&self, v: ValueId) -> TypeId {
        let p = self.plane(v);
        match self.types.kind(p) {
            TypeKind::SafeRef(of) => of,
            _ => p,
        }
    }

    fn call_args(
        &mut self,
        args: &[Expr],
        class: hir::ClassIdx,
        method: hir::MethodIdx,
        out: &mut Vec<Cst>,
    ) -> Result<Vec<ValueId>, LowerError> {
        let param_planes: Vec<TypeId> = {
            let mr = MethodRef {
                class: self.map.class_id(class),
                index: method as u32,
            };
            self.types.method(mr).expect("method exists").params.clone()
        };
        let mut out_args = Vec::with_capacity(args.len());
        for (a, want) in args.iter().zip(param_planes) {
            let v = self.expr_value(a, out)?;
            out_args.push(self.coerce(out, v, want)?);
        }
        Ok(out_args)
    }

    fn lower_lit(&mut self, lit: &Lit, ty: &Ty) -> Result<ValueId, LowerError> {
        let (plane, l) = match lit {
            Lit::Bool(b) => (self.types.prim(PrimKind::Bool), Literal::Bool(*b)),
            Lit::Char(c) => (self.types.prim(PrimKind::Char), Literal::Char(*c)),
            Lit::Int(v) => (self.types.prim(PrimKind::Int), Literal::Int(*v)),
            Lit::Long(v) => (self.types.prim(PrimKind::Long), Literal::Long(*v)),
            Lit::Float(v) => (self.types.prim(PrimKind::Float), Literal::Float(*v)),
            Lit::Double(v) => (self.types.prim(PrimKind::Double), Literal::Double(*v)),
            Lit::Str(s) => (self.map.class_ty[self.prog.string], Literal::Str(s.clone())),
            Lit::Null => match ty {
                Ty::Ref(_) | Ty::Array(_) => {
                    let plane = self.map.ty(self.types, ty);
                    return Ok(self.const_val(plane, Literal::Null));
                }
                _ => return self.err("null literal without a reference context"),
            },
        };
        Ok(self.const_val(plane, l))
    }

    /// Short-circuit `&&` / `||` via a conditional and a boolean phi.
    fn short_circuit(
        &mut self,
        out: &mut Vec<Cst>,
        l: &Expr,
        r: &Expr,
        is_and: bool,
    ) -> Result<ValueId, LowerError> {
        let (lv, branch_block) = self.cond_value(l, out)?;
        let saved = self.defs.clone();
        let bool_ty = self.types.prim(PrimKind::Bool);
        // Evaluated branch: compute r (forced into its own block so the
        // join's predecessors stay distinct).
        self.cur = None;
        self.live = true;
        let mut eval_vec = Vec::new();
        let rv = self.expr_value(r, &mut eval_vec)?;
        let eval_end = self.ensure_block(&mut eval_vec);
        let eval_defs = self.defs.clone();
        // Skipped branch: the constant outcome.
        let const_v = self.const_val(bool_ty, Literal::Bool(!is_and));
        self.defs = saved.clone();
        let join = self.f.add_block();
        let (then_br, else_br) = if is_and {
            (Cst::Seq(eval_vec), Cst::empty())
        } else {
            (Cst::empty(), Cst::Seq(eval_vec))
        };
        out.push(Cst::If {
            cond: lv,
            then_br: Box::new(then_br),
            else_br: Box::new(else_br),
            join,
        });
        let incoming_defs = [(eval_end, eval_defs), (branch_block, saved.clone())];
        self.merge_defs(join, &incoming_defs, Some(&saved));
        let v = self.merge_value(join, &[(eval_end, rv), (branch_block, const_v)]);
        self.cur = Some(join);
        self.live = true;
        Ok(v)
    }

    /// `cond ? then : els` with value merging; both branch values are
    /// coerced to the plane of the conditional's HIR type so the phi is
    /// plane-homogeneous.
    fn value_if(
        &mut self,
        out: &mut Vec<Cst>,
        cond: &Expr,
        then: &Expr,
        els: &Expr,
        result_ty: &Ty,
    ) -> Result<ValueId, LowerError> {
        let want = match result_ty {
            Ty::Null => None,
            t => Some(self.map.ty(self.types, t)),
        };
        let (cv, branch_block) = self.cond_value(cond, out)?;
        let saved = self.defs.clone();
        // Then.
        self.cur = None;
        self.live = true;
        let mut then_vec = Vec::new();
        let tv = self.expr_value(then, &mut then_vec)?;
        let tv = match want {
            Some(w) => self.coerce(&mut then_vec, tv, w)?,
            None => tv,
        };
        let then_end = self.cur.unwrap_or(branch_block);
        let then_defs = self.defs.clone();
        // Else.
        self.cur = None;
        self.live = true;
        self.defs = saved.clone();
        let mut else_vec = Vec::new();
        let ev = self.expr_value(els, &mut else_vec)?;
        let ev = match want {
            Some(w) => self.coerce(&mut else_vec, ev, w)?,
            None => ev,
        };
        let else_end = self.cur.unwrap_or(branch_block);
        let else_defs = self.defs.clone();
        // Distinct predecessors.
        let mut then_end = then_end;
        if then_end == else_end {
            let b = self.f.add_block();
            then_vec.push(Cst::Basic(b));
            then_end = b;
        }
        let join = self.f.add_block();
        out.push(Cst::If {
            cond: cv,
            then_br: Box::new(Cst::Seq(then_vec)),
            else_br: Box::new(Cst::Seq(else_vec)),
            join,
        });
        self.merge_defs(
            join,
            &[(then_end, then_defs), (else_end, else_defs)],
            Some(&saved),
        );
        let tp = self.plane(tv);
        let ep = self.plane(ev);
        if tp != ep {
            return self.err(format!(
                "conditional branches on different planes ({tp} vs {ep})"
            ));
        }
        let v = self.merge_value(join, &[(then_end, tv), (else_end, ev)]);
        self.cur = Some(join);
        self.live = true;
        Ok(v)
    }

    /// Brings two reference values onto a common plane for `refeq`.
    fn common_ref_plane(
        &mut self,
        out: &mut Vec<Cst>,
        a: ValueId,
        b: ValueId,
    ) -> Result<(ValueId, ValueId), LowerError> {
        let pa = self.plane(a);
        let pb = self.plane(b);
        if pa == pb {
            return Ok((a, b));
        }
        let ua = self.unsafe_ref_plane(a);
        let ub = self.unsafe_ref_plane(b);
        let a = self.coerce(out, a, ua)?;
        let b = self.coerce(out, b, ub)?;
        if ua == ub {
            return Ok((a, b));
        }
        self.err(format!(
            "refcmp operands on different planes ({ua} vs {ub})"
        ))
    }
}

/// Mirrors sema's reachability rule for endless loops: a loop whose
/// condition is the literal `true` exits only through `break`, so the
/// lowering must not synthesize a guarded exit for it.
fn is_const_true(e: &Expr) -> bool {
    matches!(e.kind, ExprKind::Lit(Lit::Bool(true)))
}

fn binop_name(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::Mul => "mul",
        BinOp::Div => "div",
        BinOp::Rem => "rem",
        BinOp::BitAnd => "and",
        BinOp::BitOr => "or",
        BinOp::BitXor => "xor",
        BinOp::Shl => "shl",
        BinOp::Shr => "shr",
        BinOp::Ushr => "ushr",
        BinOp::Eq => "eq",
        BinOp::Ne => "ne",
        BinOp::Lt => "lt",
        BinOp::Le => "le",
        BinOp::Gt => "gt",
        BinOp::Ge => "ge",
    }
}

fn prim_name(p: PrimTy) -> &'static str {
    match p {
        PrimTy::Bool => "boolean",
        PrimTy::Char => "char",
        PrimTy::Int => "int",
        PrimTy::Long => "long",
        PrimTy::Float => "float",
        PrimTy::Double => "double",
    }
}

fn collect_assigned_stmt(s: &Stmt, out: &mut HashSet<LocalId>) {
    match s {
        Stmt::Expr(e) => collect_assigned_expr(e, out),
        Stmt::If { cond, then, els } => {
            collect_assigned_expr(cond, out);
            for s in then {
                collect_assigned_stmt(s, out);
            }
            for s in els {
                collect_assigned_stmt(s, out);
            }
        }
        Stmt::While { cond, body } | Stmt::DoWhile { body, cond } => {
            collect_assigned_expr(cond, out);
            for s in body {
                collect_assigned_stmt(s, out);
            }
        }
        Stmt::For { cond, update, body } => {
            if let Some(c) = cond {
                collect_assigned_expr(c, out);
            }
            for u in update {
                collect_assigned_expr(u, out);
            }
            for s in body {
                collect_assigned_stmt(s, out);
            }
        }
        Stmt::Break { .. } | Stmt::Continue { .. } => {}
        Stmt::Return(e) => {
            if let Some(e) = e {
                collect_assigned_expr(e, out);
            }
        }
        Stmt::Throw(e) => collect_assigned_expr(e, out),
        Stmt::Try {
            body,
            catches,
            finally,
        } => {
            for s in body {
                collect_assigned_stmt(s, out);
            }
            for c in catches {
                out.insert(c.local);
                for s in &c.body {
                    collect_assigned_stmt(s, out);
                }
            }
            if let Some(f) = finally {
                for s in f {
                    collect_assigned_stmt(s, out);
                }
            }
        }
    }
}

fn collect_assigned_expr(e: &Expr, out: &mut HashSet<LocalId>) {
    match &e.kind {
        ExprKind::AssignLocal { local, value } => {
            out.insert(*local);
            collect_assigned_expr(value, out);
        }
        ExprKind::Lit(_) | ExprKind::Local(_) | ExprKind::GetStatic { .. } => {}
        ExprKind::GetField { obj, .. } | ExprKind::ArrayLen { arr: obj } => {
            collect_assigned_expr(obj, out)
        }
        ExprKind::SetField { obj, value, .. } => {
            collect_assigned_expr(obj, out);
            collect_assigned_expr(value, out);
        }
        ExprKind::SetStatic { value, .. } => collect_assigned_expr(value, out),
        ExprKind::GetElem { arr, idx } => {
            collect_assigned_expr(arr, out);
            collect_assigned_expr(idx, out);
        }
        ExprKind::SetElem { arr, idx, value } => {
            collect_assigned_expr(arr, out);
            collect_assigned_expr(idx, out);
            collect_assigned_expr(value, out);
        }
        ExprKind::Unary { expr, .. } | ExprKind::Conv { expr, .. } => {
            collect_assigned_expr(expr, out)
        }
        ExprKind::Binary { l, r, .. }
        | ExprKind::RefCmp { l, r, .. }
        | ExprKind::And { l, r }
        | ExprKind::Or { l, r } => {
            collect_assigned_expr(l, out);
            collect_assigned_expr(r, out);
        }
        ExprKind::Cond { cond, then, els } => {
            collect_assigned_expr(cond, out);
            collect_assigned_expr(then, out);
            collect_assigned_expr(els, out);
        }
        ExprKind::CallStatic { args, .. } => {
            for a in args {
                collect_assigned_expr(a, out);
            }
        }
        ExprKind::CallVirtual { recv, args, .. } | ExprKind::CallSpecial { recv, args, .. } => {
            collect_assigned_expr(recv, out);
            for a in args {
                collect_assigned_expr(a, out);
            }
        }
        ExprKind::New { args, .. } => {
            for a in args {
                collect_assigned_expr(a, out);
            }
        }
        ExprKind::NewArray { len, .. } => collect_assigned_expr(len, out),
        ExprKind::ArrayLit { elems, .. } => {
            for e in elems {
                collect_assigned_expr(e, out);
            }
        }
        ExprKind::CastRef { expr, .. } | ExprKind::InstanceOf { expr, .. } => {
            collect_assigned_expr(expr, out)
        }
        ExprKind::Seq { effects, result } => {
            for e in effects {
                collect_assigned_expr(e, out);
            }
            collect_assigned_expr(result, out);
        }
    }
}
