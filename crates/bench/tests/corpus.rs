//! Corpus-wide checks: every benchmark program compiles through the
//! full pipeline, verifies, round-trips the codec, and executes
//! identically under all three engines.

use safetsa_bench::{corpus, measure, run_differential};

#[test]
fn all_corpus_programs_run_identically_everywhere() {
    for entry in corpus() {
        let out = run_differential(&entry);
        assert!(
            !out.is_empty(),
            "{}: corpus programs print their checksums",
            entry.name
        );
    }
}

#[test]
fn measurements_are_sane() {
    for entry in corpus() {
        let m = measure(&entry);
        assert!(m.bytecode_instrs > 0, "{}", m.name);
        assert!(m.safetsa_instrs > 0, "{}", m.name);
        assert!(
            m.safetsa_opt_instrs <= m.safetsa_instrs,
            "{}: optimization never grows the program",
            m.name
        );
        assert!(m.safetsa_size > 0 && m.bytecode_size > 0, "{}", m.name);
        assert!(
            m.opt.null_checks_after <= m.opt.null_checks_before,
            "{}",
            m.name
        );
        assert!(
            m.opt.index_checks_after <= m.opt.index_checks_before,
            "{}",
            m.name
        );
        assert!(
            m.construction.phis_inserted <= m.construction.phis_candidate,
            "{}",
            m.name
        );
        assert!(m.bverify.iterations > 0, "{}", m.name);
    }
}
