//! # safetsa-bench
//!
//! The evaluation harness: the benchmark corpus (stand-ins for the
//! paper's `sun.tools.javac`/`sun.math`/Linpack classes — see
//! DESIGN.md), the measurement pipeline, and the binaries that
//! regenerate the paper's tables:
//!
//! * `cargo run -p safetsa-bench --bin fig5` — Figure 5 (file sizes and
//!   instruction counts: Java bytecode vs SafeTSA vs optimized SafeTSA)
//! * `cargo run -p safetsa-bench --bin fig6` — Figure 6 (phi-, null-
//!   check and array-check instructions before/after optimization)
//! * `cargo run -p safetsa-bench --bin ablation` — §8's per-pass
//!   contribution breakdown (constant propagation / CSE / DCE)
//! * `cargo run -p safetsa-bench --bin verify_cost` — §9's
//!   verification-cost comparison (SafeTSA decode+verify vs JVM-style
//!   dataflow verification)

#![warn(missing_docs)]

pub mod serve;

use safetsa_baseline::{classfile, compile as bcompile, verify as bverify};
use safetsa_codec::{decode_and_verify, encode_module, HostEnv};
use safetsa_core::verify::verify_module;
use safetsa_core::Module;
use safetsa_driver::batch::{run_batch, BatchInput, BatchOptions, BatchReport};
use safetsa_driver::{passes_fingerprint, Pipeline as DriverPipeline};
use safetsa_frontend::hir::Program;
use safetsa_opt::{OptStats, Passes};
use safetsa_rt::Value;
use safetsa_ssa::{lower_program, FnStats};
use safetsa_telemetry::{Json, Telemetry};
use std::path::Path;

/// One corpus program.
#[derive(Debug, Clone, Copy)]
pub struct CorpusEntry {
    /// Display name (the Figure 5/6 row label).
    pub name: &'static str,
    /// Java-subset source text.
    pub source: &'static str,
    /// Entry point (`Class.method`).
    pub entry: &'static str,
}

macro_rules! corpus_entry {
    ($name:literal, $file:literal, $entry:literal) => {
        CorpusEntry {
            name: $name,
            source: include_str!(concat!("../corpus/", $file)),
            entry: $entry,
        }
    };
}

/// The benchmark corpus, mirroring the paper's workload categories.
pub fn corpus() -> Vec<CorpusEntry> {
    vec![
        // compiler front-end category (sun.tools.javac / sun.tools.java)
        corpus_entry!("Scanner", "Scanner.java", "Scanner.main"),
        corpus_entry!("Parser", "Parser.java", "Parser.main"),
        corpus_entry!("StateMachine", "StateMachine.java", "StateMachine.main"),
        corpus_entry!("Huffman", "Huffman.java", "Huffman.main"),
        // multiword / scaled arithmetic category (sun.math)
        corpus_entry!("BigInteger", "BigInteger.java", "Big.main"),
        corpus_entry!("BigDecimal", "BigDecimal.java", "Dec.main"),
        corpus_entry!("BitSieve", "BitSieve.java", "BitSieve.main"),
        corpus_entry!("Crc32", "Crc32.java", "Crc32.main"),
        // numeric array category (Linpack)
        corpus_entry!("Linpack", "Linpack.java", "Linpack.main"),
        corpus_entry!("Matrix", "Matrix.java", "Matrix.main"),
        corpus_entry!("NBody", "NBody.java", "NBody.main"),
        corpus_entry!("GameOfLife", "GameOfLife.java", "GameOfLife.main"),
        corpus_entry!("Pathfind", "Pathfind.java", "Pathfind.main"),
        corpus_entry!("Filter", "Filter.java", "Filter.main"),
        // data structures & OO workloads
        corpus_entry!("QuickSort", "QuickSort.java", "QuickSort.main"),
        corpus_entry!("HashTable", "HashTable.java", "HashTable.main"),
        corpus_entry!("ListOps", "ListOps.java", "ListOps.main"),
        corpus_entry!("Shapes", "Shapes.java", "Shapes.main"),
        corpus_entry!("Bank", "Bank.java", "Bank.main"),
        corpus_entry!("StringBench", "StringBench.java", "StringBench.main"),
        corpus_entry!("Exceptions", "Exceptions.java", "Exceptions.main"),
    ]
}

/// All measurements for one corpus program.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Row label.
    pub name: &'static str,
    /// Class-file bytes (baseline).
    pub bytecode_size: usize,
    /// SafeTSA wire bytes, unoptimized.
    pub safetsa_size: usize,
    /// SafeTSA wire bytes after producer-side optimization.
    pub safetsa_opt_size: usize,
    /// Baseline instruction count.
    pub bytecode_instrs: usize,
    /// SafeTSA instruction count (phis included, matching the paper's
    /// counting of phi instructions as instructions).
    pub safetsa_instrs: usize,
    /// Optimized SafeTSA instruction count.
    pub safetsa_opt_instrs: usize,
    /// SSA construction statistics (phi pruning, checks inserted).
    pub construction: FnStats,
    /// Optimization statistics (Figure 6 columns).
    pub opt: OptStats,
    /// Baseline dataflow-verification statistics.
    pub bverify: bverify::BVerifyStats,
}

/// The full producer/consumer artifacts for one program (used by the
/// Criterion benches so they measure stages in isolation).
pub struct Pipeline {
    /// The resolved program.
    pub prog: Program,
    /// Unoptimized SafeTSA module.
    pub module: Module,
    /// Optimized SafeTSA module.
    pub optimized: Module,
    /// Unoptimized wire bytes.
    pub bytes: Vec<u8>,
    /// Optimized wire bytes.
    pub opt_bytes: Vec<u8>,
    /// Baseline stack code.
    pub bcode: bcompile::CompiledProgram,
}

/// Builds every artifact for `entry`.
///
/// # Panics
///
/// Panics when any stage fails — corpus programs are expected to be
/// fully supported.
pub fn build_pipeline(entry: &CorpusEntry) -> Pipeline {
    let prog = safetsa_frontend::compile(entry.source)
        .unwrap_or_else(|e| panic!("{}: front-end: {e}", entry.name));
    let lowered = lower_program(&prog).unwrap_or_else(|e| panic!("{}: lowering: {e}", entry.name));
    verify_module(&lowered.module).unwrap_or_else(|e| panic!("{}: verify: {e}", entry.name));
    let module = lowered.module;
    let mut optimized = module.clone();
    safetsa_opt::optimize(&mut optimized, Passes::ALL, &Telemetry::disabled());
    verify_module(&optimized).unwrap_or_else(|e| panic!("{}: verify optimized: {e}", entry.name));
    let bytes =
        encode_module(&module).unwrap_or_else(|e| panic!("{}: encode: {e}", entry.name));
    let opt_bytes =
        encode_module(&optimized).unwrap_or_else(|e| panic!("{}: encode optimized: {e}", entry.name));
    let mut bcode = bcompile::compile_program(&prog);
    bverify::verify_program(&prog, &mut bcode)
        .unwrap_or_else(|e| panic!("{}: bytecode verify: {e}", entry.name));
    Pipeline {
        prog,
        module,
        optimized,
        bytes,
        opt_bytes,
        bcode,
    }
}

/// Measures one corpus program end to end.
///
/// # Panics
///
/// Panics when a stage fails.
pub fn measure(entry: &CorpusEntry) -> Measurement {
    let prog = safetsa_frontend::compile(entry.source)
        .unwrap_or_else(|e| panic!("{}: front-end: {e}", entry.name));
    let lowered = lower_program(&prog).unwrap_or_else(|e| panic!("{}: lowering: {e}", entry.name));
    verify_module(&lowered.module).unwrap_or_else(|e| panic!("{}: verify: {e}", entry.name));
    let construction = lowered.totals();
    let module = lowered.module;
    let mut optimized = module.clone();
    let opt = safetsa_opt::optimize(&mut optimized, Passes::ALL, &Telemetry::disabled());
    verify_module(&optimized).unwrap_or_else(|e| panic!("{}: verify optimized: {e}", entry.name));
    // Wire sizes round-trip through the decoder as a sanity check.
    let host = HostEnv::standard();
    let bytes =
        encode_module(&module).unwrap_or_else(|e| panic!("{}: encode: {e}", entry.name));
    decode_and_verify(&bytes, &host).unwrap_or_else(|e| panic!("{}: decode: {e}", entry.name));
    let opt_bytes =
        encode_module(&optimized).unwrap_or_else(|e| panic!("{}: encode optimized: {e}", entry.name));
    decode_and_verify(&opt_bytes, &host)
        .unwrap_or_else(|e| panic!("{}: decode optimized: {e}", entry.name));
    // Baseline.
    let mut bcode = bcompile::compile_program(&prog);
    let bstats = bverify::verify_program(&prog, &mut bcode)
        .unwrap_or_else(|e| panic!("{}: bytecode verify: {e}", entry.name));
    let bytecode_size = classfile::total_size(&prog, &bcode);
    Measurement {
        name: entry.name,
        bytecode_size,
        safetsa_size: bytes.len(),
        safetsa_opt_size: opt_bytes.len(),
        bytecode_instrs: bcode.instr_count(),
        safetsa_instrs: module.instr_count() + module.phi_count(),
        safetsa_opt_instrs: optimized.instr_count() + optimized.phi_count(),
        construction,
        opt,
        bverify: bstats,
    }
}

/// Runs `entry` under all three engines (SafeTSA unoptimized, SafeTSA
/// optimized, bytecode baseline) and checks the outcomes agree;
/// returns the shared output text.
///
/// # Panics
///
/// Panics on any divergence — this is the corpus-wide differential
/// soundness check.
pub fn run_differential(entry: &CorpusEntry) -> String {
    let pl = build_pipeline(entry);
    let norm = |v: Option<Value>| -> Option<Value> {
        v.map(|v| match v {
            Value::Z(b) => Value::I(i32::from(b)),
            Value::C(c) => Value::I(c as i32),
            other => other,
        })
    };
    let run_vm = |m: &Module| -> (Option<Value>, String) {
        let mut vm = safetsa_vm::Vm::load(m).expect("loads");
        vm.set_fuel(500_000_000);
        let r = vm
            .run_entry(entry.entry)
            .unwrap_or_else(|e| panic!("{}: vm: {e}", entry.name));
        (norm(r), vm.output.text().to_string())
    };
    let (r1, o1) = run_vm(&pl.module);
    let (r2, o2) = run_vm(&pl.optimized);
    let mut bvm = safetsa_baseline::interp::Bvm::load(&pl.prog, &pl.bcode);
    bvm.set_fuel(500_000_000);
    let r3 = norm(
        bvm.run_entry(entry.entry)
            .unwrap_or_else(|e| panic!("{}: baseline: {e}", entry.name)),
    );
    let o3 = bvm.output.text().to_string();
    assert_eq!(o1, o2, "{}: optimized output differs", entry.name);
    assert_eq!(o1, o3, "{}: baseline output differs", entry.name);
    match (r1, r2, r3) {
        (Some(a), Some(b), Some(c)) => {
            assert!(a.bits_eq(b), "{}: {a:?} vs opt {b:?}", entry.name);
            assert!(a.bits_eq(c), "{}: {a:?} vs baseline {c:?}", entry.name);
        }
        (None, None, None) => {}
        other => panic!("{}: result arity mismatch {other:?}", entry.name),
    }
    o1
}

/// Percentage delta `(after - before) / before`, as the paper prints it
/// (negative = reduction); `None` when `before` is zero (printed N/A).
pub fn delta_pct(before: usize, after: usize) -> Option<i64> {
    if before == 0 {
        return None;
    }
    Some(((after as i64 - before as i64) * 100) / before as i64)
}

/// Static safety-check count (nullchecks + indexchecks) of a module.
pub fn static_check_count(m: &Module) -> u64 {
    m.functions
        .iter()
        .map(|f| {
            f.count_instrs(|i| {
                matches!(
                    i,
                    safetsa_core::instr::Instr::NullCheck { .. }
                        | safetsa_core::instr::Instr::IndexCheck { .. }
                )
            })
        })
        .sum::<usize>() as u64
}

/// One corpus program's full metrics document plus the headline
/// quantities `bench_report` aggregates and regression-checks.
pub struct ProgramReport {
    /// Row label.
    pub name: &'static str,
    /// The `{schema, command, subject, metrics}` document.
    pub json: Json,
    /// Optimized SafeTSA wire bytes.
    pub opt_size: u64,
    /// Baseline class-file bytes.
    pub class_size: u64,
    /// `opt_size * 1000 / class_size` — the paper's headline encoding
    /// ratio, in permille.
    pub ratio_permille: u64,
    /// Dynamic instructions executed by the optimized module under the
    /// threaded engine (fused pairs count once, which is the point).
    pub steps: u64,
    /// Threaded-engine wall time for the run, nanoseconds.
    pub vm_wall_ns: u64,
    /// Switch-engine (oracle) wall time for the same run, nanoseconds.
    pub switch_wall_ns: u64,
    /// Dynamic instructions executed by the switch-engine oracle — the
    /// unfused count `steps` is measured against.
    pub switch_steps: u64,
    /// Threaded-engine xdispatch inline-cache hits.
    pub icache_hits: u64,
    /// Threaded-engine xdispatch inline-cache misses.
    pub icache_misses: u64,
    /// Safety checks (null + index) removed by the full pass pipeline.
    pub checks_eliminated: u64,
    /// Safety checks removed with `checkelim` disabled — the CSE-only
    /// baseline the dataflow pass is measured against.
    pub checks_eliminated_cse_only: u64,
    /// Loads removed by the alias-driven `loadfwd` pass.
    pub loads_forwarded: u64,
    /// Stores removed by the alias-driven `dse` pass.
    pub stores_eliminated: u64,
}

impl ProgramReport {
    /// Reconstructs the headline quantities from a metrics registry —
    /// the inverse of [`record_program`], and the reason every headline
    /// lives in a counter: a registry replayed from the batch cache
    /// carries everything the report needs.
    pub fn from_metrics(name: &'static str, tm: &Telemetry) -> ProgramReport {
        let c = |key: &str| tm.counter(key).unwrap_or(0);
        ProgramReport {
            name,
            json: tm.report("bench-report", name),
            opt_size: c("codec.total_bytes"),
            class_size: c("baseline.class_file_bytes"),
            ratio_permille: c("codec.size_ratio_permille"),
            steps: c("vm.steps"),
            vm_wall_ns: c("vm.run_ns"),
            switch_wall_ns: c("vm.switch.run_ns"),
            switch_steps: c("vm.switch.steps"),
            icache_hits: c("vm.icache.hits"),
            icache_misses: c("vm.icache.misses"),
            checks_eliminated: c("opt.checks.eliminated"),
            checks_eliminated_cse_only: c("opt.checks.eliminated_cse_only"),
            loads_forwarded: c("opt.loadfwd.removed"),
            stores_eliminated: c("opt.dse.removed"),
        }
    }
}

/// Runs the fully instrumented pipeline over one corpus program,
/// recording into `tm`: frontend, SSA construction, producer
/// optimization, encoding with section accounting, the bytecode
/// baseline, and an interpreted run of the optimized module with
/// dynamic statistics. Returns the optimized module's wire bytes; every
/// quantity `bench_report` aggregates is recorded as a counter, so the
/// registry alone reconstructs a [`ProgramReport`].
///
/// # Panics
///
/// Panics when any stage fails — corpus programs are expected to be
/// fully supported.
pub fn record_program(entry: &CorpusEntry, tm: &Telemetry) -> Vec<u8> {
    let prog = safetsa_frontend::compile_sources(&[entry.source], tm)
        .unwrap_or_else(|e| panic!("{}: front-end: {e}", entry.name));
    let lowered = safetsa_ssa::construct(&prog, tm)
        .unwrap_or_else(|e| panic!("{}: lowering: {e}", entry.name));
    let mut module = lowered.module;
    let checks_before = static_check_count(&module);
    // CSE-only ablation copy: what the pipeline eliminates without the
    // dataflow-driven checkelim pass. The delta against the full
    // pipeline is the pass's contribution, reported per program.
    let mut cse_only = module.clone();
    safetsa_opt::optimize(
        &mut cse_only,
        Passes {
            checkelim: false,
            ..Passes::ALL
        },
        &Telemetry::disabled(),
    );
    let checks_eliminated_cse_only = checks_before - static_check_count(&cse_only);
    safetsa_opt::optimize(&mut module, Passes::ALL, tm);
    let checks_eliminated = checks_before - static_check_count(&module);
    tm.set("opt.checks.eliminated", checks_eliminated);
    tm.set("opt.checks.eliminated_cse_only", checks_eliminated_cse_only);
    verify_module(&module).unwrap_or_else(|e| panic!("{}: verify: {e}", entry.name));
    let bytes = safetsa_codec::encode(&module, tm)
        .unwrap_or_else(|e| panic!("{}: encode: {e}", entry.name));
    // Baseline plane + headline ratio.
    let mut bcode = bcompile::compile_program(&prog);
    bverify::verify_program(&prog, &mut bcode)
        .unwrap_or_else(|e| panic!("{}: bytecode verify: {e}", entry.name));
    let class_size = classfile::total_size(&prog, &bcode) as u64;
    let opt_size = bytes.len() as u64;
    let ratio_permille = (opt_size * 1000).checked_div(class_size).unwrap_or(0);
    tm.set("baseline.class_file_bytes", class_size);
    tm.set("baseline.instrs", bcode.instr_count() as u64);
    tm.set("codec.size_ratio_permille", ratio_permille);
    // Consumer plane: run the optimized module under the threaded
    // engine (timed, with dynamic counters and inline-cache telemetry),
    // then replay it under the switch engine as a differential oracle —
    // the two must agree byte-for-byte on output and bit-for-bit on the
    // result, and the oracle's wall time and step count become the
    // baseline the threaded engine's speedup is measured against.
    let mut vm = safetsa_vm::Vm::load(&module).expect("loads");
    vm.enable_stats();
    vm.set_fuel(500_000_000);
    let t0 = std::time::Instant::now();
    let result = vm
        .run_entry(entry.entry)
        .unwrap_or_else(|e| panic!("{}: vm: {e}", entry.name));
    tm.set("vm.run_ns", t0.elapsed().as_nanos() as u64);
    vm.export_metrics(tm);
    let mut oracle = safetsa_vm::Vm::load(&module).expect("loads");
    oracle.set_engine(safetsa_vm::Engine::Switch);
    oracle.set_fuel(500_000_000);
    let t0 = std::time::Instant::now();
    let oracle_result = oracle
        .run_entry(entry.entry)
        .unwrap_or_else(|e| panic!("{}: switch vm: {e}", entry.name));
    tm.set("vm.switch.run_ns", t0.elapsed().as_nanos() as u64);
    tm.set("vm.switch.steps", oracle.steps);
    assert_eq!(
        vm.output.text(),
        oracle.output.text(),
        "{}: threaded and switch engines disagree on output",
        entry.name
    );
    match (result, oracle_result) {
        (Some(a), Some(b)) => assert!(
            a.bits_eq(b),
            "{}: threaded result {a:?} vs switch {b:?}",
            entry.name
        ),
        (None, None) => {}
        other => panic!("{}: engine result arity mismatch {other:?}", entry.name),
    }
    bytes
}

/// Runs every corpus program under the switch-engine sampling profiler
/// and merges the opcode-pair windows into one corpus-wide histogram —
/// the offline analysis that selects the threaded engine's
/// superinstructions (see DESIGN.md "Interpreter architecture").
///
/// The switch engine is used deliberately: it observes the *unfused*
/// instruction stream, so the histogram stays a stable selection input
/// even after fusion changes what the threaded engine executes.
///
/// # Panics
///
/// Panics when any corpus program fails to build or run.
pub fn pair_histogram() -> safetsa_vm::VmProfile {
    let mut merged = safetsa_vm::VmProfile::default();
    for entry in corpus() {
        let pl = build_pipeline(&entry);
        let mut vm = safetsa_vm::Vm::load(&pl.optimized).expect("loads");
        vm.set_engine(safetsa_vm::Engine::Switch);
        vm.set_fuel(500_000_000);
        vm.enable_profiler(1);
        vm.run_entry(entry.entry)
            .unwrap_or_else(|e| panic!("{}: vm: {e}", entry.name));
        merged.merge(&vm.take_profile());
    }
    merged
}

/// Runs the fully instrumented pipeline over one corpus program and
/// packages the per-program metrics document.
///
/// # Panics
///
/// Panics when any stage fails.
pub fn program_report(entry: &CorpusEntry) -> ProgramReport {
    let tm = Telemetry::enabled();
    record_program(entry, &tm);
    ProgramReport::from_metrics(entry.name, &tm)
}

/// Sweeps the whole corpus through the parallel batch driver: `jobs`
/// workers (`0` = one per CPU), an optional content-addressed cache,
/// and one [`record_program`] task per program. Returns the per-program
/// reports (in corpus order — scheduling never shows) together with the
/// batch-level [`BatchReport`] (merged metrics, wall times, cache
/// hit/miss counts).
///
/// # Panics
///
/// Panics when any program fails or the cache directory is unusable.
pub fn corpus_report(jobs: usize, cache_dir: Option<&Path>) -> (Vec<ProgramReport>, BatchReport) {
    let entries = corpus();
    let inputs: Vec<BatchInput> = entries
        .iter()
        .map(|e| BatchInput {
            name: e.name.to_string(),
            source: e.source.to_string(),
        })
        .collect();
    let mut opts = BatchOptions::new(format!(
        "bench-report/2/{}",
        passes_fingerprint(&Passes::ALL)
    ));
    opts.jobs = jobs;
    opts.cache_dir = cache_dir.map(Path::to_path_buf);
    opts.telemetry = true;
    let report = run_batch(&inputs, &opts, |idx, _input, tm| {
        let bytes = record_program(&entries[idx], &tm);
        Ok((bytes, tm))
    })
    .unwrap_or_else(|e| panic!("corpus batch: {e}"));
    let reports = entries
        .iter()
        .zip(&report.items)
        .map(|(e, item)| ProgramReport::from_metrics(e.name, &item.metrics))
        .collect();
    (reports, report)
}

/// One touch-one-method incremental replay measurement (the
/// `totals.incremental` block in `bench_report`'s document).
#[derive(Debug, Clone, Copy)]
pub struct IncrementalReplay {
    /// Units (method bodies) in the edited program's plan.
    pub units: u64,
    /// Units reused from the store on the warm rebuild.
    pub reused: u64,
    /// Units recompiled — exactly 1, the edited method.
    pub recompiled: u64,
    /// Wall time of the warm (post-edit) rebuild.
    pub warm_wall_ns: u64,
}

/// Cold-populates the method-granular incremental store from the
/// QuickSort corpus program, replays a one-method edit (`main`'s
/// element count bumped), and measures the warm rebuild. The warm
/// output is asserted byte-identical to a cold build of the edited
/// source before the numbers are returned.
///
/// # Panics
///
/// Panics when any stage fails, when the replay recompiles more than
/// the edited unit, or when warm output diverges from the cold build.
pub fn incremental_replay(cache_dir: &Path) -> IncrementalReplay {
    let entry = corpus()
        .into_iter()
        .find(|e| e.name == "QuickSort")
        .expect("QuickSort left the corpus");
    let edited = entry.source.replace("int n = 3000;", "int n = 3001;");
    assert_ne!(edited, entry.source, "edit marker vanished from corpus");

    let cold = DriverPipeline::new()
        .cache(cache_dir)
        .unwrap_or_else(|e| panic!("incremental store: {e}"));
    cold.compile_source(entry.source)
        .unwrap_or_else(|e| panic!("cold populate: {e}"));

    let warm = DriverPipeline::new()
        .cache(cache_dir)
        .unwrap_or_else(|e| panic!("incremental store: {e}"));
    let start = std::time::Instant::now();
    let wm = warm
        .compile_source(&edited)
        .unwrap_or_else(|e| panic!("warm rebuild: {e}"));
    let warm_wall_ns = start.elapsed().as_nanos() as u64;
    let warm_bytes = warm.encode(&wm).unwrap_or_else(|e| panic!("encode: {e}"));

    let plain = DriverPipeline::new();
    let cm = plain
        .compile_source(&edited)
        .unwrap_or_else(|e| panic!("cold rebuild: {e}"));
    assert_eq!(
        warm_bytes,
        plain.encode(&cm).unwrap_or_else(|e| panic!("encode: {e}")),
        "warm incremental output diverged from the cold build"
    );

    let outcomes = warm.cache_report();
    let units = outcomes.len() as u64;
    let reused = outcomes.iter().filter(|u| u.reused).count() as u64;
    let recompiled = units - reused;
    assert_eq!(
        recompiled, 1,
        "touch-one-method replay must recompile exactly one unit"
    );
    IncrementalReplay {
        units,
        reused,
        recompiled,
        warm_wall_ns,
    }
}
