//! Load generation against the `safetsa serve` daemon.
//!
//! The loadgen replays the benchmark corpus through a daemon — an
//! in-process one it spawns itself, or an external one by address —
//! mixed (optionally) with hostile traffic: malformed frames, unknown
//! ops, and `//!chaos:panic` sources that detonate inside a worker.
//! It asserts the protocol's core invariant from the *client* side:
//! every frame sent receives exactly one well-formed response, and the
//! daemon stays live throughout. Latency percentiles come from both
//! sides: client-side from this loadgen's raw per-request samples, and
//! daemon-side from the server's own retained-sample reservoir (the
//! `stats` op's exact `p50_ns`/`p99_ns`), so the report exposes any
//! disagreement between the two views.

use crate::corpus;
use safetsa_server::client::{request_obj, Client};
use safetsa_server::{BindAddr, Server, ServerConfig, ServerHandle, TenantProfile, SCHEMA};
use safetsa_telemetry::Json;
use std::time::Instant;

/// How the loadgen drives a daemon.
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// Address of an external daemon (`host:port`); `None` spawns an
    /// in-process one on a loopback ephemeral port.
    pub addr: Option<String>,
    /// Concurrent client connections.
    pub connections: usize,
    /// Corpus replay passes per connection.
    pub passes: usize,
    /// Mix in hostile traffic (malformed frames, unknown ops, panics)
    /// and run the saturation burst. Requires the daemon to run with
    /// `--chaos` when external.
    pub chaos: bool,
    /// Worker-pool size for the in-process daemon (0 = per-CPU).
    pub workers: usize,
    /// Admission-queue capacity for the in-process daemon.
    pub queue_capacity: usize,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        LoadgenOptions {
            addr: None,
            connections: 2,
            passes: 1,
            chaos: true,
            workers: 0,
            queue_capacity: 16,
        }
    }
}

/// What one loadgen run observed (client-side truth, cross-checked
/// against the daemon's own `stats` snapshot where possible).
#[derive(Debug, Default)]
pub struct ServeLoadReport {
    /// Frames sent (work + control + hostile).
    pub requests: u64,
    /// Responses received.
    pub responses: u64,
    /// `status:"ok"` responses.
    pub ok: u64,
    /// `status:"error"` responses.
    pub errors: u64,
    /// `status:"overloaded"` responses (shed or draining).
    pub shed: u64,
    /// Error responses with `kind:"panic"` — isolated worker panics.
    pub panic_isolated: u64,
    /// Median end-to-end latency over ok/error work responses, ns.
    pub p50_ns: u64,
    /// 99th-percentile latency, ns.
    pub p99_ns: u64,
    /// The daemon's own exact median (admission → response) from its
    /// retained-sample reservoir, when the `stats` op reported one.
    pub daemon_p50_ns: Option<u64>,
    /// The daemon's own exact 99th percentile.
    pub daemon_p99_ns: Option<u64>,
    /// Invariant violations observed (empty on a healthy run).
    pub violations: Vec<String>,
}

impl ServeLoadReport {
    /// The `totals.serve` block of `BENCH_pipeline.json`.
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("requests", Json::U64(self.requests));
        o.set("responses", Json::U64(self.responses));
        o.set("ok", Json::U64(self.ok));
        o.set("errors", Json::U64(self.errors));
        o.set("shed", Json::U64(self.shed));
        o.set("panic_isolated", Json::U64(self.panic_isolated));
        o.set("p50_latency_ns", Json::U64(self.p50_ns));
        o.set("p99_latency_ns", Json::U64(self.p99_ns));
        if let Some(ns) = self.daemon_p50_ns {
            o.set("daemon_p50_latency_ns", Json::U64(ns));
        }
        if let Some(ns) = self.daemon_p99_ns {
            o.set("daemon_p99_latency_ns", Json::U64(ns));
        }
        o.set("violations", Json::U64(self.violations.len() as u64));
        o
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// One worker's share of the traffic; merged into the report under a
/// lock by the caller.
#[derive(Debug, Default)]
struct ConnTally {
    requests: u64,
    responses: u64,
    ok: u64,
    errors: u64,
    shed: u64,
    panic_isolated: u64,
    latencies: Vec<u64>,
    violations: Vec<String>,
}

/// What the response's `id` field must be.
enum IdExpect<'a> {
    /// Exactly this id.
    Exact(&'a str),
    /// Any id with this prefix (pipelined bursts complete out of order).
    Prefix(&'a str),
    /// `null` — the request was unparseable, no id to recover.
    Null,
}

impl ConnTally {
    /// Sends one request document and classifies its response.
    fn roundtrip(&mut self, client: &mut Client, doc: &Json, expect_id: &str) {
        self.requests += 1;
        let started = Instant::now();
        let resp = match client.request(doc) {
            Ok(r) => r,
            Err(e) => {
                self.violations
                    .push(format!("request `{expect_id}` got no response: {e}"));
                return;
            }
        };
        let elapsed = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.responses += 1;
        self.classify(&resp, IdExpect::Exact(expect_id), Some(elapsed));
    }

    fn classify(&mut self, resp: &Json, expect: IdExpect<'_>, latency: Option<u64>) {
        if resp.get("schema") != Some(&Json::Str(SCHEMA.into())) {
            self.violations
                .push(format!("response lacks schema: {}", resp.render()));
        }
        let id_ok = match (&expect, resp.get("id")) {
            (IdExpect::Exact(want), Some(Json::Str(id))) => id == want,
            (IdExpect::Prefix(prefix), Some(Json::Str(id))) => id.starts_with(prefix),
            (IdExpect::Null, Some(Json::Null)) => true,
            _ => false,
        };
        if !id_ok {
            self.violations
                .push(format!("response id mismatch: {}", resp.render()));
        }
        match resp.get("status") {
            Some(Json::Str(s)) if s == "ok" => {
                self.ok += 1;
                if let Some(ns) = latency {
                    self.latencies.push(ns);
                }
            }
            Some(Json::Str(s)) if s == "error" => {
                self.errors += 1;
                if resp.get("kind").map(Json::render) == Some("\"panic\"".into()) {
                    self.panic_isolated += 1;
                }
                if let Some(ns) = latency {
                    self.latencies.push(ns);
                }
            }
            Some(Json::Str(s)) if s == "overloaded" => self.shed += 1,
            _ => self
                .violations
                .push(format!("response without status: {}", resp.render())),
        }
    }
}

fn run_request(entry: &crate::CorpusEntry, id: &str) -> Json {
    let mut doc = request_obj("run", id);
    doc.set("source", Json::Str(entry.source.to_string()));
    doc.set("entry", Json::Str(entry.entry.to_string()));
    doc.set("deadline_ms", Json::U64(30_000));
    doc
}

fn replay_connection(addr: &str, conn_idx: usize, opts: &LoadgenOptions) -> ConnTally {
    let mut tally = ConnTally::default();
    let mut client = match Client::connect_tcp(addr) {
        Ok(c) => c,
        Err(e) => {
            tally.violations.push(format!("connect failed: {e}"));
            return tally;
        }
    };
    let programs = corpus();
    for pass in 0..opts.passes {
        for (i, entry) in programs.iter().enumerate() {
            let id = format!("c{conn_idx}-p{pass}-{}", entry.name);
            tally.roundtrip(&mut client, &run_request(entry, &id), &id);
            if opts.chaos {
                // Interleave hostile traffic so faults land while real
                // work is in flight.
                match i % 4 {
                    0 => {
                        // A worker panic mid-corpus.
                        let id = format!("c{conn_idx}-p{pass}-boom{i}");
                        let mut doc = request_obj("compile", &id);
                        doc.set(
                            "source",
                            Json::Str("//!chaos:panic\nclass B {}".into()),
                        );
                        tally.roundtrip(&mut client, &doc, &id);
                    }
                    1 => {
                        // A frame that is not JSON at all; the response
                        // carries a null id.
                        tally.requests += 1;
                        if client.send_line("{truncated \u{fffd}garbage").is_ok() {
                            match client.recv() {
                                Ok(Some(resp)) => {
                                    tally.responses += 1;
                                    tally.classify(&resp, IdExpect::Null, None);
                                }
                                other => tally.violations.push(format!(
                                    "garbage frame got no response: {other:?}"
                                )),
                            }
                        }
                    }
                    2 => {
                        // An unknown op with a recoverable id.
                        let id = format!("c{conn_idx}-p{pass}-weird{i}");
                        tally.roundtrip(&mut client, &request_obj("frobnicate", &id), &id);
                    }
                    _ => {}
                }
            }
        }
    }
    // The daemon must still be live for this connection.
    let id = format!("c{conn_idx}-final-ping");
    tally.roundtrip(&mut client, &request_obj("ping", &id), &id);
    tally
}

/// Pipelined burst: send `n` frames back-to-back, then read `n`
/// responses. With a small queue this is what drives the daemon into
/// shedding; every burst frame must still get exactly one response.
fn saturation_burst(addr: &str, n: usize, tally: &mut ConnTally) {
    let mut client = match Client::connect_tcp(addr) {
        Ok(c) => c,
        Err(e) => {
            tally.violations.push(format!("burst connect failed: {e}"));
            return;
        }
    };
    let src = "//!chaos:sleep=25\nclass Slow { static int main() { return 1; } }";
    for i in 0..n {
        let mut doc = request_obj("run", &format!("burst-{i}"));
        doc.set("source", Json::Str(src.into()));
        doc.set("entry", Json::Str("Slow.main".into()));
        doc.set("deadline_ms", Json::U64(30_000));
        if client.send_line(&doc.render()).is_err() {
            tally.violations.push(format!("burst send {i} failed"));
            return;
        }
        tally.requests += 1;
    }
    for i in 0..n {
        match client.recv() {
            Ok(Some(resp)) => {
                tally.responses += 1;
                tally.classify(&resp, IdExpect::Prefix("burst-"), None);
            }
            other => {
                tally
                    .violations
                    .push(format!("burst response {i} missing: {other:?}"));
                return;
            }
        }
    }
}

/// Runs the loadgen. When `opts.addr` is `None`, a chaos-enabled
/// in-process daemon is spawned and drained before returning, so the
/// report also reflects a full graceful-shutdown cycle.
pub fn run_loadgen(opts: &LoadgenOptions) -> ServeLoadReport {
    let mut spawned: Option<(ServerHandle, std::thread::JoinHandle<()>)> = None;
    let addr = match &opts.addr {
        Some(addr) => addr.clone(),
        None => {
            let cfg = ServerConfig {
                bind: BindAddr::Tcp("127.0.0.1:0".into()),
                workers: opts.workers,
                queue_capacity: opts.queue_capacity,
                chaos: true,
                // Corpus programs get whatever they need; limits are
                // exercised by the chaos harness, not the loadgen.
                default_tenant: TenantProfile {
                    fuel: None,
                    max_heap_bytes: None,
                    max_call_depth: None,
                    ..TenantProfile::default()
                },
                ..ServerConfig::default()
            };
            let server = Server::bind(cfg).expect("bind loopback daemon");
            let addr = server.local_addr();
            let handle = server.handle();
            let join = std::thread::spawn(move || {
                server.run();
            });
            spawned = Some((handle, join));
            addr
        }
    };

    let tallies: Vec<ConnTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..opts.connections.max(1))
            .map(|c| {
                let addr = addr.clone();
                let opts = &*opts;
                scope.spawn(move || replay_connection(&addr, c, opts))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut report = ServeLoadReport::default();
    let mut latencies: Vec<u64> = Vec::new();
    for mut t in tallies {
        report.requests += t.requests;
        report.responses += t.responses;
        report.ok += t.ok;
        report.errors += t.errors;
        report.shed += t.shed;
        report.panic_isolated += t.panic_isolated;
        latencies.append(&mut t.latencies);
        report.violations.append(&mut t.violations);
    }

    if opts.chaos {
        let mut burst = ConnTally::default();
        saturation_burst(&addr, opts.queue_capacity * 3, &mut burst);
        report.requests += burst.requests;
        report.responses += burst.responses;
        report.ok += burst.ok;
        report.errors += burst.errors;
        report.shed += burst.shed;
        report.panic_isolated += burst.panic_isolated;
        report.violations.append(&mut burst.violations);
    }

    if report.responses != report.requests {
        report.violations.push(format!(
            "sent {} frames but received {} responses",
            report.requests, report.responses
        ));
    }

    latencies.sort_unstable();
    report.p50_ns = percentile(&latencies, 0.50);
    report.p99_ns = percentile(&latencies, 0.99);

    // The daemon's own exact percentiles, admission → response, over
    // its retained-sample reservoir — covers every connection's
    // traffic, measured without the client-side network share.
    if let Ok(mut client) = Client::connect_tcp(&addr) {
        if let Ok(resp) = client.request(&request_obj("stats", "loadgen-stats")) {
            let lat = resp.get("payload").and_then(|p| p.get("latency"));
            report.daemon_p50_ns = lat.and_then(|l| l.get("p50_ns")).and_then(Json::as_u64);
            report.daemon_p99_ns = lat.and_then(|l| l.get("p99_ns")).and_then(Json::as_u64);
        }
    }

    if let Some((handle, join)) = spawned {
        handle.request_shutdown();
        if join.join().is_err() {
            report
                .violations
                .push("daemon thread panicked during drain".into());
        }
    }
    report
}
