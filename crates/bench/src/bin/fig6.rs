//! Regenerates Figure 6: phi-, null-check, and array-check
//! instructions before and after producer-side optimization, plus the
//! §7 construction-time phi-pruning statistic (~31% in the paper).

use safetsa_bench::{corpus, delta_pct, measure};

fn pct(d: Option<i64>) -> String {
    match d {
        Some(v) => format!("{v}"),
        None => "N/A".to_string(),
    }
}

fn main() {
    println!("Figure 6: Phi-, Null-Check and Array-Check instructions");
    println!("         before and after producer-side optimization");
    println!();
    println!(
        "{:<14} | {:>6} {:>6} {:>5} | {:>6} {:>6} {:>5} | {:>6} {:>6} {:>5}",
        "", "Phi", "Instr", "", "Null-", "Checks", "", "Array-", "Checks", ""
    );
    println!(
        "{:<14} | {:>6} {:>6} {:>5} | {:>6} {:>6} {:>5} | {:>6} {:>6} {:>5}",
        "Class Name", "Before", "After", "d%", "Before", "After", "d%", "Before", "After", "d%"
    );
    println!("{}", "-".repeat(14 + 3 * (6 + 6 + 5 + 3) + 9));
    let mut tot = [0usize; 6];
    let mut pruning = (0usize, 0usize);
    for entry in corpus() {
        let m = measure(&entry);
        let o = &m.opt;
        println!(
            "{:<14} | {:>6} {:>6} {:>5} | {:>6} {:>6} {:>5} | {:>6} {:>6} {:>5}",
            m.name,
            o.phis_before,
            o.phis_after,
            pct(delta_pct(o.phis_before, o.phis_after)),
            o.null_checks_before,
            o.null_checks_after,
            pct(delta_pct(o.null_checks_before, o.null_checks_after)),
            o.index_checks_before,
            o.index_checks_after,
            pct(delta_pct(o.index_checks_before, o.index_checks_after)),
        );
        tot[0] += o.phis_before;
        tot[1] += o.phis_after;
        tot[2] += o.null_checks_before;
        tot[3] += o.null_checks_after;
        tot[4] += o.index_checks_before;
        tot[5] += o.index_checks_after;
        pruning.0 += m.construction.phis_candidate;
        pruning.1 += m.construction.phis_inserted;
    }
    println!("{}", "-".repeat(14 + 3 * (6 + 6 + 5 + 3) + 9));
    println!(
        "{:<14} | {:>6} {:>6} {:>5} | {:>6} {:>6} {:>5} | {:>6} {:>6} {:>5}",
        "TOTAL",
        tot[0],
        tot[1],
        pct(delta_pct(tot[0], tot[1])),
        tot[2],
        tot[3],
        pct(delta_pct(tot[2], tot[3])),
        tot[4],
        tot[5],
        pct(delta_pct(tot[4], tot[5])),
    );
    println!();
    println!(
        "construction-time phi avoidance (the paper's ~31%): naive {} -> placed {} ({}%)",
        pruning.0,
        pruning.1,
        pct(delta_pct(pruning.0, pruning.1))
    );
}
