//! Chaos-aware load generator for the `safetsa serve` daemon.
//!
//! ```text
//! serve_loadgen [--addr HOST:PORT]   target an external daemon
//!                                    (must run with --chaos for the
//!                                    hostile traffic to inject faults)
//!               [--connections N]    concurrent client connections (2)
//!               [--passes N]         corpus replays per connection (1)
//!               [--no-chaos]         plain replay, no hostile traffic
//!               [--workers N]        in-process daemon pool (0 = CPUs)
//!               [--queue N]          in-process daemon queue cap (16)
//!               [--metrics-json P]   write the loadgen report as JSON
//! ```
//!
//! Without `--addr` the loadgen spawns an in-process daemon, drives
//! it, and drains it. Exit is nonzero iff any protocol invariant was
//! violated: a frame without exactly one response, a response without
//! the schema/id/status envelope, or a daemon that died under fault
//! injection. CI's serve smoke job runs exactly this binary.

use safetsa_bench::serve::{run_loadgen, LoadgenOptions};
use safetsa_telemetry::Json;
use std::process::ExitCode;

fn main() -> ExitCode {
    fn value(
        it: &mut std::vec::IntoIter<String>,
        what: &str,
    ) -> Result<String, String> {
        it.next().ok_or_else(|| format!("{what} needs a value"))
    }
    fn parsed<T: std::str::FromStr>(
        it: &mut std::vec::IntoIter<String>,
        what: &str,
    ) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        value(it, what)?.parse().map_err(|e| format!("{what}: {e}"))
    }

    let mut opts = LoadgenOptions::default();
    let mut metrics_path: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let r: Result<(), String> = match arg.as_str() {
            "--addr" => value(&mut it, "--addr").map(|v| opts.addr = Some(v)),
            "--connections" => {
                parsed(&mut it, "--connections").map(|v| opts.connections = v)
            }
            "--passes" => parsed(&mut it, "--passes").map(|v| opts.passes = v),
            "--no-chaos" => {
                opts.chaos = false;
                Ok(())
            }
            "--workers" => parsed(&mut it, "--workers").map(|v| opts.workers = v),
            "--queue" => parsed(&mut it, "--queue").map(|v| opts.queue_capacity = v),
            "--metrics-json" => {
                value(&mut it, "--metrics-json").map(|v| metrics_path = Some(v))
            }
            other => Err(format!("unknown argument `{other}`")),
        };
        if let Err(msg) = r {
            eprintln!("serve_loadgen: {msg}");
            eprintln!(
                "usage: serve_loadgen [--addr HOST:PORT] [--connections N] [--passes N]"
            );
            eprintln!(
                "       [--no-chaos] [--workers N] [--queue N] [--metrics-json PATH]"
            );
            return ExitCode::from(2);
        }
    }

    let report = run_loadgen(&opts);
    println!(
        "serve_loadgen: {} requests -> {} responses ({} ok, {} errors, {} shed, {} panics isolated)",
        report.requests, report.responses, report.ok, report.errors, report.shed,
        report.panic_isolated,
    );
    println!(
        "serve_loadgen: latency p50 {} us, p99 {} us",
        report.p50_ns / 1_000,
        report.p99_ns / 1_000,
    );
    if let Some(path) = metrics_path {
        let mut doc = Json::obj();
        doc.set("schema", Json::Str("safetsa-serve-loadgen/1".into()));
        doc.set("serve", report.to_json());
        if let Err(e) = std::fs::write(&path, doc.render_pretty()) {
            eprintln!("serve_loadgen: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }
    if report.violations.is_empty() {
        println!("serve_loadgen: all protocol invariants held");
        ExitCode::SUCCESS
    } else {
        for v in &report.violations {
            eprintln!("serve_loadgen: VIOLATION: {v}");
        }
        eprintln!(
            "serve_loadgen: {} invariant violation(s)",
            report.violations.len()
        );
        ExitCode::FAILURE
    }
}
