//! §8's pass-contribution breakdown: the paper attributes 1–2% of the
//! size improvement to constant propagation, 3–7% to dead-code
//! elimination (mostly phis), and 5–14% to CSE. This harness runs each
//! pass configuration over the corpus and reports the instruction-count
//! reduction each pass is responsible for.

use safetsa_core::verify::verify_module;
use safetsa_opt::Passes;
use safetsa_ssa::lower_program;
use safetsa_telemetry::Telemetry;

fn count(m: &safetsa_core::Module) -> usize {
    m.instr_count() + m.phi_count()
}

/// A configuration with exactly one pass enabled.
fn only(set: impl Fn(&mut Passes)) -> Passes {
    let mut p = Passes::NONE;
    set(&mut p);
    p
}

fn main() {
    let configs: &[(&str, Passes)] = &[
        ("constprop", only(|p| p.constprop = true)),
        ("cse", only(|p| p.cse = true)),
        ("checkelim", only(|p| p.checkelim = true)),
        ("loadfwd", only(|p| p.loadfwd = true)),
        ("dse", only(|p| p.dse = true)),
        ("dce", only(|p| p.dce = true)),
        ("all", Passes::ALL),
        ("all+fieldmem", Passes::ALL_FIELD_MEM),
    ];
    println!("Pass ablation over the corpus (instruction+phi counts)");
    println!();
    print!("{:<14} {:>8}", "Program", "base");
    for (name, _) in configs {
        print!(" {:>8}", &name[..name.len().min(8)]);
    }
    println!();
    let mut totals = vec![0usize; configs.len() + 1];
    for entry in safetsa_bench::corpus() {
        let prog = safetsa_frontend::compile(entry.source).expect("front-end");
        let lowered = lower_program(&prog).expect("lowering");
        let base = count(&lowered.module);
        let mut row = vec![base];
        for (_, passes) in configs {
            let mut m = lowered.module.clone();
            safetsa_opt::optimize(&mut m, *passes, &Telemetry::disabled());
            verify_module(&m).expect("verifies");
            row.push(count(&m));
        }
        print!("{:<14}", entry.name);
        for v in &row {
            print!(" {v:>8}");
        }
        println!();
        for (t, v) in totals.iter_mut().zip(&row) {
            *t += v;
        }
    }
    println!();
    let base = totals[0] as f64;
    println!("reduction vs baseline (paper: constprop 1-2%, dce 3-7%, cse 5-14%):");
    for (i, (name, _)) in configs.iter().enumerate() {
        println!(
            "  {:<12} -{:.1}%",
            name,
            100.0 * (totals[0] - totals[i + 1]) as f64 / base
        );
    }
}
