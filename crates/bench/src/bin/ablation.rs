//! §8's pass-contribution breakdown: the paper attributes 1–2% of the
//! size improvement to constant propagation, 3–7% to dead-code
//! elimination (mostly phis), and 5–14% to CSE. This harness runs each
//! pass configuration over the corpus and reports the instruction-count
//! reduction each pass is responsible for.

use safetsa_core::verify::verify_module;
use safetsa_opt::{MemModel, Passes};
use safetsa_ssa::lower_program;
use safetsa_telemetry::Telemetry;

fn count(m: &safetsa_core::Module) -> usize {
    m.instr_count() + m.phi_count()
}

fn main() {
    let configs: &[(&str, Passes)] = &[
        (
            "constprop",
            Passes {
                constprop: true,
                cse: false,
                checkelim: false,
                dce: false,
                mem: MemModel::Monolithic,
            },
        ),
        (
            "cse",
            Passes {
                constprop: false,
                cse: true,
                checkelim: false,
                dce: false,
                mem: MemModel::Monolithic,
            },
        ),
        (
            "checkelim",
            Passes {
                constprop: false,
                cse: false,
                checkelim: true,
                dce: false,
                mem: MemModel::Monolithic,
            },
        ),
        (
            "dce",
            Passes {
                constprop: false,
                cse: false,
                checkelim: false,
                dce: true,
                mem: MemModel::Monolithic,
            },
        ),
        ("all", Passes::ALL),
        ("all+fieldmem", Passes::ALL_FIELD_MEM),
    ];
    println!("Pass ablation over the corpus (instruction+phi counts)");
    println!();
    println!(
        "{:<14} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "Program", "base", "constp", "cse", "checkel", "dce", "all", "all+fm"
    );
    let mut totals = [0usize; 7];
    for entry in safetsa_bench::corpus() {
        let prog = safetsa_frontend::compile(entry.source).expect("front-end");
        let lowered = lower_program(&prog).expect("lowering");
        let base = count(&lowered.module);
        let mut row = vec![base];
        for (_, passes) in configs {
            let mut m = lowered.module.clone();
            safetsa_opt::optimize(&mut m, *passes, &Telemetry::disabled());
            verify_module(&m).expect("verifies");
            row.push(count(&m));
        }
        println!(
            "{:<14} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
            entry.name, row[0], row[1], row[2], row[3], row[4], row[5], row[6]
        );
        for (t, v) in totals.iter_mut().zip(&row) {
            *t += v;
        }
    }
    println!();
    let base = totals[0] as f64;
    println!("reduction vs baseline (paper: constprop 1-2%, dce 3-7%, cse 5-14%):");
    for (i, (name, _)) in configs.iter().enumerate() {
        println!(
            "  {:<10} -{:.1}%",
            name,
            100.0 * (totals[0] - totals[i + 1]) as f64 / base
        );
    }
}
