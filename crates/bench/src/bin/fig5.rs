//! Regenerates Figure 5: per-program file sizes and instruction counts
//! for Java bytecode, SafeTSA, and optimized SafeTSA.
//!
//! The paper's absolute numbers come from the Sun JDK sources; this
//! corpus substitutes open workloads from the same categories (see
//! DESIGN.md), so the claim being reproduced is the *shape*: SafeTSA
//! carries fewer instructions than bytecode (mostly < 40% more rows in
//! the paper's phrasing: SafeTSA has less than 40%... of bytecode's
//! count in most rows is not expected to hold exactly here — our
//! SafeTSA counts include the explicit null/index checks, as the
//! paper's do), optimization shaves >10% off the instruction count,
//! and encoded SafeTSA is no more voluminous than class files.

use safetsa_bench::{corpus, measure};

fn main() {
    println!("Figure 5: SafeTSA class files compared to Java class files");
    println!();
    println!(
        "{:<14} | {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9}",
        "", "-- file", "size (by", "tes) --", "-- numbe", "r of ins", "tr. --"
    );
    println!(
        "{:<14} | {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9}",
        "Class Name", "Bytecode", "SafeTSA", "TSA-opt", "Bytecode", "SafeTSA", "TSA-opt"
    );
    println!("{}", "-".repeat(14 + 3 + 9 * 6 + 5 * 2 + 4));
    let mut tot = [0usize; 6];
    for entry in corpus() {
        let m = measure(&entry);
        println!(
            "{:<14} | {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9}",
            m.name,
            m.bytecode_size,
            m.safetsa_size,
            m.safetsa_opt_size,
            m.bytecode_instrs,
            m.safetsa_instrs,
            m.safetsa_opt_instrs
        );
        tot[0] += m.bytecode_size;
        tot[1] += m.safetsa_size;
        tot[2] += m.safetsa_opt_size;
        tot[3] += m.bytecode_instrs;
        tot[4] += m.safetsa_instrs;
        tot[5] += m.safetsa_opt_instrs;
    }
    println!("{}", "-".repeat(14 + 3 + 9 * 6 + 5 * 2 + 4));
    println!(
        "{:<14} | {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9}",
        "TOTAL", tot[0], tot[1], tot[2], tot[3], tot[4], tot[5]
    );
    println!();
    println!(
        "SafeTSA instructions vs bytecode: {:.1}% (optimized: {:.1}%)",
        100.0 * tot[4] as f64 / tot[3] as f64,
        100.0 * tot[5] as f64 / tot[3] as f64
    );
    println!(
        "SafeTSA size vs class files:      {:.1}% (optimized: {:.1}%)",
        100.0 * tot[1] as f64 / tot[0] as f64,
        100.0 * tot[2] as f64 / tot[0] as f64
    );
    println!(
        "optimization instruction shave:   {:.1}%",
        100.0 * (tot[4] - tot[5]) as f64 / tot[4] as f64
    );
}
