//! Corpus-wide metrics sweep: runs the fully instrumented pipeline
//! over every corpus program and emits one aggregate
//! `BENCH_pipeline.json` document (schema `safetsa-bench/1`).
//!
//! Usage:
//!
//! ```text
//! bench_report [--out PATH]      # write the aggregate report
//!   [--jobs N]                   # compile the corpus on N workers
//!                                # (0 = one per CPU; default serial)
//!   [--cache-dir PATH]           # content-addressed module cache
//! bench_report --check PATH      # regression gate: compare each
//!                                # program's encoded-size ratio
//!                                # against the thresholds file
//! ```
//!
//! The per-program sections are byte-identical whatever `--jobs` says
//! (scheduling never shows); the batch-level measurements — worker
//! count, wall time vs summed task time, cache hits/misses — land in
//! `totals.driver`. A touch-one-method incremental replay (edit one
//! method of a multi-method corpus program, rebuild against the
//! method-granular store) lands in `totals.incremental` — units,
//! reused, recompiled (always 1), and the warm rebuild's wall time.
//!
//! The thresholds file is line-oriented: `Name max_permille
//! [min_checks_eliminated [min_mem_removed [max_vm_steps]]]`, `#`
//! comments and blank lines ignored. A program whose
//! `codec.size_ratio_permille` (optimized SafeTSA bytes * 1000 /
//! class-file bytes) exceeds its threshold fails the check, as does
//! one whose eliminated safety-check count (null + index, full pass
//! pipeline) drops below the optional floor, one whose
//! memory-operation removals (loads forwarded by `loadfwd` + stores
//! eliminated by `dse`) drop below the optional third floor, or one
//! whose threaded-engine dynamic step count rises above the optional
//! fourth ceiling (steps are deterministic; fusion regressions show up
//! here); a program with no threshold entry only warns, so adding
//! corpus programs does not break CI until a threshold is blessed.
//!
//! `--pairs PATH` additionally writes the corpus-wide opcode-pair
//! histogram (switch-engine sampling profiler, merged over every
//! program) — the offline analysis that selects the threaded engine's
//! superinstructions.

use safetsa_bench::serve::{run_loadgen, LoadgenOptions};
use safetsa_bench::{corpus_report, incremental_replay, pair_histogram, IncrementalReplay, ProgramReport};
use safetsa_driver::batch::BatchReport;
use safetsa_telemetry::Json;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = String::from("BENCH_pipeline.json");
    let mut check_path: Option<String> = None;
    let mut pairs_path: Option<String> = None;
    let mut jobs = 1usize;
    let mut cache_dir: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => out_path = p.clone(),
                    None => return usage("--out needs a path"),
                }
            }
            "--check" => {
                i += 1;
                match args.get(i) {
                    Some(p) => check_path = Some(p.clone()),
                    None => return usage("--check needs a path"),
                }
            }
            "--jobs" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(n) => jobs = n,
                    None => return usage("--jobs needs a worker count"),
                }
            }
            "--cache-dir" => {
                i += 1;
                match args.get(i) {
                    Some(p) => cache_dir = Some(PathBuf::from(p)),
                    None => return usage("--cache-dir needs a path"),
                }
            }
            "--pairs" => {
                i += 1;
                match args.get(i) {
                    Some(p) => pairs_path = Some(p.clone()),
                    None => return usage("--pairs needs a path"),
                }
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
        i += 1;
    }

    if let Some(path) = &pairs_path {
        let profile = pair_histogram();
        let mut pairs = Json::obj();
        for (pair, n) in &profile.pairs {
            pairs.set(pair.as_str(), Json::U64(*n));
        }
        let mut doc = Json::obj();
        doc.set("schema", Json::Str("safetsa-pairs/1".into()));
        doc.set("samples", Json::U64(profile.samples));
        doc.set("pairs", pairs);
        if let Err(e) = std::fs::write(path, doc.render_pretty()) {
            eprintln!("bench_report: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "bench_report: {} opcode pairs ({} samples) -> {path}",
            profile.pairs.len(),
            profile.samples
        );
    }

    let (reports, batch) = corpus_report(jobs, cache_dir.as_deref());

    if let Some(path) = check_path {
        return check_thresholds(&reports, &path);
    }

    let serve = run_loadgen(&LoadgenOptions::default());
    if !serve.violations.is_empty() {
        for v in &serve.violations {
            eprintln!("bench_report: serve VIOLATION: {v}");
        }
        return ExitCode::FAILURE;
    }

    let incr = run_incremental();
    let doc = aggregate(&reports, &batch, serve.to_json(), &incr);
    if let Err(e) = std::fs::write(&out_path, doc.render_pretty()) {
        eprintln!("bench_report: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "bench_report: {} programs -> {out_path} ({} optimized SafeTSA bytes vs {} class-file bytes, {} permille)",
        reports.len(),
        reports.iter().map(|r| r.opt_size).sum::<u64>(),
        reports.iter().map(|r| r.class_size).sum::<u64>(),
        total_ratio_permille(&reports),
    );
    println!(
        "bench_report: {} worker(s), {} ms wall ({} ms summed tasks, {}.{:03}x speedup), cache {} hit(s) / {} miss(es)",
        batch.jobs,
        batch.wall_ns / 1_000_000,
        batch.tasks_wall_ns / 1_000_000,
        batch.speedup_permille() / 1000,
        batch.speedup_permille() % 1000,
        batch.cache_hits,
        batch.cache_misses,
    );
    let vm_wall: u64 = reports.iter().map(|r| r.vm_wall_ns).sum();
    let switch_wall: u64 = reports.iter().map(|r| r.switch_wall_ns).sum();
    let reduction = switch_wall
        .saturating_sub(vm_wall)
        .checked_mul(100)
        .and_then(|n| n.checked_div(switch_wall))
        .unwrap_or(0);
    println!(
        "bench_report: vm {} ms threaded vs {} ms switch ({reduction}% wall reduction), {} fused steps vs {} unfused",
        vm_wall / 1_000_000,
        switch_wall / 1_000_000,
        reports.iter().map(|r| r.steps).sum::<u64>(),
        reports.iter().map(|r| r.switch_steps).sum::<u64>(),
    );
    println!(
        "bench_report: serve loadgen {} requests ({} shed, {} panics isolated), p50 {} us / p99 {} us",
        serve.requests,
        serve.shed,
        serve.panic_isolated,
        serve.p50_ns / 1_000,
        serve.p99_ns / 1_000,
    );
    println!(
        "bench_report: incremental replay {} unit(s), {} reused / {} recompiled, warm rebuild {} us",
        incr.units,
        incr.reused,
        incr.recompiled,
        incr.warm_wall_ns / 1_000,
    );
    ExitCode::SUCCESS
}

/// The touch-one-method replay behind `totals.incremental`, against a
/// scratch store so the measurement never aliases `--cache-dir`.
fn run_incremental() -> IncrementalReplay {
    let dir = std::env::temp_dir().join(format!("safetsa-bench-incr-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let r = incremental_replay(&dir);
    let _ = std::fs::remove_dir_all(&dir);
    r
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("bench_report: {msg}");
    eprintln!(
        "usage: bench_report [--out PATH] [--jobs N] [--cache-dir PATH] [--check PATH] [--pairs PATH]"
    );
    ExitCode::FAILURE
}

fn total_ratio_permille(reports: &[ProgramReport]) -> u64 {
    let opt: u64 = reports.iter().map(|r| r.opt_size).sum();
    let class: u64 = reports.iter().map(|r| r.class_size).sum();
    (opt * 1000).checked_div(class).unwrap_or(0)
}

/// Builds the `safetsa-bench/1` aggregate: corpus totals up front
/// (including the batch-driver measurements and the serve-daemon
/// loadgen summary), then the full per-program metrics documents.
fn aggregate(
    reports: &[ProgramReport],
    batch: &BatchReport,
    serve: Json,
    incr: &IncrementalReplay,
) -> Json {
    let mut driver = Json::obj();
    driver.set("jobs", Json::U64(batch.jobs as u64));
    driver.set("wall_ns", Json::U64(batch.wall_ns));
    driver.set("tasks_wall_ns", Json::U64(batch.tasks_wall_ns));
    driver.set("speedup_permille", Json::U64(batch.speedup_permille()));
    driver.set("cache_hits", Json::U64(batch.cache_hits));
    driver.set("cache_misses", Json::U64(batch.cache_misses));

    let mut totals = Json::obj();
    totals.set("programs", Json::U64(reports.len() as u64));
    totals.set("driver", driver);
    totals.set("serve", serve);
    totals.set(
        "safetsa_opt_bytes",
        Json::U64(reports.iter().map(|r| r.opt_size).sum()),
    );
    totals.set(
        "class_file_bytes",
        Json::U64(reports.iter().map(|r| r.class_size).sum()),
    );
    totals.set(
        "size_ratio_permille",
        Json::U64(total_ratio_permille(reports)),
    );
    totals.set(
        "vm_steps",
        Json::U64(reports.iter().map(|r| r.steps).sum()),
    );
    let icache_hits: u64 = reports.iter().map(|r| r.icache_hits).sum();
    let icache_misses: u64 = reports.iter().map(|r| r.icache_misses).sum();
    let mut vm = Json::obj();
    vm.set(
        "wall_ns",
        Json::U64(reports.iter().map(|r| r.vm_wall_ns).sum()),
    );
    vm.set(
        "switch_wall_ns",
        Json::U64(reports.iter().map(|r| r.switch_wall_ns).sum()),
    );
    vm.set(
        "steps",
        Json::U64(reports.iter().map(|r| r.steps).sum()),
    );
    vm.set(
        "switch_steps",
        Json::U64(reports.iter().map(|r| r.switch_steps).sum()),
    );
    vm.set(
        "icache_hit_permille",
        Json::U64(
            (icache_hits * 1000)
                .checked_div(icache_hits + icache_misses)
                .unwrap_or(0),
        ),
    );
    totals.set("vm", vm);
    totals.set(
        "checks_eliminated",
        Json::U64(reports.iter().map(|r| r.checks_eliminated).sum()),
    );
    totals.set(
        "checks_eliminated_cse_only",
        Json::U64(reports.iter().map(|r| r.checks_eliminated_cse_only).sum()),
    );
    let mut opt = Json::obj();
    opt.set(
        "loads_forwarded",
        Json::U64(reports.iter().map(|r| r.loads_forwarded).sum()),
    );
    opt.set(
        "stores_eliminated",
        Json::U64(reports.iter().map(|r| r.stores_eliminated).sum()),
    );
    totals.set("opt", opt);
    let mut incremental = Json::obj();
    incremental.set("units", Json::U64(incr.units));
    incremental.set("reused", Json::U64(incr.reused));
    incremental.set("recompiled", Json::U64(incr.recompiled));
    incremental.set("warm_wall_ns", Json::U64(incr.warm_wall_ns));
    totals.set("incremental", incremental);

    let mut doc = Json::obj();
    doc.set("schema", Json::Str("safetsa-bench/1".into()));
    doc.set("totals", totals);
    doc.set(
        "programs",
        Json::Arr(reports.iter().map(|r| r.json.clone()).collect()),
    );
    doc
}

fn check_thresholds(reports: &[ProgramReport], path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_report: cannot read thresholds file {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    type Entry = (u64, Option<u64>, Option<u64>, Option<u64>);
    let mut thresholds: BTreeMap<String, Entry> = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(name), Some(limit)) = (parts.next(), parts.next()) else {
            eprintln!("bench_report: {path}:{}: malformed line `{line}`", lineno + 1);
            return ExitCode::FAILURE;
        };
        let Ok(limit) = limit.parse::<u64>() else {
            eprintln!(
                "bench_report: {path}:{}: bad permille value `{limit}`",
                lineno + 1
            );
            return ExitCode::FAILURE;
        };
        let floor = match parts.next() {
            Some(raw) => match raw.parse::<u64>() {
                Ok(v) => Some(v),
                Err(_) => {
                    eprintln!(
                        "bench_report: {path}:{}: bad eliminated-check floor `{raw}`",
                        lineno + 1
                    );
                    return ExitCode::FAILURE;
                }
            },
            None => None,
        };
        let mem_floor = match parts.next() {
            Some(raw) => match raw.parse::<u64>() {
                Ok(v) => Some(v),
                Err(_) => {
                    eprintln!(
                        "bench_report: {path}:{}: bad memory-removal floor `{raw}`",
                        lineno + 1
                    );
                    return ExitCode::FAILURE;
                }
            },
            None => None,
        };
        let steps_ceiling = match parts.next() {
            Some(raw) => match raw.parse::<u64>() {
                Ok(v) => Some(v),
                Err(_) => {
                    eprintln!(
                        "bench_report: {path}:{}: bad vm-steps ceiling `{raw}`",
                        lineno + 1
                    );
                    return ExitCode::FAILURE;
                }
            },
            None => None,
        };
        thresholds.insert(name.to_string(), (limit, floor, mem_floor, steps_ceiling));
    }

    let mut failures = 0usize;
    for r in reports {
        let mem_removed = r.loads_forwarded + r.stores_eliminated;
        match thresholds.get(r.name) {
            Some(&(limit, floor, mem_floor, steps_ceiling)) => {
                let ratio_ok = r.ratio_permille <= limit;
                let checks_ok = floor.is_none_or(|f| r.checks_eliminated >= f);
                let mem_ok = mem_floor.is_none_or(|f| mem_removed >= f);
                let steps_ok = steps_ceiling.is_none_or(|c| r.steps <= c);
                if !ratio_ok {
                    eprintln!(
                        "FAIL {:<14} encoded/class ratio {} permille exceeds threshold {}",
                        r.name, r.ratio_permille, limit
                    );
                    failures += 1;
                }
                if !checks_ok {
                    eprintln!(
                        "FAIL {:<14} eliminated {} checks, below floor {}",
                        r.name,
                        r.checks_eliminated,
                        floor.unwrap_or(0)
                    );
                    failures += 1;
                }
                if !mem_ok {
                    eprintln!(
                        "FAIL {:<14} removed {} memory ops (loadfwd+dse), below floor {}",
                        r.name,
                        mem_removed,
                        mem_floor.unwrap_or(0)
                    );
                    failures += 1;
                }
                if !steps_ok {
                    eprintln!(
                        "FAIL {:<14} executed {} vm steps, above ceiling {}",
                        r.name,
                        r.steps,
                        steps_ceiling.unwrap_or(0)
                    );
                    failures += 1;
                }
                if ratio_ok && checks_ok && mem_ok && steps_ok {
                    println!(
                        "ok   {:<14} ratio {} permille (threshold {}), {} checks eliminated (floor {}), {} mem ops removed (floor {}), {} vm steps (ceiling {})",
                        r.name,
                        r.ratio_permille,
                        limit,
                        r.checks_eliminated,
                        floor.map_or_else(|| "none".into(), |f| f.to_string()),
                        mem_removed,
                        mem_floor.map_or_else(|| "none".into(), |f| f.to_string()),
                        r.steps,
                        steps_ceiling.map_or_else(|| "none".into(), |c| c.to_string())
                    );
                }
            }
            None => {
                eprintln!(
                    "warn {:<14} no threshold entry (current ratio {} permille, {} checks eliminated, {} mem ops removed)",
                    r.name, r.ratio_permille, r.checks_eliminated, mem_removed
                );
            }
        }
    }
    if failures > 0 {
        eprintln!("bench_report: {failures} program(s) regressed past their thresholds");
        ExitCode::FAILURE
    } else {
        println!("bench_report: all {} programs within thresholds", reports.len());
        ExitCode::SUCCESS
    }
}
