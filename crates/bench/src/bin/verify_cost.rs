//! §9's verification-cost comparison: JVM-style bytecode verification
//! needs an iterative dataflow analysis, while SafeTSA verification is
//! a single linear pass ("simple counters holding the numbers of
//! defined values", §9). This harness reports the work both verifiers
//! perform and wall-clock timings over the corpus.

use safetsa_bench::{build_pipeline, corpus};
use safetsa_codec::{decode_and_verify, HostEnv};
use std::time::Instant;

fn main() {
    let host = HostEnv::standard();
    println!(
        "{:<14} {:>10} {:>10} {:>12} {:>12} {:>12}",
        "Program", "tsa-ops", "jvm-iters", "tsa-verify", "jvm-verify", "tsa-decode"
    );
    let mut t_tsa = 0.0;
    let mut t_jvm = 0.0;
    for entry in corpus() {
        let pl = build_pipeline(&entry);
        // SafeTSA structural verification.
        let t0 = Instant::now();
        let stats = safetsa_core::verify::verify_module(&pl.module).expect("verifies");
        let tsa_time = t0.elapsed().as_secs_f64() * 1e6;
        // JVM dataflow verification.
        let mut bcode = safetsa_baseline::compile::compile_program(&pl.prog);
        let t1 = Instant::now();
        let bstats =
            safetsa_baseline::verify::verify_program(&pl.prog, &mut bcode).expect("verifies");
        let jvm_time = t1.elapsed().as_secs_f64() * 1e6;
        // Decode + verify (the full consumer-side cost for SafeTSA).
        let t2 = Instant::now();
        decode_and_verify(&pl.bytes, &host).expect("decodes");
        let dec_time = t2.elapsed().as_secs_f64() * 1e6;
        println!(
            "{:<14} {:>10} {:>10} {:>10.0}us {:>10.0}us {:>10.0}us",
            entry.name, stats.operands, bstats.iterations, tsa_time, jvm_time, dec_time
        );
        t_tsa += tsa_time;
        t_jvm += jvm_time;
    }
    println!();
    println!(
        "total: SafeTSA verification {:.0}us, JVM dataflow verification {:.0}us",
        t_tsa, t_jvm
    );
}
