//! Encoder/decoder throughput over the corpus (the §7 externalization).

use criterion::{criterion_group, criterion_main, Criterion};
use safetsa_bench::{build_pipeline, corpus};
use safetsa_codec::{decode_module, encode_module, HostEnv};
use std::hint::black_box;

fn bench_codec(c: &mut Criterion) {
    let pipelines: Vec<_> = corpus().into_iter().map(|e| build_pipeline(&e)).collect();
    let host = HostEnv::standard();
    let total_bytes: usize = pipelines.iter().map(|p| p.bytes.len()).sum();

    let mut g = c.benchmark_group("codec");
    g.sample_size(20);
    g.throughput(criterion::Throughput::Bytes(total_bytes as u64));
    g.bench_function("encode", |b| {
        b.iter(|| {
            for pl in &pipelines {
                black_box(encode_module(&pl.module).unwrap());
            }
        })
    });
    g.bench_function("decode", |b| {
        b.iter(|| {
            for pl in &pipelines {
                black_box(decode_module(&pl.bytes, &host).unwrap());
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
