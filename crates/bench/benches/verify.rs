//! §9's verification-cost comparison as a Criterion benchmark:
//! SafeTSA's linear structural verification (and full decode+verify)
//! vs the JVM-style iterative dataflow verification the baseline needs.

use criterion::{criterion_group, criterion_main, Criterion};
use safetsa_bench::{build_pipeline, corpus};
use safetsa_codec::{decode_and_verify, HostEnv};
use std::hint::black_box;

fn bench_verify(c: &mut Criterion) {
    let pipelines: Vec<_> = corpus().into_iter().map(|e| build_pipeline(&e)).collect();
    let host = HostEnv::standard();

    let mut g = c.benchmark_group("verify");
    g.sample_size(20);
    g.bench_function("safetsa_structural", |b| {
        b.iter(|| {
            for pl in &pipelines {
                black_box(safetsa_core::verify::verify_module(&pl.module).unwrap());
            }
        })
    });
    g.bench_function("safetsa_decode_and_verify", |b| {
        b.iter(|| {
            for pl in &pipelines {
                black_box(decode_and_verify(&pl.bytes, &host).unwrap());
            }
        })
    });
    g.bench_function("jvm_dataflow", |b| {
        b.iter(|| {
            for pl in &pipelines {
                let mut code = safetsa_baseline::compile::compile_program(&pl.prog);
                black_box(safetsa_baseline::verify::verify_program(&pl.prog, &mut code).unwrap());
            }
        })
    });
    g.bench_function("jvm_dataflow_verify_only", |b| {
        // Pre-compiled code, measuring only the dataflow analysis.
        let codes: Vec<_> = pipelines
            .iter()
            .map(|pl| {
                let mut code = safetsa_baseline::compile::compile_program(&pl.prog);
                safetsa_baseline::verify::verify_program(&pl.prog, &mut code).unwrap();
                (pl, code)
            })
            .collect();
        b.iter(|| {
            for (pl, code) in &codes {
                for (&(ci, mi), body) in &code.methods {
                    black_box(
                        safetsa_baseline::verify::verify_method(&pl.prog, ci, mi, body).unwrap(),
                    );
                }
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_verify);
criterion_main!(benches);
