//! Dominator-algorithm ablation: the iterative Cooper–Harvey–Kennedy
//! algorithm (our default) vs Lengauer–Tarjan (the paper's citation).

use criterion::{criterion_group, criterion_main, Criterion};
use safetsa_bench::{build_pipeline, corpus};
use safetsa_core::cfg::Cfg;
use safetsa_core::dom::DomTree;
use std::hint::black_box;

fn bench_dom(c: &mut Criterion) {
    let cfgs: Vec<Cfg> = corpus()
        .into_iter()
        .flat_map(|e| {
            let pl = build_pipeline(&e);
            pl.module
                .functions
                .iter()
                .map(|f| Cfg::build(f).unwrap())
                .collect::<Vec<_>>()
        })
        .collect();

    let mut g = c.benchmark_group("dominators");
    g.bench_function("cooper_harvey_kennedy", |b| {
        b.iter(|| {
            for cfg in &cfgs {
                black_box(DomTree::build(cfg));
            }
        })
    });
    g.bench_function("lengauer_tarjan", |b| {
        b.iter(|| {
            for cfg in &cfgs {
                black_box(DomTree::build_lengauer_tarjan(cfg));
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_dom);
criterion_main!(benches);
