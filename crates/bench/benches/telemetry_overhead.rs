//! Smoke-checks the telemetry zero-overhead guarantee: the producer
//! pipeline run through the instrumented entry points with a *disabled*
//! registry should cost the same as the plain entry points, because
//! every recording call early-returns before touching a clock or a map.
//! The enabled variant is measured alongside for scale.

use criterion::{criterion_group, criterion_main, Criterion};
use safetsa_bench::corpus;
use safetsa_opt::Passes;
use safetsa_telemetry::Telemetry;
use std::hint::black_box;

fn pipeline_plain(source: &str) -> Vec<u8> {
    let prog = safetsa_frontend::compile(source).unwrap();
    let mut module = safetsa_ssa::lower_program(&prog).unwrap().module;
    safetsa_opt::optimize_module(&mut module);
    safetsa_codec::encode_module(&module).unwrap()
}

fn pipeline_traced(source: &str, tm: &Telemetry) -> Vec<u8> {
    // Same stage spans `Pipeline` opens, so a tracing registry exercises
    // the span plumbing and a disabled one measures its branch cost.
    tm.span("compile", || {
        let prog = tm
            .span("frontend", || safetsa_frontend::compile_sources(&[source], tm))
            .unwrap();
        let mut module = tm
            .span("lower", || safetsa_ssa::construct(&prog, tm))
            .unwrap()
            .module;
        tm.span("optimize", || safetsa_opt::optimize(&mut module, Passes::ALL, tm));
        tm.span("encode", || safetsa_codec::encode(&module, tm)).unwrap()
    })
}

/// The zero-overhead claim, stated as a hard precondition rather than
/// a timing: a disabled registry records nothing, and a *tracing*
/// registry records spans without adding a single metrics counter —
/// so the disabled-vs-plain timing comparison below actually measures
/// branch cost, not accidental recording.
fn assert_zero_counter_preconditions(source: &str) {
    let tm = Telemetry::disabled();
    let _ = pipeline_traced(source, &tm);
    assert_eq!(
        tm.export_flat(),
        "",
        "disabled registry must record no counters"
    );
    assert!(tm.trace_spans().is_empty(), "disabled registry must not trace");
    let with_spans = Telemetry::with_trace();
    let _ = pipeline_traced(source, &with_spans);
    let plain = Telemetry::enabled();
    let _ = pipeline_traced(source, &plain);
    // Compare everything outside the wall-clock plane: counter lines
    // (`c name value`) exactly, timing/histogram lines by key only.
    let shape = |tm: &Telemetry| {
        let flat = tm.export_flat();
        let mut lines: Vec<String> = flat
            .lines()
            .map(|l| {
                if l.starts_with("c ") {
                    l.to_string()
                } else {
                    l.split_whitespace().take(2).collect::<Vec<_>>().join(" ")
                }
            })
            .collect();
        lines.sort_unstable();
        lines
    };
    assert_eq!(
        shape(&with_spans),
        shape(&plain),
        "tracing must not perturb the metrics plane"
    );
    assert!(
        !with_spans.trace_spans().is_empty(),
        "tracing registry must have recorded stage spans"
    );
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    let entries = corpus();
    let entry = entries
        .iter()
        .find(|e| e.name == "QuickSort")
        .unwrap_or(&entries[0]);
    assert_zero_counter_preconditions(entry.source);

    let mut g = c.benchmark_group("telemetry_overhead");
    g.sample_size(30);
    g.bench_function("pipeline_plain", |b| {
        b.iter(|| black_box(pipeline_plain(entry.source)))
    });
    g.bench_function("pipeline_telemetry_disabled", |b| {
        let tm = Telemetry::disabled();
        b.iter(|| black_box(pipeline_traced(entry.source, &tm)))
    });
    g.bench_function("pipeline_telemetry_enabled", |b| {
        b.iter(|| {
            let tm = Telemetry::enabled();
            black_box(pipeline_traced(entry.source, &tm))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);
