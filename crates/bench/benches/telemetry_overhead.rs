//! Smoke-checks the telemetry zero-overhead guarantee: the producer
//! pipeline run through the instrumented entry points with a *disabled*
//! registry should cost the same as the plain entry points, because
//! every recording call early-returns before touching a clock or a map.
//! The enabled variant is measured alongside for scale.

use criterion::{criterion_group, criterion_main, Criterion};
use safetsa_bench::corpus;
use safetsa_opt::Passes;
use safetsa_telemetry::Telemetry;
use std::hint::black_box;

fn pipeline_plain(source: &str) -> Vec<u8> {
    let prog = safetsa_frontend::compile(source).unwrap();
    let mut module = safetsa_ssa::lower_program(&prog).unwrap().module;
    safetsa_opt::optimize_module(&mut module);
    safetsa_codec::encode_module(&module).unwrap()
}

fn pipeline_traced(source: &str, tm: &Telemetry) -> Vec<u8> {
    let prog = safetsa_frontend::compile_sources(&[source], tm).unwrap();
    let mut module = safetsa_ssa::construct(&prog, tm).unwrap().module;
    safetsa_opt::optimize(&mut module, Passes::ALL, tm);
    safetsa_codec::encode(&module, tm).unwrap()
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    let entries = corpus();
    let entry = entries
        .iter()
        .find(|e| e.name == "QuickSort")
        .unwrap_or(&entries[0]);

    let mut g = c.benchmark_group("telemetry_overhead");
    g.sample_size(30);
    g.bench_function("pipeline_plain", |b| {
        b.iter(|| black_box(pipeline_plain(entry.source)))
    });
    g.bench_function("pipeline_telemetry_disabled", |b| {
        let tm = Telemetry::disabled();
        b.iter(|| black_box(pipeline_traced(entry.source, &tm)))
    });
    g.bench_function("pipeline_telemetry_enabled", |b| {
        b.iter(|| {
            let tm = Telemetry::enabled();
            black_box(pipeline_traced(entry.source, &tm))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);
