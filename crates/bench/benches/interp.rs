//! Execution-engine comparison: the SafeTSA CST-walking interpreter vs
//! the baseline operand-stack interpreter, unoptimized and optimized.
//! (The paper promises competitive runtimes from SafeTSA consumers; the
//! reproduction compares interpreters, not JITs — see DESIGN.md.)

use criterion::{criterion_group, criterion_main, Criterion};
use safetsa_bench::{build_pipeline, corpus};
use std::hint::black_box;

fn bench_interp(c: &mut Criterion) {
    // A fast-running subset keeps the benchmark wall-clock reasonable.
    let subset = ["QuickSort", "Crc32", "Matrix", "HashTable", "BitSieve"];
    let entries: Vec<_> = corpus()
        .into_iter()
        .filter(|e| subset.contains(&e.name))
        .collect();
    let pipelines: Vec<_> = entries.iter().map(|e| (e, build_pipeline(e))).collect();

    let mut g = c.benchmark_group("interp");
    g.sample_size(10);
    g.bench_function("safetsa", |b| {
        b.iter(|| {
            for (e, pl) in &pipelines {
                let mut vm = safetsa_vm::Vm::load(&pl.module).unwrap();
                black_box(vm.run_entry(e.entry).unwrap());
            }
        })
    });
    g.bench_function("safetsa_optimized", |b| {
        b.iter(|| {
            for (e, pl) in &pipelines {
                let mut vm = safetsa_vm::Vm::load(&pl.optimized).unwrap();
                black_box(vm.run_entry(e.entry).unwrap());
            }
        })
    });
    g.bench_function("baseline_stack", |b| {
        b.iter(|| {
            for (e, pl) in &pipelines {
                let mut vm = safetsa_baseline::interp::Bvm::load(&pl.prog, &pl.bcode);
                black_box(vm.run_entry(e.entry).unwrap());
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_interp);
criterion_main!(benches);
