//! Producer-side stage costs: front-end, SSA construction, optimization,
//! and encoding over the whole corpus.

use criterion::{criterion_group, criterion_main, Criterion};
use safetsa_bench::corpus;
use safetsa_codec::encode_module;
use safetsa_opt::optimize_module;
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let entries = corpus();
    let progs: Vec<_> = entries
        .iter()
        .map(|e| safetsa_frontend::compile(e.source).unwrap())
        .collect();
    let modules: Vec<_> = progs
        .iter()
        .map(|p| safetsa_ssa::lower_program(p).unwrap().module)
        .collect();

    let mut g = c.benchmark_group("pipeline");
    g.sample_size(20);
    g.bench_function("frontend", |b| {
        b.iter(|| {
            for e in &entries {
                black_box(safetsa_frontend::compile(e.source).unwrap());
            }
        })
    });
    g.bench_function("ssa_construction", |b| {
        b.iter(|| {
            for p in &progs {
                black_box(safetsa_ssa::lower_program(p).unwrap());
            }
        })
    });
    g.bench_function("optimize", |b| {
        b.iter(|| {
            for m in &modules {
                let mut m = m.clone();
                black_box(optimize_module(&mut m));
            }
        })
    });
    g.bench_function("encode", |b| {
        b.iter(|| {
            for m in &modules {
                black_box(encode_module(m).unwrap());
            }
        })
    });
    g.bench_function("baseline_compile", |b| {
        b.iter(|| {
            for p in &progs {
                black_box(safetsa_baseline::compile::compile_program(p));
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
