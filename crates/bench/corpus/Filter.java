// Separable box filter over a procedurally generated raster.
// Memory-optimization workload: local scratch buffers that never
// escape (facts survive calls), a gradient plane superseded by the
// smoothed output (dead stores), and a sentinel reset pattern.
class Filter {
    static int checksum = 0;

    static int[] render(int w) {
        int[] img = new int[w];
        int seed = 42;
        for (int i = 0; i < w; i++) {
            seed = seed * 1103515245 + 12345;
            img[i] = (seed >>> 16) & 0xFF;
        }
        return img;
    }

    static int pass(int[] img) {
        int[] tmp = new int[img.length];
        int[] edges = new int[img.length];
        int acc = 0;
        for (int i = 1; i < img.length - 1; i++) {
            edges[i] = img[i + 1] - img[i - 1];
            tmp[i] = (img[i - 1] + img[i] + img[i + 1]) / 3;
            acc = acc + tmp[i];
        }
        for (int i = 1; i < img.length - 1; i++) img[i] = tmp[i];
        return acc;
    }

    static int main() {
        checksum = -1;
        checksum = 0;
        int[] img = render(512);
        int[] hist = new int[4];
        hist[0] = img[0];
        int lo = hist[0];
        checksum = checksum + pass(img);
        int hi = hist[0];
        for (int round = 0; round < 8; round++) {
            checksum = checksum + pass(img);
        }
        Sys.println(lo + hi);
        Sys.println(checksum);
        return checksum;
    }
}
