// Grid path search with labeled break/continue (multi-level exits
// exercise the CST Break-depth machinery end to end).
class Pathfind {
    static int[][] makeGrid(int n, int seed) {
        int[][] g = new int[n][];
        int s = seed;
        for (int y = 0; y < n; y++) {
            g[y] = new int[n];
            for (int x = 0; x < n; x++) {
                s = s * 1103515245 + 12345;
                g[y][x] = (s >>> 8) % 10;
            }
        }
        return g;
    }

    // Finds the first 2x2 block whose sum exceeds the threshold.
    static int findBlock(int[][] g, int threshold) {
        int n = g.length;
        scan:
        for (int y = 0; y + 1 < n; y++) {
            for (int x = 0; x + 1 < n; x++) {
                int sum = g[y][x] + g[y][x + 1] + g[y + 1][x] + g[y + 1][x + 1];
                if (sum > threshold) {
                    return y * 100 + x;
                }
                if (g[y][x] == 0) continue scan; // skip rows starting dead
                if (x > n / 2 && sum < threshold / 4) break scan;
            }
        }
        return -1;
    }

    // Greedy path: walk right/down maximizing cell values; labeled
    // continue restarts from the best row when stuck.
    static int greedy(int[][] g) {
        int n = g.length;
        int x = 0; int y = 0;
        int collected = 0;
        int restarts = 0;
        walk:
        while (y < n - 1 || x < n - 1) {
            collected += g[y][x];
            if (x == n - 1) { y++; continue; }
            if (y == n - 1) { x++; continue; }
            if (g[y][x + 1] >= g[y + 1][x]) { x++; } else { y++; }
            if (g[y][x] == 0 && restarts < 3) {
                restarts++;
                x = 0;
                continue walk;
            }
        }
        return collected + g[n - 1][n - 1] + restarts * 1000;
    }

    static int main() {
        int[][] g = makeGrid(12, 77);
        int block = findBlock(g, 28);
        int path = greedy(g);
        Sys.println(block);
        Sys.println(path);
        return block + path;
    }
}
