// Integer matrix algebra: multiply, transpose, power (nested loops).
class Matrix {
    int n;
    int[][] m;

    Matrix(int n) {
        this.n = n;
        m = new int[n][];
        for (int i = 0; i < n; i++) m[i] = new int[n];
    }

    static Matrix identity(int n) {
        Matrix r = new Matrix(n);
        for (int i = 0; i < n; i++) r.m[i][i] = 1;
        return r;
    }

    Matrix mul(Matrix o) {
        Matrix r = new Matrix(n);
        for (int i = 0; i < n; i++) {
            for (int k = 0; k < n; k++) {
                int a = m[i][k];
                if (a == 0) continue;
                for (int j = 0; j < n; j++) {
                    r.m[i][j] += a * o.m[k][j];
                }
            }
        }
        return r;
    }

    Matrix transpose() {
        Matrix r = new Matrix(n);
        for (int i = 0; i < n; i++)
            for (int j = 0; j < n; j++) r.m[j][i] = m[i][j];
        return r;
    }

    Matrix pow(int e) {
        Matrix base = this;
        Matrix acc = identity(n);
        while (e > 0) {
            if ((e & 1) == 1) acc = acc.mul(base);
            base = base.mul(base);
            e >>= 1;
        }
        return acc;
    }

    int trace() {
        int t = 0;
        for (int i = 0; i < n; i++) t += m[i][i];
        return t;
    }

    static int main() {
        // Fibonacci via matrix power (mod arithmetic keeps ints small).
        Matrix fib = new Matrix(2);
        fib.m[0][0] = 1; fib.m[0][1] = 1; fib.m[1][0] = 1;
        Matrix f20 = fib.pow(20);
        Sys.println(f20.m[0][1]);
        Matrix a = new Matrix(8);
        for (int i = 0; i < 8; i++)
            for (int j = 0; j < 8; j++) a.m[i][j] = (i * 3 + j * 7) % 11;
        Matrix b = a.mul(a.transpose());
        Sys.println(b.trace());
        return f20.m[0][1] + b.trace();
    }
}
