// A lexical scanner in the style of sun.tools.java.Scanner: character
// classification, token loops, string handling.
class Token {
    int kind;     // 0 eof, 1 ident, 2 number, 3 op, 4 string
    int intVal;
    String text;
    Token(int kind, int intVal, String text) {
        this.kind = kind;
        this.intVal = intVal;
        this.text = text;
    }
}

class Scanner {
    String src;
    int pos;
    int line;

    Scanner(String src) { this.src = src; pos = 0; line = 1; }

    boolean isDigit(char c) { return c >= '0' && c <= '9'; }
    boolean isAlpha(char c) {
        return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_';
    }

    char peek() { return pos < src.length() ? src.charAt(pos) : (char) 0; }

    Token next() {
        while (pos < src.length()) {
            char c = src.charAt(pos);
            if (c == ' ' || c == '\t') { pos++; }
            else if (c == '\n') { pos++; line++; }
            else break;
        }
        if (pos >= src.length()) return new Token(0, line, "");
        char c = src.charAt(pos);
        if (isDigit(c)) {
            int v = 0;
            int start = pos;
            while (pos < src.length() && isDigit(src.charAt(pos))) {
                v = v * 10 + (src.charAt(pos) - '0');
                pos++;
            }
            return new Token(2, v, src.substring(start, pos));
        }
        if (isAlpha(c)) {
            int start = pos;
            while (pos < src.length() && (isAlpha(src.charAt(pos)) || isDigit(src.charAt(pos)))) pos++;
            return new Token(1, 0, src.substring(start, pos));
        }
        if (c == '"') {
            int start = pos + 1;
            pos++;
            while (pos < src.length() && src.charAt(pos) != '"') pos++;
            Token t = new Token(4, 0, src.substring(start, pos));
            pos++;
            return t;
        }
        pos++;
        return new Token(3, c, "");
    }

    static int main() {
        String program =
            "x1 = alpha + 42 * beta;\n" +
            "if (x1 >= 10) { print(\"big\"); }\n" +
            "while (count < limit) count = count + 1;\n";
        Scanner s = new Scanner(program);
        int idents = 0; int numbers = 0; int ops = 0; int strings = 0;
        int sum = 0;
        while (true) {
            Token t = s.next();
            if (t.kind == 0) break;
            if (t.kind == 1) idents++;
            else if (t.kind == 2) { numbers++; sum += t.intVal; }
            else if (t.kind == 3) ops++;
            else strings++;
        }
        Sys.println(idents);
        Sys.println(numbers);
        Sys.println(ops);
        Sys.println(strings);
        Sys.println(sum);
        Sys.println(s.line);
        return idents * 1000 + numbers * 100 + ops + strings * 10 + sum;
    }
}
