// A recursive-descent expression parser building a class-based AST with
// virtual evaluation (the paper's sun.tools.javac.Parser category:
// dispatch-heavy, allocation-heavy front-end code).
class Node {
    int eval(int x) { return 0; }
    int size() { return 1; }
}
class Num extends Node {
    int v;
    Num(int v) { this.v = v; }
    int eval(int x) { return v; }
}
class Var extends Node {
    int eval(int x) { return x; }
}
class Bin extends Node {
    char op;
    Node l; Node r;
    Bin(char op, Node l, Node r) { this.op = op; this.l = l; this.r = r; }
    int eval(int x) {
        int a = l.eval(x);
        int b = r.eval(x);
        if (op == '+') return a + b;
        if (op == '-') return a - b;
        if (op == '*') return a * b;
        try { return a / b; } catch (ArithmeticException e) { return 0; }
    }
    int size() { return 1 + l.size() + r.size(); }
}

class Parser {
    String src;
    int pos;

    Parser(String src) { this.src = src; pos = 0; }

    char peek() { return pos < src.length() ? src.charAt(pos) : (char) 0; }
    void skip() { while (peek() == ' ') pos++; }

    Node expr() {
        Node n = term();
        skip();
        while (peek() == '+' || peek() == '-') {
            char op = peek(); pos++;
            n = new Bin(op, n, term());
            skip();
        }
        return n;
    }

    Node term() {
        Node n = factor();
        skip();
        while (peek() == '*' || peek() == '/') {
            char op = peek(); pos++;
            n = new Bin(op, n, factor());
            skip();
        }
        return n;
    }

    Node factor() {
        skip();
        char c = peek();
        if (c == '(') {
            pos++;
            Node n = expr();
            skip();
            pos++; // ')'
            return n;
        }
        if (c == 'x') { pos++; return new Var(); }
        int v = 0;
        while (peek() >= '0' && peek() <= '9') { v = v * 10 + (peek() - '0'); pos++; }
        return new Num(v);
    }

    static int main() {
        Parser p = new Parser("2 * (x + 3) - (x * x) / 4 + 100 / (x - x)");
        Node ast = p.expr();
        int total = 0;
        for (int x = 0; x <= 10; x++) total += ast.eval(x);
        Sys.println(ast.size());
        Sys.println(total);
        return ast.size() * 10000 + total;
    }
}
