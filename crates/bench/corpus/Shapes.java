// Class hierarchy with virtual dispatch and checked downcasts
// (instanceof-and-cast patterns that exercise upcast/downcast).
class Shape {
    double area() { return 0.0; }
    double perimeter() { return 0.0; }
    String name() { return "shape"; }
}
class Circle extends Shape {
    double r;
    Circle(double r) { this.r = r; }
    double area() { return 3.14159265358979 * r * r; }
    double perimeter() { return 2.0 * 3.14159265358979 * r; }
    String name() { return "circle"; }
}
class Rect extends Shape {
    double w; double h;
    Rect(double w, double h) { this.w = w; this.h = h; }
    double area() { return w * h; }
    double perimeter() { return 2.0 * (w + h); }
    String name() { return "rect"; }
}
class Square extends Rect {
    Square(double s) { super(s, s); }
    String name() { return "square"; }
}

class Shapes {
    static int main() {
        Shape[] shapes = new Shape[9];
        for (int i = 0; i < shapes.length; i++) {
            int k = i % 3;
            if (k == 0) shapes[i] = new Circle(1.0 + i);
            else if (k == 1) shapes[i] = new Rect(2.0, 1.0 + i);
            else shapes[i] = new Square(1.5 + i);
        }
        double totalArea = 0.0;
        double rectPerimeter = 0.0;
        int squares = 0;
        for (int i = 0; i < shapes.length; i++) {
            Shape s = shapes[i];
            totalArea += s.area();
            if (s instanceof Rect) {
                Rect r = (Rect) s;
                rectPerimeter += r.perimeter();
            }
            if (s instanceof Square) squares++;
        }
        Sys.println((int) totalArea);
        Sys.println((int) rectPerimeter);
        Sys.println(squares);
        Sys.println(shapes[0].name());
        return (int) totalArea + squares;
    }
}
