// Object-oriented transactional workload: accounts, polymorphic fees,
// exception-signalled overdrafts.
class InsufficientFunds extends Exception {
    long missing;
    InsufficientFunds(long missing) { super("overdraft"); this.missing = missing; }
}

class Account {
    int id;
    long balance;
    Account(int id, long opening) { this.id = id; balance = opening; }
    long fee(long amount) { return 0; }
    void withdraw(long amount) {
        long total = amount + fee(amount);
        if (total > balance) throw new InsufficientFunds(total - balance);
        balance -= total;
    }
    void deposit(long amount) { balance += amount; }
}
class Checking extends Account {
    Checking(int id, long opening) { super(id, opening); }
    long fee(long amount) { return 25; }
}
class Savings extends Account {
    Savings(int id, long opening) { super(id, opening); }
    long fee(long amount) { return amount / 100; }
}

class Bank {
    Account[] accounts;
    int n;
    long feeIncome;

    Bank(int cap) { accounts = new Account[cap]; }

    Account open(boolean checking, long amount) {
        Account a;
        if (checking) a = new Checking(n, amount);
        else a = new Savings(n, amount);
        accounts[n] = a;
        n++;
        return a;
    }

    long transfer(int from, int to, long amount) {
        Account src = accounts[from];
        Account dst = accounts[to];
        long before = src.balance;
        try {
            src.withdraw(amount);
            dst.deposit(amount);
            feeIncome += before - src.balance - amount;
            return amount;
        } catch (InsufficientFunds e) {
            return -e.missing;
        }
    }

    long total() {
        long t = 0;
        for (int i = 0; i < n; i++) t += accounts[i].balance;
        return t;
    }

    static int main() {
        Bank bank = new Bank(32);
        for (int i = 0; i < 20; i++) bank.open(i % 2 == 0, 10000 + i * 500);
        int denied = 0;
        long moved = 0;
        int seed = 5;
        for (int t = 0; t < 200; t++) {
            seed = seed * 1103515245 + 12345;
            int from = (seed >>> 8) % 20;
            seed = seed * 1103515245 + 12345;
            int to = (seed >>> 8) % 20;
            if (from == to) continue;
            long amount = 100 + (seed >>> 16) % 5000;
            long r = bank.transfer(from, to, amount);
            if (r < 0) denied++; else moved += r;
        }
        Sys.println(bank.total() + bank.feeIncome);
        Sys.println(denied);
        Sys.println(moved);
        return denied + (int) (moved % 10000);
    }
}
