// Scaled fixed-point arithmetic in the style of sun.math.BigDecimal.
class Dec {
    long unscaled;
    int scale;

    Dec(long unscaled, int scale) {
        this.unscaled = unscaled;
        this.scale = scale;
    }

    static long pow10(int n) {
        long p = 1;
        for (int i = 0; i < n; i++) p *= 10;
        return p;
    }

    static Dec rescale(Dec d, int newScale) {
        if (newScale == d.scale) return d;
        if (newScale > d.scale) return new Dec(d.unscaled * pow10(newScale - d.scale), newScale);
        long div = pow10(d.scale - newScale);
        long q = d.unscaled / div;
        long r = d.unscaled % div;
        // round half up
        if (Math.abs(r) * 2 >= div) q += d.unscaled >= 0 ? 1 : -1;
        return new Dec(q, newScale);
    }

    static Dec add(Dec a, Dec b) {
        int s = Math.max(a.scale, b.scale);
        return new Dec(rescale(a, s).unscaled + rescale(b, s).unscaled, s);
    }

    static Dec mul(Dec a, Dec b) {
        return new Dec(a.unscaled * b.unscaled, a.scale + b.scale);
    }

    static Dec div(Dec a, Dec b, int scale) {
        long num = a.unscaled * pow10(scale + b.scale - a.scale);
        return new Dec(num / b.unscaled, scale);
    }

    int cmp(Dec o) {
        int s = Math.max(scale, o.scale);
        long x = rescale(this, s).unscaled;
        long y = rescale(o, s).unscaled;
        return x < y ? -1 : x > y ? 1 : 0;
    }

    static int main() {
        // compound interest: 1000.00 at 3.25% for 12 periods
        Dec balance = new Dec(100000, 2);
        Dec rate = new Dec(325, 4);
        Dec one = new Dec(1, 0);
        Dec factor = add(one, rate);
        for (int i = 0; i < 12; i++) {
            balance = rescale(mul(balance, factor), 2);
        }
        Sys.println(balance.unscaled);
        Dec third = div(new Dec(1, 0), new Dec(3, 0), 6);
        Sys.println(third.unscaled);
        int c = balance.cmp(new Dec(140000, 2));
        Sys.println(c);
        return (int) (balance.unscaled % 100000) + c;
    }
}
