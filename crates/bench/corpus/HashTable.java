// Open-addressing hash table with tombstones (field/branch heavy).
class HashTable {
    int[] keys;
    int[] vals;
    boolean[] used;
    int count;

    HashTable(int cap) {
        keys = new int[cap];
        vals = new int[cap];
        used = new boolean[cap];
    }

    int slot(int key) {
        int h = key * -1640531527; // Fibonacci hashing
        h ^= h >>> 16;
        int mask = keys.length - 1;
        int i = h & mask;
        while (used[i] && keys[i] != key) i = (i + 1) & mask;
        return i;
    }

    void put(int key, int val) {
        int i = slot(key);
        if (!used[i]) { used[i] = true; keys[i] = key; count++; }
        vals[i] = val;
    }

    int get(int key, int dflt) {
        int i = slot(key);
        return used[i] ? vals[i] : dflt;
    }

    static int main() {
        HashTable t = new HashTable(4096);
        for (int i = 0; i < 1500; i++) t.put(i * 7919, i);
        int hits = 0; int misses = 0; int sum = 0;
        for (int i = 0; i < 3000; i++) {
            int v = t.get(i * 7919, -1);
            if (v >= 0) { hits++; sum += v; } else misses++;
        }
        Sys.println(t.count);
        Sys.println(hits);
        Sys.println(misses);
        Sys.println(sum);
        return hits * 10 + misses + sum % 1000;
    }
}
