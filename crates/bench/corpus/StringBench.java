// String manipulation: concatenation, searching, comparison (heavy use
// of the imported String class).
class StringBench {
    static String repeat(String s, int n) {
        String r = "";
        for (int i = 0; i < n; i++) r = r + s;
        return r;
    }

    static int countChar(String s, char c) {
        int n = 0;
        for (int i = 0; i < s.length(); i++) if (s.charAt(i) == c) n++;
        return n;
    }

    static boolean isPalindrome(String s) {
        int i = 0; int j = s.length() - 1;
        while (i < j) {
            if (s.charAt(i) != s.charAt(j)) return false;
            i++; j--;
        }
        return true;
    }

    static int main() {
        String base = repeat("abcab", 20);
        Sys.println(base.length());
        Sys.println(countChar(base, 'a'));
        Sys.println(base.indexOf('c'));
        String mid = base.substring(40, 60);
        Sys.println(mid);
        Sys.println(isPalindrome("racecar"));
        Sys.println(isPalindrome("racecars"));
        String num = "" + 123 + '.' + 456L + '!' + 2.5;
        Sys.println(num);
        int cmp = "apple".compareTo("banana");
        Sys.println(cmp);
        return base.length() + countChar(base, 'a') * (cmp < 0 ? 1 : 2);
    }
}
