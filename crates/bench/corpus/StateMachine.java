// A table-driven state machine interpreter (switch-free dispatch over
// data): dense control flow over small integers.
class StateMachine {
    int[][] delta;
    boolean[] accept;

    StateMachine() {
        // accepts strings over {a,b} with an even number of 'a' and
        // at least one 'b': 4 states x 2 symbols
        delta = new int[4][];
        for (int s = 0; s < 4; s++) delta[s] = new int[2];
        // state encoding: bit0 = odd a's, bit1 = seen b
        for (int s = 0; s < 4; s++) {
            delta[s][0] = s ^ 1;       // 'a' flips parity
            delta[s][1] = s | 2;       // 'b' sets seen flag
        }
        accept = new boolean[4];
        accept[2] = true;              // even a's, seen b
    }

    boolean run(String input) {
        int s = 0;
        for (int i = 0; i < input.length(); i++) {
            char c = input.charAt(i);
            int sym = c == 'a' ? 0 : 1;
            s = delta[s][sym];
        }
        return accept[s];
    }

    static String genInput(int seed, int len) {
        String r = "";
        int s = seed;
        for (int i = 0; i < len; i++) {
            s = s * 1103515245 + 12345;
            r = r + (((s >>> 8) & 1) == 0 ? 'a' : 'b');
        }
        return r;
    }

    static int main() {
        StateMachine m = new StateMachine();
        int accepted = 0;
        for (int trial = 0; trial < 40; trial++) {
            String input = genInput(trial, 20 + trial % 11);
            if (m.run(input)) accepted++;
        }
        Sys.println(accepted);
        Sys.println(m.run("aabb"));
        Sys.println(m.run("aab"));
        return accepted;
    }
}
