// In-place quicksort with an insertion-sort tail (array/branch heavy).
class QuickSort {
    static void insertion(int[] a, int lo, int hi) {
        for (int i = lo + 1; i <= hi; i++) {
            int v = a[i];
            int j = i - 1;
            while (j >= lo && a[j] > v) { a[j + 1] = a[j]; j--; }
            a[j + 1] = v;
        }
    }

    static void sort(int[] a, int lo, int hi) {
        while (hi - lo > 12) {
            int p = a[(lo + hi) >>> 1];
            int i = lo; int j = hi;
            while (i <= j) {
                while (a[i] < p) i++;
                while (a[j] > p) j--;
                if (i <= j) { int t = a[i]; a[i] = a[j]; a[j] = t; i++; j--; }
            }
            if (j - lo < hi - i) { sort(a, lo, j); lo = i; }
            else { sort(a, i, hi); hi = j; }
        }
        insertion(a, lo, hi);
    }

    static int main() {
        int n = 3000;
        int[] a = new int[n];
        int seed = 42;
        for (int i = 0; i < n; i++) {
            seed = seed * 1103515245 + 12345;
            a[i] = (seed >>> 8) % 100000;
        }
        sort(a, 0, n - 1);
        int checksum = 0;
        for (int i = 1; i < n; i++) {
            if (a[i - 1] > a[i]) return -1;
            checksum = checksum * 31 + a[i] % 97;
        }
        Sys.println(checksum);
        return checksum;
    }
}
