// Linked-list construction, reversal, merge sort (pointer chasing;
// null-check heavy after inlining is impossible).
class Cell {
    int v;
    Cell next;
    Cell(int v, Cell next) { this.v = v; this.next = next; }
}

class ListOps {
    static Cell fromRange(int n) {
        Cell head = null;
        int seed = 99;
        for (int i = 0; i < n; i++) {
            seed = seed * 1103515245 + 12345;
            head = new Cell((seed >>> 8) % 1000, head);
        }
        return head;
    }

    static Cell reverse(Cell c) {
        Cell prev = null;
        while (c != null) {
            Cell next = c.next;
            c.next = prev;
            prev = c;
            c = next;
        }
        return prev;
    }

    static int length(Cell c) {
        int n = 0;
        while (c != null) { n++; c = c.next; }
        return n;
    }

    static Cell merge(Cell a, Cell b) {
        Cell head = null; Cell tail = null;
        while (a != null && b != null) {
            Cell pick;
            if (a.v <= b.v) { pick = a; a = a.next; }
            else { pick = b; b = b.next; }
            if (tail == null) { head = pick; tail = pick; }
            else { tail.next = pick; tail = pick; }
        }
        Cell rest = a != null ? a : b;
        if (tail == null) return rest;
        tail.next = rest;
        return head;
    }

    static Cell sort(Cell c) {
        if (c == null || c.next == null) return c;
        // split via slow/fast pointers
        Cell slow = c; Cell fast = c.next;
        while (fast != null && fast.next != null) {
            slow = slow.next;
            fast = fast.next.next;
        }
        Cell second = slow.next;
        slow.next = null;
        return merge(sort(c), sort(second));
    }

    static int main() {
        Cell list = fromRange(300);
        list = reverse(list);
        list = sort(list);
        int n = length(list);
        int sum = 0; int sorted = 1;
        Cell c = list;
        while (c != null) {
            sum += c.v;
            if (c.next != null && c.v > c.next.v) sorted = 0;
            c = c.next;
        }
        Sys.println(n);
        Sys.println(sum);
        Sys.println(sorted == 1);
        return n * sorted + sum % 1000;
    }
}
