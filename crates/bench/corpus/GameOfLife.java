// Conway's life on a toroidal boolean grid (2-D array access patterns).
class GameOfLife {
    boolean[][] grid;
    int w; int h;

    GameOfLife(int w, int h) {
        this.w = w; this.h = h;
        grid = new boolean[h][];
        for (int y = 0; y < h; y++) grid[y] = new boolean[w];
    }

    void seed(int s) {
        for (int y = 0; y < h; y++) {
            for (int x = 0; x < w; x++) {
                s = s * 1103515245 + 12345;
                grid[y][x] = ((s >>> 8) & 3) == 0;
            }
        }
    }

    int neighbors(int x, int y) {
        int n = 0;
        for (int dy = -1; dy <= 1; dy++) {
            for (int dx = -1; dx <= 1; dx++) {
                if (dx == 0 && dy == 0) continue;
                int nx = (x + dx + w) % w;
                int ny = (y + dy + h) % h;
                if (grid[ny][nx]) n++;
            }
        }
        return n;
    }

    void step() {
        boolean[][] next = new boolean[h][];
        for (int y = 0; y < h; y++) {
            next[y] = new boolean[w];
            for (int x = 0; x < w; x++) {
                int n = neighbors(x, y);
                next[y][x] = grid[y][x] ? n == 2 || n == 3 : n == 3;
            }
        }
        grid = next;
    }

    int population() {
        int p = 0;
        for (int y = 0; y < h; y++)
            for (int x = 0; x < w; x++)
                if (grid[y][x]) p++;
        return p;
    }

    static int main() {
        GameOfLife life = new GameOfLife(24, 16);
        life.seed(2024);
        int start = life.population();
        for (int g = 0; g < 12; g++) life.step();
        int end = life.population();
        Sys.println(start);
        Sys.println(end);
        return start * 1000 + end;
    }
}
