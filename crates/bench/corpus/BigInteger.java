// Multiword integer arithmetic in the style of sun.math.BigInteger:
// magnitude arrays, carries, comparisons, shifting, schoolbook multiply.
class Big {
    int[] mag; // little-endian 16-bit limbs stored in ints
    int len;

    Big(int capacity) { mag = new int[capacity]; len = 1; }

    static Big fromInt(int v) {
        Big b = new Big(8);
        b.mag[0] = v & 0xFFFF;
        b.mag[1] = (v >>> 16) & 0xFFFF;
        b.len = b.mag[1] != 0 ? 2 : 1;
        return b;
    }

    Big copy(int extra) {
        Big r = new Big(len + extra);
        for (int i = 0; i < len; i++) r.mag[i] = mag[i];
        r.len = len;
        return r;
    }

    void norm() {
        while (len > 1 && mag[len - 1] == 0) len--;
    }

    static Big add(Big a, Big b) {
        int n = Math.max(a.len, b.len) + 1;
        Big r = new Big(n);
        int carry = 0;
        for (int i = 0; i < n; i++) {
            int x = i < a.len ? a.mag[i] : 0;
            int y = i < b.len ? b.mag[i] : 0;
            int s = x + y + carry;
            r.mag[i] = s & 0xFFFF;
            carry = s >>> 16;
        }
        r.len = n;
        r.norm();
        return r;
    }

    static Big mulSmall(Big a, int m) {
        Big r = new Big(a.len + 2);
        int carry = 0;
        for (int i = 0; i < a.len; i++) {
            int p = a.mag[i] * m + carry;
            r.mag[i] = p & 0xFFFF;
            carry = p >>> 16;
        }
        r.mag[a.len] = carry;
        r.len = a.len + 1;
        r.norm();
        return r;
    }

    static Big mul(Big a, Big b) {
        Big r = new Big(a.len + b.len + 1);
        for (int i = 0; i < a.len; i++) {
            int carry = 0;
            for (int j = 0; j < b.len; j++) {
                int p = a.mag[i] * b.mag[j] + r.mag[i + j] + carry;
                r.mag[i + j] = p & 0xFFFF;
                carry = p >>> 16;
            }
            r.mag[i + b.len] += carry;
        }
        r.len = a.len + b.len;
        r.norm();
        return r;
    }

    static int cmp(Big a, Big b) {
        if (a.len != b.len) return a.len < b.len ? -1 : 1;
        for (int i = a.len - 1; i >= 0; i--) {
            if (a.mag[i] != b.mag[i]) return a.mag[i] < b.mag[i] ? -1 : 1;
        }
        return 0;
    }

    Big shl16(int limbs) {
        Big r = new Big(len + limbs);
        for (int i = 0; i < len; i++) r.mag[i + limbs] = mag[i];
        r.len = len + limbs;
        return r;
    }

    int mod10() {
        // value mod 10 via limb scan (2^16 mod 10 = 6)
        int m = 0;
        int p = 1;
        for (int i = 0; i < len; i++) {
            m = (m + (mag[i] % 10) * p) % 10;
            p = (p * 6) % 10;
        }
        return m;
    }

    static int main() {
        // factorial(25) mod 10 digits check + growth behaviour
        Big f = Big.fromInt(1);
        for (int i = 2; i <= 25; i++) f = mulSmall(f, i);
        Big g = add(f, Big.fromInt(7));
        Big h = mul(f, Big.fromInt(1000003));
        int c1 = cmp(h, g);
        int c2 = cmp(g, f.shl16(1));
        Sys.println(f.len);
        Sys.println(f.mod10());
        Sys.println(c1);
        Sys.println(c2);
        return f.len * 100 + h.len * 10 + (c1 + 1);
    }
}
