// Table-driven CRC-32 over a generated buffer (int/bit operations).
class Crc32 {
    static int[] makeTable() {
        int[] table = new int[256];
        for (int n = 0; n < 256; n++) {
            int c = n;
            for (int k = 0; k < 8; k++) {
                if ((c & 1) != 0) c = 0xEDB88320 ^ (c >>> 1);
                else c >>>= 1;
            }
            table[n] = c;
        }
        return table;
    }

    static int crc(int[] table, char[] data) {
        int c = 0xFFFFFFFF;
        for (int i = 0; i < data.length; i++) {
            c = table[(c ^ data[i]) & 0xFF] ^ (c >>> 8);
        }
        return c ^ 0xFFFFFFFF;
    }

    static int main() {
        int[] table = makeTable();
        char[] buf = new char[4096];
        int seed = 7;
        for (int i = 0; i < buf.length; i++) {
            seed = seed * 1103515245 + 12345;
            buf[i] = (char) ((seed >>> 8) & 0xFF);
        }
        int c1 = crc(table, buf);
        // incremental consistency check
        char[] half1 = new char[2048];
        for (int i = 0; i < 2048; i++) half1[i] = buf[i];
        int c2 = crc(table, half1);
        Sys.println(c1);
        Sys.println(c2);
        return c1 ^ c2;
    }
}
