// Linpack-style dense linear algebra kernels (the paper's Linpack row:
// array-check heavy numeric code).
class Linpack {
    static double[][] matgen(int n, int seed) {
        double[][] a = new double[n][];
        int s = seed;
        for (int i = 0; i < n; i++) {
            a[i] = new double[n + 1];
            for (int j = 0; j < n; j++) {
                s = s * 1103515245 + 12345;
                a[i][j] = ((s >>> 8) % 2000 - 1000) / 1000.0;
            }
        }
        // right-hand side: row sums, so the solution is all ones
        for (int i = 0; i < n; i++) {
            double t = 0.0;
            for (int j = 0; j < n; j++) t += a[i][j];
            a[i][n] = t;
        }
        return a;
    }

    static int idamax(int n, double[] dx, int off) {
        int imax = 0;
        double dmax = Math.abs(dx[off]);
        for (int i = 1; i < n; i++) {
            double d = Math.abs(dx[off + i]);
            if (d > dmax) { dmax = d; imax = i; }
        }
        return imax;
    }

    static void daxpy(int n, double da, double[] dx, int xoff, double[] dy, int yoff) {
        if (da == 0.0) return;
        for (int i = 0; i < n; i++) dy[yoff + i] += da * dx[xoff + i];
    }

    static double ddot(int n, double[] dx, int xoff, double[] dy, int yoff) {
        double s = 0.0;
        for (int i = 0; i < n; i++) s += dx[xoff + i] * dy[yoff + i];
        return s;
    }

    static int dgefa(double[][] a, int n, int[] ipvt) {
        int info = 0;
        for (int k = 0; k < n - 1; k++) {
            double[] col = new double[n - k];
            for (int i = 0; i < n - k; i++) col[i] = a[k + i][k];
            int l = idamax(n - k, col, 0);
            ipvt[k] = l + k;
            if (a[l + k][k] == 0.0) { info = k; continue; }
            if (l != 0) {
                double t = a[l + k][k];
                a[l + k][k] = a[k][k];
                a[k][k] = t;
            }
            double pivot = -1.0 / a[k][k];
            for (int i = k + 1; i < n; i++) a[i][k] *= pivot;
            for (int j = k + 1; j < n; j++) {
                double t = a[ipvt[k]][j];
                if (ipvt[k] != k) {
                    a[ipvt[k]][j] = a[k][j];
                    a[k][j] = t;
                }
                for (int i = k + 1; i < n; i++) a[i][j] += t * a[i][k];
            }
        }
        ipvt[n - 1] = n - 1;
        return info;
    }

    static void dgesl(double[][] a, int n, int[] ipvt, double[] b) {
        for (int k = 0; k < n - 1; k++) {
            int l = ipvt[k];
            double t = b[l];
            if (l != k) { b[l] = b[k]; b[k] = t; }
            for (int i = k + 1; i < n; i++) b[i] += t * a[i][k];
        }
        for (int kb = 0; kb < n; kb++) {
            int k = n - kb - 1;
            b[k] /= a[k][k];
            double t = -b[k];
            for (int i = 0; i < k; i++) b[i] += t * a[i][k];
        }
    }

    static int main() {
        int n = 24;
        double[][] a = matgen(n, 1325);
        double[] b = new double[n];
        for (int i = 0; i < n; i++) b[i] = a[i][n];
        int[] ipvt = new int[n];
        dgefa(a, n, ipvt);
        dgesl(a, n, ipvt, b);
        double err = 0.0;
        for (int i = 0; i < n; i++) err += Math.abs(b[i] - 1.0);
        boolean ok = err < 1e-6;
        Sys.println(ok);
        return ok ? 1 : 0;
    }
}
